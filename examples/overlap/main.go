// Class-overlap diagnosis: the paper's §V-B scenario. Train the HPC trusted
// HMD, show that known-data entropy is as high as unknown-data entropy
// (overlapping classes = aleatoric uncertainty), demonstrate the SVM
// non-convergence the paper reports, and reproduce the F1 uplift from
// rejecting uncertain predictions.
package main

import (
	"fmt"
	"log"

	"trusthmd/internal/core"
	"trusthmd/internal/gen"
	"trusthmd/internal/metrics"
	"trusthmd/internal/stats"
	"trusthmd/pkg/detector"
)

func main() {
	// A scaled-down HPC dataset keeps the example fast; shapes are the
	// same at full Table I size (use cmd/hmdbench -exp F5 for that).
	splits, err := gen.HPCWithSizes(3, gen.Sizes{Train: 8000, Test: 1600, Unknown: 1200})
	if err != nil {
		log.Fatal(err)
	}

	// SVM fails to converge on overlapping classes — as in the paper.
	_, err = detector.New(splits.Train,
		detector.WithModel("svm"), detector.WithEnsembleSize(5),
		detector.WithSeed(3), detector.WithSVMMaxObjective(0.3))
	switch {
	case detector.IsNoConvergence(err):
		fmt.Printf("SVM excluded: %v\n\n", err)
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Println("warning: SVM unexpectedly converged")
	}

	det, err := detector.New(splits.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(25), detector.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	rKnown, err := det.AssessDataset(splits.Test)
	if err != nil {
		log.Fatal(err)
	}
	rUnknown, err := det.AssessDataset(splits.Unknown)
	if err != nil {
		log.Fatal(err)
	}
	preds := detector.Predictions(rKnown)
	knownEntropies := detector.Entropies(rKnown)
	unknownEntropies := detector.Entropies(rUnknown)

	ks, err := stats.Summarize(knownEntropies)
	if err != nil {
		log.Fatal(err)
	}
	us, err := stats.Summarize(unknownEntropies)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("entropy distributions (RF ensemble):")
	fmt.Printf("  known   %s\n", ks)
	fmt.Printf("  unknown %s\n", us)
	fmt.Println("  -> known entropy is as high as unknown: the classes overlap,")
	fmt.Println("     so unknowns cannot be isolated (aleatoric, not epistemic).")

	baseline, err := metrics.Score(splits.Test.Y(), preds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline on known test: acc=%.3f f1=%.3f\n", baseline.Accuracy, baseline.F1)

	thresholds, err := core.Thresholds(0.05, 0.85, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	curve, err := core.F1Curve(splits.Test.Y(), preds, knownEntropies, thresholds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthreshold  f1     precision  recall  rejected")
	for _, pt := range curve {
		fmt.Printf("   %.2f    %.3f    %.3f     %.3f   %5.1f%%\n",
			pt.Threshold, pt.F1, pt.Precision, pt.Recall, pt.RejectedPct)
	}
	fmt.Println("\nrejecting uncertain predictions recovers a high F1 on the")
	fmt.Println("accepted subset — but only by refusing to classify most inputs,")
	fmt.Println("which is the paper's argument that this dataset cannot yield a")
	fmt.Println("trustworthy HMD.")
}
