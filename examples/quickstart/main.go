// Quickstart: train a trusted HMD on synthetic DVFS telemetry, then
// classify one known workload and one zero-day workload, showing the
// uncertainty estimate that separates them.
package main

import (
	"fmt"
	"log"

	"trusthmd/internal/gen"
	"trusthmd/pkg/detector"
)

func main() {
	// 1. Generate the DVFS dataset (a scaled-down Table I split).
	splits, err := gen.DVFSWithSizes(1, gen.Sizes{Train: 700, Test: 210, Unknown: 80})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train the trusted HMD: scaling -> bagging ensemble of 25 random
	// forest trees -> vote-entropy uncertainty estimator -> rejector at the
	// paper's 0.40 operating point.
	det, err := detector.New(splits.Train,
		detector.WithModel("rf"),
		detector.WithEnsembleSize(25),
		detector.WithSeed(42),
		detector.WithThreshold(0.40),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Assess one known test sample and one zero-day sample.
	known := splits.Test.At(0)
	unknown := splits.Unknown.At(0)

	for _, s := range []struct {
		name     string
		features []float64
	}{
		{"known workload (" + known.App + ")", known.Features},
		{"zero-day workload (" + unknown.App + ")", unknown.Features},
	} {
		res, err := det.Assess(s.features)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s decision=%-7v entropy=%.3f votes=%v\n",
			s.name, res.Decision, res.Entropy, res.VoteDist)
	}
}
