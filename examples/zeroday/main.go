// Zero-day screening: the paper's §V-A scenario end to end. Train the DVFS
// trusted HMD, sweep the entropy threshold, pick the operating point that
// best separates unknown (zero-day) workloads from known ones, and report
// the paper's headline comparison (threshold 0.40: ~95% of unknowns
// rejected, <5% of knowns).
package main

import (
	"fmt"
	"log"

	"trusthmd/internal/core"
	"trusthmd/internal/gen"
	"trusthmd/pkg/detector"
)

func main() {
	splits, err := gen.DVFSWithSizes(7, gen.Sizes{Train: 2100, Test: 700, Unknown: 284})
	if err != nil {
		log.Fatal(err)
	}
	det, err := detector.New(splits.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(25), detector.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	// One batched pass per split: scaling and PCA amortised, member
	// inference spread over the worker pool.
	rKnown, err := det.AssessDataset(splits.Test)
	if err != nil {
		log.Fatal(err)
	}
	rUnknown, err := det.AssessDataset(splits.Unknown)
	if err != nil {
		log.Fatal(err)
	}
	knownEntropies := detector.Entropies(rKnown)
	unknownEntropies := detector.Entropies(rUnknown)

	thresholds, err := core.Thresholds(0, 0.75, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("threshold  known rejected  unknown rejected")
	for _, thr := range thresholds {
		op, err := core.At(thr, knownEntropies, unknownEntropies)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %.2f        %5.1f%%          %5.1f%%\n",
			thr, op.KnownRejectedPct, op.UnknownRejectedPct)
	}

	best, err := core.BestSeparation(knownEntropies, unknownEntropies, thresholds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest separation at threshold %.2f: unknown %.1f%% vs known %.1f%%\n",
		best.Threshold, best.UnknownRejectedPct, best.KnownRejectedPct)

	paper, err := core.At(0.40, knownEntropies, unknownEntropies)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper operating point (0.40): unknown %.1f%% (paper ~95%%), known %.1f%% (paper <5%%)\n",
		paper.UnknownRejectedPct, paper.KnownRejectedPct)
}
