// Online monitoring: continuous telemetry screening with drift detection.
// A trained trusted HMD watches a stream that starts with known benign
// workloads and then silently switches to a zero-day workload; the rising
// rejection rate is the alarm signal — exactly the "collect forensic data
// and alert a specialist" loop the paper's introduction motivates.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"trusthmd/internal/dvfs"
	"trusthmd/internal/gen"
	"trusthmd/internal/workload"
	"trusthmd/pkg/detector"
)

func main() {
	splits, err := gen.DVFSWithSizes(5, gen.Sizes{Train: 1400, Test: 280, Unknown: 80})
	if err != nil {
		log.Fatal(err)
	}
	det, err := detector.New(splits.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(25),
		detector.WithSeed(5), detector.WithThreshold(0.40))
	if err != nil {
		log.Fatal(err)
	}

	sim, err := dvfs.NewSimulator(dvfs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	online, err := detector.NewOnline(det, detector.StreamConfig{
		Levels: sim.Config().Levels,
		Window: sim.Config().Steps,
	})
	if err != nil {
		log.Fatal(err)
	}

	apps := map[string]workload.DVFSBehavior{}
	for _, a := range workload.DVFSApps() {
		apps[a.Name] = a
	}

	// Phase 1: 20 windows of ordinary usage. Phase 2: a zero-day
	// cryptojacker takes over.
	phases := []struct {
		name    string
		apps    []string
		windows int
	}{
		{"normal usage", []string{"web_browser", "video_stream", "messaging", "music_player"}, 20},
		{"compromise", []string{"cryptojack_v2"}, 20},
	}

	rng := rand.New(rand.NewSource(5))
	const alarmWindow = 10 // alarm when >30% of the last 10 windows reject
	var recent []bool
	alarmed := false

	for _, phase := range phases {
		fmt.Printf("--- phase: %s ---\n", phase.name)
		phaseRejects := 0
		for w := 0; w < phase.windows; w++ {
			app := apps[phase.apps[rng.Intn(len(phase.apps))]]
			trace, err := sim.Trace(app, rng)
			if err != nil {
				log.Fatal(err)
			}
			for _, st := range trace {
				res, ok, err := online.Push(st)
				if err != nil {
					log.Fatal(err)
				}
				if !ok {
					continue
				}
				rejected := res.Decision == detector.Reject
				if rejected {
					phaseRejects++
				}
				recent = append(recent, rejected)
				if len(recent) > alarmWindow {
					recent = recent[1:]
				}
				count := 0
				for _, r := range recent {
					if r {
						count++
					}
				}
				if !alarmed && len(recent) == alarmWindow && count > 3 {
					alarmed = true
					fmt.Printf(">>> ALARM: %d of last %d windows rejected — unknown workload suspected, collecting forensics\n",
						count, alarmWindow)
				}
			}
		}
		fmt.Printf("phase rejections: %d/%d windows\n\n", phaseRejects, phase.windows)
	}
	fmt.Printf("stream totals: %d benign, %d malware, %d rejected (%.1f%%)\n",
		online.Stats.Benign, online.Stats.Malware, online.Stats.Rejected,
		100*online.Stats.RejectedFraction())
	if alarmed {
		fmt.Println("drift alarm fired during the compromise phase, as intended")
	}
}
