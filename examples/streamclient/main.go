// Streamclient drives a running trusthmdd daemon over the NDJSON
// streaming endpoint: it generates a DVFS state trace (benign workloads,
// then a cryptojacker), streams the raw states to POST /v1/assess/stream,
// and prints the trusted verdicts as they come back line by line — the
// whole online loop (windowing, feature extraction, projection memo,
// rejection) runs server-side, so the client ships integers, not feature
// vectors.
//
// Start a daemon first, then point the client at it:
//
//	go run ./cmd/trusthmd  -model rf -save det.gob
//	go run ./cmd/trusthmdd -load det.gob
//	go run ./examples/streamclient [-addr http://localhost:8080]
//	    [-model name] [-device host-0] [-window 256] [-stride 128]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"

	"trusthmd/internal/dvfs"
	"trusthmd/internal/workload"
	"trusthmd/pkg/serve"
)

func main() {
	var (
		addr   = flag.String("addr", "http://localhost:8080", "trusthmdd base URL")
		model  = flag.String("model", "", "shard to stream to (empty: device routing or server default)")
		device = flag.String("device", "", "device key for consistent-hash routing")
		window = flag.Int("window", 256, "states per assessment window")
		stride = flag.Int("stride", 128, "new states between assessments")
	)
	flag.Parse()

	sim, err := dvfs.NewSimulator(dvfs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	apps := map[string]workload.DVFSBehavior{}
	for _, a := range workload.DVFSApps() {
		apps[a.Name] = a
	}

	// Two phases of telemetry: ordinary usage, then a miner takes over.
	rng := rand.New(rand.NewSource(42))
	var states []int
	for _, phase := range []struct {
		app     string
		windows int
	}{
		{"web_browser", 6},
		{"miner_a", 6},
	} {
		for i := 0; i < phase.windows; i++ {
			trace, err := sim.Trace(apps[phase.app], rng)
			if err != nil {
				log.Fatal(err)
			}
			states = append(states, trace...)
		}
	}

	// The request body is written into a pipe while the response is read
	// concurrently: decisions stream back while states are still going out.
	pr, pw := io.Pipe()
	go func() {
		enc := json.NewEncoder(pw)
		if err := enc.Encode(serve.StreamHeader{
			Model:  *model,
			Device: *device,
			Levels: sim.Config().Levels,
			Window: *window,
			Stride: *stride,
		}); err != nil {
			pw.CloseWithError(err)
			return
		}
		for i := 0; i < len(states); i += 64 {
			end := i + 64
			if end > len(states) {
				end = len(states)
			}
			if err := enc.Encode(serve.StreamSample{States: states[i:end]}); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()

	resp, err := http.Post(*addr+"/v1/assess/stream", "application/x-ndjson", pr)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("stream rejected: %d: %s", resp.StatusCode, body)
	}

	fmt.Printf("streaming %d DVFS states (window %d, stride %d)\n\n", len(states), *window, *stride)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			log.Fatalf("bad stream line: %s", sc.Bytes())
		}
		switch {
		case probe["error"] != nil:
			var e serve.ErrorResponse
			_ = json.Unmarshal(sc.Bytes(), &e)
			log.Fatalf("stream error: %s", e.Error)
		case probe["done"] != nil:
			var sum serve.StreamSummary
			if err := json.Unmarshal(sc.Bytes(), &sum); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nstream done: model %s v%d — %d samples, %d decisions (%d benign / %d malware / %d rejected), %d memo hits\n",
				sum.Model, sum.Version, sum.Samples, sum.Decisions, sum.Benign, sum.Malware, sum.Rejected, sum.CacheHits)
		default:
			var r serve.StreamResult
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				log.Fatal(err)
			}
			marker := ""
			if r.Decision != "benign" {
				marker = "  <-- " + r.Decision
			}
			fmt.Printf("decision %3d @ sample %5d: %-7s (entropy %.3f, model %s v%d)%s\n",
				r.Seq, r.Sample, r.Decision, r.Entropy, r.Model, r.Version, marker)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
