// Closed loop: the whole autonomous lifecycle in one process. Telemetry
// events flow through an ingest pump into a verdict-tapped fleet, a
// retrain controller tails the verdict store and watches each device's
// entropy stream, and when one device starts replaying zero-day windows
// the controller retrains in the background and hot-swaps the fleet —
// no operator, no downtime, no lost verdicts.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"trusthmd/internal/gen"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/ingest"
	"trusthmd/pkg/serve"
	"trusthmd/pkg/verdictstore"
)

func main() {
	// 1. Train the detector that will be supervised.
	splits, err := gen.DVFSWithSizes(5, gen.Sizes{Train: 320, Test: 80, Unknown: 160})
	if err != nil {
		log.Fatal(err)
	}
	det, err := detector.New(splits.Train,
		detector.WithModel("rf"),
		detector.WithEnsembleSize(9),
		detector.WithSeed(2),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Open the verdict store and build a fleet that taps every served
	// verdict into it.
	dir, err := os.MkdirTemp("", "closedloop-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := verdictstore.Open(dir, verdictstore.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	fleet, err := serve.NewFleet(
		map[string]*detector.Detector{"hmd": det},
		serve.Config{DefaultModel: "hmd", Verdicts: store},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()

	// 3. The ingest pump is the telemetry front door: events fan in
	// through a bounded queue and land in the fleet's assess path, so
	// every ingested window becomes a stored, drift-monitored verdict.
	pump := ingest.NewPump(func(ctx context.Context, ev ingest.Event) error {
		_, err := fleet.Assess(ctx, serve.AssessSpec{
			Model:    ev.Model,
			Device:   ev.Device,
			Features: ev.Features,
			Source:   "ingest",
		})
		return err
	}, ingest.Config{Queue: 256, Workers: 2})

	// 4. The retrain controller tails the store; sustained drift on any
	// single device triggers a background retrain and a zero-downtime
	// Fleet.SwapCause.
	ctrl, err := serve.NewRetrainController(serve.RetrainConfig{
		Store:          store,
		Fleet:          fleet,
		Model:          "hmd",
		Base:           splits.Train,
		Interval:       20 * time.Millisecond,
		Drift:          detector.DriftConfig{Window: 16},
		BaselineSample: 120,
		Sustain:        3,
		Quorum:         20,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	pumpDone := make(chan error, 1)
	ctrlDone := make(chan error, 1)
	go func() { pumpDone <- pump.Run(ctx) }()
	go func() { ctrlDone <- ctrl.Run(ctx) }()

	// 5. Drive telemetry: a healthy device replays known test windows, a
	// compromised one replays the zero-day split — that is the injected
	// drift. Push sheds with ErrBusy under pressure; a real producer
	// would back off, here we just retry.
	push := func(device string, features []float64) {
		for {
			err := pump.Push(ingest.Event{Device: device, Features: features})
			if err == nil {
				return
			}
			if err == ingest.ErrBusy {
				time.Sleep(time.Millisecond)
				continue
			}
			log.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; fleet.Epoch() == 1; i++ {
		push("healthy", splits.Test.At(i%splits.Test.Len()).Features)
		push("edge-7", splits.Unknown.At(i%splits.Unknown.Len()).Features)
		if time.Now().After(deadline) {
			log.Fatalf("no retrain within 30s: %+v", ctrl.Stats())
		}
	}

	// 6. The loop has closed: report what happened.
	cancel()
	if err := <-pumpDone; err != nil {
		log.Fatal(err)
	}
	<-ctrlDone
	st, ps, cs := store.Stats(), pump.Stats(), ctrl.Stats()
	fmt.Printf("swap cause:        %s (fleet epoch %d)\n", fleet.LastSwapCause(), fleet.Epoch())
	fmt.Printf("retrains:          %d\n", cs.Retrains)
	fmt.Printf("ingested:          %d events (%d shed and retried)\n", ps.Handled, ps.Shed)
	fmt.Printf("verdicts stored:   %d in %d segment(s)\n", st.Records, st.Segments)
	rejects, err := store.Query(verdictstore.Filter{Device: "edge-7", Limit: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first edge-7 verdicts: ")
	for _, r := range rejects {
		fmt.Printf("v%d/%s ", r.Version, r.Decision)
	}
	fmt.Println()
}
