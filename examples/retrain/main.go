// Retraining feedback loop: the full trusted-HMD lifecycle from the
// paper's introduction. A zero-day cryptojacker is first rejected by the
// uncertainty estimator; its rejected windows are collected as forensics
// and labelled by an analyst; the detector retrains; afterwards the family
// is classified confidently as malware while other zero-days still trip
// the estimator.
package main

import (
	"fmt"
	"log"

	"trusthmd/internal/gen"
	"trusthmd/pkg/dataset"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/linalg"
)

func main() {
	splits, err := gen.DVFSWithSizes(8, gen.Sizes{Train: 1400, Test: 280, Unknown: 600})
	if err != nil {
		log.Fatal(err)
	}
	opts := []detector.Option{
		detector.WithModel("rf"),
		detector.WithEnsembleSize(25),
		detector.WithSeed(8),
		detector.WithThreshold(0.40),
	}
	det, err := detector.New(splits.Train, opts...)
	if err != nil {
		log.Fatal(err)
	}

	const family = "cryptojack_v2"
	var familySamples, otherUnknown []dataset.Sample
	for i := 0; i < splits.Unknown.Len(); i++ {
		s := splits.Unknown.At(i)
		if s.App == family {
			familySamples = append(familySamples, s)
		} else {
			otherUnknown = append(otherUnknown, s)
		}
	}
	forensic := familySamples[:3*len(familySamples)/4]
	heldOut := familySamples[3*len(familySamples)/4:]

	report := func(name string, d *detector.Detector, samples []dataset.Sample) (meanH, acc float64) {
		var hs []float64
		correct := 0
		for _, s := range samples {
			r, err := d.Assess(s.Features)
			if err != nil {
				log.Fatal(err)
			}
			hs = append(hs, r.Entropy)
			if r.Prediction == s.Label {
				correct++
			}
		}
		meanH = linalg.Mean(hs)
		acc = float64(correct) / float64(len(samples))
		fmt.Printf("%-34s meanEntropy=%.3f accuracy=%.3f\n", name, meanH, acc)
		return meanH, acc
	}

	fmt.Println("== before retraining ==")
	hFamBefore, accFamBefore := report(family+" (held out)", det, heldOut)
	report("other zero-days", det, otherUnknown)

	// Rejected windows go to the analyst; the analyst labels them.
	retrainer, err := detector.NewRetrainer(splits.Train, 40, opts...)
	if err != nil {
		log.Fatal(err)
	}
	rejected := 0
	for _, s := range forensic {
		res, err := det.Assess(s.Features)
		if err != nil {
			log.Fatal(err)
		}
		if res.Decision != detector.Reject {
			continue
		}
		rejected++
		if err := retrainer.ReportRejection(s.Features, s.Label, s.App); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nforensics: %d of %d %s windows rejected and labelled by the analyst\n",
		rejected, len(forensic), family)
	if !retrainer.ShouldRetrain() {
		log.Fatalf("forensic quorum not reached (%d pending)", retrainer.Pending())
	}

	det, err = retrainer.Retrain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrained on %d samples (round %d)\n\n", retrainer.TrainingSize(), retrainer.Rounds())

	fmt.Println("== after retraining ==")
	hFam, accFam := report(family+" (held out)", det, heldOut)
	hOther, _ := report("other zero-days", det, otherUnknown)

	fmt.Printf("\nabsorbed family: entropy %.3f -> %.3f (%.0f%% lower), accuracy %.3f -> %.3f\n",
		hFamBefore, hFam, 100*(1-hFam/hFamBefore), accFamBefore, accFam)
	fmt.Printf("unrelated zero-days keep mean entropy %.3f: the detector still flags them.\n", hOther)
	fmt.Println("one forensic round moves the family toward the known set; further")
	fmt.Println("rounds (and more forensics) continue the shift — see detector.Retrainer.")
}
