// Command trusthmdd is the trusted-HMD serving daemon: it loads one or
// more gob-saved detectors (train them with `trusthmd -save` or the
// pkg/detector Save API) into a hot-swappable serve.Fleet and serves
// assessment traffic over HTTP — coalesced single-sample requests, client
// batches, and NDJSON streams of raw DVFS states — while shards can be
// loaded, replaced and unloaded without restarting.
//
// Endpoints: POST /v1/assess, POST /v1/assess/batch, POST /v1/assess/stream,
// GET|POST /v1/models, GET|DELETE /v1/models/{name}, GET /v1/verdicts,
// POST /v1/ingest, GET /healthz, GET /stats.
//
// Usage:
//
//	trusthmd -save det.gob                          # train once
//	trusthmdd -load det.gob                         # serve it as "default"
//	trusthmdd -model dvfs=det.gob -model alt=b.gob  # named shard fleet
//	         [-addr :8080] [-default dvfs]
//	         [-max-batch 32] [-max-wait 2ms] [-queue 1024]
//	         [-replicas 3] [-max-inflight 256] [-shed-depth 512]
//	         [-spill-depth 32] [-flush-depth 32]
//	         [-cache-size 4096] [-workers 0] [-threshold -1]
//	         [-admin-token secret] [-watch 5s]
//	         [-verdict-dir verdicts] [-ingest-dir drops]
//	         [-auto-retrain -retrain-data data/dvfs/train.csv]
//	         [-coordinator | -join http://peer:8080]
//	         [-advertise http://me:8080] [-node-id n1] [-heartbeat 1s]
//
//	curl -s localhost:8080/v1/assess -d '{"features":[...]}'
//
// With -replicas N each shard name is served by N independent instances
// (own coalescer, queue and result cache over one shared model): device
// routing keeps a home replica for cache affinity and spills overflow to
// the least-loaded sibling past -spill-depth. -max-inflight and
// -shed-depth bound each replica — beyond them requests shed with 503 +
// Retry-After — and -flush-depth flushes a hot coalescer early instead of
// waiting out -max-wait.
//
// With -admin-token set, POST /v1/models and DELETE /v1/models/{name}
// hot-manage the fleet (the token guards them; without the flag they are
// open). With -watch set, every shard given on the command line is
// reloaded automatically when its gob file's mtime changes — and both
// paths reapply the daemon's -workers/-threshold overrides to the
// incoming model, so a hot swap never silently drops the fleet-wide
// serving configuration.
//
// Clustering: -coordinator starts a new cluster, -join http://peer:8080
// joins a running one (either needs -advertise, the URL peers reach this
// node at; -node-id defaults to the hostname). Clustered nodes form one
// fleet: any node serves any request (non-local shards are forwarded to
// their owner), POST /v1/models on any node rolls the model out two-phase
// to every member, NDJSON streams survive the death of the node computing
// them, and a joiner may boot with no models at all — the cluster catalog
// supplies its shards on demand. GET /v1/cluster shows the node's view.
// The /cluster/v1/* node-to-node API shares -admin-token.
//
// The closed loop: -verdict-dir persists every served verdict to an
// embedded append-only segment store (queryable over GET /v1/verdicts,
// surviving restarts via crash-safe recovery); -ingest-dir polls a drop
// directory for CSV telemetry and assesses it through the fleet (and
// enables POST /v1/ingest for HTTP push); -auto-retrain tails the
// verdict store for per-device entropy drift and, on sustained drift,
// retrains in the background on the base set (-retrain-data) plus the
// drifting device's rejected-verdict forensics and hot-swaps the result
// in — zero downtime, no operator.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"trusthmd/pkg/cluster"
	"trusthmd/pkg/dataset"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/ingest"
	"trusthmd/pkg/serve"
	"trusthmd/pkg/verdictstore"

	// Classifier families beyond the pkg/detector built-ins are enabled by
	// blank import: their init registers the family and its gob prototypes,
	// which Load needs before it can decode saved ensembles of that family.
	// Out-of-tree modules plug their own families into a custom daemon the
	// same way.
	_ "trusthmd/pkg/model/gbm"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		loadPath   = flag.String("load", "", "serve a single saved detector under the name \"default\"")
		defName    = flag.String("default", "", "shard serving requests that omit \"model\" and \"device\"")
		maxBatch   = flag.Int("max-batch", 32, "coalescer flush size")
		maxWait    = flag.Duration("max-wait", 2*time.Millisecond, "coalescer max latency before a partial batch flushes")
		queue      = flag.Int("queue", 1024, "per-replica pending-request buffer; beyond it requests are shed with 503")
		replicas   = flag.Int("replicas", 1, "independent instances per shard name (own coalescer, queue and cache; device routing keeps a home replica, overflow spills to the least-loaded sibling)")
		pinCores   = flag.Bool("pin-cores", false, "pin each replica's flusher thread to its own CPU core, round-robin across the fleet (Linux sched_setaffinity; no-op elsewhere)")
		maxInfl    = flag.Int("max-inflight", 0, "per-replica cap on concurrent work; beyond it requests are shed with 503 + Retry-After (0 = unbounded)")
		shedDepth  = flag.Int("shed-depth", 0, "shed new requests once a replica's queue holds this many waiting (0 = only when the queue is full)")
		spillDepth = flag.Int("spill-depth", 0, "home-replica load at which device traffic spills to a sibling (0 = max-batch, negative disables)")
		flushDepth = flag.Int("flush-depth", 0, "queue backlog at which the coalescer flushes early instead of waiting out max-wait (0 = max-batch, negative disables)")
		maxBody    = flag.Int64("max-body", 8<<20, "request body size cap in bytes (JSON assessment endpoints)")
		maxAdmin   = flag.Int64("max-admin-body", 64<<20, "POST /v1/models body cap in bytes (inline model uploads)")
		maxBatchN  = flag.Int("max-batch-samples", 4096, "largest accepted client-side batch")
		maxLine    = flag.Int("max-stream-line", 256<<10, "largest accepted NDJSON line on /v1/assess/stream, in bytes")
		maxWindow  = flag.Int("max-stream-window", 1<<16, "largest per-session window a stream header may request")
		streamIdle = flag.Duration("stream-idle", 5*time.Minute, "cut an NDJSON stream whose client sends nothing for this long (negative disables)")
		cacheSize  = flag.Int("cache-size", 0, "per-shard cross-request result cache entries (0 = default 4096, negative disables)")
		workers    = flag.Int("workers", 0, "override assessment parallelism on every shard (0 keeps each model's saved setting)")
		threshold  = flag.Float64("threshold", -1, "override the rejection threshold on every shard (<0 keeps each model's saved threshold)")
		adminToken = flag.String("admin-token", "", "bearer token guarding POST /v1/models and DELETE /v1/models/{name} (empty leaves them open)")
		watch      = flag.Duration("watch", 0, "poll interval for hot-reloading command-line shards when their gob mtime changes (0 disables)")
		timeout    = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain budget on SIGINT/SIGTERM")

		verdictDir  = flag.String("verdict-dir", "", "persist every served verdict to this directory (append-only segment store; enables GET /v1/verdicts)")
		verdictSeg  = flag.Int64("verdict-segment-bytes", 4<<20, "verdict-store segment size before rotation, in bytes")
		verdictKeep = flag.Int("verdict-retain", 16, "sealed verdict segments retained; beyond it the oldest segment is dropped")
		verdictSync = flag.Int("verdict-sync-every", 0, "verdict-store durability: 0 group-commits appends off the serving path (a crash loses at most one uncommitted group), N>0 writes each record synchronously and fsyncs every N records")

		ingestDir     = flag.String("ingest-dir", "", "poll this directory for CSV telemetry drops and assess them through the fleet (enables POST /v1/ingest)")
		ingestPoll    = flag.Duration("ingest-poll", 2*time.Second, "ingest drop-directory poll interval")
		ingestQueue   = flag.Int("ingest-queue", 1024, "ingest pump queue depth; a full queue sheds HTTP pushes with 503")
		ingestWorkers = flag.Int("ingest-workers", 2, "goroutines draining the ingest queue into the fleet")

		nodeID      = flag.String("node-id", "", "cluster identity of this node (default: hostname; IDs order coordinator promotion)")
		advertise   = flag.String("advertise", "", "base URL other cluster nodes reach this node at, e.g. http://10.0.0.5:8080 (required with -coordinator or -join)")
		coordinator = flag.Bool("coordinator", false, "start this node as the cluster coordinator")
		joinAddr    = flag.String("join", "", "advertise URL of a running cluster member to join (exactly one of -coordinator/-join)")
		heartbeat   = flag.Duration("heartbeat", time.Second, "cluster heartbeat and membership-sweep interval")

		autoRetrain     = flag.Bool("auto-retrain", false, "tail the verdict store for per-device drift and hot-swap a background-retrained model (needs -verdict-dir and -retrain-data)")
		retrainData     = flag.String("retrain-data", "", "base training-set CSV (datagen/WriteCSV format) folded into every -auto-retrain round")
		retrainModel    = flag.String("retrain-model", "", "shard supervised by -auto-retrain (default: the -default shard, or the only one)")
		retrainEvery    = flag.Duration("retrain-interval", time.Second, "verdict-store tail cadence for -auto-retrain")
		retrainWindow   = flag.Int("retrain-window", 50, "per-device drift window (recent verdict entropies)")
		retrainSustain  = flag.Int("retrain-sustain", 3, "consecutive alarmed observations before the controller acts")
		retrainQuorum   = flag.Int("retrain-quorum", 25, "rejected-verdict forensics required before a retrain round fires")
		retrainCooldown = flag.Duration("retrain-cooldown", time.Minute, "minimum gap between drift-driven hot swaps")
	)
	var specs modelFlags
	flag.Var(&specs, "model", "name=path of a saved detector shard (repeatable)")
	flag.Parse()

	loop := loopConfig{
		verdictDir:      *verdictDir,
		verdictSegBytes: *verdictSeg,
		verdictRetain:   *verdictKeep,
		verdictSync:     *verdictSync,
		ingestDir:       *ingestDir,
		ingestPoll:      *ingestPoll,
		ingestQueue:     *ingestQueue,
		ingestWorkers:   *ingestWorkers,
		autoRetrain:     *autoRetrain,
		retrainData:     *retrainData,
		retrainModel:    *retrainModel,
		retrainInterval: *retrainEvery,
		retrainWindow:   *retrainWindow,
		retrainSustain:  *retrainSustain,
		retrainQuorum:   *retrainQuorum,
		retrainCooldown: *retrainCooldown,
	}

	cl := clusterFlags{
		nodeID:      *nodeID,
		advertise:   *advertise,
		coordinator: *coordinator,
		join:        *joinAddr,
		heartbeat:   *heartbeat,
	}

	if err := run(*addr, *loadPath, specs, cl, serve.Config{
		MaxBatch:           *maxBatch,
		MaxWait:            *maxWait,
		QueueSize:          *queue,
		Replicas:           *replicas,
		PinCores:           *pinCores,
		MaxInflight:        *maxInfl,
		ShedDepth:          *shedDepth,
		SpillDepth:         *spillDepth,
		FlushDepth:         *flushDepth,
		MaxBodyBytes:       *maxBody,
		MaxAdminBodyBytes:  *maxAdmin,
		MaxBatchSamples:    *maxBatchN,
		MaxStreamLineBytes: *maxLine,
		MaxStreamWindow:    *maxWindow,
		StreamIdleTimeout:  *streamIdle,
		CacheSize:          *cacheSize,
		DefaultModel:       *defName,
		AdminToken:         *adminToken,
	}, *workers, *threshold, *watch, *timeout, loop); err != nil {
		fmt.Fprintln(os.Stderr, "trusthmdd:", err)
		os.Exit(1)
	}
}

// modelFlags collects repeated -model name=path specs. Duplicate shard
// names are rejected at flag-parse time: the last-one-wins behaviour of a
// plain map would silently serve the wrong model.
type modelFlags []modelSpec

type modelSpec struct{ name, path string }

func (m *modelFlags) String() string {
	parts := make([]string, len(*m))
	for i, s := range *m {
		parts[i] = s.name + "=" + s.path
	}
	return strings.Join(parts, ",")
}

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	name, path = strings.TrimSpace(name), strings.TrimSpace(path)
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	for _, s := range *m {
		if s.name == name {
			return fmt.Errorf("duplicate model name %q", name)
		}
	}
	*m = append(*m, modelSpec{name: name, path: path})
	return nil
}

// overrides builds the detector-preparation hook applying the fleet-wide
// serving-time flags. It runs on boot-time loads, admin-endpoint loads and
// watch reloads alike, so a hot swap keeps the daemon's configuration.
func overrides(workers int, threshold float64) func(*detector.Detector) (*detector.Detector, error) {
	return func(det *detector.Detector) (*detector.Detector, error) {
		var opts []detector.Option
		if workers > 0 {
			opts = append(opts, detector.WithWorkers(workers))
		}
		if threshold >= 0 {
			opts = append(opts, detector.WithThreshold(threshold))
		}
		if len(opts) == 0 {
			return det, nil
		}
		return det.WithOptions(opts...)
	}
}

// allSpecs folds the -load shorthand into the spec list. A node joining a
// cluster may boot with no models at all: it installs shards on demand
// from the cluster catalog.
func allSpecs(loadPath string, specs modelFlags, allowEmpty bool) (modelFlags, error) {
	if loadPath != "" {
		for _, s := range specs {
			if s.name == "default" {
				return nil, fmt.Errorf("duplicate model name %q (-load serves under that name)", s.name)
			}
		}
		specs = append(modelFlags{{name: "default", path: loadPath}}, specs...)
	}
	if len(specs) == 0 && !allowEmpty {
		return nil, errors.New("no models: train one with `trusthmd -save det.gob`, then pass -load det.gob or -model name=det.gob")
	}
	return specs, nil
}

// clusterFlags bundles the multi-node flags.
type clusterFlags struct {
	nodeID      string
	advertise   string
	coordinator bool
	join        string
	heartbeat   time.Duration
}

func (c clusterFlags) enabled() bool { return c.coordinator || c.join != "" }

// agentConfig validates the cluster flags into a cluster.Config. The
// node-to-node surface inherits the admin token, so a cluster is never
// more open than its admin endpoints.
func (c clusterFlags) agentConfig(adminToken string) (cluster.Config, error) {
	if c.advertise == "" {
		return cluster.Config{}, errors.New("clustering needs -advertise (the URL other nodes reach this one at)")
	}
	id := c.nodeID
	if id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			return cluster.Config{}, errors.New("cannot derive -node-id from hostname; pass it explicitly")
		}
		id = host
	}
	return cluster.Config{
		NodeID:      id,
		Advertise:   strings.TrimRight(c.advertise, "/"),
		Coordinator: c.coordinator,
		Join:        c.join,
		Heartbeat:   c.heartbeat,
		Token:       adminToken,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}, nil
}

// loadModels opens every resolved shard spec through the prepare hook —
// the same hook admin loads and watch reloads run, so boot-time loading
// cannot diverge from the hot paths.
func loadModels(specs modelFlags, prepare func(*detector.Detector) (*detector.Detector, error)) (map[string]*detector.Detector, error) {
	out := make(map[string]*detector.Detector, len(specs))
	for _, s := range specs {
		det, err := loadShard(s, prepare)
		if err != nil {
			return nil, err
		}
		// Duplicate names cannot reach here: modelFlags.Set rejects them
		// at flag-parse time and allSpecs rejects -load vs -model
		// collisions on "default".
		out[s.name] = det
		info := det.Info()
		fmt.Printf("loaded shard %-12s %s (%d members, %d features, threshold %.2f)\n",
			s.name, info.Model, info.Members, info.InputDim, info.Threshold)
	}
	return out, nil
}

// loadShard opens, decodes and prepares one gob-saved detector.
func loadShard(s modelSpec, prepare func(*detector.Detector) (*detector.Detector, error)) (*detector.Detector, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	det, err := detector.Load(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("model %s: %w", s.name, err)
	}
	if det, err = prepare(det); err != nil {
		return nil, fmt.Errorf("model %s: %w", s.name, err)
	}
	return det, nil
}

// fileStamp identifies one observed gob file state. Size participates so
// a rewrite landing within the filesystem's mtime granularity (FAT 2s,
// coarse NFS/overlay timestamps) is still detected when it changes the
// file length.
type fileStamp struct {
	mtime time.Time
	size  int64
}

// changedFrom reports whether the file differs from the recorded state:
// any mtime difference counts (a restored backup may be older), as does a
// size change within the same timestamp tick.
func (a fileStamp) changedFrom(b fileStamp) bool {
	return !a.mtime.Equal(b.mtime) || a.size != b.size
}

// statStamps snapshots the shards' gob file stamps. The daemon takes it
// BEFORE loading the models, so a file rewritten between the boot-time
// load and the watcher's first tick still registers as changed.
func statStamps(specs modelFlags) map[string]fileStamp {
	stamps := make(map[string]fileStamp, len(specs))
	for _, s := range specs {
		if fi, err := os.Stat(s.path); err == nil {
			stamps[s.name] = fileStamp{mtime: fi.ModTime(), size: fi.Size()}
		}
	}
	return stamps
}

// watchShards polls every command-line shard's gob file and hot-swaps the
// fleet when the file changes — `trusthmd -save` over the file is all it
// takes to roll a new model out. Saves are atomic (detector.SaveFile and
// `trusthmd -save` write temp-file + rename), so a file that fails to
// decode is genuinely bad content, not a torn read: the watcher logs it
// and advances the stamp — the serving shard keeps answering, and the
// next rewrite (a newer stamp) is picked up normally. Installs go through
// LoadOrSwapCause, so a shard unloaded over the admin API is reinstated
// by the next save — the file on disk is the source of truth for
// command-line shards.
func watchShards(ctx context.Context, fleet *serve.Fleet, specs modelFlags, interval time.Duration,
	prepare func(*detector.Detector) (*detector.Detector, error), stamps map[string]fileStamp) {
	if stamps == nil {
		stamps = statStamps(specs)
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for _, s := range specs {
			fi, err := os.Stat(s.path)
			if err != nil {
				continue // mid-rename or removed: keep the serving shard
			}
			// The stat happens before the load: if the file changes in
			// between, the next tick sees a newer stamp and reconverges.
			stamp := fileStamp{mtime: fi.ModTime(), size: fi.Size()}
			if !stamp.changedFrom(stamps[s.name]) {
				continue
			}
			stamps[s.name] = stamp
			det, err := loadShard(s, prepare)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trusthmdd: watch: reload %s: %v (keeping serving shard)\n", s.name, err)
				continue
			}
			v, _, err := fleet.LoadOrSwapCause(s.name, det, "watch")
			if err != nil {
				fmt.Fprintf(os.Stderr, "trusthmdd: watch: swap %s: %v\n", s.name, err)
				continue
			}
			fmt.Printf("watch: hot-swapped shard %s -> v%d (%s)\n", s.name, v, s.path)
		}
	}
}

// loopConfig bundles the closed-loop flags: verdict persistence,
// telemetry ingestion, and drift-driven auto-retrain.
type loopConfig struct {
	verdictDir      string
	verdictSegBytes int64
	verdictRetain   int
	verdictSync     int

	ingestDir     string
	ingestPoll    time.Duration
	ingestQueue   int
	ingestWorkers int

	autoRetrain     bool
	retrainData     string
	retrainModel    string
	retrainInterval time.Duration
	retrainWindow   int
	retrainSustain  int
	retrainQuorum   int
	retrainCooldown time.Duration
}

// supervisedShard resolves which shard -auto-retrain watches: the
// explicit -retrain-model, else the -default shard, else the only one.
func supervisedShard(explicit, defName string, resolved modelFlags) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if defName != "" {
		return defName, nil
	}
	if len(resolved) == 1 {
		return resolved[0].name, nil
	}
	return "", errors.New("-auto-retrain needs -retrain-model (or -default) with more than one shard")
}

// loadBaseDataset reads the -retrain-data CSV (datagen / WriteCSV format).
func loadBaseDataset(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := dataset.ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("retrain data %s: %w", path, err)
	}
	return d, nil
}

func run(addr, loadPath string, specs modelFlags, cl clusterFlags, cfg serve.Config, workers int, threshold float64,
	watch, shutdownTimeout time.Duration, loop loopConfig) error {
	if loop.autoRetrain && (loop.verdictDir == "" || loop.retrainData == "") {
		return errors.New("-auto-retrain needs -verdict-dir (the drift signal) and -retrain-data (the retraining base)")
	}
	prepare := overrides(workers, threshold)
	cfg.PrepareDetector = prepare
	// One spec resolution and one prepare hook feed boot-time loading,
	// the watcher and (via cfg) the admin endpoint alike. A cluster joiner
	// may boot empty — the cluster catalog supplies its shards.
	resolved, err := allSpecs(loadPath, specs, cl.join != "")
	if err != nil {
		return err
	}

	// The verdict store outlives the fleet (the fleet taps verdicts into
	// it until its last coalescer drains), so it opens first, closes last.
	var store *verdictstore.Store
	if loop.verdictDir != "" {
		store, err = verdictstore.Open(loop.verdictDir, verdictstore.Config{
			SegmentBytes: loop.verdictSegBytes,
			MaxSegments:  loop.verdictRetain,
			SyncEvery:    loop.verdictSync,
		})
		if err != nil {
			return err
		}
		defer store.Close()
		st := store.Stats()
		fmt.Printf("verdict store %s: %d records recovered (%d segments, next seq %d)\n",
			loop.verdictDir, st.Records, st.Segments, st.NextSeq)
		cfg.Verdicts = store
	}

	// Baseline stamps are taken before the boot-time load so a save
	// racing the daemon's startup is still caught by the first tick.
	var baseline map[string]fileStamp
	if watch > 0 {
		baseline = statStamps(resolved)
	}
	models, err := loadModels(resolved, prepare)
	if err != nil {
		return err
	}
	fleet, err := serve.NewFleet(models, cfg)
	if err != nil {
		return err
	}
	srv := serve.NewServer(fleet)

	// Clustered: an Agent shares the listener with the serving mux (the
	// node-to-node API lives under /cluster/v1/) and hooks the server so
	// any node serves any request, swaps go fleet-wide, and streams
	// survive node death.
	var agent *cluster.Agent
	handler := http.Handler(srv)
	if cl.enabled() {
		acfg, err := cl.agentConfig(cfg.AdminToken)
		if err != nil {
			return err
		}
		if agent, err = cluster.New(acfg, fleet); err != nil {
			return err
		}
		srv.AttachCluster(agent)
		mux := http.NewServeMux()
		mux.Handle("/cluster/", agent.Handler())
		mux.Handle("/", srv)
		handler = mux
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if watch > 0 {
		go watchShards(ctx, fleet, resolved, watch, prepare, baseline)
	}

	// The ingest pump fans drop-directory (and HTTP push) telemetry into
	// the fleet's assess path, so every ingested window becomes a stored,
	// drift-monitored verdict.
	var loopWG sync.WaitGroup
	if loop.ingestDir != "" {
		pump := ingest.NewPump(func(ctx context.Context, ev ingest.Event) error {
			_, err := fleet.Assess(ctx, serve.AssessSpec{
				Model:    ev.Model,
				Device:   ev.Device,
				Features: ev.Features,
				Source:   "ingest",
			})
			return err
		}, ingest.Config{
			Queue:   loop.ingestQueue,
			Workers: loop.ingestWorkers,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "trusthmdd: "+format+"\n", args...)
			},
		})
		src, err := ingest.NewDirSource(loop.ingestDir, ingest.DirConfig{Poll: loop.ingestPoll})
		if err != nil {
			return err
		}
		pump.Add(src)
		srv.AttachIngest(pump)
		loopWG.Add(1)
		go func() {
			defer loopWG.Done()
			if err := pump.Run(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "trusthmdd: ingest: %v\n", err)
			}
		}()
		fmt.Printf("ingesting telemetry drops from %s (poll %v, queue %d, %d workers)\n",
			loop.ingestDir, loop.ingestPoll, loop.ingestQueue, loop.ingestWorkers)
	}

	if loop.autoRetrain {
		base, err := loadBaseDataset(loop.retrainData)
		if err != nil {
			return err
		}
		model, err := supervisedShard(loop.retrainModel, cfg.DefaultModel, resolved)
		if err != nil {
			return err
		}
		ctrl, err := serve.NewRetrainController(serve.RetrainConfig{
			Store:    store,
			Fleet:    fleet,
			Model:    model,
			Base:     base,
			Interval: loop.retrainInterval,
			Drift:    detector.DriftConfig{Window: loop.retrainWindow},
			Sustain:  loop.retrainSustain,
			Quorum:   loop.retrainQuorum,
			Cooldown: loop.retrainCooldown,
			Prepare:  prepare,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		srv.AttachRetrain(ctrl)
		loopWG.Add(1)
		go func() {
			defer loopWG.Done()
			if err := ctrl.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "trusthmdd: retrain: %v\n", err)
			}
		}()
		fmt.Printf("auto-retrain watching shard %s (window %d, sustain %d, quorum %d, cooldown %v)\n",
			model, loop.retrainWindow, loop.retrainSustain, loop.retrainQuorum, loop.retrainCooldown)
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("trusthmdd listening on %s (%d shard(s) x %d replica(s), max-batch %d, max-wait %v)\n",
			addr, fleet.Len(), cfg.Replicas, cfg.MaxBatch, cfg.MaxWait)
		errc <- httpSrv.ListenAndServe()
	}()

	// The agent starts once the listener goroutine is up: a coordinator
	// publishes its first table, a joiner dials -join (retrying briefly),
	// and either way the background loops take over.
	if agent != nil {
		if err := agent.Start(); err != nil {
			httpSrv.Close()
			stop()
			loopWG.Wait()
			srv.Close()
			return err
		}
		fmt.Printf("cluster node %s (%s) up as %s\n", agent.NodeID(), cl.advertise, agent.Role())
	}

	// stopLoop winds down the cluster agent (heartbeats stop; peers will
	// declare this node dead and rebalance), then the pump (which finishes
	// every accepted event) and the retrain controller (which waits out an
	// in-flight round, possibly swapping the fleet) — the latter two need
	// the fleet alive, so it all runs BEFORE srv.Close.
	stopLoop := func() {
		if agent != nil {
			agent.Close()
		}
		stop()
		loopWG.Wait()
	}

	select {
	case err := <-errc:
		stopLoop()
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: wind down open NDJSON streams (each ends with its
	// summary line — without this, one connected stream client would pin
	// Shutdown for the whole budget), stop accepting connections and let
	// in-flight requests finish, then drain the closed loop and finally
	// the coalescer queues. The verdict store closes last (deferred).
	fmt.Println("\nshutting down...")
	srv.BeginDrain()
	shCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shCtx)
	stopLoop()
	srv.Close()
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	for _, st := range srv.Stats() {
		fmt.Printf("shard %-12s v%d: %d requests in %d batches (mean %.1f), %d batch requests, %d stream sessions, %d shed, rejection rate %.1f%%\n",
			st.Model, st.Version, st.Requests, st.Batches, st.MeanBatchSize, st.BatchRequests, st.StreamSessions, st.Shed, 100*st.RejectionRate)
	}
	if store != nil {
		st := store.Stats()
		fmt.Printf("verdict store: %d records live (%d appended this run, %d segments, %d bytes)\n",
			st.Records, st.Appended, st.Segments, st.Bytes)
	}
	return nil
}
