// Command trusthmdd is the trusted-HMD serving daemon: it loads one or
// more gob-saved detectors (train them with `trusthmd -save` or the
// pkg/detector Save API) and serves assessment requests over HTTP with
// per-shard request coalescing — concurrent single-sample requests are
// aggregated into AssessBatch calls, so heavy independent traffic rides
// the batched projection + pooled member inference path while every
// response stays element-wise identical to a direct Assess.
//
// Endpoints: POST /v1/assess, POST /v1/assess/batch, GET /v1/models,
// GET /healthz, GET /stats.
//
// Usage:
//
//	trusthmd -save det.gob                          # train once
//	trusthmdd -load det.gob                         # serve it as "default"
//	trusthmdd -model dvfs=det.gob -model alt=b.gob  # named shard fleet
//	         [-addr :8080] [-default dvfs]
//	         [-max-batch 32] [-max-wait 2ms] [-queue 1024]
//	         [-cache-size 4096] [-workers 0] [-threshold -1]
//
//	curl -s localhost:8080/v1/assess -d '{"features":[...]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"trusthmd/pkg/detector"
	"trusthmd/pkg/serve"

	// Classifier families beyond the pkg/detector built-ins are enabled by
	// blank import: their init registers the family and its gob prototypes,
	// which Load needs before it can decode saved ensembles of that family.
	// Out-of-tree modules plug their own families into a custom daemon the
	// same way.
	_ "trusthmd/pkg/model/gbm"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		loadPath  = flag.String("load", "", "serve a single saved detector under the name \"default\"")
		defName   = flag.String("default", "", "shard serving requests that omit \"model\"")
		maxBatch  = flag.Int("max-batch", 32, "coalescer flush size")
		maxWait   = flag.Duration("max-wait", 2*time.Millisecond, "coalescer max latency before a partial batch flushes")
		queue     = flag.Int("queue", 1024, "per-shard pending-request buffer; beyond it requests are shed with 503")
		maxBody   = flag.Int64("max-body", 8<<20, "request body size cap in bytes")
		maxBatchN = flag.Int("max-batch-samples", 4096, "largest accepted client-side batch")
		cacheSize = flag.Int("cache-size", 0, "per-shard cross-request result cache entries (0 = default 4096, negative disables)")
		workers   = flag.Int("workers", 0, "override assessment parallelism on every shard (0 keeps each model's saved setting)")
		threshold = flag.Float64("threshold", -1, "override the rejection threshold on every shard (<0 keeps each model's saved threshold)")
		timeout   = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain budget on SIGINT/SIGTERM")
	)
	var specs modelFlags
	flag.Var(&specs, "model", "name=path of a saved detector shard (repeatable)")
	flag.Parse()

	if err := run(*addr, *loadPath, specs, serve.Config{
		MaxBatch:        *maxBatch,
		MaxWait:         *maxWait,
		QueueSize:       *queue,
		MaxBodyBytes:    *maxBody,
		MaxBatchSamples: *maxBatchN,
		CacheSize:       *cacheSize,
		DefaultModel:    *defName,
	}, *workers, *threshold, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "trusthmdd:", err)
		os.Exit(1)
	}
}

// modelFlags collects repeated -model name=path specs.
type modelFlags []modelSpec

type modelSpec struct{ name, path string }

func (m *modelFlags) String() string {
	parts := make([]string, len(*m))
	for i, s := range *m {
		parts[i] = s.name + "=" + s.path
	}
	return strings.Join(parts, ",")
}

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	for _, s := range *m {
		if s.name == name {
			return fmt.Errorf("duplicate model name %q", name)
		}
	}
	*m = append(*m, modelSpec{name: name, path: path})
	return nil
}

// loadModels opens every shard, applying the optional fleet-wide
// serving-time overrides.
func loadModels(loadPath string, specs modelFlags, workers int, threshold float64) (map[string]*detector.Detector, error) {
	if loadPath != "" {
		specs = append(modelFlags{{name: "default", path: loadPath}}, specs...)
	}
	if len(specs) == 0 {
		return nil, errors.New("no models: train one with `trusthmd -save det.gob`, then pass -load det.gob or -model name=det.gob")
	}
	out := make(map[string]*detector.Detector, len(specs))
	for _, s := range specs {
		f, err := os.Open(s.path)
		if err != nil {
			return nil, err
		}
		det, err := detector.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", s.name, err)
		}
		var opts []detector.Option
		if workers > 0 {
			opts = append(opts, detector.WithWorkers(workers))
		}
		if threshold >= 0 {
			opts = append(opts, detector.WithThreshold(threshold))
		}
		if len(opts) > 0 {
			if det, err = det.WithOptions(opts...); err != nil {
				return nil, fmt.Errorf("model %s: %w", s.name, err)
			}
		}
		if _, dup := out[s.name]; dup {
			return nil, fmt.Errorf("duplicate model name %q", s.name)
		}
		out[s.name] = det
		info := det.Info()
		fmt.Printf("loaded shard %-12s %s (%d members, %d features, threshold %.2f)\n",
			s.name, info.Model, info.Members, info.InputDim, info.Threshold)
	}
	return out, nil
}

func run(addr, loadPath string, specs modelFlags, cfg serve.Config, workers int, threshold float64, shutdownTimeout time.Duration) error {
	models, err := loadModels(loadPath, specs, workers, threshold)
	if err != nil {
		return err
	}
	srv, err := serve.New(models, cfg)
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("trusthmdd listening on %s (%d shard(s), max-batch %d, max-wait %v)\n",
			addr, len(models), cfg.MaxBatch, cfg.MaxWait)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections and let in-flight
	// requests finish, then drain the coalescer queues.
	fmt.Println("\nshutting down...")
	shCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shCtx)
	srv.Close()
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	for _, st := range srv.Stats() {
		fmt.Printf("shard %-12s %d requests in %d batches (mean %.1f), %d batch requests, %d shed, rejection rate %.1f%%\n",
			st.Model, st.Requests, st.Batches, st.MeanBatchSize, st.BatchRequests, st.Shed, 100*st.RejectionRate)
	}
	return nil
}
