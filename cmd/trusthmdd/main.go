// Command trusthmdd is the trusted-HMD serving daemon: it loads one or
// more gob-saved detectors (train them with `trusthmd -save` or the
// pkg/detector Save API) into a hot-swappable serve.Fleet and serves
// assessment traffic over HTTP — coalesced single-sample requests, client
// batches, and NDJSON streams of raw DVFS states — while shards can be
// loaded, replaced and unloaded without restarting.
//
// Endpoints: POST /v1/assess, POST /v1/assess/batch, POST /v1/assess/stream,
// GET|POST /v1/models, GET|DELETE /v1/models/{name}, GET /healthz, GET /stats.
//
// Usage:
//
//	trusthmd -save det.gob                          # train once
//	trusthmdd -load det.gob                         # serve it as "default"
//	trusthmdd -model dvfs=det.gob -model alt=b.gob  # named shard fleet
//	         [-addr :8080] [-default dvfs]
//	         [-max-batch 32] [-max-wait 2ms] [-queue 1024]
//	         [-cache-size 4096] [-workers 0] [-threshold -1]
//	         [-admin-token secret] [-watch 5s]
//
//	curl -s localhost:8080/v1/assess -d '{"features":[...]}'
//
// With -admin-token set, POST /v1/models and DELETE /v1/models/{name}
// hot-manage the fleet (the token guards them; without the flag they are
// open). With -watch set, every shard given on the command line is
// reloaded automatically when its gob file's mtime changes — and both
// paths reapply the daemon's -workers/-threshold overrides to the
// incoming model, so a hot swap never silently drops the fleet-wide
// serving configuration.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"trusthmd/pkg/detector"
	"trusthmd/pkg/serve"

	// Classifier families beyond the pkg/detector built-ins are enabled by
	// blank import: their init registers the family and its gob prototypes,
	// which Load needs before it can decode saved ensembles of that family.
	// Out-of-tree modules plug their own families into a custom daemon the
	// same way.
	_ "trusthmd/pkg/model/gbm"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		loadPath   = flag.String("load", "", "serve a single saved detector under the name \"default\"")
		defName    = flag.String("default", "", "shard serving requests that omit \"model\" and \"device\"")
		maxBatch   = flag.Int("max-batch", 32, "coalescer flush size")
		maxWait    = flag.Duration("max-wait", 2*time.Millisecond, "coalescer max latency before a partial batch flushes")
		queue      = flag.Int("queue", 1024, "per-shard pending-request buffer; beyond it requests are shed with 503")
		maxBody    = flag.Int64("max-body", 8<<20, "request body size cap in bytes (JSON assessment endpoints)")
		maxAdmin   = flag.Int64("max-admin-body", 64<<20, "POST /v1/models body cap in bytes (inline model uploads)")
		maxBatchN  = flag.Int("max-batch-samples", 4096, "largest accepted client-side batch")
		maxLine    = flag.Int("max-stream-line", 256<<10, "largest accepted NDJSON line on /v1/assess/stream, in bytes")
		maxWindow  = flag.Int("max-stream-window", 1<<16, "largest per-session window a stream header may request")
		streamIdle = flag.Duration("stream-idle", 5*time.Minute, "cut an NDJSON stream whose client sends nothing for this long (negative disables)")
		cacheSize  = flag.Int("cache-size", 0, "per-shard cross-request result cache entries (0 = default 4096, negative disables)")
		workers    = flag.Int("workers", 0, "override assessment parallelism on every shard (0 keeps each model's saved setting)")
		threshold  = flag.Float64("threshold", -1, "override the rejection threshold on every shard (<0 keeps each model's saved threshold)")
		adminToken = flag.String("admin-token", "", "bearer token guarding POST /v1/models and DELETE /v1/models/{name} (empty leaves them open)")
		watch      = flag.Duration("watch", 0, "poll interval for hot-reloading command-line shards when their gob mtime changes (0 disables)")
		timeout    = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain budget on SIGINT/SIGTERM")
	)
	var specs modelFlags
	flag.Var(&specs, "model", "name=path of a saved detector shard (repeatable)")
	flag.Parse()

	if err := run(*addr, *loadPath, specs, serve.Config{
		MaxBatch:           *maxBatch,
		MaxWait:            *maxWait,
		QueueSize:          *queue,
		MaxBodyBytes:       *maxBody,
		MaxAdminBodyBytes:  *maxAdmin,
		MaxBatchSamples:    *maxBatchN,
		MaxStreamLineBytes: *maxLine,
		MaxStreamWindow:    *maxWindow,
		StreamIdleTimeout:  *streamIdle,
		CacheSize:          *cacheSize,
		DefaultModel:       *defName,
		AdminToken:         *adminToken,
	}, *workers, *threshold, *watch, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "trusthmdd:", err)
		os.Exit(1)
	}
}

// modelFlags collects repeated -model name=path specs. Duplicate shard
// names are rejected at flag-parse time: the last-one-wins behaviour of a
// plain map would silently serve the wrong model.
type modelFlags []modelSpec

type modelSpec struct{ name, path string }

func (m *modelFlags) String() string {
	parts := make([]string, len(*m))
	for i, s := range *m {
		parts[i] = s.name + "=" + s.path
	}
	return strings.Join(parts, ",")
}

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	name, path = strings.TrimSpace(name), strings.TrimSpace(path)
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	for _, s := range *m {
		if s.name == name {
			return fmt.Errorf("duplicate model name %q", name)
		}
	}
	*m = append(*m, modelSpec{name: name, path: path})
	return nil
}

// overrides builds the detector-preparation hook applying the fleet-wide
// serving-time flags. It runs on boot-time loads, admin-endpoint loads and
// watch reloads alike, so a hot swap keeps the daemon's configuration.
func overrides(workers int, threshold float64) func(*detector.Detector) (*detector.Detector, error) {
	return func(det *detector.Detector) (*detector.Detector, error) {
		var opts []detector.Option
		if workers > 0 {
			opts = append(opts, detector.WithWorkers(workers))
		}
		if threshold >= 0 {
			opts = append(opts, detector.WithThreshold(threshold))
		}
		if len(opts) == 0 {
			return det, nil
		}
		return det.WithOptions(opts...)
	}
}

// allSpecs folds the -load shorthand into the spec list.
func allSpecs(loadPath string, specs modelFlags) (modelFlags, error) {
	if loadPath != "" {
		for _, s := range specs {
			if s.name == "default" {
				return nil, fmt.Errorf("duplicate model name %q (-load serves under that name)", s.name)
			}
		}
		specs = append(modelFlags{{name: "default", path: loadPath}}, specs...)
	}
	if len(specs) == 0 {
		return nil, errors.New("no models: train one with `trusthmd -save det.gob`, then pass -load det.gob or -model name=det.gob")
	}
	return specs, nil
}

// loadModels opens every resolved shard spec through the prepare hook —
// the same hook admin loads and watch reloads run, so boot-time loading
// cannot diverge from the hot paths.
func loadModels(specs modelFlags, prepare func(*detector.Detector) (*detector.Detector, error)) (map[string]*detector.Detector, error) {
	out := make(map[string]*detector.Detector, len(specs))
	for _, s := range specs {
		det, err := loadShard(s, prepare)
		if err != nil {
			return nil, err
		}
		// Duplicate names cannot reach here: modelFlags.Set rejects them
		// at flag-parse time and allSpecs rejects -load vs -model
		// collisions on "default".
		out[s.name] = det
		info := det.Info()
		fmt.Printf("loaded shard %-12s %s (%d members, %d features, threshold %.2f)\n",
			s.name, info.Model, info.Members, info.InputDim, info.Threshold)
	}
	return out, nil
}

// loadShard opens, decodes and prepares one gob-saved detector.
func loadShard(s modelSpec, prepare func(*detector.Detector) (*detector.Detector, error)) (*detector.Detector, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	det, err := detector.Load(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("model %s: %w", s.name, err)
	}
	if det, err = prepare(det); err != nil {
		return nil, fmt.Errorf("model %s: %w", s.name, err)
	}
	return det, nil
}

// fileStamp identifies one observed gob file state. Size participates so
// a rewrite landing within the filesystem's mtime granularity (FAT 2s,
// coarse NFS/overlay timestamps) is still detected when it changes the
// file length.
type fileStamp struct {
	mtime time.Time
	size  int64
}

// changedFrom reports whether the file differs from the recorded state:
// any mtime difference counts (a restored backup may be older), as does a
// size change within the same timestamp tick.
func (a fileStamp) changedFrom(b fileStamp) bool {
	return !a.mtime.Equal(b.mtime) || a.size != b.size
}

// statStamps snapshots the shards' gob file stamps. The daemon takes it
// BEFORE loading the models, so a file rewritten between the boot-time
// load and the watcher's first tick still registers as changed.
func statStamps(specs modelFlags) map[string]fileStamp {
	stamps := make(map[string]fileStamp, len(specs))
	for _, s := range specs {
		if fi, err := os.Stat(s.path); err == nil {
			stamps[s.name] = fileStamp{mtime: fi.ModTime(), size: fi.Size()}
		}
	}
	return stamps
}

// watchShards polls every command-line shard's gob file and hot-swaps the
// fleet when the file changes — `trusthmd -save` over the file is all it
// takes to roll a new model out. The recorded stamp only advances after a
// successful install, so a failed load (e.g. a torn read mid-rewrite) is
// retried every tick until the file decodes, even if its stamp never
// moves again; the serving shard keeps answering meanwhile. Installs go
// through LoadOrSwap, so a shard unloaded over the admin API is
// reinstated by the next save — the file on disk is the source of truth
// for command-line shards.
func watchShards(ctx context.Context, fleet *serve.Fleet, specs modelFlags, interval time.Duration,
	prepare func(*detector.Detector) (*detector.Detector, error), stamps map[string]fileStamp) {
	if stamps == nil {
		stamps = statStamps(specs)
	}
	lastErr := make(map[string]string, len(specs))
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for _, s := range specs {
			fi, err := os.Stat(s.path)
			if err != nil {
				continue // transient (mid-rewrite): keep the serving shard
			}
			// The stat happens before the load: if the file changes in
			// between, the next tick sees a newer stamp and reconverges.
			stamp := fileStamp{mtime: fi.ModTime(), size: fi.Size()}
			if !stamp.changedFrom(stamps[s.name]) {
				continue
			}
			det, err := loadShard(s, prepare)
			if err != nil {
				// Log once per distinct failure, not once per tick.
				if msg := err.Error(); lastErr[s.name] != msg {
					lastErr[s.name] = msg
					fmt.Fprintf(os.Stderr, "trusthmdd: watch: reload %s: %v (retrying every %v)\n", s.name, err, interval)
				}
				continue
			}
			v, _, err := fleet.LoadOrSwap(s.name, det)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trusthmdd: watch: swap %s: %v\n", s.name, err)
				continue
			}
			stamps[s.name] = stamp
			delete(lastErr, s.name)
			fmt.Printf("watch: hot-swapped shard %s -> v%d (%s)\n", s.name, v, s.path)
		}
	}
}

func run(addr, loadPath string, specs modelFlags, cfg serve.Config, workers int, threshold float64,
	watch, shutdownTimeout time.Duration) error {
	prepare := overrides(workers, threshold)
	cfg.PrepareDetector = prepare
	// One spec resolution and one prepare hook feed boot-time loading,
	// the watcher and (via cfg) the admin endpoint alike.
	resolved, err := allSpecs(loadPath, specs)
	if err != nil {
		return err
	}
	// Baseline stamps are taken before the boot-time load so a save
	// racing the daemon's startup is still caught by the first tick.
	var baseline map[string]fileStamp
	if watch > 0 {
		baseline = statStamps(resolved)
	}
	models, err := loadModels(resolved, prepare)
	if err != nil {
		return err
	}
	fleet, err := serve.NewFleet(models, cfg)
	if err != nil {
		return err
	}
	srv := serve.NewServer(fleet)

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if watch > 0 {
		go watchShards(ctx, fleet, resolved, watch, prepare, baseline)
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("trusthmdd listening on %s (%d shard(s), max-batch %d, max-wait %v)\n",
			addr, fleet.Len(), cfg.MaxBatch, cfg.MaxWait)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: wind down open NDJSON streams (each ends with its
	// summary line — without this, one connected stream client would pin
	// Shutdown for the whole budget), stop accepting connections and let
	// in-flight requests finish, then drain the coalescer queues.
	fmt.Println("\nshutting down...")
	srv.BeginDrain()
	shCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shCtx)
	srv.Close()
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	for _, st := range srv.Stats() {
		fmt.Printf("shard %-12s v%d: %d requests in %d batches (mean %.1f), %d batch requests, %d stream sessions, %d shed, rejection rate %.1f%%\n",
			st.Model, st.Version, st.Requests, st.Batches, st.MeanBatchSize, st.BatchRequests, st.StreamSessions, st.Shed, 100*st.RejectionRate)
	}
	return nil
}
