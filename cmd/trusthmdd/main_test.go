package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trusthmd/internal/gen"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/serve"
)

func TestModelFlagsParsing(t *testing.T) {
	var m modelFlags
	if err := m.Set("dvfs=det.gob"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("alt=other.gob"); err != nil {
		t.Fatal(err)
	}
	if m.String() != "dvfs=det.gob,alt=other.gob" {
		t.Fatalf("String: %q", m.String())
	}
	// Duplicate shard names fail at flag-parse time — silently keeping
	// the last spec would serve the wrong model. Whitespace around the
	// name must not smuggle a duplicate past the check.
	for _, bad := range []string{"", "noequals", "=path", "name=", "dvfs=dup.gob", " dvfs =dup.gob", "  ", " = "} {
		if err := m.Set(bad); err == nil {
			t.Fatalf("Set(%q): expected error", bad)
		}
	}
	if len(m) != 2 {
		t.Fatalf("rejected specs must not be appended: %v", m)
	}
}

func TestLoadModelsErrors(t *testing.T) {
	if _, err := allSpecs("", nil, false); err == nil {
		t.Fatal("expected no-models error")
	}
	specs, err := allSpecs("/does/not/exist.gob", nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadModels(specs, overrides(0, -1)); err == nil {
		t.Fatal("expected open error")
	}
	// -load claims the name "default"; a -model spec reusing it must be
	// rejected up front, not silently resolved by map order.
	if _, err := allSpecs("/x.gob", modelFlags{{name: "default", path: "/y.gob"}}, false); err == nil {
		t.Fatal("expected duplicate-default error")
	}
	// A cluster joiner may boot with no models at all.
	if specs, err := allSpecs("", nil, true); err != nil || len(specs) != 0 {
		t.Fatalf("empty specs with allowEmpty: %v %v", specs, err)
	}
}

func TestClusterFlags(t *testing.T) {
	if (clusterFlags{}).enabled() {
		t.Fatal("no cluster flags must mean standalone")
	}
	if !(clusterFlags{coordinator: true}).enabled() || !(clusterFlags{join: "http://x"}).enabled() {
		t.Fatal("-coordinator and -join must both enable clustering")
	}
	if _, err := (clusterFlags{coordinator: true}).agentConfig(""); err == nil {
		t.Fatal("clustering without -advertise must be rejected")
	}
	cfg, err := clusterFlags{
		nodeID:      "n1",
		advertise:   "http://10.0.0.5:8080/",
		coordinator: true,
		heartbeat:   250 * time.Millisecond,
	}.agentConfig("secret")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NodeID != "n1" || cfg.Advertise != "http://10.0.0.5:8080" ||
		!cfg.Coordinator || cfg.Token != "secret" || cfg.Heartbeat != 250*time.Millisecond {
		t.Fatalf("agentConfig: %+v", cfg)
	}
	// -node-id defaults to the hostname.
	cfg, err = (clusterFlags{advertise: "http://x", join: "http://y"}).agentConfig("")
	if err != nil {
		t.Fatal(err)
	}
	if host, _ := os.Hostname(); host != "" && cfg.NodeID != host {
		t.Fatalf("default node ID %q, want hostname %q", cfg.NodeID, host)
	}
}

// TestDaemonHandoff exercises the documented workflow: save a trained
// detector (the `trusthmd -save` side), load it through the daemon's
// loader with serving-time overrides, and answer a request.
func TestDaemonHandoff(t *testing.T) {
	s, err := gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 40, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	d, err := detector.New(s.Train, detector.WithModel("rf"), detector.WithEnsembleSize(7), detector.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "det.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	specs, err := allSpecs(path, modelFlags{{name: "named", path: path}}, false)
	if err != nil {
		t.Fatal(err)
	}
	models, err := loadModels(specs, overrides(2, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models["default"] == nil || models["named"] == nil {
		t.Fatalf("models: %v", models)
	}
	if got := models["default"].Threshold(); got != 0.25 {
		t.Fatalf("threshold override lost: %v", got)
	}

	srv, err := serve.New(models, serve.Config{DefaultModel: "default"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

// saveDetector trains a tiny detector and gob-saves it, returning both.
func saveDetector(t *testing.T, path string, opts ...detector.Option) *detector.Detector {
	t.Helper()
	s, err := gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 40, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	base := []detector.Option{detector.WithModel("rf"), detector.WithEnsembleSize(7), detector.WithSeed(1)}
	d, err := detector.New(s.Train, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestStreamE2EHotSwap is the stream-smoke e2e CI runs under -race: train
// a tiny model, boot the daemon's full stack (loader, fleet, admin token,
// HTTP transport), stream raw DVFS states as NDJSON, hot-swap the shard
// through POST /v1/models mid-service, and assert that post-swap streamed
// assessments are element-wise identical to driving the swapped-in
// detector's Online loop directly.
func TestStreamE2EHotSwap(t *testing.T) {
	dir := t.TempDir()
	pathV1 := filepath.Join(dir, "v1.gob")
	pathV2 := filepath.Join(dir, "v2.gob")
	saveDetector(t, pathV1)
	// The replacement differs observably: threshold 0 rejects anything
	// with nonzero vote entropy.
	dV2 := saveDetector(t, pathV2, detector.WithThreshold(0))

	// Boot the daemon stack exactly as run() wires it.
	const token = "swap-secret"
	cfg := serve.Config{DefaultModel: "default", AdminToken: token}
	cfg.PrepareDetector = overrides(0, -1)
	specs, err := allSpecs(pathV1, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	models, err := loadModels(specs, cfg.PrepareDetector)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := serve.NewFleet(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(fleet)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	const levels, window, stride = 8, 16, 4
	states := make([]int, 240)
	for i := range states {
		states[i] = (i*i + i/3) % levels
	}
	stream := func() (results []serve.StreamResult, summary serve.StreamSummary) {
		t.Helper()
		var b bytes.Buffer
		hdr, _ := json.Marshal(serve.StreamHeader{Levels: levels, Window: window, Stride: stride})
		b.Write(hdr)
		b.WriteByte('\n')
		for _, s := range states {
			fmt.Fprintf(&b, "{\"state\":%d}\n", s)
		}
		resp, err := http.Post(ts.URL+"/v1/assess/stream", "application/x-ndjson", &b)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("stream status %d: %s", resp.StatusCode, body)
		}
		sc := bufio.NewScanner(resp.Body)
		done := false
		for sc.Scan() {
			var probe map[string]json.RawMessage
			if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
				t.Fatalf("bad stream line: %s", sc.Bytes())
			}
			switch {
			case probe["error"] != nil:
				t.Fatalf("stream error line: %s", sc.Bytes())
			case probe["done"] != nil:
				if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
					t.Fatal(err)
				}
				done = true
			default:
				var r serve.StreamResult
				if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
					t.Fatal(err)
				}
				results = append(results, r)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if !done {
			t.Fatal("stream ended without summary")
		}
		return results, summary
	}

	pre, preSummary := stream()
	if len(pre) == 0 || preSummary.Version != 1 {
		t.Fatalf("pre-swap stream: %d results, summary %+v", len(pre), preSummary)
	}

	// Hot-swap through the admin endpoint, token-guarded.
	swapBody, _ := json.Marshal(serve.LoadModelRequest{Name: "default", Path: pathV2})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/models", bytes.NewReader(swapBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap status %d: %s", resp.StatusCode, body)
	}
	var swapped serve.LoadModelResponse
	if err := json.Unmarshal(body, &swapped); err != nil {
		t.Fatal(err)
	}
	if !swapped.Replaced || swapped.Version != 2 {
		t.Fatalf("swap response: %+v", swapped)
	}

	// Post-swap: the same stream now runs on v2 and matches the v2
	// detector's Online.Push decisions element-wise.
	online, err := detector.NewOnline(dV2, detector.StreamConfig{Levels: levels, Window: window, Stride: stride})
	if err != nil {
		t.Fatal(err)
	}
	var want []detector.Result
	for _, s := range states {
		r, ok, err := online.Push(s)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			want = append(want, r)
		}
	}
	post, postSummary := stream()
	if postSummary.Version != 2 {
		t.Fatalf("post-swap summary version %d, want 2", postSummary.Version)
	}
	if len(post) != len(want) {
		t.Fatalf("post-swap stream emitted %d decisions, direct Online.Push %d", len(post), len(want))
	}
	rejected := 0
	for i := range post {
		if post[i].Version != 2 {
			t.Fatalf("decision %d: version %d, want 2", i, post[i].Version)
		}
		if post[i].Prediction != want[i].Prediction || post[i].Entropy != want[i].Entropy ||
			post[i].Decision != want[i].Decision.String() {
			t.Fatalf("post-swap decision %d diverged:\n got %+v\nwant %+v", i, post[i], want[i])
		}
		if post[i].Decision == "reject" {
			rejected++
		}
	}
	// Sanity: the swap is observable — threshold 0 rejects every window
	// with nonzero entropy, which the v1 threshold accepted.
	if rejected == 0 {
		preRejects := 0
		for _, r := range pre {
			if r.Decision == "reject" {
				preRejects++
			}
		}
		if preRejects != 0 {
			t.Fatalf("swap to threshold-0 changed nothing: pre %d rejects, post %d", preRejects, rejected)
		}
	}
}

// TestWatchHotSwapsOnMtime covers -watch: rewriting a shard's gob file is
// all it takes — the watcher notices the mtime change, reloads, reapplies
// the daemon overrides, and hot-swaps the fleet.
func TestWatchHotSwapsOnMtime(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "det.gob")
	saveDetector(t, path)

	const thresholdOverride = 0.125
	prepare := overrides(0, thresholdOverride)
	specs, err := allSpecs(path, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	models, err := loadModels(specs, prepare)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := serve.NewFleet(models, serve.Config{DefaultModel: "default"})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		watchShards(ctx, fleet, modelFlags{{name: "default", path: path}}, time.Millisecond, prepare, nil)
	}()

	// The watcher may legitimately swap more than once per phase (it can
	// see the freshly saved file before the test adjusts its mtime), so
	// all waits are at-least + settle rather than exact-match.
	waitAtLeast := func(want uint64) serve.ModelInfo {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			models := fleet.Models()
			if len(models) == 1 && models[0].Version >= want {
				return models[0]
			}
			select {
			case <-deadline:
				t.Fatalf("watcher never reached v%d: %+v", want, models)
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
	settle := func() serve.ModelInfo {
		t.Helper()
		deadline := time.After(5 * time.Second)
		last := fleet.Models()[0]
		for stable := 0; stable < 20; {
			select {
			case <-deadline:
				t.Fatalf("fleet never settled: %+v", last)
			case <-time.After(2 * time.Millisecond):
			}
			cur := fleet.Models()[0]
			if cur.Version == last.Version {
				stable++
			} else {
				stable, last = 0, cur
			}
		}
		return last
	}

	// Rewrite the gob (a fresh training run) with a bumped mtime.
	saveDetector(t, path)
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	waitAtLeast(2)
	m := settle()
	if m.Threshold != thresholdOverride {
		t.Fatalf("watch reload dropped the threshold override: %+v", m)
	}
	base := m.Version

	// A garbage rewrite with a newer mtime must not swap. Saves are atomic
	// now, so the watcher treats undecodable content as bad (not a torn
	// read): it logs once, advances the stamp, and the serving shard keeps
	// answering until the next valid rewrite.
	if err := os.WriteFile(path, []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	future = future.Add(time.Hour)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // several ticks over the bad file
	if v := fleet.Models()[0].Version; v != base {
		t.Fatalf("garbage gob was swapped in: v%d (base v%d)", v, base)
	}
	// The next valid save (a fresh rename → newer stamp) rolls out.
	saveDetector(t, path)
	future = future.Add(time.Hour)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	waitAtLeast(base + 1)
	base = settle().Version

	// A shard unloaded over the admin API is reinstated by the next save:
	// for command-line shards the file on disk is the source of truth.
	if err := fleet.Unload("default"); err != nil {
		t.Fatal(err)
	}
	saveDetector(t, path)
	future = future.Add(time.Hour)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	waitAtLeast(base + 1)

	cancel()
	<-watchDone
}

// TestGBMShardServes proves the exported classifier contract end to end:
// the gradient-boosted-stumps family — implemented in pkg/model/gbm against
// only exported packages and enabled here by blank import — trains through
// the registry, round-trips through Save/Load, and answers daemon requests
// like any built-in.
func TestGBMShardServes(t *testing.T) {
	s, err := gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 40, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	d, err := detector.New(s.Train, detector.WithModel("gbm"), detector.WithEnsembleSize(7), detector.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gbm.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	specs, err := allSpecs(path, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	models, err := loadModels(specs, overrides(0, -1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(models, serve.Config{DefaultModel: "default"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	correct := 0
	for i := 0; i < s.Test.Len(); i++ {
		smp := s.Test.At(i)
		body, err := json.Marshal(serve.AssessRequest{Features: smp.Features})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/assess", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var got serve.AssessResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("assess: %d", resp.StatusCode)
		}
		want, err := d.Assess(smp.Features)
		if err != nil {
			t.Fatal(err)
		}
		if got.Prediction != want.Prediction || got.Decision != want.Decision.String() {
			t.Fatalf("sample %d: served %+v, direct %+v", i, got, want)
		}
		if got.Prediction == smp.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(s.Test.Len()); acc < 0.9 {
		t.Fatalf("served gbm accuracy %v", acc)
	}
}

// TestReplicaE2E is the replica-smoke e2e CI runs under -race: boot the
// daemon stack with a 3-replica group and an aggressive spill watermark,
// drive sustained bursty load keyed to ONE device (so all of it homes on
// one replica), hot-swap the whole group through POST /v1/models mid-run,
// and assert that (a) zero requests are lost, (b) every response — home,
// spilled, pre- and post-swap — is element-wise identical to direct
// assessment, and (c) the spillover actually engaged: sibling replicas
// served >10% of the burst.
func TestReplicaE2E(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "det.gob")
	d := saveDetector(t, path)

	s, err := gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 40, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	X := make([][]float64, s.Test.Len())
	want := make([]detector.Result, s.Test.Len())
	for i := range X {
		X[i] = s.Test.At(i).Features
		r, err := d.Assess(X[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	// Boot the daemon stack exactly as run() wires it, with the replica
	// knobs a hot deployment would use (cache disabled so every request
	// exercises a queue and the spill decision is load-driven).
	const token = "replica-secret"
	cfg := serve.Config{
		DefaultModel: "default",
		AdminToken:   token,
		Replicas:     3,
		SpillDepth:   1,
		CacheSize:    -1,
		MaxBatch:     8,
		MaxWait:      time.Millisecond,
	}
	cfg.PrepareDetector = overrides(0, -1)
	specs, err := allSpecs(path, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	models, err := loadModels(specs, cfg.PrepareDetector)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := serve.NewFleet(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(fleet)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	const workers = 12
	const perWorker = 30
	var lost, mismatched atomic.Int64
	var minVersion, maxVersion atomic.Uint64
	minVersion.Store(^uint64(0))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			client := ts.Client()
			for i := 0; i < perWorker; i++ {
				j := (w*perWorker + i) % len(X)
				body, _ := json.Marshal(serve.AssessRequest{Device: "hot-device", Features: X[j]})
				resp, err := client.Post(ts.URL+"/v1/assess", "application/json", bytes.NewReader(body))
				if err != nil {
					lost.Add(1)
					continue
				}
				var got serve.AssessResponse
				decErr := json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					lost.Add(1)
					continue
				}
				if got.Prediction != want[j].Prediction || got.Entropy != want[j].Entropy ||
					got.Decision != want[j].Decision.String() {
					mismatched.Add(1)
				}
				for {
					v := minVersion.Load()
					if got.Version >= v || minVersion.CompareAndSwap(v, got.Version) {
						break
					}
				}
				for {
					v := maxVersion.Load()
					if got.Version <= v || maxVersion.CompareAndSwap(v, got.Version) {
						break
					}
				}
			}
		}(w)
	}

	// Mid-run, hot-swap the whole 3-replica group twice through the admin
	// endpoint (same gob — the invariant under test is losslessness and
	// verdict identity, not model change).
	swapped := make(chan error, 1)
	go func() {
		var firstErr error
		for i := 0; i < 2; i++ {
			time.Sleep(3 * time.Millisecond)
			body, _ := json.Marshal(serve.LoadModelRequest{Name: "default", Path: path})
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/models", bytes.NewReader(body))
			if err != nil {
				firstErr = err
				break
			}
			req.Header.Set("Authorization", "Bearer "+token)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				firstErr = err
				break
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				firstErr = fmt.Errorf("swap %d: status %d", i, resp.StatusCode)
				break
			}
		}
		swapped <- firstErr
	}()

	close(start)
	wg.Wait()
	if err := <-swapped; err != nil {
		t.Fatal(err)
	}
	if n := lost.Load(); n != 0 {
		t.Fatalf("%d of %d requests lost across the group swap", n, workers*perWorker)
	}
	if n := mismatched.Load(); n != 0 {
		t.Fatalf("%d responses diverged from direct assessment", n)
	}
	if minVersion.Load() == maxVersion.Load() {
		t.Fatalf("all responses carried version %d — the swaps never overlapped the load", maxVersion.Load())
	}

	// The burst was keyed to one device: the spill stats prove siblings
	// carried real load, and the /stats wire shape carries the per-replica
	// gauges.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		ShedTotal *int64             `json:"shed_total"`
		Shards    []serve.ShardStats `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.ShedTotal == nil {
		t.Fatal("/stats missing shed_total")
	}
	if len(stats.Shards) != 1 {
		t.Fatalf("shards: %+v", stats.Shards)
	}
	st := stats.Shards[0]
	if st.Requests != workers*perWorker {
		t.Fatalf("requests %d, want %d", st.Requests, workers*perWorker)
	}
	if st.Spills == 0 {
		t.Fatal("single-device burst never spilled to a sibling replica")
	}
	if len(st.Replicas) != 3 {
		t.Fatalf("per-replica stats: %+v", st.Replicas)
	}
	// served gauges reset on swap (fresh replicas), so the sibling share is
	// asserted on spills vs requests: every spill was served by a sibling.
	if share := float64(st.Spills) / float64(st.Requests); share <= 0.10 {
		t.Fatalf("siblings served %.1f%% of the burst, want >10%%", 100*share)
	}
}
