package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"trusthmd/internal/gen"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/serve"
)

func TestModelFlagsParsing(t *testing.T) {
	var m modelFlags
	if err := m.Set("dvfs=det.gob"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("alt=other.gob"); err != nil {
		t.Fatal(err)
	}
	if m.String() != "dvfs=det.gob,alt=other.gob" {
		t.Fatalf("String: %q", m.String())
	}
	for _, bad := range []string{"", "noequals", "=path", "name=", "dvfs=dup.gob"} {
		if err := m.Set(bad); err == nil {
			t.Fatalf("Set(%q): expected error", bad)
		}
	}
}

func TestLoadModelsErrors(t *testing.T) {
	if _, err := loadModels("", nil, 0, -1); err == nil {
		t.Fatal("expected no-models error")
	}
	if _, err := loadModels("/does/not/exist.gob", nil, 0, -1); err == nil {
		t.Fatal("expected open error")
	}
}

// TestDaemonHandoff exercises the documented workflow: save a trained
// detector (the `trusthmd -save` side), load it through the daemon's
// loader with serving-time overrides, and answer a request.
func TestDaemonHandoff(t *testing.T) {
	s, err := gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 40, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	d, err := detector.New(s.Train, detector.WithModel("rf"), detector.WithEnsembleSize(7), detector.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "det.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	models, err := loadModels(path, modelFlags{{name: "named", path: path}}, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models["default"] == nil || models["named"] == nil {
		t.Fatalf("models: %v", models)
	}
	if got := models["default"].Threshold(); got != 0.25 {
		t.Fatalf("threshold override lost: %v", got)
	}

	srv, err := serve.New(models, serve.Config{DefaultModel: "default"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

// TestGBMShardServes proves the exported classifier contract end to end:
// the gradient-boosted-stumps family — implemented in pkg/model/gbm against
// only exported packages and enabled here by blank import — trains through
// the registry, round-trips through Save/Load, and answers daemon requests
// like any built-in.
func TestGBMShardServes(t *testing.T) {
	s, err := gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 40, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	d, err := detector.New(s.Train, detector.WithModel("gbm"), detector.WithEnsembleSize(7), detector.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gbm.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	models, err := loadModels(path, nil, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(models, serve.Config{DefaultModel: "default"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	correct := 0
	for i := 0; i < s.Test.Len(); i++ {
		smp := s.Test.At(i)
		body, err := json.Marshal(serve.AssessRequest{Features: smp.Features})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/assess", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var got serve.AssessResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("assess: %d", resp.StatusCode)
		}
		want, err := d.Assess(smp.Features)
		if err != nil {
			t.Fatal(err)
		}
		if got.Prediction != want.Prediction || got.Decision != want.Decision.String() {
			t.Fatalf("sample %d: served %+v, direct %+v", i, got, want)
		}
		if got.Prediction == smp.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(s.Test.Len()); acc < 0.9 {
		t.Fatalf("served gbm accuracy %v", acc)
	}
}
