package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trusthmd/internal/gen"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/serve"
	"trusthmd/pkg/verdictstore"
)

// TestRetrainE2EClosedLoop is the retrain-e2e CI job: the full automatic
// loop through the daemon's own wiring, under the race detector.
//
//   - A tiny model is trained and saved; the daemon stack (loader, fleet
//     with verdict tap, HTTP transport, retrain controller) boots exactly
//     as run() wires it, with the store rotating small segments.
//   - Two device clients serve concurrently: "healthy" replays known
//     test windows, "edge-7" replays the zero-day split — injected drift.
//   - The controller tails the store, the drifting device's entropies trip
//     its DriftMonitor, rejected-verdict forensics reach quorum, a
//     background retrain fires and Fleet.SwapCause installs version 2 with
//     ZERO lost requests (every in-flight and subsequent request answers
//     200; the swap-retry loop absorbs the race).
//   - The verdict store then holds exactly the verdicts served — per
//     device, element-wise identical to the synchronous HTTP responses —
//     and still does after a close/reopen (daemon restart, crash-safe
//     recovery).
//
// TRUSTHMD_RETRAIN_STATS_OUT=<path> additionally writes the final /stats
// snapshot (verdict-store occupancy included) for the CI artifact.
func TestRetrainE2EClosedLoop(t *testing.T) {
	dir := t.TempDir()
	splits, err := gen.DVFSWithSizes(5, gen.Sizes{Train: 320, Test: 60, Unknown: 160})
	if err != nil {
		t.Fatal(err)
	}
	det, err := detector.New(splits.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(9), detector.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	gobPath := filepath.Join(dir, "det.gob")
	if err := det.SaveFile(gobPath); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "train.csv")
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := splits.Train.WriteCSV(cf); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}

	// Boot the stack as run() does: store first, fleet tapping into it,
	// server, controller — small segments so rotation happens live, ample
	// retention so nothing served is dropped (the element-wise comparison
	// needs every record).
	verdictDir := filepath.Join(dir, "verdicts")
	store, err := verdictstore.Open(verdictDir, verdictstore.Config{
		SegmentBytes: 32 << 10,
		MaxSegments:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	prepare := overrides(0, -1)
	cfg := serve.Config{DefaultModel: "default", PrepareDetector: prepare, Verdicts: store}
	specs, err := allSpecs(gobPath, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	models, err := loadModels(specs, prepare)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := serve.NewFleet(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(fleet)
	ts := httptest.NewServer(srv)

	base, err := loadBaseDataset(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	model, err := supervisedShard("", cfg.DefaultModel, specs)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := serve.NewRetrainController(serve.RetrainConfig{
		Store:          store,
		Fleet:          fleet,
		Model:          model,
		Base:           base,
		Interval:       20 * time.Millisecond,
		Drift:          detector.DriftConfig{Window: 16},
		BaselineSample: 120,
		Sustain:        3,
		Quorum:         20,
		Prepare:        prepare,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachRetrain(ctrl)
	ctx, cancel := context.WithCancel(context.Background())
	ctrlDone := make(chan error, 1)
	go func() { ctrlDone <- ctrl.Run(ctx) }()
	shutdown := func() {
		cancel()
		if err := <-ctrlDone; err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("controller: %v", err)
		}
		ts.Close()
		srv.Close()
	}

	// Two sequential per-device clients: every request must answer 200 —
	// that is the zero-lost-requests assertion, held across the hot swap.
	// Fatal client errors arrive over a channel (the responses slices are
	// only read after wg.Wait, so they need no lock).
	var stop atomic.Bool
	errs := make(chan error, 2)
	var healthy, edge []serve.AssessResponse
	var healthyV, edgeV atomic.Uint64
	runClient := func(device string, vecAt func(int) []float64, n int, log *[]serve.AssessResponse, seen *atomic.Uint64, wg *sync.WaitGroup) {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			body, _ := json.Marshal(serve.AssessRequest{Device: device, Features: vecAt(i % n)})
			resp, err := http.Post(ts.URL+"/v1/assess", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			payload, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- errors.New(device + ": lost request: " + resp.Status + " " + string(payload))
				return
			}
			var ar serve.AssessResponse
			if err := json.Unmarshal(payload, &ar); err != nil {
				errs <- err
				return
			}
			*log = append(*log, ar)
			seen.Store(ar.Version)
		}
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go runClient("healthy", func(i int) []float64 { return splits.Test.At(i).Features },
		splits.Test.Len(), &healthy, &healthyV, &wg)
	go runClient("edge-7", func(i int) []float64 { return splits.Unknown.At(i).Features },
		splits.Unknown.Len(), &edge, &edgeV, &wg)

	// Drift is being injected; run until BOTH devices have been answered
	// by the retrained version — the swap happened AND traffic kept
	// flowing across it.
	deadline := time.Now().Add(30 * time.Second)
	for healthyV.Load() < 2 || edgeV.Load() < 2 {
		select {
		case err := <-errs:
			stop.Store(true)
			wg.Wait()
			shutdown()
			t.Fatal(err)
		default:
		}
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			shutdown()
			t.Fatalf("no retrain within 30s: controller %+v, healthy %d, edge %d",
				ctrl.Stats(), len(healthy), len(edge))
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// The retrains counter lands just after the swap; give it a moment.
	waitStats := time.Now().Add(5 * time.Second)
	for ctrl.Stats().Retrains < 1 {
		if time.Now().After(waitStats) {
			t.Fatalf("epoch bumped but retrains counter is %d", ctrl.Stats().Retrains)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /stats reports the closed loop: the swap is attributed to the
	// controller and the store holds exactly one verdict per served
	// request.
	served := len(healthy) + len(edge)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	statsRaw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats map[string]any
	if err := json.Unmarshal(statsRaw, &stats); err != nil {
		t.Fatal(err)
	}
	if got := stats["retrains_triggered"].(float64); got < 1 {
		t.Fatalf("retrains_triggered = %v, want >= 1", got)
	}
	if got := stats["last_swap_cause"].(string); got != "drift-retrain" {
		t.Fatalf("last_swap_cause = %q, want drift-retrain", got)
	}
	if got := stats["verdicts_stored"].(float64); int(got) != served {
		t.Fatalf("verdicts_stored = %v, served %d — verdicts were lost or duplicated", got, served)
	}
	if out := os.Getenv("TRUSTHMD_RETRAIN_STATS_OUT"); out != "" {
		if err := os.WriteFile(out, statsRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote retrain stats artifact to %s", out)
	}

	// Range queries return the exact verdicts served, element-wise
	// identical to the synchronous responses, per device and in order.
	compare := func(device string, want []serve.AssessResponse) []verdictstore.Record {
		t.Helper()
		recs, err := store.Query(verdictstore.Filter{Device: device, Limit: served + 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(want) {
			t.Fatalf("%s: %d stored, %d served", device, len(recs), len(want))
		}
		for i, rec := range recs {
			if rec.Model != want[i].Model || rec.Version != want[i].Version ||
				rec.Prediction != want[i].Prediction || rec.Entropy != want[i].Entropy ||
				rec.Decision != want[i].Decision {
				t.Fatalf("%s verdict %d diverged:\nstore %+v\nhttp  %+v", device, i, rec, want[i])
			}
		}
		return recs
	}
	healthyRecs := compare("healthy", healthy)
	edgeRecs := compare("edge-7", edge)

	// The drifting device must have crossed the swap: early verdicts on
	// v1, late ones on v2.
	if first, last := edgeRecs[0].Version, edgeRecs[len(edgeRecs)-1].Version; first != 1 || last < 2 {
		t.Fatalf("edge-7 versions %d..%d, want 1..>=2", first, last)
	}

	// Restart: close everything, reopen the store, and the same records
	// come back (crash-safe segment recovery).
	shutdown()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := verdictstore.Open(verdictDir, verdictstore.Config{
		SegmentBytes: 32 << 10,
		MaxSegments:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.Stats().Records; int(got) != served {
		t.Fatalf("reopened store holds %d records, want %d", got, served)
	}
	for _, probe := range []struct {
		device string
		want   []verdictstore.Record
	}{{"healthy", healthyRecs}, {"edge-7", edgeRecs}} {
		recs, err := reopened.Query(verdictstore.Filter{Device: probe.device, Limit: served + 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(probe.want) {
			t.Fatalf("reopened %s: %d records, want %d", probe.device, len(recs), len(probe.want))
		}
		for i, rec := range recs {
			w := probe.want[i]
			if rec.Seq != w.Seq || rec.Entropy != w.Entropy || rec.Decision != w.Decision ||
				rec.Version != w.Version || rec.Prediction != w.Prediction {
				t.Fatalf("reopened %s verdict %d diverged:\nafter  %+v\nbefore %+v", probe.device, i, rec, w)
			}
		}
	}
}
