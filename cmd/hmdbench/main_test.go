package main

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestClosedLoopSmoke is the hmdbench smoke: train a tiny model, run a
// short closed-loop pass (-loop) on a single replica, and assert every
// scenario reports non-zero throughput plus p50/p99 latency.
func TestClosedLoopSmoke(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "loop-out-")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()

	if err := runClosedLoop(200, 1, 1, tmp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	report := string(raw)
	for _, scenario := range []string{"uniform", "bursty"} {
		if !strings.Contains(report, "closed loop ["+scenario) {
			t.Fatalf("scenario %s missing from report: %q", scenario, report)
		}
	}
	lines := regexp.MustCompile(`— (\d+) verdicts/s`).FindAllStringSubmatch(report, -1)
	if len(lines) != 2 {
		t.Fatalf("want 2 throughput lines, got %d: %q", len(lines), report)
	}
	for _, m := range lines {
		if v, err := strconv.Atoi(m[1]); err != nil || v <= 0 {
			t.Fatalf("throughput %q not positive (%v): %q", m[1], err, report)
		}
	}
	if got := len(regexp.MustCompile(`p50 \S+, p99 \S+`).FindAllString(report, -1)); got != 2 {
		t.Fatalf("want p50/p99 on both scenario lines, got %d: %q", got, report)
	}
}

// TestClosedLoopReplicas runs the same harness against a 3-replica group:
// the bursty scenario must report a non-zero spill share (load-aware
// routing engaged), and no verdict may be lost.
func TestClosedLoopReplicas(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "loop-out-")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()

	if err := runClosedLoop(200, 1, 3, tmp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	report := string(raw)
	m := regexp.MustCompile(`\[bursty +x3 replica\(s\)\].*?([0-9.]+)% spilled`).FindStringSubmatch(report)
	if m == nil {
		t.Fatalf("no bursty spill share in report: %q", report)
	}
	if share, err := strconv.ParseFloat(m[1], 64); err != nil || share <= 0 {
		t.Fatalf("bursty scenario on 3 replicas spilled %q%% (want >0): %q", m[1], report)
	}
}
