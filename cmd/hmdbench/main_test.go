package main

import (
	"os"
	"path/filepath"
	"regexp"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
)

// TestClosedLoopSmoke is the hmdbench smoke: train a tiny model, run a
// short closed-loop pass (-loop) on a single replica, and assert every
// scenario reports non-zero throughput plus p50/p99 latency.
func TestClosedLoopSmoke(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "loop-out-")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()

	if err := runClosedLoop(200, 1, 1, false, tmp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	report := string(raw)
	for _, scenario := range []string{"uniform", "bursty"} {
		if !strings.Contains(report, "closed loop ["+scenario) {
			t.Fatalf("scenario %s missing from report: %q", scenario, report)
		}
	}
	lines := regexp.MustCompile(`— (\d+) verdicts/s`).FindAllStringSubmatch(report, -1)
	if len(lines) != 2 {
		t.Fatalf("want 2 throughput lines, got %d: %q", len(lines), report)
	}
	for _, m := range lines {
		if v, err := strconv.Atoi(m[1]); err != nil || v <= 0 {
			t.Fatalf("throughput %q not positive (%v): %q", m[1], err, report)
		}
	}
	if got := len(regexp.MustCompile(`p50 \S+, p99 \S+`).FindAllString(report, -1)); got != 2 {
		t.Fatalf("want p50/p99 on both scenario lines, got %d: %q", got, report)
	}
}

// TestClosedLoopReplicas runs the same harness against a 3-replica group:
// the bursty scenario must report a non-zero spill share (load-aware
// routing engaged), and no verdict may be lost.
func TestClosedLoopReplicas(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "loop-out-")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()

	// pin-cores on: each replica's flusher pins to a core (all the same
	// core on single-CPU CI — the harness must behave identically).
	if err := runClosedLoop(200, 1, 3, true, tmp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	report := string(raw)
	m := regexp.MustCompile(`\[bursty +x3 replica\(s\)\].*?([0-9.]+)% spilled`).FindStringSubmatch(report)
	if m == nil {
		t.Fatalf("no bursty spill share in report: %q", report)
	}
	if share, err := strconv.ParseFloat(m[1], 64); err != nil || share <= 0 {
		t.Fatalf("bursty scenario on 3 replicas spilled %q%% (want >0): %q", m[1], report)
	}
}

// TestProfileSmoke exercises the -cpuprofile/-memprofile plumbing the way
// main wires it: profile a short closed-loop run and assert both profile
// files come out non-empty (pprof headers at minimum).
func TestProfileSmoke(t *testing.T) {
	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.out")
	memPath := filepath.Join(dir, "mem.out")

	cf, err := os.Create(cpuPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if err := pprof.StartCPUProfile(cf); err != nil {
		t.Fatal(err)
	}
	tmp, err := os.CreateTemp(dir, "loop-out-")
	if err != nil {
		pprof.StopCPUProfile()
		t.Fatal(err)
	}
	defer tmp.Close()
	loopErr := runClosedLoop(64, 1, 1, false, tmp)
	pprof.StopCPUProfile()
	if loopErr != nil {
		t.Fatal(loopErr)
	}
	writeMemProfile(memPath)

	for _, p := range []string{cpuPath, memPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
