package main

import (
	"os"
	"regexp"
	"strconv"
	"testing"
)

// TestClosedLoopSmoke is the hmdbench smoke: train a tiny model, run a
// short closed-loop pass (-loop), and assert the throughput report is
// present and non-zero.
func TestClosedLoopSmoke(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "loop-out-")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()

	if err := runClosedLoop(200, 1, tmp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	report := string(raw)
	m := regexp.MustCompile(`— (\d+) verdicts/s`).FindStringSubmatch(report)
	if m == nil {
		t.Fatalf("no throughput in report: %q", report)
	}
	if v, err := strconv.Atoi(m[1]); err != nil || v <= 0 {
		t.Fatalf("throughput %q not positive (%v): %q", m[1], err, report)
	}
}
