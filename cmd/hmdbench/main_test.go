package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"trusthmd/pkg/serve"
)

// TestClosedLoopSmoke is the hmdbench smoke: train a tiny model, run a
// short closed-loop pass (-loop) on a single replica, and assert every
// scenario reports non-zero throughput plus p50/p99 latency.
func TestClosedLoopSmoke(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "loop-out-")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()

	if err := runClosedLoop(200, 1, 1, false, tmp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	report := string(raw)
	for _, scenario := range []string{"uniform", "bursty"} {
		if !strings.Contains(report, "closed loop ["+scenario) {
			t.Fatalf("scenario %s missing from report: %q", scenario, report)
		}
	}
	lines := regexp.MustCompile(`— (\d+) verdicts/s`).FindAllStringSubmatch(report, -1)
	if len(lines) != 2 {
		t.Fatalf("want 2 throughput lines, got %d: %q", len(lines), report)
	}
	for _, m := range lines {
		if v, err := strconv.Atoi(m[1]); err != nil || v <= 0 {
			t.Fatalf("throughput %q not positive (%v): %q", m[1], err, report)
		}
	}
	if got := len(regexp.MustCompile(`p50 \S+, p99 \S+`).FindAllString(report, -1)); got != 2 {
		t.Fatalf("want p50/p99 on both scenario lines, got %d: %q", got, report)
	}
}

// TestClosedLoopReplicas runs the same harness against a 3-replica group:
// the bursty scenario must report a non-zero spill share (load-aware
// routing engaged), and no verdict may be lost.
func TestClosedLoopReplicas(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "loop-out-")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()

	// pin-cores on: each replica's flusher pins to a core (all the same
	// core on single-CPU CI — the harness must behave identically).
	if err := runClosedLoop(200, 1, 3, true, tmp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	report := string(raw)
	m := regexp.MustCompile(`\[bursty +x3 replica\(s\)\].*?([0-9.]+)% spilled`).FindStringSubmatch(report)
	if m == nil {
		t.Fatalf("no bursty spill share in report: %q", report)
	}
	if share, err := strconv.ParseFloat(m[1], 64); err != nil || share <= 0 {
		t.Fatalf("bursty scenario on 3 replicas spilled %q%% (want >0): %q", m[1], report)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"1", time.Second},
		{" 2 ", 2 * time.Second},
		{"0", 0},
		{"3600", maxRetryDelay}, // bounded: a server cannot park the harness
		{"", defaultRetryDelay},
		{"soon", defaultRetryDelay},
		{"-5", defaultRetryDelay},
		{"Wed, 21 Oct 2026 07:28:00 GMT", defaultRetryDelay}, // HTTP-date form unsupported
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTargetFlags(t *testing.T) {
	var tf targetFlags
	for _, v := range []string{"http://a:8080, http://b:8080/", "http://c:8080"} {
		if err := tf.Set(v); err != nil {
			t.Fatal(err)
		}
	}
	want := targetFlags{"http://a:8080", "http://b:8080", "http://c:8080"}
	if !reflect.DeepEqual(tf, want) {
		t.Fatalf("targets %v, want %v", tf, want)
	}
}

// TestPostWindowRetries: a server shedding the first attempts with 503 +
// Retry-After must be retried (honoring the header) and the retry count
// reported; a server that always sheds must fail after the bounded
// attempts instead of hanging.
func TestPostWindowRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(serve.AssessResponse{Decision: "reject"})
	}))
	defer ts.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	decision, retries, err := postWindow(client, ts.URL, serve.AssessRequest{Features: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if decision != "reject" || retries != 2 {
		t.Fatalf("decision %q after %d retries, want reject after 2", decision, retries)
	}

	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer always.Close()
	_, retries, err = postWindow(client, always.URL, serve.AssessRequest{Features: []float64{1}})
	if err == nil {
		t.Fatal("permanently shedding server must eventually fail the window")
	}
	if retries != maxRetryAttempts {
		t.Fatalf("gave up after %d retries, want %d", retries, maxRetryAttempts)
	}
}

// TestHTTPLoopSmoke drives the -target mode against two fake daemons and
// asserts both scenario lines report, both targets were hit, and the
// retry counter surfaces the injected sheds.
func TestHTTPLoopSmoke(t *testing.T) {
	var hits [2]atomic.Int64
	var shed atomic.Int64
	mk := func(i int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			n := hits[i].Add(1)
			// Shed every 7th request on the first target: the loop must
			// absorb it via Retry-After, not fail.
			if i == 0 && n%7 == 0 {
				shed.Add(1)
				w.Header().Set("Retry-After", "0")
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			json.NewEncoder(w).Encode(serve.AssessResponse{Model: "m", Decision: "benign"})
		}))
	}
	ts0, ts1 := mk(0), mk(1)
	defer ts0.Close()
	defer ts1.Close()

	tmp, err := os.CreateTemp(t.TempDir(), "loop-out-")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := runHTTPLoop(64, 1, []string{ts0.URL, ts1.URL}, tmp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	report := string(raw)
	for _, scenario := range []string{"uniform", "bursty"} {
		if !strings.Contains(report, "http loop ["+scenario) {
			t.Fatalf("scenario %s missing from report: %q", scenario, report)
		}
	}
	if hits[0].Load() == 0 || hits[1].Load() == 0 {
		t.Fatalf("round-robin skipped a target: %d / %d", hits[0].Load(), hits[1].Load())
	}
	retries := regexp.MustCompile(`(\d+) retried`).FindAllStringSubmatch(report, -1)
	if len(retries) != 2 {
		t.Fatalf("want retry counts on both lines: %q", report)
	}
	total := 0
	for _, m := range retries {
		v, _ := strconv.Atoi(m[1])
		total += v
	}
	if int64(total) != shed.Load() {
		t.Fatalf("report counts %d retries, server shed %d", total, shed.Load())
	}
}

// TestProfileSmoke exercises the -cpuprofile/-memprofile plumbing the way
// main wires it: profile a short closed-loop run and assert both profile
// files come out non-empty (pprof headers at minimum).
func TestProfileSmoke(t *testing.T) {
	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.out")
	memPath := filepath.Join(dir, "mem.out")

	cf, err := os.Create(cpuPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if err := pprof.StartCPUProfile(cf); err != nil {
		t.Fatal(err)
	}
	tmp, err := os.CreateTemp(dir, "loop-out-")
	if err != nil {
		pprof.StopCPUProfile()
		t.Fatal(err)
	}
	defer tmp.Close()
	loopErr := runClosedLoop(64, 1, 1, false, tmp)
	pprof.StopCPUProfile()
	if loopErr != nil {
		t.Fatal(loopErr)
	}
	writeMemProfile(memPath)

	for _, p := range []string{cpuPath, memPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
