// Command hmdbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index).
//
// Usage:
//
//	hmdbench [-exp all|T1|F4|F5|F7a|F7b|F8|F9a|F9b|H|A1|A2|A3]
//	         [-scale 1.0] [-seed 1] [-m 25] [-tsne-csv dir]
//	hmdbench -loop 2000 [-replicas 4] [-pin-cores]
//
// Either mode accepts -cpuprofile/-memprofile to dump pprof profiles of
// the whole run.
//
// -scale 1.0 reproduces the paper's full Table I sizes (the HPC dataset has
// 63k samples; the full run takes a few minutes). Smaller scales give quick
// qualitative runs.
//
// -loop N runs the closed-loop serving load harness instead of the
// experiments: train a tiny detector, build a verdict-tapped fleet
// (-replicas controls the group size), drive N windows per scenario
// (uniform devices, then a bursty single device) through the full
// concurrent serving path, and report throughput with p50/p99/p999
// latency, heap allocs per window, and the replica spill share per
// scenario, plus verdict-store occupancy.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trusthmd/internal/exp"
	"trusthmd/internal/gen"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/serve"
	"trusthmd/pkg/verdictstore"
)

func main() {
	var (
		which    = flag.String("exp", "all", "experiment id (T1,F4,F5,F7a,F7b,F8,F9a,F9b,H,A1,A2,A3,A4,A5,E1,E2) or 'all'")
		scale    = flag.Float64("scale", 1.0, "fraction of the paper's Table I split sizes")
		seed     = flag.Int64("seed", 1, "random seed")
		m        = flag.Int("m", 25, "ensemble size")
		tsneCSV  = flag.String("tsne-csv", "", "directory to dump Fig. 8 embedding coordinates as CSV")
		loopN    = flag.Int("loop", 0, "closed-loop load harness: assess N windows per scenario through a verdict-tapped fleet and report throughput + p50/p99/p999 + allocs/op (skips -exp)")
		replicas = flag.Int("replicas", 1, "replica-group size for the -loop fleet (drives spill routing under the bursty scenario)")
		pinCores = flag.Bool("pin-cores", false, "pin each -loop replica's flusher thread to its own CPU core (Linux; no-op elsewhere)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hmdbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hmdbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProf)

	if *loopN > 0 {
		if err := runClosedLoop(*loopN, *seed, *replicas, *pinCores, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hmdbench: loop: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := exp.Config{Seed: *seed, Scale: *scale, M: *m}
	ids := strings.Split(*which, ",")
	if *which == "all" {
		ids = []string{"T1", "F4", "F5", "F7a", "F7b", "F8", "F9a", "F9b", "H", "A1", "A2", "A3", "A4", "A5", "E1", "E2"}
	}
	for _, id := range ids {
		if err := run(strings.TrimSpace(id), cfg, *tsneCSV); err != nil {
			fmt.Fprintf(os.Stderr, "hmdbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func run(id string, cfg exp.Config, tsneCSV string) error {
	type renderer interface{ Render() string }
	var (
		res renderer
		err error
	)
	switch id {
	case "T1":
		res, err = exp.TableI(cfg)
	case "F4":
		res, err = exp.Fig4(cfg)
	case "F5":
		res, err = exp.Fig5(cfg)
	case "F7a":
		res, err = exp.Fig7a(cfg)
	case "F7b":
		res, err = exp.Fig7b(cfg)
	case "F8":
		for _, which := range []string{"DVFS", "HPC"} {
			r, err := exp.Fig8(cfg, which)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
			if tsneCSV != "" {
				if err := dumpTSNE(r, tsneCSV); err != nil {
					return err
				}
			}
		}
		return nil
	case "F9a":
		res, err = exp.Fig9a(cfg)
	case "F9b":
		res, err = exp.Fig9b(cfg)
	case "H":
		res, err = exp.Headlines(cfg)
	case "A1":
		res, err = exp.AblationPlatt(cfg)
	case "A2":
		res, err = exp.AblationPosterior(cfg)
	case "A3":
		res, err = exp.AblationDiversity(cfg)
	case "A4":
		res, err = exp.AblationFamilies(cfg)
	case "A5":
		res, err = exp.AblationSources(cfg)
	case "E1":
		res, err = exp.EMGeneralization(cfg)
	case "E2":
		res, err = exp.GovernorSensitivity(cfg)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

// loopScenario is one load shape of the -loop harness. device maps a
// request index to its routing key: the uniform scenario spreads across 8
// devices (so every replica sees home traffic), the bursty one hammers a
// single device (so all load homes on one replica and must spill to serve
// well).
type loopScenario struct {
	name   string
	device func(i int) string
}

// runClosedLoop is the -loop load harness: a tiny detector served by a
// verdict-tapped replica-group fleet, n windows per scenario driven
// concurrently through the full path (routing, replica pick, coalescing,
// cache, verdict persistence), reporting throughput, p50/p99 latency and
// the spill share per scenario. It fails when any verdict is lost — the
// store must hold exactly one record per served window.
func runClosedLoop(n int, seed int64, replicas int, pinCores bool, out *os.File) error {
	splits, err := gen.DVFSWithSizes(seed, gen.Sizes{Train: 280, Test: 140, Unknown: 40})
	if err != nil {
		return err
	}
	det, err := detector.New(splits.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(9), detector.WithSeed(seed))
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "hmdbench-loop-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := verdictstore.Open(dir, verdictstore.Config{})
	if err != nil {
		return err
	}
	defer store.Close()
	fleet, err := serve.NewFleet(map[string]*detector.Detector{"dvfs-rf": det},
		serve.Config{
			Verdicts: store,
			Replicas: replicas,
			// The harness measures the serving path, not the memo: a warm
			// cache would turn the loop into a hashmap benchmark.
			CacheSize:  -1,
			SpillDepth: 1,
			PinCores:   pinCores,
		})
	if err != nil {
		return err
	}
	defer fleet.Close()

	scenarios := []loopScenario{
		{name: "uniform", device: func(i int) string { return fmt.Sprintf("bench-%d", i%8) }},
		{name: "bursty", device: func(i int) string { return "bench-hot" }},
	}
	const workers = 8
	ctx := context.Background()
	served := int64(0)
	for _, sc := range scenarios {
		var (
			wg        sync.WaitGroup
			rejected  atomic.Int64
			spilled   atomic.Int64
			latencies = make([][]time.Duration, workers)
			firstErr  atomic.Pointer[error]
		)
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lats := make([]time.Duration, 0, n/workers+1)
				for i := w; i < n; i += workers {
					smp := splits.Test.At(i % splits.Test.Len())
					t0 := time.Now()
					res, err := fleet.Assess(ctx, serve.AssessSpec{
						Device:   sc.device(i),
						Features: smp.Features,
						Source:   "assess",
					})
					if err != nil {
						err = fmt.Errorf("%s window %d: %w", sc.name, i, err)
						firstErr.CompareAndSwap(nil, &err)
						return
					}
					lats = append(lats, time.Since(t0))
					if res.Result.Decision == detector.Reject {
						rejected.Add(1)
					}
					if res.Spilled {
						spilled.Add(1)
					}
				}
				latencies[w] = lats
			}(w)
		}
		wg.Wait()
		if errp := firstErr.Load(); errp != nil {
			return *errp
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		var all []time.Duration
		for _, lats := range latencies {
			all = append(all, lats...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		served += int64(len(all))
		throughput := float64(len(all)) / elapsed.Seconds()
		// Heap allocations across the whole scenario, per served window —
		// the closed-loop view of the request path's alloc budget.
		allocsPer := float64(ms1.Mallocs-ms0.Mallocs) / float64(len(all))
		fmt.Fprintf(out, "closed loop [%-7s x%d replica(s)]: %d windows in %v — %.0f verdicts/s (p50 %v, p99 %v, p999 %v, %.1f%% spilled, %d rejected, %.1f allocs/op)\n",
			sc.name, replicas, len(all), elapsed.Round(time.Millisecond), throughput,
			percentile(all, 500).Round(time.Microsecond), percentile(all, 990).Round(time.Microsecond),
			percentile(all, 999).Round(time.Microsecond),
			100*float64(spilled.Load())/float64(len(all)), rejected.Load(), allocsPer)
	}
	st := store.Stats()
	if st.Records != served {
		return fmt.Errorf("verdict store holds %d records, served %d", st.Records, served)
	}
	fmt.Fprintf(out, "verdict store: %d records in %d segment(s)\n", st.Records, st.Segments)
	return nil
}

// writeMemProfile dumps an end-of-run heap profile after a final GC, so
// the profile shows retained memory rather than collectable garbage.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmdbench: memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "hmdbench: memprofile: %v\n", err)
	}
}

// percentile reads the p-th permille (p50 = 500, p999 = 999) off a
// sorted latency slice.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 1000
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func dumpTSNE(r *exp.TSNEResult, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("fig8_%s.csv", strings.ToLower(r.Dataset)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "x,y,label,group,app"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(f, "%g,%g,%d,%s,%s\n", p.X, p.Y, p.Label, p.Group, p.App); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s (%d points)\n", path, len(r.Points))
	return nil
}
