// Command hmdbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index).
//
// Usage:
//
//	hmdbench [-exp all|T1|F4|F5|F7a|F7b|F8|F9a|F9b|H|A1|A2|A3]
//	         [-scale 1.0] [-seed 1] [-m 25] [-tsne-csv dir]
//
// -scale 1.0 reproduces the paper's full Table I sizes (the HPC dataset has
// 63k samples; the full run takes a few minutes). Smaller scales give quick
// qualitative runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"trusthmd/internal/exp"
)

func main() {
	var (
		which   = flag.String("exp", "all", "experiment id (T1,F4,F5,F7a,F7b,F8,F9a,F9b,H,A1,A2,A3,A4,A5,E1,E2) or 'all'")
		scale   = flag.Float64("scale", 1.0, "fraction of the paper's Table I split sizes")
		seed    = flag.Int64("seed", 1, "random seed")
		m       = flag.Int("m", 25, "ensemble size")
		tsneCSV = flag.String("tsne-csv", "", "directory to dump Fig. 8 embedding coordinates as CSV")
	)
	flag.Parse()

	cfg := exp.Config{Seed: *seed, Scale: *scale, M: *m}
	ids := strings.Split(*which, ",")
	if *which == "all" {
		ids = []string{"T1", "F4", "F5", "F7a", "F7b", "F8", "F9a", "F9b", "H", "A1", "A2", "A3", "A4", "A5", "E1", "E2"}
	}
	for _, id := range ids {
		if err := run(strings.TrimSpace(id), cfg, *tsneCSV); err != nil {
			fmt.Fprintf(os.Stderr, "hmdbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func run(id string, cfg exp.Config, tsneCSV string) error {
	type renderer interface{ Render() string }
	var (
		res renderer
		err error
	)
	switch id {
	case "T1":
		res, err = exp.TableI(cfg)
	case "F4":
		res, err = exp.Fig4(cfg)
	case "F5":
		res, err = exp.Fig5(cfg)
	case "F7a":
		res, err = exp.Fig7a(cfg)
	case "F7b":
		res, err = exp.Fig7b(cfg)
	case "F8":
		for _, which := range []string{"DVFS", "HPC"} {
			r, err := exp.Fig8(cfg, which)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
			if tsneCSV != "" {
				if err := dumpTSNE(r, tsneCSV); err != nil {
					return err
				}
			}
		}
		return nil
	case "F9a":
		res, err = exp.Fig9a(cfg)
	case "F9b":
		res, err = exp.Fig9b(cfg)
	case "H":
		res, err = exp.Headlines(cfg)
	case "A1":
		res, err = exp.AblationPlatt(cfg)
	case "A2":
		res, err = exp.AblationPosterior(cfg)
	case "A3":
		res, err = exp.AblationDiversity(cfg)
	case "A4":
		res, err = exp.AblationFamilies(cfg)
	case "A5":
		res, err = exp.AblationSources(cfg)
	case "E1":
		res, err = exp.EMGeneralization(cfg)
	case "E2":
		res, err = exp.GovernorSensitivity(cfg)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

func dumpTSNE(r *exp.TSNEResult, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("fig8_%s.csv", strings.ToLower(r.Dataset)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "x,y,label,group,app"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(f, "%g,%g,%d,%s,%s\n", p.X, p.Y, p.Label, p.Group, p.App); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s (%d points)\n", path, len(r.Points))
	return nil
}
