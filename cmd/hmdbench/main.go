// Command hmdbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index).
//
// Usage:
//
//	hmdbench [-exp all|T1|F4|F5|F7a|F7b|F8|F9a|F9b|H|A1|A2|A3]
//	         [-scale 1.0] [-seed 1] [-m 25] [-tsne-csv dir]
//	hmdbench -loop 2000 [-replicas 4] [-pin-cores]
//	hmdbench -loop 2000 -target http://n1:8080 -target http://n2:8080
//
// Either mode accepts -cpuprofile/-memprofile to dump pprof profiles of
// the whole run.
//
// -scale 1.0 reproduces the paper's full Table I sizes (the HPC dataset has
// 63k samples; the full run takes a few minutes). Smaller scales give quick
// qualitative runs.
//
// -loop N runs the closed-loop serving load harness instead of the
// experiments: train a tiny detector, build a verdict-tapped fleet
// (-replicas controls the group size), drive N windows per scenario
// (uniform devices, then a bursty single device) through the full
// concurrent serving path, and report throughput with p50/p99/p999
// latency, heap allocs per window, and the replica spill share per
// scenario, plus verdict-store occupancy. A shed window (queue full) is
// retried with bounded backoff, and the per-scenario retry count is
// reported — zero under healthy sizing.
//
// With -target (repeatable, or comma-separated) the same load shapes are
// driven over HTTP instead: POST /v1/assess round-robin across the given
// daemons — point it at the nodes of a cluster to load the whole fleet
// through every entry point at once. A 503 shed is retried where the
// server's Retry-After header says (bounded: at most 8 attempts, delays
// capped at 2s), and the per-scenario retry count is reported alongside
// throughput and latency.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trusthmd/internal/exp"
	"trusthmd/internal/gen"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/serve"
	"trusthmd/pkg/verdictstore"
)

func main() {
	var (
		which    = flag.String("exp", "all", "experiment id (T1,F4,F5,F7a,F7b,F8,F9a,F9b,H,A1,A2,A3,A4,A5,E1,E2) or 'all'")
		scale    = flag.Float64("scale", 1.0, "fraction of the paper's Table I split sizes")
		seed     = flag.Int64("seed", 1, "random seed")
		m        = flag.Int("m", 25, "ensemble size")
		tsneCSV  = flag.String("tsne-csv", "", "directory to dump Fig. 8 embedding coordinates as CSV")
		loopN    = flag.Int("loop", 0, "closed-loop load harness: assess N windows per scenario through a verdict-tapped fleet and report throughput + p50/p99/p999 + allocs/op (skips -exp)")
		replicas = flag.Int("replicas", 1, "replica-group size for the -loop fleet (drives spill routing under the bursty scenario)")
		pinCores = flag.Bool("pin-cores", false, "pin each -loop replica's flusher thread to its own CPU core (Linux; no-op elsewhere)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	)
	var targets targetFlags
	flag.Var(&targets, "target", "daemon base URL for the -loop HTTP mode (repeatable or comma-separated; round-robin across all)")
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hmdbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hmdbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProf)

	if *loopN > 0 {
		var err error
		if len(targets) > 0 {
			err = runHTTPLoop(*loopN, *seed, targets, os.Stdout)
		} else {
			err = runClosedLoop(*loopN, *seed, *replicas, *pinCores, os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hmdbench: loop: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(targets) > 0 {
		fmt.Fprintln(os.Stderr, "hmdbench: -target needs -loop N")
		os.Exit(1)
	}

	cfg := exp.Config{Seed: *seed, Scale: *scale, M: *m}
	ids := strings.Split(*which, ",")
	if *which == "all" {
		ids = []string{"T1", "F4", "F5", "F7a", "F7b", "F8", "F9a", "F9b", "H", "A1", "A2", "A3", "A4", "A5", "E1", "E2"}
	}
	for _, id := range ids {
		if err := run(strings.TrimSpace(id), cfg, *tsneCSV); err != nil {
			fmt.Fprintf(os.Stderr, "hmdbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func run(id string, cfg exp.Config, tsneCSV string) error {
	type renderer interface{ Render() string }
	var (
		res renderer
		err error
	)
	switch id {
	case "T1":
		res, err = exp.TableI(cfg)
	case "F4":
		res, err = exp.Fig4(cfg)
	case "F5":
		res, err = exp.Fig5(cfg)
	case "F7a":
		res, err = exp.Fig7a(cfg)
	case "F7b":
		res, err = exp.Fig7b(cfg)
	case "F8":
		for _, which := range []string{"DVFS", "HPC"} {
			r, err := exp.Fig8(cfg, which)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
			if tsneCSV != "" {
				if err := dumpTSNE(r, tsneCSV); err != nil {
					return err
				}
			}
		}
		return nil
	case "F9a":
		res, err = exp.Fig9a(cfg)
	case "F9b":
		res, err = exp.Fig9b(cfg)
	case "H":
		res, err = exp.Headlines(cfg)
	case "A1":
		res, err = exp.AblationPlatt(cfg)
	case "A2":
		res, err = exp.AblationPosterior(cfg)
	case "A3":
		res, err = exp.AblationDiversity(cfg)
	case "A4":
		res, err = exp.AblationFamilies(cfg)
	case "A5":
		res, err = exp.AblationSources(cfg)
	case "E1":
		res, err = exp.EMGeneralization(cfg)
	case "E2":
		res, err = exp.GovernorSensitivity(cfg)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

// loopScenario is one load shape of the -loop harness. device maps a
// request index to its routing key: the uniform scenario spreads across 8
// devices (so every replica sees home traffic), the bursty one hammers a
// single device (so all load homes on one replica and must spill to serve
// well).
type loopScenario struct {
	name   string
	device func(i int) string
}

func loopScenarios() []loopScenario {
	return []loopScenario{
		{name: "uniform", device: func(i int) string { return fmt.Sprintf("bench-%d", i%8) }},
		{name: "bursty", device: func(i int) string { return "bench-hot" }},
	}
}

// targetFlags collects -target URLs (repeatable, each possibly
// comma-separated).
type targetFlags []string

func (t *targetFlags) String() string { return strings.Join(*t, ",") }

func (t *targetFlags) Set(v string) error {
	for _, u := range strings.Split(v, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		*t = append(*t, u)
	}
	return nil
}

// The bounded retry policy both loop modes share: a shed (ErrQueueFull in
// process, 503 over HTTP) is backpressure, not failure — the harness
// retries where the server's Retry-After header says, but never more than
// maxRetryAttempts times and never sleeping longer than maxRetryDelay per
// attempt, so a dead fleet fails the run instead of hanging it.
const (
	maxRetryAttempts  = 8
	maxRetryDelay     = 2 * time.Second
	defaultRetryDelay = 50 * time.Millisecond
)

// parseRetryAfter turns a Retry-After header into a bounded delay.
// Only the delta-seconds form is honored (the HTTP-date form is not worth
// a clock comparison in a load tool); absent or malformed values fall
// back to defaultRetryDelay, and everything is capped at maxRetryDelay.
func parseRetryAfter(h string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return defaultRetryDelay
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryDelay {
		return maxRetryDelay
	}
	return d
}

// assessWithRetry drives one window through the in-process fleet,
// retrying sheds with doubling backoff. It returns how many retries the
// window needed.
func assessWithRetry(ctx context.Context, fleet *serve.Fleet, spec serve.AssessSpec) (serve.AssessOutcome, int, error) {
	delay := time.Millisecond
	for attempt := 0; ; attempt++ {
		res, err := fleet.Assess(ctx, spec)
		if !errors.Is(err, serve.ErrQueueFull) || attempt == maxRetryAttempts {
			return res, attempt, err
		}
		time.Sleep(delay)
		if delay *= 2; delay > maxRetryDelay {
			delay = maxRetryDelay
		}
	}
}

// runClosedLoop is the -loop load harness: a tiny detector served by a
// verdict-tapped replica-group fleet, n windows per scenario driven
// concurrently through the full path (routing, replica pick, coalescing,
// cache, verdict persistence), reporting throughput, p50/p99 latency and
// the spill share per scenario. It fails when any verdict is lost — the
// store must hold exactly one record per served window.
func runClosedLoop(n int, seed int64, replicas int, pinCores bool, out *os.File) error {
	splits, err := gen.DVFSWithSizes(seed, gen.Sizes{Train: 280, Test: 140, Unknown: 40})
	if err != nil {
		return err
	}
	det, err := detector.New(splits.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(9), detector.WithSeed(seed))
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "hmdbench-loop-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := verdictstore.Open(dir, verdictstore.Config{})
	if err != nil {
		return err
	}
	defer store.Close()
	fleet, err := serve.NewFleet(map[string]*detector.Detector{"dvfs-rf": det},
		serve.Config{
			Verdicts: store,
			Replicas: replicas,
			// The harness measures the serving path, not the memo: a warm
			// cache would turn the loop into a hashmap benchmark.
			CacheSize:  -1,
			SpillDepth: 1,
			PinCores:   pinCores,
		})
	if err != nil {
		return err
	}
	defer fleet.Close()

	const workers = 8
	ctx := context.Background()
	served := int64(0)
	for _, sc := range loopScenarios() {
		var (
			wg        sync.WaitGroup
			rejected  atomic.Int64
			spilled   atomic.Int64
			retried   atomic.Int64
			latencies = make([][]time.Duration, workers)
			firstErr  atomic.Pointer[error]
		)
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lats := make([]time.Duration, 0, n/workers+1)
				for i := w; i < n; i += workers {
					smp := splits.Test.At(i % splits.Test.Len())
					t0 := time.Now()
					res, retries, err := assessWithRetry(ctx, fleet, serve.AssessSpec{
						Device:   sc.device(i),
						Features: smp.Features,
						Source:   "assess",
					})
					retried.Add(int64(retries))
					if err != nil {
						err = fmt.Errorf("%s window %d: %w", sc.name, i, err)
						firstErr.CompareAndSwap(nil, &err)
						return
					}
					// Latency includes the retries: the cost of a shed is
					// part of the window's serving time, not noise.
					lats = append(lats, time.Since(t0))
					if res.Result.Decision == detector.Reject {
						rejected.Add(1)
					}
					if res.Spilled {
						spilled.Add(1)
					}
				}
				latencies[w] = lats
			}(w)
		}
		wg.Wait()
		if errp := firstErr.Load(); errp != nil {
			return *errp
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		var all []time.Duration
		for _, lats := range latencies {
			all = append(all, lats...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		served += int64(len(all))
		throughput := float64(len(all)) / elapsed.Seconds()
		// Heap allocations across the whole scenario, per served window —
		// the closed-loop view of the request path's alloc budget.
		allocsPer := float64(ms1.Mallocs-ms0.Mallocs) / float64(len(all))
		fmt.Fprintf(out, "closed loop [%-7s x%d replica(s)]: %d windows in %v — %.0f verdicts/s (p50 %v, p99 %v, p999 %v, %.1f%% spilled, %d rejected, %d retried, %.1f allocs/op)\n",
			sc.name, replicas, len(all), elapsed.Round(time.Millisecond), throughput,
			percentile(all, 500).Round(time.Microsecond), percentile(all, 990).Round(time.Microsecond),
			percentile(all, 999).Round(time.Microsecond),
			100*float64(spilled.Load())/float64(len(all)), rejected.Load(), retried.Load(), allocsPer)
	}
	st := store.Stats()
	if st.Records != served {
		return fmt.Errorf("verdict store holds %d records, served %d", st.Records, served)
	}
	fmt.Fprintf(out, "verdict store: %d records in %d segment(s)\n", st.Records, st.Segments)
	return nil
}

// runHTTPLoop is the -target mode: the same load shapes as the in-process
// harness, driven as POST /v1/assess round-robin over the given daemons —
// against a cluster, this loads the whole fleet through every entry point
// at once, forwarding included. 503 sheds are retried per the server's
// Retry-After (bounded), and the per-scenario retry count is reported.
func runHTTPLoop(n int, seed int64, targets []string, out *os.File) error {
	splits, err := gen.DVFSWithSizes(seed, gen.Sizes{Train: 280, Test: 140, Unknown: 40})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	const workers = 8
	for _, sc := range loopScenarios() {
		var (
			wg        sync.WaitGroup
			rejected  atomic.Int64
			retried   atomic.Int64
			latencies = make([][]time.Duration, workers)
			firstErr  atomic.Pointer[error]
		)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lats := make([]time.Duration, 0, n/workers+1)
				for i := w; i < n; i += workers {
					smp := splits.Test.At(i % splits.Test.Len())
					t0 := time.Now()
					decision, retries, err := postWindow(client, targets[i%len(targets)], serve.AssessRequest{
						Device:   sc.device(i),
						Features: smp.Features,
					})
					retried.Add(int64(retries))
					if err != nil {
						err = fmt.Errorf("%s window %d: %w", sc.name, i, err)
						firstErr.CompareAndSwap(nil, &err)
						return
					}
					lats = append(lats, time.Since(t0))
					if decision == detector.Reject.String() {
						rejected.Add(1)
					}
				}
				latencies[w] = lats
			}(w)
		}
		wg.Wait()
		if errp := firstErr.Load(); errp != nil {
			return *errp
		}
		elapsed := time.Since(start)
		var all []time.Duration
		for _, lats := range latencies {
			all = append(all, lats...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		throughput := float64(len(all)) / elapsed.Seconds()
		fmt.Fprintf(out, "http loop [%-7s x%d target(s)]: %d windows in %v — %.0f verdicts/s (p50 %v, p99 %v, p999 %v, %d rejected, %d retried)\n",
			sc.name, len(targets), len(all), elapsed.Round(time.Millisecond), throughput,
			percentile(all, 500).Round(time.Microsecond), percentile(all, 990).Round(time.Microsecond),
			percentile(all, 999).Round(time.Microsecond), rejected.Load(), retried.Load())
	}
	return nil
}

// postWindow drives one window through POST /v1/assess, honoring 503 +
// Retry-After with the bounded policy. It returns the server's decision
// string and how many retries the window needed.
func postWindow(client *http.Client, target string, req serve.AssessRequest) (string, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", 0, err
	}
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(target+"/v1/assess", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", attempt, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", attempt, err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var out serve.AssessResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				return "", attempt, fmt.Errorf("%s: bad response: %w", target, err)
			}
			return out.Decision, attempt, nil
		case resp.StatusCode == http.StatusServiceUnavailable && attempt < maxRetryAttempts:
			time.Sleep(parseRetryAfter(resp.Header.Get("Retry-After")))
		default:
			return "", attempt, fmt.Errorf("%s: status %d: %s", target, resp.StatusCode, raw)
		}
	}
}

// writeMemProfile dumps an end-of-run heap profile after a final GC, so
// the profile shows retained memory rather than collectable garbage.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmdbench: memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "hmdbench: memprofile: %v\n", err)
	}
}

// percentile reads the p-th permille (p50 = 500, p999 = 999) off a
// sorted latency slice.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 1000
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func dumpTSNE(r *exp.TSNEResult, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("fig8_%s.csv", strings.ToLower(r.Dataset)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "x,y,label,group,app"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(f, "%g,%g,%d,%s,%s\n", p.X, p.Y, p.Label, p.Group, p.App); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s (%d points)\n", path, len(r.Points))
	return nil
}
