// Command hmdbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index).
//
// Usage:
//
//	hmdbench [-exp all|T1|F4|F5|F7a|F7b|F8|F9a|F9b|H|A1|A2|A3]
//	         [-scale 1.0] [-seed 1] [-m 25] [-tsne-csv dir]
//	hmdbench -loop 2000
//
// -scale 1.0 reproduces the paper's full Table I sizes (the HPC dataset has
// 63k samples; the full run takes a few minutes). Smaller scales give quick
// qualitative runs.
//
// -loop N runs the closed-loop serving smoke instead of the experiments:
// train a tiny detector, build a verdict-tapped fleet, assess N windows
// through the full serving path and report throughput plus verdict-store
// occupancy.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"trusthmd/internal/exp"
	"trusthmd/internal/gen"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/serve"
	"trusthmd/pkg/verdictstore"
)

func main() {
	var (
		which   = flag.String("exp", "all", "experiment id (T1,F4,F5,F7a,F7b,F8,F9a,F9b,H,A1,A2,A3,A4,A5,E1,E2) or 'all'")
		scale   = flag.Float64("scale", 1.0, "fraction of the paper's Table I split sizes")
		seed    = flag.Int64("seed", 1, "random seed")
		m       = flag.Int("m", 25, "ensemble size")
		tsneCSV = flag.String("tsne-csv", "", "directory to dump Fig. 8 embedding coordinates as CSV")
		loopN   = flag.Int("loop", 0, "closed-loop smoke: assess N windows through a verdict-tapped fleet and report throughput (skips -exp)")
	)
	flag.Parse()

	if *loopN > 0 {
		if err := runClosedLoop(*loopN, *seed, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hmdbench: loop: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := exp.Config{Seed: *seed, Scale: *scale, M: *m}
	ids := strings.Split(*which, ",")
	if *which == "all" {
		ids = []string{"T1", "F4", "F5", "F7a", "F7b", "F8", "F9a", "F9b", "H", "A1", "A2", "A3", "A4", "A5", "E1", "E2"}
	}
	for _, id := range ids {
		if err := run(strings.TrimSpace(id), cfg, *tsneCSV); err != nil {
			fmt.Fprintf(os.Stderr, "hmdbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func run(id string, cfg exp.Config, tsneCSV string) error {
	type renderer interface{ Render() string }
	var (
		res renderer
		err error
	)
	switch id {
	case "T1":
		res, err = exp.TableI(cfg)
	case "F4":
		res, err = exp.Fig4(cfg)
	case "F5":
		res, err = exp.Fig5(cfg)
	case "F7a":
		res, err = exp.Fig7a(cfg)
	case "F7b":
		res, err = exp.Fig7b(cfg)
	case "F8":
		for _, which := range []string{"DVFS", "HPC"} {
			r, err := exp.Fig8(cfg, which)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
			if tsneCSV != "" {
				if err := dumpTSNE(r, tsneCSV); err != nil {
					return err
				}
			}
		}
		return nil
	case "F9a":
		res, err = exp.Fig9a(cfg)
	case "F9b":
		res, err = exp.Fig9b(cfg)
	case "H":
		res, err = exp.Headlines(cfg)
	case "A1":
		res, err = exp.AblationPlatt(cfg)
	case "A2":
		res, err = exp.AblationPosterior(cfg)
	case "A3":
		res, err = exp.AblationDiversity(cfg)
	case "A4":
		res, err = exp.AblationFamilies(cfg)
	case "A5":
		res, err = exp.AblationSources(cfg)
	case "E1":
		res, err = exp.EMGeneralization(cfg)
	case "E2":
		res, err = exp.GovernorSensitivity(cfg)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

// runClosedLoop is the -loop smoke: a tiny detector served by a
// verdict-tapped fleet, n windows assessed through the full path
// (routing, coalescer-adjacent assess, cache, verdict persistence), and
// a throughput report. It fails when any verdict is lost — the store
// must hold exactly one record per served window.
func runClosedLoop(n int, seed int64, out *os.File) error {
	splits, err := gen.DVFSWithSizes(seed, gen.Sizes{Train: 280, Test: 140, Unknown: 40})
	if err != nil {
		return err
	}
	det, err := detector.New(splits.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(9), detector.WithSeed(seed))
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "hmdbench-loop-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := verdictstore.Open(dir, verdictstore.Config{})
	if err != nil {
		return err
	}
	defer store.Close()
	fleet, err := serve.NewFleet(map[string]*detector.Detector{"dvfs-rf": det},
		serve.Config{Verdicts: store})
	if err != nil {
		return err
	}
	defer fleet.Close()

	ctx := context.Background()
	rejected := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		smp := splits.Test.At(i % splits.Test.Len())
		res, err := fleet.Assess(ctx, serve.AssessSpec{
			Device:   fmt.Sprintf("bench-%d", i%8),
			Features: smp.Features,
			Source:   "assess",
		})
		if err != nil {
			return fmt.Errorf("window %d: %w", i, err)
		}
		if res.Result.Decision == detector.Reject {
			rejected++
		}
	}
	elapsed := time.Since(start)
	st := store.Stats()
	if st.Records != int64(n) {
		return fmt.Errorf("verdict store holds %d records, served %d", st.Records, n)
	}
	throughput := float64(n) / elapsed.Seconds()
	fmt.Fprintf(out, "closed loop: %d windows in %v — %.0f verdicts/s (%d rejected, %d stored in %d segment(s))\n",
		n, elapsed.Round(time.Millisecond), throughput, rejected, st.Records, st.Segments)
	return nil
}

func dumpTSNE(r *exp.TSNEResult, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("fig8_%s.csv", strings.ToLower(r.Dataset)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "x,y,label,group,app"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(f, "%g,%g,%d,%s,%s\n", p.X, p.Y, p.Label, p.Group, p.App); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s (%d points)\n", path, len(r.Points))
	return nil
}
