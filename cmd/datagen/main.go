// Command datagen generates the synthetic DVFS and HPC datasets (Table I
// sizes by default) and writes the train / known-test / unknown splits to
// CSV files, one directory per dataset.
//
// Usage:
//
//	datagen [-out data] [-seed 1] [-scale 1.0] [-dataset both|dvfs|hpc]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"trusthmd/internal/gen"
	"trusthmd/pkg/dataset"
)

func main() {
	var (
		out   = flag.String("out", "data", "output directory")
		seed  = flag.Int64("seed", 1, "random seed")
		scale = flag.Float64("scale", 1.0, "fraction of the paper's Table I sizes")
		which = flag.String("dataset", "both", "dvfs, hpc, or both")
	)
	flag.Parse()
	if err := run(*out, *seed, *scale, *which); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out string, seed int64, scale float64, which string) error {
	if scale <= 0 {
		return fmt.Errorf("scale %v must be positive", scale)
	}
	scaled := func(s gen.Sizes) gen.Sizes {
		f := func(n int) int {
			v := int(math.Round(float64(n) * scale))
			if v < 20 {
				v = 20
			}
			return v
		}
		return gen.Sizes{Train: f(s.Train), Test: f(s.Test), Unknown: f(s.Unknown)}
	}
	if which == "both" || which == "dvfs" {
		s, err := gen.DVFSWithSizes(seed, scaled(gen.TableIDVFS))
		if err != nil {
			return err
		}
		if err := writeSplits(filepath.Join(out, "dvfs"), s); err != nil {
			return err
		}
	}
	if which == "both" || which == "hpc" {
		s, err := gen.HPCWithSizes(seed+1, scaled(gen.TableIHPC))
		if err != nil {
			return err
		}
		if err := writeSplits(filepath.Join(out, "hpc"), s); err != nil {
			return err
		}
	}
	if which != "both" && which != "dvfs" && which != "hpc" {
		return fmt.Errorf("unknown dataset %q", which)
	}
	return nil
}

func writeSplits(dir string, s gen.Splits) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, e := range []struct {
		name string
		d    *dataset.Dataset
	}{
		{"train.csv", s.Train},
		{"test_known.csv", s.Test},
		{"unknown.csv", s.Unknown},
	} {
		path := filepath.Join(dir, e.name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := e.d.WriteCSV(f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d samples, %d features)\n", path, e.d.Len(), e.d.Dim())
	}
	return nil
}
