package main

import (
	"os"
	"path/filepath"
	"testing"

	"trusthmd/pkg/dataset"
)

func TestRunWritesAllSplits(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1, 0.01, "both"); err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"dvfs", "hpc"} {
		for _, name := range []string{"train.csv", "test_known.csv", "unknown.csv"} {
			path := filepath.Join(dir, ds, name)
			f, err := os.Open(path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			d, err := dataset.ReadCSV(f)
			f.Close()
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if d.Len() == 0 {
				t.Fatalf("%s: empty dataset", path)
			}
		}
	}
}

func TestRunSingleDataset(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1, 0.01, "dvfs"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "hpc")); !os.IsNotExist(err) {
		t.Fatal("hpc directory should not exist")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(t.TempDir(), 1, 0, "both"); err == nil {
		t.Fatal("expected scale error")
	}
	if err := run(t.TempDir(), 1, 0.01, "bogus"); err == nil {
		t.Fatal("expected dataset error")
	}
}
