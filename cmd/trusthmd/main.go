// Command trusthmd runs the full trusted-HMD demo: it trains (or loads) the
// DVFS detector, then streams live simulated telemetry from a mix of known
// applications and zero-day malware through the online detector, printing
// each decision as it is made (the deployment loop of the paper's Fig. 1).
//
// With -save the trained detector is serialized after training; with -load
// a previously saved detector serves immediately without retraining — the
// train-once-serve-many workflow of a production deployment. A -save
// snapshot is also the handoff to the serving daemon: `trusthmdd -load
// detector.gob` (cmd/trusthmdd) serves the same detector over HTTP with
// request coalescing.
//
// Usage:
//
//	trusthmd [-model rf|lr|svm|nb|knn] [-threshold 0.40] [-windows 40]
//	         [-seed 1] [-save detector.gob] [-load detector.gob]
//	trusthmdd -load detector.gob             # then serve it over HTTP
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"trusthmd/internal/dvfs"
	"trusthmd/internal/gen"
	"trusthmd/internal/workload"
	"trusthmd/pkg/detector"

	// Registers the gradient-boosted-stumps family so -model gbm trains and
	// -save writes blobs that trusthmdd (which blank-imports it too) serves.
	_ "trusthmd/pkg/model/gbm"
)

func main() {
	var (
		model     = flag.String("model", "rf", "base classifier registry name (see pkg/detector)")
		threshold = flag.Float64("threshold", detector.DefaultThreshold, "entropy rejection threshold")
		windows   = flag.Int("windows", 40, "number of telemetry windows to stream")
		seed      = flag.Int64("seed", 1, "random seed")
		savePath  = flag.String("save", "", "write the trained detector to this file")
		loadPath  = flag.String("load", "", "serve a previously saved detector instead of training")
	)
	flag.Parse()
	// A saved detector carries its own threshold; only an explicit
	// -threshold flag overrides it after -load.
	thresholdSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "threshold" {
			thresholdSet = true
		}
	})
	if err := run(*model, *threshold, thresholdSet, *windows, *seed, *savePath, *loadPath); err != nil {
		fmt.Fprintln(os.Stderr, "trusthmd:", err)
		os.Exit(1)
	}
}

func run(model string, threshold float64, thresholdSet bool, windows int, seed int64, savePath, loadPath string) error {
	det, err := obtainDetector(model, threshold, thresholdSet, seed, loadPath)
	if err != nil {
		return err
	}
	if savePath != "" {
		// Atomic (temp file + rename): a concurrent `trusthmdd -watch` must
		// never observe a torn gob mid-write.
		if err := det.SaveFile(savePath); err != nil {
			return err
		}
		fmt.Printf("saved trained detector to %s (serve it: trusthmdd -load %s)\n", savePath, savePath)
	}

	sim, err := dvfs.NewSimulator(dvfs.DefaultConfig())
	if err != nil {
		return err
	}
	online, err := detector.NewOnline(det, detector.StreamConfig{
		Levels: sim.Config().Levels,
		Window: sim.Config().Steps,
	})
	if err != nil {
		return err
	}

	// Stream a mix: known benign, known malware, and zero-day workloads.
	apps := workload.DVFSApps()
	var pool []workload.DVFSBehavior
	for _, a := range apps {
		pool = append(pool, a)
	}
	rng := rand.New(rand.NewSource(seed + 99))
	fmt.Printf("streaming %d windows at threshold %.2f (model %s)\n\n", windows, det.Threshold(), det.Model())
	correctOrRejected := 0
	for w := 0; w < windows; w++ {
		app := pool[rng.Intn(len(pool))]
		trace, err := sim.Trace(app, rng)
		if err != nil {
			return err
		}
		for _, st := range trace {
			res, ok, err := online.Push(st)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			status := "OK"
			switch {
			case res.Decision == detector.Reject:
				status = "-> analyst"
				correctOrRejected++
			case res.Prediction == app.Label:
				correctOrRejected++
			default:
				status = "MISCLASSIFIED"
			}
			kind := "known"
			if !app.Known {
				kind = "ZERO-DAY"
			}
			fmt.Printf("window %3d  app=%-14s (%s, truth=%s)  decision=%-7v entropy=%.3f  %s\n",
				w, app.Name, kind, label(app.Label), res.Decision, res.Entropy, status)
		}
	}
	fmt.Printf("\nstats: %d benign, %d malware, %d rejected (%.1f%% of windows)\n",
		online.Stats.Benign, online.Stats.Malware, online.Stats.Rejected,
		100*online.Stats.RejectedFraction())
	fmt.Printf("safe outcomes (correct or routed to analyst): %d/%d\n",
		correctOrRejected, online.Stats.Total())
	return nil
}

// obtainDetector loads a saved detector or trains a fresh one.
func obtainDetector(model string, threshold float64, thresholdSet bool, seed int64, loadPath string) (*detector.Detector, error) {
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		det, err := detector.Load(f)
		if err != nil {
			return nil, err
		}
		fmt.Printf("loaded trained detector from %s (model %s, %d members)\n",
			loadPath, det.Model(), det.Members())
		if thresholdSet {
			return det.WithOptions(detector.WithThreshold(threshold))
		}
		return det, nil
	}

	fmt.Println("training trusted HMD on DVFS telemetry...")
	splits, err := gen.DVFSWithSizes(seed, gen.Sizes{Train: 2100, Test: 700, Unknown: 284})
	if err != nil {
		return nil, err
	}
	opts := []detector.Option{
		detector.WithModel(model),
		detector.WithEnsembleSize(25),
		detector.WithSeed(seed),
		detector.WithThreshold(threshold),
	}
	switch model {
	case "lr", "nb", "knn":
		opts = append(opts, detector.WithMaxFeatures(0.45))
	case "svm":
		opts = append(opts, detector.WithSVMMaxObjective(0.3))
	}
	return detector.New(splits.Train, opts...)
}

func label(l int) string {
	if l == 1 {
		return "malware"
	}
	return "benign"
}
