// Command trusthmd runs the full trusted-HMD demo: it trains the DVFS
// pipeline, then streams live simulated telemetry from a mix of known
// applications and zero-day malware through the online detector, printing
// each decision as it is made (the deployment loop of the paper's Fig. 1).
//
// Usage:
//
//	trusthmd [-model rf|lr|svm] [-threshold 0.40] [-windows 40] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"trusthmd/internal/core"
	"trusthmd/internal/dvfs"
	"trusthmd/internal/gen"
	"trusthmd/internal/hmd"
	"trusthmd/internal/workload"
)

func main() {
	var (
		model     = flag.String("model", "rf", "base classifier: rf, lr, or svm")
		threshold = flag.Float64("threshold", 0.40, "entropy rejection threshold")
		windows   = flag.Int("windows", 40, "number of telemetry windows to stream")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*model, *threshold, *windows, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "trusthmd:", err)
		os.Exit(1)
	}
}

func run(model string, threshold float64, windows int, seed int64) error {
	var m hmd.Model
	switch model {
	case "rf":
		m = hmd.RandomForest
	case "lr":
		m = hmd.LogisticRegression
	case "svm":
		m = hmd.SVM
	default:
		return fmt.Errorf("unknown model %q", model)
	}

	fmt.Println("training trusted HMD on DVFS telemetry...")
	splits, err := gen.DVFSWithSizes(seed, gen.Sizes{Train: 2100, Test: 700, Unknown: 284})
	if err != nil {
		return err
	}
	cfg := hmd.Config{Model: m, M: 25, Seed: seed}
	if m == hmd.LogisticRegression {
		cfg.MaxFeatures = 0.45
	}
	if m == hmd.SVM {
		cfg.SVMMaxObjective = 0.3
	}
	pipeline, err := hmd.Train(splits.Train, cfg)
	if err != nil {
		return err
	}

	sim, err := dvfs.NewSimulator(dvfs.DefaultConfig())
	if err != nil {
		return err
	}
	online, err := hmd.NewOnline(pipeline, hmd.OnlineConfig{
		Threshold: threshold,
		Levels:    sim.Config().Levels,
		Window:    sim.Config().Steps,
	})
	if err != nil {
		return err
	}

	// Stream a mix: known benign, known malware, and zero-day workloads.
	apps := workload.DVFSApps()
	var pool []workload.DVFSBehavior
	for _, a := range apps {
		pool = append(pool, a)
	}
	rng := rand.New(rand.NewSource(seed + 99))
	fmt.Printf("streaming %d windows at threshold %.2f (model %v)\n\n", windows, threshold, m)
	correctOrRejected := 0
	for w := 0; w < windows; w++ {
		app := pool[rng.Intn(len(pool))]
		trace, err := sim.Trace(app, rng)
		if err != nil {
			return err
		}
		for _, st := range trace {
			dec, ok, err := online.Push(st)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			status := "OK"
			switch {
			case dec.Decision == core.DecideReject:
				status = "-> analyst"
				correctOrRejected++
			case int(dec.Decision) == app.Label:
				correctOrRejected++
			default:
				status = "MISCLASSIFIED"
			}
			kind := "known"
			if !app.Known {
				kind = "ZERO-DAY"
			}
			fmt.Printf("window %3d  app=%-14s (%s, truth=%s)  decision=%-7v entropy=%.3f  %s\n",
				w, app.Name, kind, label(app.Label), dec.Decision, dec.Assessment.Entropy, status)
		}
	}
	fmt.Printf("\nstats: %d benign, %d malware, %d rejected (%.1f%% of windows)\n",
		online.Stats.Benign, online.Stats.Malware, online.Stats.Rejected,
		100*online.Stats.RejectedFraction())
	fmt.Printf("safe outcomes (correct or routed to analyst): %d/%d\n",
		correctOrRejected, online.Stats.Total())
	return nil
}

func label(l int) string {
	if l == 1 {
		return "malware"
	}
	return "benign"
}
