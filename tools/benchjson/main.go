// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON snapshot, so benchmark runs can be recorded and
// diffed across commits. It is driven by the Makefile's bench target:
//
//	go test -run '^$' -bench . -benchmem . | go run ./tools/benchjson -out BENCH_<rev>.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line. Pkg is the package the
// benchmark ran in — the bench target spans multiple packages, so the
// attribution is per-benchmark (same-named benchmarks in different
// packages must not collide across snapshots).
type Benchmark struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is the whole run.
type Snapshot struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	snap := Snapshot{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				b.Pkg = pkg
				snap.Benchmarks = append(snap.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// parseLine parses e.g.
//
//	BenchmarkAssessBatch-8   100   752797 ns/op   1234 B/op   56 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, b.NsPerOp > 0
}
