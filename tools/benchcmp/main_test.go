package main

import "testing"

func snap(bs ...Benchmark) Snapshot { return Snapshot{Benchmarks: bs} }

func TestCompareFlagsRegressions(t *testing.T) {
	oldS := snap(
		Benchmark{Name: "BenchmarkA", Pkg: "p", NsPerOp: 10e6},
		Benchmark{Name: "BenchmarkB", Pkg: "p", NsPerOp: 10e6},
		Benchmark{Name: "BenchmarkGone", Pkg: "p", NsPerOp: 5e6},
	)
	newS := snap(
		Benchmark{Name: "BenchmarkA", Pkg: "p", NsPerOp: 14e6}, // +40%: violation
		Benchmark{Name: "BenchmarkB", Pkg: "p", NsPerOp: 11e6}, // +10%: fine
		Benchmark{Name: "BenchmarkNew", Pkg: "p", NsPerOp: 1e6},
	)
	deltas, onlyOld, onlyNew := Compare(oldS, newS, 0.25, 1e6)
	if len(deltas) != 2 {
		t.Fatalf("deltas: %+v", deltas)
	}
	// Sorted worst-first.
	if deltas[0].Key != "p.BenchmarkA" || !deltas[0].Violates {
		t.Fatalf("worst delta: %+v", deltas[0])
	}
	if deltas[1].Key != "p.BenchmarkB" || deltas[1].Violates {
		t.Fatalf("tolerated delta: %+v", deltas[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "p.BenchmarkGone" {
		t.Fatalf("onlyOld: %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "p.BenchmarkNew" {
		t.Fatalf("onlyNew: %v", onlyNew)
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	// A 3x slowdown below the noise floor on both sides is not a violation.
	oldS := snap(Benchmark{Name: "BenchmarkTiny", NsPerOp: 100})
	newS := snap(Benchmark{Name: "BenchmarkTiny", NsPerOp: 300})
	deltas, _, _ := Compare(oldS, newS, 0.25, 1e6)
	if len(deltas) != 1 || deltas[0].Violates {
		t.Fatalf("noise-floor delta flagged: %+v", deltas)
	}
	// ...but crossing the floor on the new side is.
	newS = snap(Benchmark{Name: "BenchmarkTiny", NsPerOp: 2e6})
	deltas, _, _ = Compare(oldS, newS, 0.25, 1e6)
	if !deltas[0].Violates {
		t.Fatalf("floor-crossing regression not flagged: %+v", deltas)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	oldS := snap(Benchmark{Name: "BenchmarkZ", NsPerOp: 0})
	newS := snap(Benchmark{Name: "BenchmarkZ", NsPerOp: 5e6})
	deltas, _, _ := Compare(oldS, newS, 0.25, 1e6)
	if len(deltas) != 1 || deltas[0].Violates || deltas[0].Ratio != 0 {
		t.Fatalf("zero baseline mishandled: %+v", deltas)
	}
}

func TestCompareFlagsAllocRegressions(t *testing.T) {
	oldS := snap(
		Benchmark{Name: "BenchmarkZeroAlloc", Pkg: "p", NsPerOp: 5e6, AllocsPerOp: 0},
		Benchmark{Name: "BenchmarkSmallFlip", Pkg: "p", NsPerOp: 5e6, AllocsPerOp: 1},
		Benchmark{Name: "BenchmarkHeavy", Pkg: "p", NsPerOp: 5e6, AllocsPerOp: 100},
		Benchmark{Name: "BenchmarkHeavyOK", Pkg: "p", NsPerOp: 5e6, AllocsPerOp: 100},
	)
	newS := snap(
		Benchmark{Name: "BenchmarkZeroAlloc", Pkg: "p", NsPerOp: 5e6, AllocsPerOp: 5}, // 0 -> 5: violation
		Benchmark{Name: "BenchmarkSmallFlip", Pkg: "p", NsPerOp: 5e6, AllocsPerOp: 2}, // +1 alloc: tolerated
		Benchmark{Name: "BenchmarkHeavy", Pkg: "p", NsPerOp: 5e6, AllocsPerOp: 140},   // +40%: violation
		Benchmark{Name: "BenchmarkHeavyOK", Pkg: "p", NsPerOp: 5e6, AllocsPerOp: 110}, // +10%: fine
	)
	deltas, _, _ := Compare(oldS, newS, 0.25, 1e6)
	got := map[string]Delta{}
	for _, d := range deltas {
		got[d.Key] = d
	}
	if !got["p.BenchmarkZeroAlloc"].AllocViolates {
		t.Fatalf("0 -> 5 allocs not flagged: %+v", got["p.BenchmarkZeroAlloc"])
	}
	if got["p.BenchmarkSmallFlip"].AllocViolates {
		t.Fatalf("1 -> 2 allocs flagged despite absolute guard: %+v", got["p.BenchmarkSmallFlip"])
	}
	if !got["p.BenchmarkHeavy"].AllocViolates {
		t.Fatalf("+40%% allocs not flagged: %+v", got["p.BenchmarkHeavy"])
	}
	if got["p.BenchmarkHeavyOK"].AllocViolates {
		t.Fatalf("+10%% allocs flagged: %+v", got["p.BenchmarkHeavyOK"])
	}
	for _, d := range deltas {
		if d.Violates {
			t.Fatalf("no ns/op violation expected: %+v", d)
		}
	}
}

func TestTrimRev(t *testing.T) {
	if got := trimRev("some/dir/BENCH_abc1234.json"); got != "abc1234" {
		t.Fatalf("trimRev: %q", got)
	}
}
