// Command benchcmp compares two BENCH_<rev>.json snapshots (written by
// tools/benchjson via `make bench`) and exits non-zero when any benchmark
// regressed beyond the tolerance — the CI gate on the repository's
// performance trajectory.
//
//	go run ./tools/benchcmp -new BENCH_abc1234.json            # old auto-detected
//	go run ./tools/benchcmp -old BENCH_prev.json -new BENCH_cur.json
//
// With -old omitted, the baseline is the committed snapshot whose revision
// is the nearest ancestor of HEAD (resolved through `git rev-list`), so a
// CI run on any branch compares against the latest snapshot merged before
// it. Benchmarks are matched by (package, name); ones present on only one
// side are reported but never fail the run, and neither do benchmarks
// faster than -min-ns (single-iteration timings of micro-benchmarks are
// dominated by scheduler noise).
//
// Absolute ns/op only transfers between runs on the same hardware, so when
// the two snapshots record different CPUs the comparison is reported but
// regressions only warn (exit 0) unless -strict forces the gate. The gate
// therefore hardens automatically once a baseline produced on the CI
// runner hardware is committed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Benchmark mirrors tools/benchjson's wire form.
type Benchmark struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot mirrors tools/benchjson's wire form.
type Snapshot struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Delta is one compared benchmark.
type Delta struct {
	Key      string
	OldNs    float64
	NewNs    float64
	Ratio    float64 // new/old - 1; positive = slower
	Violates bool

	// Allocation trajectory: the zero-allocation hot-path contract is
	// gated the same way as ns/op. AllocViolates flags a >tolerance
	// allocs/op growth (with a 2-alloc absolute guard so a 0→1 or 1→2
	// flip from, say, one new result slice does not fail CI).
	OldAllocs     float64
	NewAllocs     float64
	AllocRatio    float64
	AllocViolates bool
}

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline snapshot (default: latest committed BENCH_<rev>.json ancestor of HEAD)")
		newPath   = flag.String("new", "", "snapshot under test (required)")
		tolerance = flag.Float64("tolerance", 0.25, "max allowed slowdown fraction (ns/op and allocs/op) before failing")
		minNs     = flag.Float64("min-ns", 1e6, "ignore benchmarks faster than this many ns/op (noise floor)")
		strict    = flag.Bool("strict", false, "fail on regressions even when the snapshots were recorded on different CPUs")
		trend     = flag.Bool("trend", true, "print the per-benchmark ns/op trajectory across every committed BENCH_<rev>.json")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -new is required")
		os.Exit(2)
	}
	if *oldPath == "" {
		p, err := latestCommittedSnapshot(*newPath)
		if err != nil {
			// A repo with no prior snapshot has no trajectory to guard yet.
			fmt.Printf("benchcmp: no baseline snapshot found (%v); nothing to compare\n", err)
			return
		}
		*oldPath = p
	}
	oldSnap, err := readSnapshot(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newSnap, err := readSnapshot(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	deltas, onlyOld, onlyNew := Compare(oldSnap, newSnap, *tolerance, *minNs)
	fmt.Printf("benchcmp: %s -> %s (tolerance %.0f%%, noise floor %s)\n",
		*oldPath, *newPath, *tolerance*100, fmtNs(*minNs))
	violations := 0
	for _, d := range deltas {
		mark := " "
		if d.Violates || d.AllocViolates {
			mark = "!"
			violations++
		}
		line := fmt.Sprintf("%s %-55s %12s -> %12s  %+6.1f%%", mark, d.Key, fmtNs(d.OldNs), fmtNs(d.NewNs), d.Ratio*100)
		if d.OldAllocs > 0 || d.NewAllocs > 0 {
			line += fmt.Sprintf("  %6.0f -> %6.0f allocs", d.OldAllocs, d.NewAllocs)
			if d.AllocViolates {
				line += fmt.Sprintf(" (%+.0f%%)", d.AllocRatio*100)
			}
		}
		fmt.Println(line)
	}
	for _, k := range onlyOld {
		fmt.Printf("- %-55s removed\n", k)
	}
	for _, k := range onlyNew {
		fmt.Printf("+ %-55s new\n", k)
	}
	if *trend {
		printTrend(*newPath, newSnap)
	}
	if violations > 0 {
		crossEnv := oldSnap.CPU != "" && newSnap.CPU != "" && oldSnap.CPU != newSnap.CPU
		if crossEnv && !*strict {
			fmt.Printf("benchcmp: %d benchmark(s) regressed more than %.0f%%, but the baseline was recorded on\n"+
				"different hardware (%q vs %q) — warning only; commit a snapshot from this\n"+
				"environment to arm the gate, or pass -strict to fail anyway\n",
				violations, *tolerance*100, oldSnap.CPU, newSnap.CPU)
			return
		}
		fmt.Fprintf(os.Stderr, "benchcmp: %d benchmark(s) regressed more than %.0f%%\n", violations, *tolerance*100)
		os.Exit(1)
	}
	fmt.Println("benchcmp: no regression beyond tolerance")
}

// Compare matches benchmarks by (pkg, name) and flags regressions beyond
// tolerance. Benchmarks below the minNs noise floor in BOTH snapshots are
// compared but never flagged.
func Compare(oldSnap, newSnap Snapshot, tolerance, minNs float64) (deltas []Delta, onlyOld, onlyNew []string) {
	key := func(b Benchmark) string {
		if b.Pkg == "" {
			return b.Name
		}
		return b.Pkg + "." + b.Name
	}
	olds := map[string]Benchmark{}
	for _, b := range oldSnap.Benchmarks {
		olds[key(b)] = b
	}
	seen := map[string]bool{}
	for _, nb := range newSnap.Benchmarks {
		k := key(nb)
		seen[k] = true
		ob, ok := olds[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		d := Delta{
			Key:   k,
			OldNs: ob.NsPerOp, NewNs: nb.NsPerOp,
			OldAllocs: ob.AllocsPerOp, NewAllocs: nb.AllocsPerOp,
		}
		if ob.NsPerOp > 0 {
			d.Ratio = nb.NsPerOp/ob.NsPerOp - 1
		}
		d.Violates = d.Ratio > tolerance && (ob.NsPerOp >= minNs || nb.NsPerOp >= minNs)
		if ob.AllocsPerOp > 0 {
			d.AllocRatio = nb.AllocsPerOp/ob.AllocsPerOp - 1
		}
		// Allocation counts are deterministic (no noise floor), but tiny
		// histories flip by one alloc legitimately; require both the
		// relative tolerance and two whole allocs of growth.
		d.AllocViolates = d.NewAllocs-d.OldAllocs >= 2 &&
			d.NewAllocs > d.OldAllocs*(1+tolerance)
		deltas = append(deltas, d)
	}
	for k := range olds {
		if !seen[k] {
			onlyOld = append(onlyOld, k)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Ratio > deltas[j].Ratio })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

func readSnapshot(path string) (Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// printTrend renders the full performance trajectory: one line per
// benchmark spanning every committed BENCH_<rev>.json reachable from HEAD
// (oldest first) plus the snapshot under test, closing the ROADMAP's
// "trend visualisation across more than two snapshots" gap. Values are
// ns/op; "-" marks snapshots that predate (or dropped) a benchmark, and
// the trailing delta compares the newest value against the oldest one
// present.
func printTrend(newPath string, newSnap Snapshot) {
	hist, err := snapshotHistory(newPath)
	if err != nil || len(hist) == 0 {
		return // a repo with one snapshot has no trajectory yet
	}
	hist = append(hist, historyEntry{label: trimRev(newPath), snap: newSnap})

	// Key by benchmark name alone (early snapshots predate the pkg field,
	// so a pkg-qualified key would split one benchmark's history into
	// disjoint rows); qualify by package only when two packages share a
	// benchmark name.
	names := map[string]map[string]bool{}
	for _, h := range hist {
		for _, b := range h.snap.Benchmarks {
			if b.Pkg == "" {
				continue // pkg unknown, not a distinct package
			}
			if names[b.Name] == nil {
				names[b.Name] = map[string]bool{}
			}
			names[b.Name][b.Pkg] = true
		}
	}
	key := func(b Benchmark) string {
		if len(names[b.Name]) > 1 && b.Pkg != "" {
			return b.Pkg + "." + b.Name
		}
		return b.Name
	}
	series := map[string][]float64{}
	for col, h := range hist {
		for _, b := range h.snap.Benchmarks {
			k := key(b)
			if _, ok := series[k]; !ok {
				series[k] = make([]float64, len(hist))
			}
			series[k][col] = b.NsPerOp
		}
	}
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	labels := make([]string, len(hist))
	for i, h := range hist {
		labels[i] = h.label
	}
	fmt.Printf("\nbenchcmp trend (%s):\n", strings.Join(labels, " -> "))
	for _, k := range keys {
		vals := series[k]
		cells := make([]string, len(vals))
		first, last := -1, -1
		for i, v := range vals {
			if v == 0 {
				cells[i] = "-"
				continue
			}
			cells[i] = fmtNs(v)
			if first < 0 {
				first = i
			}
			last = i
		}
		line := fmt.Sprintf("  %-55s %s", k, strings.Join(cells, " -> "))
		if first >= 0 && last > first && vals[first] > 0 {
			line += fmt.Sprintf("  (%+.1f%%)", (vals[last]/vals[first]-1)*100)
		}
		fmt.Println(line)
	}
}

type historyEntry struct {
	label string
	snap  Snapshot
}

// snapshotHistory loads every committed BENCH_<rev>.json other than
// exclude, ordered oldest revision first along `git rev-list HEAD`.
func snapshotHistory(exclude string) ([]historyEntry, error) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return nil, err
	}
	out, err := exec.Command("git", "rev-list", "HEAD").Output()
	if err != nil {
		return nil, fmt.Errorf("git rev-list: %w", err)
	}
	revs := strings.Fields(string(out))
	type cand struct {
		pos  int
		path string
	}
	var cands []cand
	for _, f := range files {
		if filepath.Base(f) == filepath.Base(exclude) {
			continue
		}
		rev := trimRev(f)
		for pos, full := range revs {
			if strings.HasPrefix(full, rev) {
				cands = append(cands, cand{pos: pos, path: f})
				break
			}
		}
	}
	// rev-list emits newest first; larger positions are older.
	sort.Slice(cands, func(i, j int) bool { return cands[i].pos > cands[j].pos })
	hist := make([]historyEntry, 0, len(cands))
	for _, c := range cands {
		s, err := readSnapshot(c.path)
		if err != nil {
			return nil, err
		}
		hist = append(hist, historyEntry{label: trimRev(c.path), snap: s})
	}
	return hist, nil
}

// trimRev extracts the revision from a BENCH_<rev>.json path.
func trimRev(path string) string {
	return strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "BENCH_"), ".json")
}

// latestCommittedSnapshot picks, among the BENCH_<rev>.json files in the
// working tree other than exclude, the one whose revision is most recent
// in `git rev-list HEAD` — i.e. the newest snapshot from the current
// branch's history.
func latestCommittedSnapshot(exclude string) (string, error) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", err
	}
	out, err := exec.Command("git", "rev-list", "HEAD").Output()
	if err != nil {
		return "", fmt.Errorf("git rev-list: %w", err)
	}
	revs := strings.Fields(string(out))
	best, bestPos := "", len(revs)
	for _, f := range files {
		if filepath.Base(f) == filepath.Base(exclude) {
			continue
		}
		rev := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(f), "BENCH_"), ".json")
		for pos, full := range revs {
			if strings.HasPrefix(full, rev) {
				if pos < bestPos {
					best, bestPos = f, pos
				}
				break
			}
		}
	}
	if best == "" {
		return "", fmt.Errorf("no committed BENCH_<rev>.json matches an ancestor of HEAD")
	}
	return best, nil
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
