// Command benchcmp compares two BENCH_<rev>.json snapshots (written by
// tools/benchjson via `make bench`) and exits non-zero when any benchmark
// regressed beyond the tolerance — the CI gate on the repository's
// performance trajectory.
//
//	go run ./tools/benchcmp -new BENCH_abc1234.json            # old auto-detected
//	go run ./tools/benchcmp -old BENCH_prev.json -new BENCH_cur.json
//
// With -old omitted, the baseline is the committed snapshot whose revision
// is the nearest ancestor of HEAD (resolved through `git rev-list`), so a
// CI run on any branch compares against the latest snapshot merged before
// it. Benchmarks are matched by (package, name); ones present on only one
// side are reported but never fail the run, and neither do benchmarks
// faster than -min-ns (single-iteration timings of micro-benchmarks are
// dominated by scheduler noise).
//
// Absolute ns/op only transfers between runs on the same hardware, so when
// the two snapshots record different CPUs the comparison is reported but
// regressions only warn (exit 0) unless -strict forces the gate. The gate
// therefore hardens automatically once a baseline produced on the CI
// runner hardware is committed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Benchmark mirrors tools/benchjson's wire form.
type Benchmark struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot mirrors tools/benchjson's wire form.
type Snapshot struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Delta is one compared benchmark.
type Delta struct {
	Key      string
	OldNs    float64
	NewNs    float64
	Ratio    float64 // new/old - 1; positive = slower
	Violates bool
}

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline snapshot (default: latest committed BENCH_<rev>.json ancestor of HEAD)")
		newPath   = flag.String("new", "", "snapshot under test (required)")
		tolerance = flag.Float64("tolerance", 0.25, "max allowed slowdown fraction before failing")
		minNs     = flag.Float64("min-ns", 1e6, "ignore benchmarks faster than this many ns/op (noise floor)")
		strict    = flag.Bool("strict", false, "fail on regressions even when the snapshots were recorded on different CPUs")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -new is required")
		os.Exit(2)
	}
	if *oldPath == "" {
		p, err := latestCommittedSnapshot(*newPath)
		if err != nil {
			// A repo with no prior snapshot has no trajectory to guard yet.
			fmt.Printf("benchcmp: no baseline snapshot found (%v); nothing to compare\n", err)
			return
		}
		*oldPath = p
	}
	oldSnap, err := readSnapshot(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newSnap, err := readSnapshot(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	deltas, onlyOld, onlyNew := Compare(oldSnap, newSnap, *tolerance, *minNs)
	fmt.Printf("benchcmp: %s -> %s (tolerance %.0f%%, noise floor %s)\n",
		*oldPath, *newPath, *tolerance*100, fmtNs(*minNs))
	violations := 0
	for _, d := range deltas {
		mark := " "
		if d.Violates {
			mark = "!"
			violations++
		}
		fmt.Printf("%s %-55s %12s -> %12s  %+6.1f%%\n", mark, d.Key, fmtNs(d.OldNs), fmtNs(d.NewNs), d.Ratio*100)
	}
	for _, k := range onlyOld {
		fmt.Printf("- %-55s removed\n", k)
	}
	for _, k := range onlyNew {
		fmt.Printf("+ %-55s new\n", k)
	}
	if violations > 0 {
		crossEnv := oldSnap.CPU != "" && newSnap.CPU != "" && oldSnap.CPU != newSnap.CPU
		if crossEnv && !*strict {
			fmt.Printf("benchcmp: %d benchmark(s) regressed more than %.0f%%, but the baseline was recorded on\n"+
				"different hardware (%q vs %q) — warning only; commit a snapshot from this\n"+
				"environment to arm the gate, or pass -strict to fail anyway\n",
				violations, *tolerance*100, oldSnap.CPU, newSnap.CPU)
			return
		}
		fmt.Fprintf(os.Stderr, "benchcmp: %d benchmark(s) regressed more than %.0f%%\n", violations, *tolerance*100)
		os.Exit(1)
	}
	fmt.Println("benchcmp: no regression beyond tolerance")
}

// Compare matches benchmarks by (pkg, name) and flags regressions beyond
// tolerance. Benchmarks below the minNs noise floor in BOTH snapshots are
// compared but never flagged.
func Compare(oldSnap, newSnap Snapshot, tolerance, minNs float64) (deltas []Delta, onlyOld, onlyNew []string) {
	key := func(b Benchmark) string {
		if b.Pkg == "" {
			return b.Name
		}
		return b.Pkg + "." + b.Name
	}
	olds := map[string]Benchmark{}
	for _, b := range oldSnap.Benchmarks {
		olds[key(b)] = b
	}
	seen := map[string]bool{}
	for _, nb := range newSnap.Benchmarks {
		k := key(nb)
		seen[k] = true
		ob, ok := olds[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		d := Delta{Key: k, OldNs: ob.NsPerOp, NewNs: nb.NsPerOp}
		if ob.NsPerOp > 0 {
			d.Ratio = nb.NsPerOp/ob.NsPerOp - 1
		}
		d.Violates = d.Ratio > tolerance && (ob.NsPerOp >= minNs || nb.NsPerOp >= minNs)
		deltas = append(deltas, d)
	}
	for k := range olds {
		if !seen[k] {
			onlyOld = append(onlyOld, k)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Ratio > deltas[j].Ratio })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

func readSnapshot(path string) (Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// latestCommittedSnapshot picks, among the BENCH_<rev>.json files in the
// working tree other than exclude, the one whose revision is most recent
// in `git rev-list HEAD` — i.e. the newest snapshot from the current
// branch's history.
func latestCommittedSnapshot(exclude string) (string, error) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", err
	}
	out, err := exec.Command("git", "rev-list", "HEAD").Output()
	if err != nil {
		return "", fmt.Errorf("git rev-list: %w", err)
	}
	revs := strings.Fields(string(out))
	best, bestPos := "", len(revs)
	for _, f := range files {
		if filepath.Base(f) == filepath.Base(exclude) {
			continue
		}
		rev := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(f), "BENCH_"), ".json")
		for pos, full := range revs {
			if strings.HasPrefix(full, rev) {
				if pos < bestPos {
					best, bestPos = f, pos
				}
				break
			}
		}
	}
	if best == "" {
		return "", fmt.Errorf("no committed BENCH_<rev>.json matches an ancestor of HEAD")
	}
	return best, nil
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
