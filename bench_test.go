// Package trusthmd's benchmarks regenerate every table and figure of the
// paper (one benchmark per artefact, backed by the internal/exp runners)
// and additionally measure the core building blocks. Benchmarks default to
// a scaled-down dataset so `go test -bench=.` completes quickly; set
// TRUSTHMD_BENCH_SCALE=1.0 to run the paper's full Table I sizes.
package trusthmd

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"trusthmd/internal/core"
	"trusthmd/internal/ensemble"
	"trusthmd/internal/exp"
	"trusthmd/internal/gen"
	"trusthmd/internal/ml/tree"
	"trusthmd/internal/reduce"
	"trusthmd/pkg/dataset"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/linalg"
)

func benchScale() float64 {
	if s := os.Getenv("TRUSTHMD_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.08
}

func benchCfg() exp.Config {
	return exp.Config{Seed: 1, Scale: benchScale(), M: 25}
}

// --- One benchmark per paper artefact (DESIGN.md §5) ---

func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableI(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7a(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig7a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7b(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig7b(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		for _, which := range []string{"DVFS", "HPC"} {
			if _, err := exp.Fig8(cfg, which); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig9a(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9b(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9b(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadlines(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Headlines(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPlatt(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationPlatt(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPosterior(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationPosterior(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDiversity(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationDiversity(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFamilies(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationFamilies(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSources(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationSources(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEMGeneralization(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.EMGeneralization(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGovernorSensitivity(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.GovernorSensitivity(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component micro-benchmarks ---

func dvfsBenchData(b *testing.B) gen.Splits {
	b.Helper()
	s, err := gen.DVFSWithSizes(2, gen.Sizes{Train: 700, Test: 140, Unknown: 40})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkDatasetGenDVFS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gen.DVFSWithSizes(int64(i), gen.Sizes{Train: 140, Test: 70, Unknown: 40}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatasetGenHPC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gen.HPCWithSizes(int64(i), gen.Sizes{Train: 1400, Test: 280, Unknown: 140}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineTrainRF(b *testing.B) {
	b.ReportAllocs()
	s := dvfsBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := detector.New(s.Train,
			detector.WithModel("rf"), detector.WithEnsembleSize(25), detector.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineAssess(b *testing.B) {
	b.ReportAllocs()
	s := dvfsBenchData(b)
	d, err := detector.New(s.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(25), detector.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	x := s.Test.At(0).Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Assess(x); err != nil {
			b.Fatal(err)
		}
	}
}

// assessBenchSetup trains the paper's 25-member RF detector and returns it
// with a 1000-sample test batch (the acceptance workload for the batched
// assessment path).
func assessBenchSetup(b *testing.B) (*detector.Detector, [][]float64) {
	b.Helper()
	s, err := gen.DVFSWithSizes(2, gen.Sizes{Train: 700, Test: 1000, Unknown: 40})
	if err != nil {
		b.Fatal(err)
	}
	d, err := detector.New(s.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(25), detector.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	X := make([][]float64, s.Test.Len())
	for i := range X {
		X[i] = s.Test.At(i).Features
	}
	return d, X
}

// BenchmarkAssessSequential is the old serving loop: one Assess call per
// sample, re-projecting every vector and walking members serially.
func BenchmarkAssessSequential(b *testing.B) {
	b.ReportAllocs()
	d, X := assessBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range X {
			if _, err := d.Assess(x); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAssessBatch is the batched serving hot path: scale+PCA once
// per batch into scratch matrices, member-major flattened-tree inference,
// and results written into a reused workspace — the zero-allocation
// steady state a long-lived server runs in (TestAllocsAssessBatchInto
// pins allocs/op at 0 for single-worker detectors). Compare against
// BenchmarkAssessSequential; results are element-wise identical to
// per-sample Assess (see detector.TestAssessBatchGoldenEqualsSequential).
func BenchmarkAssessBatch(b *testing.B) {
	b.ReportAllocs()
	d, X := assessBenchSetup(b)
	var sc detector.BatchScratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.AssessBatchInto(&sc, X); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssessBatchAlloc drives the same batched path through the
// plain AssessBatch API, whose results (and their VoteDist backing) are
// freshly allocated because they outlive the call — the price of the
// convenience API over AssessBatchInto.
func BenchmarkAssessBatchAlloc(b *testing.B) {
	b.ReportAllocs()
	d, X := assessBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.AssessBatch(X); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlinePush measures the per-sample cost of the streaming
// window at the paper's window=256 operating point, with assessments
// strided out of the way so only the window maintenance is visible. The
// ring buffer makes this O(1); the previous copy-based slide paid
// O(window) per sample.
func BenchmarkOnlinePush(b *testing.B) {
	s, err := gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 40, Unknown: 40})
	if err != nil {
		b.Fatal(err)
	}
	d, err := detector.New(s.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(11), detector.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	o, err := detector.NewOnline(d, detector.StreamConfig{
		Levels: 8, Window: 256, Stride: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := o.Push(i & 7); err != nil {
			b.Fatal(err)
		}
	}
}

// onlineBench builds a streaming detector and pre-fills its window.
func onlineBench(b *testing.B, fill func(i int) int) *detector.Online {
	b.Helper()
	s, err := gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 40, Unknown: 40})
	if err != nil {
		b.Fatal(err)
	}
	d, err := detector.New(s.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(11), detector.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	o, err := detector.NewOnline(d, detector.StreamConfig{Levels: 8, Window: 256, Stride: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if _, _, err := o.Push(fill(i)); err != nil {
			b.Fatal(err)
		}
	}
	return o
}

// BenchmarkOnlineAssessBursty streams a steady telemetry phase: every
// window repeats the previous one exactly, so each decision is served from
// the projected-vector memo (feature extraction, scaling and PCA skipped).
func BenchmarkOnlineAssessBursty(b *testing.B) {
	o := onlineBench(b, func(int) int { return 3 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := o.Push(3); err != nil || !ok {
			b.Fatalf("push %d: ok=%v err=%v", i, ok, err)
		}
	}
	if o.Stats.CacheHits < b.N {
		b.Fatalf("bursty stream expected %d cache hits, got %d", b.N, o.Stats.CacheHits)
	}
}

// BenchmarkOnlineAssessVaried streams windows that never repeat, paying
// the full feature-extraction + projection path on every decision — the
// baseline the bursty benchmark's memo is measured against.
func BenchmarkOnlineAssessVaried(b *testing.B) {
	o := onlineBench(b, func(i int) int { return i & 7 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := o.Push(i & 7); err != nil || !ok {
			b.Fatalf("push %d: ok=%v err=%v", i, ok, err)
		}
	}
}

func BenchmarkTreeFit(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	n, d := 2000, 17
	X := linalg.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			X.Set(i, j, rng.NormFloat64())
		}
		if X.At(i, 0) > 0 {
			y[i] = 1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fixed seed: the sqrt(d) feature sampling makes fitted-tree size
		// (and therefore ns/op) swing several-fold across seeds, so a
		// per-iteration seed would make this benchmark's number depend on
		// -benchtime. Seed 0 matches what single-iteration historical
		// snapshots actually measured.
		tr := tree.New(tree.Config{MaxFeatures: -1, Seed: 0})
		if err := tr.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMulInto measures the dense product at sizes bracketing the
// parallel cutover (mulParallelFlops = 2^21): "small" shapes stay serial
// on the kernel axpy, "large" ones fan out row blocks. The batch hot path
// (256x17 by 17x5) sits far below the cutover and must never pay goroutine
// overhead.
func BenchmarkMulInto(b *testing.B) {
	shapes := []struct {
		name    string
		m, k, n int
	}{
		{"batch256x17x5", 256, 17, 5}, // the PCA projection shape
		{"serial64", 64, 64, 64},      // 262k flops: serial
		{"cutover128", 128, 128, 128}, // 2.1M flops: right at the threshold
		{"parallel256", 256, 256, 256},
	}
	rng := rand.New(rand.NewSource(5))
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			A := linalg.New(sh.m, sh.k)
			B := linalg.New(sh.k, sh.n)
			dst := linalg.New(sh.m, sh.n)
			for i := 0; i < sh.m; i++ {
				for j := 0; j < sh.k; j++ {
					A.Set(i, j, rng.NormFloat64())
				}
			}
			for i := 0; i < sh.k; i++ {
				for j := 0; j < sh.n; j++ {
					B.Set(i, j, rng.NormFloat64())
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := A.MulInto(dst, B); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// treeCompareSetup fits one forest tree and a 256-row projected batch —
// the per-member workload of the batched assessment path.
func treeCompareSetup(b *testing.B) (*tree.Tree, *linalg.Matrix, *linalg.Matrix, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	n, d := 700, 17
	X := linalg.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			X.Set(i, j, rng.NormFloat64())
		}
		if X.At(i, 0)+0.3*X.At(i, 1) > 0.2 {
			y[i] = 1
		}
	}
	tr := tree.New(tree.Config{MaxFeatures: -1, Seed: 0})
	if err := tr.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	Z := linalg.New(256, d)
	for i := 0; i < 256; i++ {
		for j := 0; j < d; j++ {
			Z.Set(i, j, rng.NormFloat64())
		}
	}
	ZT := linalg.New(d, 256)
	if err := Z.TInto(ZT); err != nil {
		b.Fatal(err)
	}
	return tr, Z, ZT, make([]int, 256)
}

// BenchmarkTreeCompare8 is the 8-lane lockstep tree walk over one batch —
// the pre-SIMD batched compare step, still the fallback for trees past 64
// leaves and non-AVX2 hosts.
func BenchmarkTreeCompare8(b *testing.B) {
	tr, Z, _, out := treeCompareSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.PredictBatch(Z, out)
	}
}

// BenchmarkTreeCompareCols is the vectorized bitmask walk over the same
// batch (transpose precomputed, as the ensemble shares it across members).
// On non-AVX2 hosts it degrades to the lockstep walk above.
func BenchmarkTreeCompareCols(b *testing.B) {
	tr, Z, ZT, out := treeCompareSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.PredictBatchCols(Z, ZT, out)
	}
}

// BenchmarkScalerTransform is the fused center+scale pass over a full
// batch — the first stage of every batched assessment.
func BenchmarkScalerTransform(b *testing.B) {
	s := dvfsBenchData(b)
	sc, err := dataset.FitScaler(s.Train.X())
	if err != nil {
		b.Fatal(err)
	}
	X := linalg.New(256, s.Train.X().Cols())
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < X.Rows(); i++ {
		for j := 0; j < X.Cols(); j++ {
			X.Set(i, j, rng.NormFloat64())
		}
	}
	dst := linalg.New(256, X.Cols())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sc.TransformInto(dst, X); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnsembleVotes(b *testing.B) {
	b.ReportAllocs()
	s := dvfsBenchData(b)
	ens := ensemble.New(ensemble.Config{
		M:    25,
		New:  func(seed int64) ensemble.Classifier { return tree.New(tree.Config{MaxFeatures: -1, Seed: seed}) },
		Seed: 1,
	})
	if err := ens.Fit(s.Train.X(), s.Train.Y()); err != nil {
		b.Fatal(err)
	}
	x := s.Test.At(0).Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ens.Votes(x)
	}
}

func BenchmarkVoteEntropy(b *testing.B) {
	b.ReportAllocs()
	var est core.Estimator
	votes := make([]int, 25)
	for i := range votes {
		votes[i] = i % 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.VoteEntropy(votes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPCA(b *testing.B) {
	b.ReportAllocs()
	s := dvfsBenchData(b)
	X := s.Train.X()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := reduce.FitPCA(X, 5)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Transform(X); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTSNE(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(3))
	X := linalg.New(120, 10)
	for i := 0; i < X.Rows(); i++ {
		for j := 0; j < X.Cols(); j++ {
			X.Set(i, j, rng.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reduce.FitTSNE(X, reduce.TSNEConfig{Iterations: 100, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
