package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"trusthmd/pkg/detector"
)

// encodingJSONAssess is the ground-truth decoder the pooled one must match:
// the exact pipeline decodeJSONLimit runs — strict decoding plus the
// dec.More() trailing-data guard.
func encodingJSONAssess(data []byte) (AssessRequest, error) {
	var req AssessRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, err
	}
	if dec.More() {
		return req, errTrailingData
	}
	return req, nil
}

func encodingJSONBatch(data []byte) (BatchRequest, error) {
	var req BatchRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, err
	}
	if dec.More() {
		return req, errTrailingData
	}
	return req, nil
}

// TestDecodeAssessRequestParity pins accept/reject and value parity of the
// pooled decoder against encoding/json over the corners that differ
// between naive and exact implementations.
func TestDecodeAssessRequestParity(t *testing.T) {
	cases := []string{
		// Plain shapes.
		`{"device":"d0","features":[1,2,3]}`,
		`{"model":"m","device":"d","features":[0.5,-0.25]}`,
		`{}`,
		`null`,
		`  {"features":[1]}  `,
		"\t\r\n {\"features\":[1]} \n",
		// Empty and null slices: "[]" decodes non-nil, null decodes nil.
		`{"features":[]}`,
		`{"features":null}`,
		// Null semantics: null string field is a no-op, null array element
		// leaves its slot at zero.
		`{"device":null,"features":[1,null,3]}`,
		`{"features":[null]}`,
		// Duplicate keys: last one wins.
		`{"features":[1,2],"features":[9]}`,
		`{"device":"a","device":"b","features":[1]}`,
		`{"features":[1],"features":null}`,
		// Case-folded and escaped keys.
		`{"FEATURES":[4,5]}`,
		`{"Device":"x","features":[1]}`,
		`{"\u0066eatures":[7]}`,
		`{"deVICE":"y","features":[2]}`,
		// Unknown fields rejected.
		`{"extra":1}`,
		`{"features":[1],"extra":true}`,
		// Type mismatches rejected.
		`{"features":"nope"}`,
		`{"features":[true]}`,
		`{"features":[[1]]}`,
		`{"device":5}`,
		`{"features":{"a":1}}`,
		// Number grammar.
		`{"features":[01]}`,
		`{"features":[1.]}`,
		`{"features":[.5]}`,
		`{"features":[+1]}`,
		`{"features":[-]}`,
		`{"features":[1e]}`,
		`{"features":[1e+]}`,
		`{"features":[0.0e-2]}`,
		`{"features":[1E6]}`,
		`{"features":[-0]}`,
		`{"features":[1e309]}`,
		`{"features":[-1e309]}`,
		`{"features":[1e-999]}`,
		`{"features":[123456789012345678901234567890]}`,
		`{"features":[NaN]}`,
		`{"features":[Infinity]}`,
		// String corners: escapes, surrogates, raw control chars, UTF-8.
		`{"device":"a\"b\\c\/d\b\f\n\r\t"}`,
		`{"device":"\u0041\u00e9\u4e2d"}`,
		`{"device":"\ud83d\ude00"}`,
		`{"device":"\ud83d"}`,
		`{"device":"\ude00\ud83d"}`,
		`{"device":"\ud83dx"}`,
		`{"device":"\uZZZZ"}`,
		`{"device":"\u12"}`,
		`{"device":"\x41"}`,
		"{\"device\":\"a\x01b\"}",
		"{\"device\":\"a\x7fb\"}",
		"{\"device\":\"a\xffb\"}",
		"{\"device\":\"\xc3\x28\"}",
		`{"device":"中文✓"}`,
		// Structural errors.
		``,
		`   `,
		`{`,
		`{"features":[1,]}`,
		`{"features":[1}`,
		`{"features" [1]}`,
		`{"features":}`,
		`{,}`,
		`{"a"}`,
		`true`,
		`42`,
		`"str"`,
		`[1,2]`,
		`nul`,
		`nullx`,
		// Trailing data: More() accepts '}'/']', rejects anything else.
		`{"features":[1]} garbage`,
		`{"features":[1]}{"features":[2]}`,
		`{"features":[1]} }`,
		`{"features":[1]} ]`,
		`{"features":[1]},`,
		`null null`,
		`null }`,
	}
	sc := getCodecScratch()
	defer putCodecScratch(sc)
	for _, tc := range cases {
		want, wantErr := encodingJSONAssess([]byte(tc))
		var got AssessRequest
		gotErr := decodeAssessRequest([]byte(tc), sc, &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("%q: accept mismatch: encoding/json err=%v, pooled err=%v", tc, wantErr, gotErr)
			continue
		}
		if wantErr == nil && !reflect.DeepEqual(want, got) {
			t.Errorf("%q: value mismatch:\n  encoding/json %#v\n  pooled        %#v", tc, want, got)
		}
	}
}

// TestDecodeBatchRequestParity pins the batch decoder the same way,
// including row-backing reuse across consecutive decodes.
func TestDecodeBatchRequestParity(t *testing.T) {
	cases := []string{
		`{"batch":[[1,2],[3,4]]}`,
		`{"model":"m","device":"d","batch":[[0.5]]}`,
		`{"batch":[]}`,
		`{"batch":null}`,
		`{"batch":[null,[1]]}`,
		`{"batch":[[],[null,2]]}`,
		`{"batch":[[1,2],[3,4]],"batch":[[9]]}`,
		`{"BATCH":[[1]]}`,
		`{"batch":[[1],"x"]}`,
		`{"batch":[1,2]}`,
		`{"batch":[[1e999]]}`,
		`{"batch":[[01]]}`,
		`{"extra":[[1]]}`,
		`null`,
		`{}`,
		`{"batch":[[1]]} trailing`,
	}
	sc := getCodecScratch()
	defer putCodecScratch(sc)
	for _, tc := range cases {
		want, wantErr := encodingJSONBatch([]byte(tc))
		var got BatchRequest
		gotErr := decodeBatchRequest([]byte(tc), sc, &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("%q: accept mismatch: encoding/json err=%v, pooled err=%v", tc, wantErr, gotErr)
			continue
		}
		if wantErr == nil && !reflect.DeepEqual(want, got) {
			t.Errorf("%q: value mismatch:\n  encoding/json %#v\n  pooled        %#v", tc, want, got)
		}
	}
	// Shrinking batches must not leak rows from a previous decode.
	var big, small BatchRequest
	if err := decodeBatchRequest([]byte(`{"batch":[[1,2,3],[4,5,6],[7,8,9]]}`), sc, &big); err != nil {
		t.Fatal(err)
	}
	if err := decodeBatchRequest([]byte(`{"batch":[[10]]}`), sc, &small); err != nil {
		t.Fatal(err)
	}
	if want := [][]float64{{10}}; !reflect.DeepEqual(small.Batch, want) {
		t.Fatalf("after shrink: got %v, want %v", small.Batch, want)
	}
}

// goldenStrings covers every string-escaping branch of the encoder.
var goldenStrings = []string{
	"",
	"plain",
	"dvfs-rf",
	`quote " backslash \ slash /`,
	"html <tag> & entity",
	"newline\ntab\tcr\r",
	"bell\x07 backspace\x08 formfeed\x0c esc\x1b",
	"nul\x00",
	"high\x7f",
	"unicode 中文 émoji 😀",
	"\u2028 line sep \u2029 para sep",
	"invalid \xff\xfe utf8",
	"trunc \xc3",
	"\ufffd real replacement",
}

// goldenFloats covers the f/e format boundary, exponent cleanup, shortest
// round-trip and signed zero.
var goldenFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.5, 1.0 / 3.0,
	1e-7, -1e-7, 1e-6, 9.999999e-7, 1e20, 1e21, -1e21, 1.5e21,
	math.MaxFloat64, math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	1e-300, 2.2250738585072014e-308, 123456.789, 0.1, 3.141592653589793,
}

// TestEncodeResponsesGolden pins byte identity between the pooled encoder
// and json.Encoder for every response shape the hot path emits.
func TestEncodeResponsesGolden(t *testing.T) {
	encode := func(v any) []byte {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	t.Run("assess", func(t *testing.T) {
		resps := []AssessResponse{
			{Model: "dvfs-rf", Version: 3, Prediction: 1, Entropy: 0.25, VoteDist: []float64{0.75, 0.25}, Decision: "accept"},
			{Model: "m", Version: 0, Prediction: -1, Entropy: 0, VoteDist: nil, Decision: "reject"},
			{Model: "m", Version: 18446744073709551615, Prediction: 0, Entropy: 1e-9, VoteDist: []float64{}, Decision: "accept",
				Decomposition: &Decomposition{Total: 0.5, Aleatoric: 1e21, Epistemic: -0}},
		}
		for _, s := range goldenStrings {
			resps = append(resps, AssessResponse{Model: s, Decision: s, VoteDist: []float64{0.5}})
		}
		for _, f := range goldenFloats {
			ep := f * 2
			if math.IsInf(ep, 0) {
				ep = f
			}
			resps = append(resps, AssessResponse{Model: "m", Entropy: f, VoteDist: []float64{f, -f}, Decision: "accept",
				Decomposition: &Decomposition{Total: f, Aleatoric: f / 3, Epistemic: ep}})
		}
		for _, r := range resps {
			want := encode(r)
			got := appendAssessResponse(nil, &r)
			if !bytes.Equal(want, got) {
				t.Errorf("assess response mismatch:\n  encoding/json %q\n  pooled        %q", want, got)
			}
		}
	})

	t.Run("batch", func(t *testing.T) {
		results := []detector.Result{
			{Prediction: 1, Entropy: 0.25, VoteDist: []float64{0.75, 0.25}, Decision: detector.Benign},
			{Prediction: 0, Entropy: 1e-8, VoteDist: nil, Decision: detector.Reject,
				Decomposition: &detector.Decomposition{Total: 1, Aleatoric: 0.5, Epistemic: 0.5}},
			{Prediction: 2, Entropy: math.MaxFloat64, VoteDist: []float64{}, Decision: detector.Benign},
		}
		want := encode(func() BatchResponse {
			resp := BatchResponse{Model: "dvfs <&> rf", Version: 7, Results: make([]AssessResponse, 0, len(results))}
			for _, r := range results {
				resp.Results = append(resp.Results, toResponse(resp.Model, resp.Version, r))
			}
			return resp
		}())
		got := appendBatchResponseResults(nil, "dvfs <&> rf", 7, results)
		if !bytes.Equal(want, got) {
			t.Errorf("batch response mismatch:\n  encoding/json %q\n  pooled        %q", want, got)
		}
		// Empty results array.
		want = encode(BatchResponse{Model: "m", Version: 1, Results: []AssessResponse{}})
		got = appendBatchResponseResults(nil, "m", 1, nil)
		// json encodes the empty non-nil slice as [] — the pooled encoder
		// always emits [], matching because the handler never sends nil.
		if !bytes.Equal(want, got) {
			t.Errorf("empty batch mismatch:\n  encoding/json %q\n  pooled        %q", want, got)
		}
	})

	t.Run("error", func(t *testing.T) {
		msgs := append([]string{}, goldenStrings...)
		msgs = append(msgs, "queue full", "batch of 5000 exceeds limit 4096", `feature 3 is not finite`)
		for _, m := range msgs {
			want := encode(ErrorResponse{Error: m})
			got := appendErrorResponse(nil, m)
			if !bytes.Equal(want, got) {
				t.Errorf("error response mismatch for %q:\n  encoding/json %q\n  pooled        %q", m, want, got)
			}
		}
	})
}

// TestAppendJSONFloatMatrix sweeps a dense grid of magnitudes across the
// format-switch boundaries to pin the float formatter byte-for-byte.
func TestAppendJSONFloatMatrix(t *testing.T) {
	var vals []float64
	for exp := -320; exp <= 308; exp++ {
		v := math.Pow(10, float64(exp))
		vals = append(vals, v, -v, v*1.5, v*9.999999999)
	}
	vals = append(vals, goldenFloats...)
	for _, v := range vals {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONFloat(nil, v)
		if !bytes.Equal(want, got) {
			t.Errorf("float %g: encoding/json %q, pooled %q", v, want, got)
		}
	}
}

// FuzzAssessRequestDecode cross-checks the pooled decoder against
// encoding/json on arbitrary bytes: both must agree on accept/reject, and
// on every accepted input the decoded values must be deeply equal. The
// same input is also run through the batch decoder against its own ground
// truth, so one fuzzer covers both hot-path decoders.
func FuzzAssessRequestDecode(f *testing.F) {
	seeds := []string{
		`{"device":"d0","features":[1,2,3]}`,
		`{"model":"m","features":[0.1,-2e5,3.25e-9]}`,
		`{"features":[null,1e21]}`,
		`{"FEATURES":[]}`,
		`{"\u0064evice":"x"}`,
		`{"device":"\ud83d\ude00\ud800"}`,
		`{"batch":[[1,2],[3,4]]}`,
		`{"batch":[null,[]]}`,
		`null`,
		`{"features":[1]} }`,
		`{"features":[01]}`,
		`{"features":[1e999]}`,
		"{\"device\":\"\xff\"}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := getCodecScratch()
		defer putCodecScratch(sc)

		want, wantErr := encodingJSONAssess(data)
		var got AssessRequest
		gotErr := decodeAssessRequest(data, sc, &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("assess accept mismatch on %q: encoding/json err=%v, pooled err=%v", data, wantErr, gotErr)
		}
		if wantErr == nil && !reflect.DeepEqual(want, got) {
			t.Fatalf("assess value mismatch on %q:\n  encoding/json %#v\n  pooled        %#v", data, want, got)
		}

		wantB, wantBErr := encodingJSONBatch(data)
		var gotB BatchRequest
		gotBErr := decodeBatchRequest(data, sc, &gotB)
		if (wantBErr == nil) != (gotBErr == nil) {
			t.Fatalf("batch accept mismatch on %q: encoding/json err=%v, pooled err=%v", data, wantBErr, gotBErr)
		}
		if wantBErr == nil && !reflect.DeepEqual(wantB, gotB) {
			t.Fatalf("batch value mismatch on %q:\n  encoding/json %#v\n  pooled        %#v", data, wantB, gotB)
		}

		// Round-trip any accepted model string through the pooled encoder:
		// encoding must stay byte-identical to json on fuzz-discovered
		// strings, not just the golden set.
		if wantErr == nil && got.Model != "" {
			wantEnc, err := json.Marshal(got.Model)
			if err != nil {
				t.Fatal(err)
			}
			if gotEnc := appendJSONString(nil, got.Model); !bytes.Equal(wantEnc, gotEnc) {
				t.Fatalf("string encode mismatch for %q: encoding/json %q, pooled %q", got.Model, wantEnc, gotEnc)
			}
		}
	})
}
