package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"trusthmd/pkg/detector"
)

// Fleet is the mutable, versioned shard registry at the heart of the
// serving layer: a set of named detectors that can be loaded, hot-swapped
// and unloaded while traffic flows. Server is a thin HTTP transport over
// it; embedders that want a different transport (gRPC, a queue consumer)
// drive the Fleet directly.
//
// Each name resolves to a *replica group*: Config.Replicas independent
// instances of the same detector, each with its own coalescer, result
// cache and bounded queue. Requests pick a replica in two levels — the
// consistent-hash device routing chooses a *home* replica for cache and
// session affinity, and when the home queue is hot, power-of-two-choices
// spills the overflow to the least-loaded sibling. Replicas share one
// trained detector (assessment is read-only and concurrency-safe), so a
// spilled request's verdict is element-wise identical to the home
// replica's.
//
// Mutations are RCU-style and group-wide: Swap installs a freshly built
// group (new coalescers, new result caches, version+1) under the registry
// lock and only then drains the old group's coalescers outside the lock,
// so requests already queued complete on the detector they were accepted
// for and requests that race the swap retry onto the replacement — no
// in-flight work is lost. Each group carries a monotonically increasing
// per-name version and the fleet an epoch that bumps on every mutation;
// both are surfaced in /v1/models, /stats and assessment responses so
// clients can observe exactly which model answered.
type Fleet struct {
	cfg Config

	mu     sync.RWMutex
	shards map[string]*group
	names  []string // sorted shard names
	ring   *hashRing
	// versions and statsByName survive Unload so a name reloaded later
	// continues its version sequence and its cumulative counters instead
	// of restarting — and counters folded in late (a stream that outlived
	// its shard's unload) stay visible once the name serves again.
	versions    map[string]uint64
	statsByName map[string]*shardStats
	epoch       uint64
	closed      bool
	// lastSwapCause names what drove the most recent hot swap ("admin",
	// "watch", "drift-retrain", ...; empty until the first swap) — the
	// /stats answer to "why did the model just change?".
	lastSwapCause string

	// verdictAppendErrs counts verdict-store appends that failed (the tap
	// never fails serving, so the only trace is this counter).
	verdictAppendErrs atomic.Int64

	// nextPin hands out CPU cores round-robin to replica flushers when
	// PinCores is set; it keeps counting across loads and swaps so a
	// replacement group lands on fresh cores instead of stacking on 0.
	nextPin atomic.Int64
}

// group is one named shard version fanned out over N replicas. The
// replicas, their coalescers and their caches belong to this version (a
// swap replaces them all — a stale cache must never serve the old model's
// verdicts); the stats object is shared across versions of the same name
// so counters stay cumulative over swaps.
type group struct {
	name    string
	version uint64
	det     *detector.Detector
	stats   *shardStats

	replicas []*replica
	// ring maps device keys onto home replica indices; nil for a single
	// replica. It depends only on the group size, so a same-size swap
	// preserves every device's home slot.
	ring *hashRing
	// rr hands device-less stream sessions round-robin home slots.
	rr atomic.Uint64
	// spillDepth is the home-replica load at which device traffic spills
	// to the least-loaded sibling.
	spillDepth int
}

// replica is one independent serving instance inside a group: its own
// coalescer (queue + flusher) and its own result cache over the group's
// shared detector. The name/version/det/stats fields mirror the group's so
// handlers can serve from a picked replica without a back-reference.
type replica struct {
	name    string
	version uint64
	idx     int
	det     *detector.Detector
	co      *coalescer
	cache   *resultCache
	stats   *shardStats
	// maxInflight caps this replica's total in-flight work (coalesced +
	// client-batched samples); 0 means unbounded.
	maxInflight int
	// batchInflight gauges client-batch samples currently assessing (the
	// /v1/assess/batch path bypasses the coalescer queue).
	batchInflight atomic.Int64
	// served counts requests this replica answered — the spillover share
	// is read off these per-replica counters.
	served atomic.Int64
}

// load is the replica's admission and routing gauge: coalesced requests
// accepted and not yet settled, plus client-batch samples in flight.
func (r *replica) load() int64 {
	return r.co.inflight.Load() + r.batchInflight.Load()
}

// overloaded reports whether admission control refuses new work: the
// queue reached the shed watermark or the in-flight cap is exhausted.
func (r *replica) overloaded() bool {
	if sd := r.co.tuning.shedDepth; sd > 0 && r.co.queueDepth() >= sd {
		return true
	}
	return r.maxInflight > 0 && r.load() >= int64(r.maxInflight)
}

// assessOne is the admission-controlled single-sample path: the in-flight
// cap is enforced here (the queue-depth watermark lives in the coalescer),
// then the request coalesces as before.
func (r *replica) assessOne(ctx context.Context, x, votes []float64) (detector.Result, error) {
	if r.maxInflight > 0 && r.load() >= int64(r.maxInflight) {
		r.stats.shed.Add(1)
		return detector.Result{}, ErrQueueFull
	}
	return r.co.submitVotes(ctx, x, votes)
}

// admitBatch reserves capacity for a client-supplied batch of n samples.
// A replica whose queue is at the shed watermark, or whose in-flight cap
// is already exhausted, refuses — the batch path sheds with the same 503 +
// Retry-After as the coalesced path. An idle replica always admits one
// batch regardless of its size (the cap gates concurrency, it is not a
// batch-size limit); the reservation may overshoot the cap and later
// requests observe it.
func (r *replica) admitBatch(n int) error {
	if sd := r.co.tuning.shedDepth; sd > 0 && r.co.queueDepth() >= sd {
		r.stats.shed.Add(1)
		return ErrQueueFull
	}
	if r.maxInflight > 0 && r.load() >= int64(r.maxInflight) {
		r.stats.shed.Add(1)
		return ErrQueueFull
	}
	r.batchInflight.Add(int64(n))
	return nil
}

// releaseBatch retires a reservation made by admitBatch.
func (r *replica) releaseBatch(n int) { r.batchInflight.Add(-int64(n)) }

// home returns the replica a request has cache/session affinity with: the
// within-group consistent-hash pick for a device key, a round-robin slot
// for device-less requests.
func (g *group) home(device string) *replica {
	if len(g.replicas) == 1 {
		return g.replicas[0]
	}
	if device == "" {
		return g.replicas[int(g.rr.Add(1))%len(g.replicas)]
	}
	return g.replicas[g.ring.lookupReplica(device)]
}

// pick chooses the serving replica for one request: the home replica while
// its queue is cool, the least-loaded sibling (power-of-two-choices: home
// versus best alternative, take the lighter) once the home load crosses
// the spill watermark. Device-less requests have no affinity to preserve
// and go straight to the least-loaded replica. The second return reports
// whether the request spilled away from its home.
func (g *group) pick(device string) (*replica, bool) {
	if len(g.replicas) == 1 {
		return g.replicas[0], false
	}
	if device == "" {
		return g.leastLoaded(), false
	}
	home := g.home(device)
	if home.load() < int64(g.spillDepth) {
		return home, false
	}
	if best := g.leastLoaded(); best != home && best.load() < home.load() {
		g.stats.spills.Add(1)
		return best, true
	}
	return home, false
}

// leastLoaded scans the group for the lightest replica (group sizes are
// single digits; a scan is cheaper than bookkeeping a heap).
func (g *group) leastLoaded() *replica {
	best := g.replicas[0]
	bestLoad := best.load()
	for _, r := range g.replicas[1:] {
		if l := r.load(); l < bestLoad {
			best, bestLoad = r, l
		}
	}
	return best
}

// close drains every replica's coalescer, in parallel so a group-wide
// swap's drain latency is one replica's, not the sum.
func (g *group) close() {
	var wg sync.WaitGroup
	for _, r := range g.replicas {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			r.co.close()
		}(r)
	}
	wg.Wait()
}

// NewFleet builds a fleet over the given named detectors (which may be
// empty: an empty fleet serves 404s until Load or the admin endpoint
// populates it). Every detector must be trained; Config.DefaultModel, if
// set alongside initial models, must name one of them.
func NewFleet(models map[string]*detector.Detector, cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:         cfg,
		shards:      make(map[string]*group, len(models)),
		versions:    make(map[string]uint64, len(models)),
		statsByName: make(map[string]*shardStats, len(models)),
	}
	for name, det := range models {
		if _, err := f.Load(name, det); err != nil {
			f.Close()
			return nil, err
		}
	}
	if cfg.DefaultModel != "" && len(models) > 0 {
		if _, ok := f.shards[cfg.DefaultModel]; !ok {
			f.Close()
			return nil, fmt.Errorf("serve: default model %q not among loaded models", cfg.DefaultModel)
		}
	}
	return f, nil
}

// newGroup assembles one shard version as a full replica group; stats is
// shared across versions (and across the group's replicas).
func (f *Fleet) newGroup(name string, version uint64, det *detector.Detector, stats *shardStats) *group {
	n := f.cfg.Replicas
	g := &group{
		name:       name,
		version:    version,
		det:        det,
		stats:      stats,
		replicas:   make([]*replica, n),
		ring:       buildReplicaRing(n),
		spillDepth: f.cfg.SpillDepth,
	}
	tuning := coTuning{
		maxBatch:   f.cfg.MaxBatch,
		queueSize:  f.cfg.QueueSize,
		maxWait:    f.cfg.MaxWait,
		shedDepth:  f.cfg.ShedDepth,
		flushDepth: f.cfg.FlushDepth,
	}
	for i := range g.replicas {
		if f.cfg.PinCores {
			// Stored one-based (see coTuning.pinCPU); core assignment wraps
			// when the fleet outgrows the machine.
			tuning.pinCPU = 1 + int(f.nextPin.Add(1)-1)%runtime.NumCPU()
		}
		g.replicas[i] = &replica{
			name:        name,
			version:     version,
			idx:         i,
			det:         det,
			co:          newCoalescer(det, tuning, stats),
			cache:       newResultCache(f.cfg.CacheSize),
			stats:       stats,
			maxInflight: f.cfg.MaxInflight,
		}
	}
	return g
}

// Load adds a new shard under a name not currently in the fleet and
// returns its version. Use Swap to replace an existing shard.
func (f *Fleet) Load(name string, det *detector.Detector) (uint64, error) {
	v, _, err := f.install(name, det, installNew)
	return v, err
}

// Swap atomically replaces the detector behind an existing shard name and
// returns the new version. The replacement is a whole fresh replica group
// (new coalescers, new empty result caches); every old replica's coalescer
// drains its queued requests on the old detector before Swap returns, so a
// swap under load loses nothing — racing requests re-resolve onto the new
// version.
func (f *Fleet) Swap(name string, det *detector.Detector) (uint64, error) {
	return f.SwapCause(name, det, "swap")
}

// SwapCause is Swap with an attributed cause ("admin", "watch",
// "drift-retrain", ...) recorded as the fleet's last swap cause and
// surfaced by /stats — so an operator reading a version bump can tell an
// operator-driven rollout from the auto-retrain loop.
func (f *Fleet) SwapCause(name string, det *detector.Detector, cause string) (uint64, error) {
	v, _, err := f.installCause(name, det, installReplace, cause)
	return v, err
}

// LoadOrSwap loads the shard if the name is new and swaps it otherwise,
// reporting which happened — the admin endpoint's upsert.
func (f *Fleet) LoadOrSwap(name string, det *detector.Detector) (version uint64, replaced bool, err error) {
	return f.install(name, det, installUpsert)
}

// LoadOrSwapCause is LoadOrSwap with an attributed cause, recorded only
// when the install actually replaced a shard (a fresh load is not a
// swap).
func (f *Fleet) LoadOrSwapCause(name string, det *detector.Detector, cause string) (version uint64, replaced bool, err error) {
	return f.installCause(name, det, installUpsert, cause)
}

// LastSwapCause names what drove the most recent hot swap (empty until
// the first one).
func (f *Fleet) LastSwapCause() string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.lastSwapCause
}

// Detector returns the live detector behind a shard name (resolved like
// an explicit-model request). The retraining controller uses it to seed
// baselines and training options from the exact model being served.
func (f *Fleet) Detector(name string) (*detector.Detector, error) {
	g, err := f.resolve(name, "")
	if err != nil {
		return nil, err
	}
	return g.det, nil
}

// maxRetiredNames bounds how many unloaded shard names keep their version
// and stats entries. Cross-reload continuity is a courtesy, not a ledger:
// without a bound, rolling date-stamped names (or an attacker driving an
// un-tokened admin endpoint with random names) would grow the registry
// maps for the process lifetime.
const maxRetiredNames = 1024

type installMode int

const (
	installNew installMode = iota
	installReplace
	installUpsert
)

// install is the single mutation path behind Load, Swap and LoadOrSwap.
func (f *Fleet) install(name string, det *detector.Detector, mode installMode) (uint64, bool, error) {
	return f.installCause(name, det, mode, "swap")
}

func (f *Fleet) installCause(name string, det *detector.Detector, mode installMode, cause string) (uint64, bool, error) {
	if name == "" {
		return 0, false, errors.New("serve: empty model name")
	}
	if strings.Contains(name, "/") {
		// "/" would make the shard unaddressable on /v1/models/{name}.
		return 0, false, fmt.Errorf("serve: model name %q must not contain '/'", name)
	}
	if det == nil {
		return 0, false, fmt.Errorf("serve: model %q is nil", name)
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, false, ErrClosed
	}
	old, exists := f.shards[name]
	switch mode {
	case installNew:
		if exists {
			f.mu.Unlock()
			return 0, false, fmt.Errorf("serve: model %q already loaded (use Swap to replace it)", name)
		}
	case installReplace:
		if !exists {
			f.mu.Unlock()
			return 0, false, fmt.Errorf("serve: unknown model %q (use Load to add it)", name)
		}
	}
	v := f.versions[name] + 1
	f.versions[name] = v
	// Counters stay cumulative per name across swaps AND unload/reload
	// cycles (like the version sequence); only the caches restart, because
	// the caches themselves do.
	stats := f.statsByName[name]
	if stats == nil {
		stats = &shardStats{}
		f.statsByName[name] = stats
	}
	f.shards[name] = f.newGroup(name, v, det, stats)
	if exists {
		// A swap keeps the membership: names and ring are unchanged, so
		// resolvers are only blocked for the pointer write + epoch bump.
		f.epoch++
		f.lastSwapCause = cause
	} else {
		f.rebuildLocked()
	}
	f.mu.Unlock()
	if exists {
		// Drain outside the lock: queued requests finish on the detector
		// they were accepted for while new traffic already routes to the
		// replacement group.
		old.close()
	}
	return v, exists, nil
}

// Unload removes a shard and drains its replicas' coalescers. The name's
// version counter and cumulative stats are retained (up to maxRetiredNames
// unloaded names), so reloading it later continues both sequences.
func (f *Fleet) Unload(name string) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	g, ok := f.shards[name]
	if !ok {
		// Format while still holding the lock: f.names is mutated in
		// place by rebuildLocked, so reading it after Unlock races
		// concurrent membership changes.
		err := fmt.Errorf("serve: unknown model %q (loaded: %v)", name, f.names)
		f.mu.Unlock()
		return err
	}
	delete(f.shards, name)
	f.rebuildLocked()
	// Evict retired bookkeeping beyond the bound: entries for loaded
	// shards are always kept, unloaded names beyond maxRetiredNames lose
	// their version/stats continuity (a reload then restarts at v1).
	if len(f.versions) > len(f.shards)+maxRetiredNames {
		for n := range f.versions {
			if _, loaded := f.shards[n]; !loaded {
				delete(f.versions, n)
				delete(f.statsByName, n)
				if len(f.versions) <= len(f.shards)+maxRetiredNames {
					break
				}
			}
		}
	}
	f.mu.Unlock()
	g.close()
	return nil
}

// rebuildLocked refreshes the sorted name list, the routing ring and the
// fleet epoch after a membership change (swaps skip it — same names, same
// ring). Callers hold f.mu.
func (f *Fleet) rebuildLocked() {
	f.names = f.names[:0]
	for name := range f.shards {
		f.names = append(f.names, name)
	}
	sort.Strings(f.names)
	f.ring = buildRing(f.names)
	f.epoch++
}

// resolve picks the replica group for a request. Precedence: an explicit
// model name wins; otherwise a non-empty device key routes through the
// consistent-hash ring; otherwise the default model serves. Replica
// selection within the group is the caller's second step (group.pick for
// assessment traffic, group.home for sessions).
func (f *Fleet) resolve(model, device string) (*group, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return nil, ErrClosed
	}
	if len(f.names) == 0 {
		return nil, errors.New("no models loaded")
	}
	name := model
	if name == "" && device != "" {
		name = f.ring.lookup(device)
	}
	if name == "" {
		name = f.defaultLocked()
		if name == "" {
			return nil, fmt.Errorf("request must name a model or device (loaded: %v)", f.names)
		}
	}
	g, ok := f.shards[name]
	if !ok {
		return nil, fmt.Errorf("unknown model %q (loaded: %v)", name, f.names)
	}
	return g, nil
}

// resolveReplica is the full two-level pick for assessment traffic: name
// to group (explicit model / device ring / default), then group to replica
// (home affinity with load-aware spill). The middle return reports whether
// the request spilled away from its home replica.
func (f *Fleet) resolveReplica(model, device string) (*replica, bool, error) {
	g, err := f.resolve(model, device)
	if err != nil {
		return nil, false, err
	}
	r, spilled := g.pick(device)
	return r, spilled, nil
}

// defaultLocked names the shard serving model-less, device-less requests:
// the configured DefaultModel when it is currently loaded, else the only
// shard. Callers hold f.mu (read or write).
func (f *Fleet) defaultLocked() string {
	if f.cfg.DefaultModel != "" {
		if _, ok := f.shards[f.cfg.DefaultModel]; ok {
			return f.cfg.DefaultModel
		}
		return ""
	}
	if len(f.names) == 1 {
		return f.names[0]
	}
	return ""
}

// Names returns the sorted shard names currently loaded.
func (f *Fleet) Names() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]string(nil), f.names...)
}

// Len reports the number of loaded shards.
func (f *Fleet) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.shards)
}

// Epoch returns the fleet generation: it increments on every Load, Swap
// and Unload, so a client comparing epochs across /stats calls can tell
// whether the fleet changed in between.
func (f *Fleet) Epoch() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.epoch
}

// Models describes every loaded shard, sorted by name — the body of
// GET /v1/models.
func (f *Fleet) Models() []ModelInfo {
	_, models := f.ModelsWithEpoch()
	return models
}

// ModelsWithEpoch returns the shard listing together with the epoch of
// the same consistent view — the pair /v1/models reports. (Calling Epoch
// and Models separately can straddle a mutation and pair an epoch with
// the other generation's listing.)
func (f *Fleet) ModelsWithEpoch() (uint64, []ModelInfo) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	def := f.defaultLocked()
	out := make([]ModelInfo, 0, len(f.names))
	for _, name := range f.names {
		g := f.shards[name]
		out = append(out, ModelInfo{
			Name:     name,
			Version:  g.version,
			Replicas: len(g.replicas),
			Default:  name == def,
			Info:     g.det.Info(),
		})
	}
	return f.epoch, out
}

// Stats snapshots every shard's serving counters, sorted by shard name.
func (f *Fleet) Stats() []ShardStats {
	_, stats := f.StatsWithEpoch()
	return stats
}

// StatsWithEpoch returns the counter snapshot together with the epoch of
// the same consistent view — the pair /stats reports. Per-replica gauges
// (queue depth, in-flight load, served share, cache occupancy) are read
// under the same registry lock, so the whole snapshot describes one fleet
// generation.
func (f *Fleet) StatsWithEpoch() (uint64, []ShardStats) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]ShardStats, 0, len(f.names))
	for _, name := range f.names {
		g := f.shards[name]
		st := g.stats.snapshot(name)
		st.Version = g.version
		st.Replicas = make([]ReplicaStats, len(g.replicas))
		entries := 0
		for i, r := range g.replicas {
			n := r.cache.len()
			entries += n
			st.Replicas[i] = ReplicaStats{
				Replica:      i,
				QueueDepth:   r.co.queueDepth(),
				Inflight:     r.load(),
				Served:       r.served.Load(),
				CacheEntries: n,
			}
		}
		st.CacheEntries = entries
		out = append(out, st)
	}
	return f.epoch, out
}

// Close stops every replica's coalescer after draining queued requests and
// rejects all future mutations and resolves. Safe to call more than once.
// The HTTP listener should be shut down first so no new requests arrive.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	groups := make([]*group, 0, len(f.shards))
	for _, g := range f.shards {
		groups = append(groups, g)
	}
	f.mu.Unlock()
	for _, g := range groups {
		g.close()
	}
}
