package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trusthmd/pkg/detector"
)

func TestFleetLifecycle(t *testing.T) {
	d, _ := testDetector(t)
	f, err := NewFleet(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Len() != 0 {
		t.Fatalf("empty fleet has %d shards", f.Len())
	}
	if _, err := f.resolve("", ""); err == nil {
		t.Fatal("empty fleet should refuse to resolve")
	}

	v, err := f.Load("m", d)
	if err != nil || v != 1 {
		t.Fatalf("Load: v=%d err=%v", v, err)
	}
	if _, err := f.Load("m", d); err == nil {
		t.Fatal("duplicate Load should fail")
	}
	if _, err := f.Swap("nope", d); err == nil {
		t.Fatal("Swap of unknown shard should fail")
	}
	if _, err := f.Load("", d); err == nil {
		t.Fatal("empty name should fail")
	}
	// A "/" would make the shard unaddressable on /v1/models/{name}.
	if _, err := f.Load("eu/west", d); err == nil {
		t.Fatal("name containing '/' should fail")
	}
	if _, err := f.Load("x", nil); err == nil {
		t.Fatal("nil detector should fail")
	}

	// The single shard serves model-less requests.
	sh, err := f.resolve("", "")
	if err != nil || sh.name != "m" || sh.version != 1 {
		t.Fatalf("resolve: %+v err=%v", sh, err)
	}

	v, err = f.Swap("m", d)
	if err != nil || v != 2 {
		t.Fatalf("Swap: v=%d err=%v", v, err)
	}
	v, replaced, err := f.LoadOrSwap("m", d)
	if err != nil || !replaced || v != 3 {
		t.Fatalf("LoadOrSwap existing: v=%d replaced=%v err=%v", v, replaced, err)
	}
	v, replaced, err = f.LoadOrSwap("n", d)
	if err != nil || replaced || v != 1 {
		t.Fatalf("LoadOrSwap new: v=%d replaced=%v err=%v", v, replaced, err)
	}

	// Two shards, no default: model-less, device-less requests are refused;
	// named and device-keyed ones are served.
	if _, err := f.resolve("", ""); err == nil {
		t.Fatal("ambiguous default should be refused")
	}
	if sh, err := f.resolve("n", ""); err != nil || sh.name != "n" {
		t.Fatalf("resolve named: %v", err)
	}
	if sh, err := f.resolve("", "device-42"); err != nil || sh == nil {
		t.Fatalf("resolve by device: %v", err)
	}

	if err := f.Unload("n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Unload("n"); err == nil {
		t.Fatal("double Unload should fail")
	}
	// Version sequences survive unload: reloading "m" after an unload
	// continues counting instead of restarting at 1.
	if err := f.Unload("m"); err != nil {
		t.Fatal(err)
	}
	if v, err = f.Load("m", d); err != nil || v != 4 {
		t.Fatalf("reload after unload: v=%d err=%v", v, err)
	}

	epoch := f.Epoch()
	if _, err := f.Swap("m", d); err != nil {
		t.Fatal(err)
	}
	if f.Epoch() != epoch+1 {
		t.Fatalf("epoch %d -> %d, want +1 per mutation", epoch, f.Epoch())
	}

	f.Close()
	f.Close() // idempotent
	if _, err := f.Load("late", d); err == nil {
		t.Fatal("Load after Close should fail")
	}
	if _, err := f.resolve("m", ""); err == nil {
		t.Fatal("resolve after Close should fail")
	}
}

// TestFleetRetiredNameBound: unloaded names keep version/stats continuity
// only up to a bound — rolling date-stamped names (or an attacker driving
// an open admin endpoint) must not grow the registry maps forever.
func TestFleetRetiredNameBound(t *testing.T) {
	d, _ := testDetector(t)
	f, err := NewFleet(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < maxRetiredNames+200; i++ {
		name := fmt.Sprintf("rolling-%d", i)
		if _, err := f.Load(name, d); err != nil {
			t.Fatal(err)
		}
		if err := f.Unload(name); err != nil {
			t.Fatal(err)
		}
	}
	f.mu.RLock()
	versions, stats := len(f.versions), len(f.statsByName)
	f.mu.RUnlock()
	if versions > maxRetiredNames || stats > maxRetiredNames {
		t.Fatalf("retired bookkeeping unbounded: %d versions, %d stats", versions, stats)
	}
	if versions == 0 {
		t.Fatal("eviction removed everything — continuity should survive below the bound")
	}
}

func TestFleetStatsSurviveSwapCacheDoesNot(t *testing.T) {
	d, X := testDetector(t)
	f, err := NewFleet(map[string]*detector.Detector{"m": d}, Config{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f)
	ts := httptest.NewServer(s)
	defer ts.Close()

	for i := 0; i < 4; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/assess", AssessRequest{Features: X[0]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	st := f.Stats()[0]
	if st.Requests != 4 || st.CacheHits != 3 || st.CacheEntries != 1 {
		t.Fatalf("pre-swap stats: %+v", st)
	}

	if _, err := f.Swap("m", d); err != nil {
		t.Fatal(err)
	}
	st = f.Stats()[0]
	if st.Version != 2 {
		t.Fatalf("version %d, want 2", st.Version)
	}
	if st.Requests != 4 {
		t.Fatalf("request counter reset on swap: %+v", st)
	}
	if st.CacheEntries != 0 {
		t.Fatalf("swap must discard the old version's cache: %+v", st)
	}

	// The first post-swap repeat recomputes (fresh cache), then hits again.
	resp, body := postJSON(t, ts.URL+"/v1/assess", AssessRequest{Features: X[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got AssessResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 {
		t.Fatalf("post-swap response version %d, want 2", got.Version)
	}
	if st := f.Stats()[0]; st.CacheEntries != 1 {
		t.Fatalf("post-swap miss should repopulate the new cache: %+v", st)
	}

	// Counters also survive an unload/reload cycle, like the version
	// sequence — stats are cumulative per name, not per incarnation.
	before := f.Stats()[0].Requests
	if err := f.Unload("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Load("m", d); err != nil {
		t.Fatal(err)
	}
	reloaded := f.Stats()[0]
	if reloaded.Version != 3 {
		t.Fatalf("reload version %d, want 3", reloaded.Version)
	}
	if reloaded.Requests != before {
		t.Fatalf("unload/reload reset counters: %d -> %d", before, reloaded.Requests)
	}
}

// TestSwapUnderLoadIsLossless is the hot-lifecycle acceptance e2e: a Swap
// in the middle of sustained concurrent load must lose zero in-flight
// requests (every response 200, element-wise valid), and once the swap
// returns, subsequent responses must carry the new shard version and the
// new detector's decisions.
func TestSwapUnderLoadIsLossless(t *testing.T) {
	d, X := testDetector(t)
	strict, err := d.WithOptions(detector.WithThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(map[string]*detector.Detector{"m": d}, Config{
		MaxBatch:  8,
		MaxWait:   time.Millisecond,
		QueueSize: 4096,
		CacheSize: -1, // every request exercises the coalescer + swap race
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Close()

	const workers = 8
	const perWorker = 60
	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		sawV1    atomic.Int64
		sawV2    atomic.Int64
		started  = make(chan struct{})
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-started
			lastVersion := uint64(0)
			for i := 0; i < perWorker; i++ {
				x := X[(w*perWorker+i)%len(X)]
				raw, _ := json.Marshal(AssessRequest{Features: x})
				resp, err := http.Post(ts.URL+"/v1/assess", "application/json", bytes.NewReader(raw))
				if err != nil {
					failures.Add(1)
					t.Errorf("worker %d: %v", w, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("worker %d request %d: status %d: %s", w, i, resp.StatusCode, body)
					return
				}
				var got AssessResponse
				if err := json.Unmarshal(body, &got); err != nil {
					failures.Add(1)
					t.Errorf("worker %d: %v", w, err)
					return
				}
				switch got.Version {
				case 1:
					sawV1.Add(1)
				case 2:
					sawV2.Add(1)
				default:
					failures.Add(1)
					t.Errorf("worker %d: impossible version %d", w, got.Version)
					return
				}
				if got.Version < lastVersion {
					failures.Add(1)
					t.Errorf("worker %d: version went backwards %d -> %d", w, lastVersion, got.Version)
					return
				}
				lastVersion = got.Version
			}
		}(w)
	}

	close(started)
	// Let load build, then hot-swap mid-flight.
	time.Sleep(5 * time.Millisecond)
	if _, err := f.Swap("m", strict); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests lost across the swap", n)
	}
	if sawV2.Load() == 0 {
		t.Fatal("no response carried the new shard version (swap happened after all load?)")
	}
	t.Logf("swap under load: %d v1 responses, %d v2 responses, 0 failures", sawV1.Load(), sawV2.Load())

	// After the swap has returned, every response must be the new version
	// with the new detector's decision. Threshold 0 rejects anything with
	// entropy > 0, so the rollout is observable in the verdict itself.
	var x []float64
	var want detector.Result
	for _, cand := range X {
		r, err := strict.Assess(cand)
		if err != nil {
			t.Fatal(err)
		}
		if r.Entropy > 0 {
			x, want = cand, r
			break
		}
	}
	if x == nil {
		t.Skip("no uncertain sample in test split")
	}
	resp, body := postJSON(t, ts.URL+"/v1/assess", AssessRequest{Features: x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap status %d: %s", resp.StatusCode, body)
	}
	var got AssessResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 {
		t.Fatalf("post-swap version %d, want 2", got.Version)
	}
	if got.Decision != want.Decision.String() || got.Entropy != want.Entropy {
		t.Fatalf("post-swap response %+v does not match the swapped-in detector %+v", got, want)
	}
	if got.Decision != "reject" {
		t.Fatalf("threshold-0 shard should reject the uncertain sample, got %q", got.Decision)
	}
}

func TestDeviceRouting(t *testing.T) {
	d, X := testDetector(t)
	strict, err := d.WithOptions(detector.WithThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(map[string]*detector.Detector{"normal": d, "strict": strict}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Close()

	assess := func(req AssessRequest) AssessResponse {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/v1/assess", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var got AssessResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		return got
	}

	// A device key routes deterministically: repeats stick to one shard,
	// and the shard matches the ring's prediction.
	ring := buildRing([]string{"normal", "strict"})
	for i := 0; i < 8; i++ {
		device := fmt.Sprintf("host-%d", i)
		want := ring.lookup(device)
		first := assess(AssessRequest{Device: device, Features: X[i%len(X)]})
		if first.Model != want {
			t.Fatalf("device %q routed to %q, ring says %q", device, first.Model, want)
		}
		again := assess(AssessRequest{Device: device, Features: X[i%len(X)]})
		if again.Model != first.Model {
			t.Fatalf("device %q flapped shards: %q then %q", device, first.Model, again.Model)
		}
	}

	// Both shards are reachable across a spread of devices.
	seen := map[string]bool{}
	for i := 0; i < 64 && len(seen) < 2; i++ {
		seen[assess(AssessRequest{Device: fmt.Sprintf("spread-%d", i), Features: X[0]}).Model] = true
	}
	if len(seen) != 2 {
		t.Fatalf("64 devices all routed to one shard: %v", seen)
	}

	// An explicit model name wins over the device key.
	got := assess(AssessRequest{Model: "strict", Device: "device-pinned-elsewhere", Features: X[0]})
	if got.Model != "strict" {
		t.Fatalf("explicit model lost to device routing: %+v", got)
	}

	// The batch endpoint routes by device too.
	resp, body := postJSON(t, ts.URL+"/v1/assess/batch", BatchRequest{Device: "host-0", Batch: [][]float64{X[0]}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var batch BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Model != ring.lookup("host-0") {
		t.Fatalf("batch device routing diverged: %+v", batch)
	}
}

func TestAdminEndpoints(t *testing.T) {
	d, _ := testDetector(t)
	path := filepath.Join(t.TempDir(), "det.gob")
	fd, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(fd); err != nil {
		t.Fatal(err)
	}
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}

	var prepared atomic.Int64
	f, err := NewFleet(map[string]*detector.Detector{"boot": d}, Config{
		AdminToken: "sesame",
		// Far below the inline gob upload's size: admin loads must use
		// their own (default 64 MiB) cap, not the assess-path cap.
		MaxBodyBytes: 1024,
		PrepareDetector: func(det *detector.Detector) (*detector.Detector, error) {
			prepared.Add(1)
			return det.WithOptions(detector.WithThreshold(0.33))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Close()

	do := func(method, url string, body any, token string) (*http.Response, []byte) {
		t.Helper()
		var rd io.Reader
		if body != nil {
			raw, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(raw)
		}
		req, err := http.NewRequest(method, ts.URL+url, rd)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	// Mutations without (or with a wrong) token are refused; the error
	// keeps the JSON envelope.
	for _, token := range []string{"", "wrong"} {
		resp, body := do(http.MethodPost, "/v1/models", LoadModelRequest{Name: "x", Path: path}, token)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("token %q: status %d: %s", token, resp.StatusCode, body)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("non-JSON 401 body: %s", body)
		}
	}
	if resp, _ := do(http.MethodDelete, "/v1/models/boot", nil, ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated DELETE: status %d", resp.StatusCode)
	}

	// Reads stay open without a token.
	if resp, _ := do(http.MethodGet, "/v1/models", nil, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/models without token: %d", resp.StatusCode)
	}

	// Load a new shard from a gob path; the PrepareDetector hook applies.
	resp, body := do(http.MethodPost, "/v1/models", LoadModelRequest{Name: "fromdisk", Path: path}, "sesame")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: status %d: %s", resp.StatusCode, body)
	}
	var loaded LoadModelResponse
	if err := json.Unmarshal(body, &loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "fromdisk" || loaded.Version != 1 || loaded.Replaced {
		t.Fatalf("load response: %+v", loaded)
	}
	if loaded.Info.Threshold != 0.33 {
		t.Fatalf("PrepareDetector hook skipped: %+v", loaded.Info)
	}
	if prepared.Load() == 0 {
		t.Fatal("hook never ran")
	}

	// POST again under the same name: a hot swap, version 2.
	resp, body = do(http.MethodPost, "/v1/models", LoadModelRequest{Name: "fromdisk", Path: path}, "sesame")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.Version != 2 || !loaded.Replaced {
		t.Fatalf("swap response: %+v", loaded)
	}

	// Inline body: ship the gob itself, base64 inside JSON. The upload is
	// far larger than the 1 KiB assess-path MaxBodyBytes above — it must
	// ride the separate admin cap.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2048 {
		t.Fatalf("test gob too small (%d bytes) to prove the admin cap", len(raw))
	}
	resp, body = do(http.MethodPost, "/v1/models", LoadModelRequest{Name: "inline", Data: raw}, "sesame")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline load: status %d: %s", resp.StatusCode, body)
	}

	// The listing shows all three shards with their versions.
	resp, body = do(http.MethodGet, "/v1/models", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var listing ModelsResponse
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Models) != 3 {
		t.Fatalf("listing: %+v", listing)
	}
	versions := map[string]uint64{}
	for _, m := range listing.Models {
		versions[m.Name] = m.Version
	}
	if versions["boot"] != 1 || versions["fromdisk"] != 2 || versions["inline"] != 1 {
		t.Fatalf("versions: %v", versions)
	}

	// GET /v1/models/{name} describes one shard; unknown names 404.
	resp, body = do(http.MethodGet, "/v1/models/fromdisk", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get one: status %d: %s", resp.StatusCode, body)
	}
	var one ModelInfo
	if err := json.Unmarshal(body, &one); err != nil {
		t.Fatal(err)
	}
	if one.Name != "fromdisk" || one.Version != 2 {
		t.Fatalf("get one: %+v", one)
	}
	if resp, _ := do(http.MethodGet, "/v1/models/ghost", nil, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get unknown: status %d", resp.StatusCode)
	}

	// Bad load requests: missing name, neither source, both sources,
	// unreadable path, garbage inline data.
	for name, req := range map[string]LoadModelRequest{
		"missing name": {Path: path},
		"slash name":   {Name: "eu/west", Path: path},
		"no source":    {Name: "x"},
		"two sources":  {Name: "x", Path: path, Data: raw},
		"bad path":     {Name: "x", Path: filepath.Join(t.TempDir(), "missing.gob")},
		"bad data":     {Name: "x", Data: []byte("not a gob")},
	} {
		resp, body := do(http.MethodPost, "/v1/models", req, "sesame")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, body)
		}
	}

	// Unload, then 404 on a repeat.
	resp, body = do(http.MethodDelete, "/v1/models/inline", nil, "sesame")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unload: status %d: %s", resp.StatusCode, body)
	}
	var unloaded UnloadModelResponse
	if err := json.Unmarshal(body, &unloaded); err != nil || !unloaded.Unloaded {
		t.Fatalf("unload response: %s", body)
	}
	if resp, _ := do(http.MethodDelete, "/v1/models/inline", nil, "sesame"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double unload: status %d", resp.StatusCode)
	}

	// Method discipline on the new surfaces: the Allow header lists every
	// accepted method and the body keeps the JSON envelope.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putBody, _ := io.ReadAll(putResp.Body)
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/models: status %d", putResp.StatusCode)
	}
	if allow := putResp.Header.Get("Allow"); allow != "GET, POST" {
		t.Fatalf("PUT /v1/models Allow header %q, want \"GET, POST\"", allow)
	}
	var e ErrorResponse
	if err := json.Unmarshal(putBody, &e); err != nil || e.Error == "" {
		t.Fatalf("non-JSON 405 body: %s", putBody)
	}
}
