package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"trusthmd/pkg/ingest"
	"trusthmd/pkg/verdictstore"
)

// The closed-loop HTTP surface:
//
//	GET  /v1/verdicts   range-query the attached verdict store
//	POST /v1/ingest     push telemetry events into the attached pump
//
// Both answer 404 when their backing piece is not attached — the
// endpoints exist only when the daemon runs with a verdict store /
// ingest pump.

// maxVerdictQueryLimit bounds one GET /v1/verdicts response; the default
// (no "limit" param) is deliberately smaller.
const (
	maxVerdictQueryLimit     = 10000
	defaultVerdictQueryLimit = 1000
)

// VerdictsResponse is the JSON body answering GET /v1/verdicts.
type VerdictsResponse struct {
	Count   int                   `json:"count"`
	Records []verdictstore.Record `json:"records"`
}

// handleVerdicts is GET /v1/verdicts?device=&model=&since_seq=&since=&until=&limit=:
// a range query over the attached verdict store. Times are RFC 3339.
func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	store := s.fleet.cfg.Verdicts
	if store == nil {
		writeError(w, http.StatusNotFound, "verdict store not enabled (start with -verdict-dir)")
		return
	}
	q := r.URL.Query()
	f := verdictstore.Filter{
		Device: q.Get("device"),
		Model:  q.Get("model"),
		Limit:  defaultVerdictQueryLimit,
	}
	if raw := q.Get("since_seq"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad since_seq %q: %v", raw, err))
			return
		}
		f.SinceSeq = v
	}
	if raw := q.Get("since"); raw != "" {
		t, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad since %q: want RFC 3339", raw))
			return
		}
		f.Since = t
	}
	if raw := q.Get("until"); raw != "" {
		t, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad until %q: want RFC 3339", raw))
			return
		}
		f.Until = t
	}
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q", raw))
			return
		}
		f.Limit = v
	}
	if f.Limit > maxVerdictQueryLimit {
		f.Limit = maxVerdictQueryLimit
	}
	recs, err := store.Query(f)
	if err != nil {
		if errors.Is(err, verdictstore.ErrClosed) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if recs == nil {
		recs = []verdictstore.Record{}
	}
	writeJSON(w, http.StatusOK, VerdictsResponse{Count: len(recs), Records: recs})
}

// IngestRequest is the JSON body of POST /v1/ingest: one event (device +
// features, like /v1/assess) or a batch under "events".
type IngestRequest struct {
	Device   string         `json:"device,omitempty"`
	Model    string         `json:"model,omitempty"`
	Features []float64      `json:"features,omitempty"`
	Events   []ingest.Event `json:"events,omitempty"`
}

// IngestResponse answers a successful POST /v1/ingest.
type IngestResponse struct {
	// Queued is how many events were accepted into the pump. Assessment
	// is asynchronous: the verdicts land in the verdict store, not in
	// this response.
	Queued int `json:"queued"`
}

// handleIngest is POST /v1/ingest: enqueue telemetry into the attached
// pump without waiting for assessment (202). A full queue sheds with 503
// + Retry-After — the pump's backpressure reaching the HTTP edge.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	pump := s.pump.Load()
	if pump == nil {
		writeError(w, http.StatusNotFound, "ingest not enabled (start with -ingest-dir or attach a pump)")
		return
	}
	var req IngestRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	single := len(req.Features) > 0
	if single == (len(req.Events) > 0) {
		writeError(w, http.StatusBadRequest, `exactly one of "features" and "events" must be set`)
		return
	}
	events := req.Events
	if single {
		events = []ingest.Event{{Device: req.Device, Model: req.Model, Features: req.Features}}
	}
	for i, ev := range events {
		if len(ev.Features) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("events[%d]: features missing or empty", i))
			return
		}
	}
	queued := 0
	for _, ev := range events {
		if err := pump.Push(ev); err != nil {
			switch {
			case errors.Is(err, ingest.ErrBusy):
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable,
					fmt.Sprintf("ingest queue full after %d of %d events", queued, len(events)))
			case errors.Is(err, ingest.ErrStopped):
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, err.Error())
			default:
				writeError(w, http.StatusInternalServerError, err.Error())
			}
			return
		}
		queued++
	}
	writeJSON(w, http.StatusAccepted, IngestResponse{Queued: queued})
}
