package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"trusthmd/pkg/detector"
)

// streamWriteTimeout bounds every response write on a live stream: a
// healthy client drains its socket far faster, while a client that sends
// states without ever reading responses trips it instead of wedging the
// handler goroutine (the daemon's http.Server sets no WriteTimeout —
// streams are meant to outlive any fixed budget).
const streamWriteTimeout = 30 * time.Second

// drainWriteGrace is how long a draining stream may keep writing (the
// summary line to a healthy client) before its connection is expired; it
// must stay well under any graceful-shutdown budget.
const drainWriteGrace = time.Second

// POST /v1/assess/stream is the raw-telemetry transport: instead of
// client-side feature extraction feeding /v1/assess, a client streams the
// DVFS states themselves and the server runs the full online loop (sliding
// window, feature extraction, projection memo, trusted decision) through a
// per-connection detector.Session.
//
// The protocol is newline-delimited JSON both ways:
//
//	-> {"model":"m","device":"d","levels":3,"window":16,"stride":4}  header, first line
//	-> {"state":2}              one sample
//	-> {"states":[0,1,2]}       a chunk of samples
//	<- {"seq":1,"sample":16,"model":"m","version":2,...}             one line per decision
//	<- {"done":true,"samples":64,"decisions":13,...}                 summary, on clean EOF
//	<- {"error":"..."}                                               terminal, on mid-stream failure
//
// Routing follows the assess endpoints (explicit model, else consistent-
// hash on device, else default). The session pins the shard version that
// accepted it: a hot swap mid-stream never changes an open stream's
// decisions — new streams get the new version. Each input line is bounded
// by Config.MaxStreamLineBytes; the body as a whole is unbounded.
func (s *Server) handleAssessStream(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	sc := bufio.NewScanner(r.Body)
	// The scanner's token cap is max(maxTokenSize, cap(buf)), so the
	// initial buffer must not exceed the configured line cap or it would
	// silently raise it.
	initial := 4096
	if initial > s.fleet.cfg.MaxStreamLineBytes {
		initial = s.fleet.cfg.MaxStreamLineBytes
	}
	sc.Buffer(make([]byte, 0, initial), s.fleet.cfg.MaxStreamLineBytes)

	rc := http.NewResponseController(w)
	// An open stream would otherwise pin http.Server.Shutdown until the
	// client hangs up (even a client that never sent its header): when the
	// server begins draining, expire the read so the blocked Scan returns.
	watchdogDone := make(chan struct{})
	watchdogExited := make(chan struct{})
	go func() {
		defer close(watchdogExited)
		select {
		case <-s.draining:
			// Unblock both directions: the handler may be stuck in Scan
			// (idle client) or in a response Write (client that sends but
			// never reads, with TCP backpressure filled). Reads expire
			// immediately; writes get a short grace so a responsive
			// client still receives the closing summary line.
			_ = rc.SetReadDeadline(time.Now())
			_ = rc.SetWriteDeadline(time.Now().Add(drainWriteGrace))
		case <-watchdogDone:
		}
	}()
	defer func() {
		// Stop the watchdog first (so it cannot re-arm a deadline), then
		// clear both deadlines: they are absolute and the daemon sets no
		// Server.WriteTimeout, so without this they would outlive the
		// stream and kill later keep-alive requests on the same
		// connection mid-response.
		close(watchdogDone)
		<-watchdogExited
		_ = rc.SetReadDeadline(time.Time{})
		_ = rc.SetWriteDeadline(time.Time{})
	}()
	drainingNow := func() bool {
		select {
		case <-s.draining:
			return true
		default:
			return false
		}
	}
	// armIdle bounds the wait for the client's next line, so a silent
	// connection cannot pin this goroutine (and its session) forever. The
	// draining re-check after arming mirrors emit's: a drain firing in
	// between must not be overwritten by the longer idle deadline.
	armIdle := func() {
		if s.fleet.cfg.StreamIdleTimeout < 0 {
			return
		}
		_ = rc.SetReadDeadline(time.Now().Add(s.fleet.cfg.StreamIdleTimeout))
		if drainingNow() {
			_ = rc.SetReadDeadline(time.Now())
		}
	}

	// The header line still has the full HTTP status machinery available:
	// reject bad sessions with a proper status + JSON envelope before any
	// streaming byte is written.
	armIdle()
	hdrLine, err := nextLine(sc)
	switch {
	case errors.Is(err, io.EOF):
		writeError(w, http.StatusBadRequest, "missing stream header line")
		return
	case errors.Is(err, bufio.ErrTooLong):
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("stream line exceeds %d bytes", s.fleet.cfg.MaxStreamLineBytes))
		return
	case err != nil:
		if drainingNow() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, ErrClosed.Error())
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading stream header: %v", err))
		return
	}
	var hdr StreamHeader
	if err := unmarshalStrict(hdrLine, &hdr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad stream header: %v", err))
		return
	}
	// In a cluster, a stream whose shard lives on another node is proxied
	// there chunk by chunk; the hook replays the exported session state
	// onto a ring successor if the owner dies, so the stream survives a
	// node kill. All socket discipline (idle deadlines, write deadlines,
	// drain behaviour) stays here, packaged into the StreamConn closures.
	if hook := s.clusterHook(); hook != nil {
		shard, local := hook.ResolveAssess(r, hdr.Model, hdr.Device)
		if !local {
			emit := s.streamEmitter(w, rc, drainingNow)
			hook.ProxyStream(&StreamConn{
				Hdr: hdr,
				Next: func() ([]int, error) {
					armIdle()
					line, err := nextLine(sc)
					if errors.Is(err, bufio.ErrTooLong) {
						return nil, &StreamLineError{Msg: fmt.Sprintf(
							"stream line exceeds %d bytes", s.fleet.cfg.MaxStreamLineBytes)}
					}
					if err != nil {
						return nil, err
					}
					return decodeStreamStates(line)
				},
				HTTPError: func(code int, msg string) { writeError(w, code, msg) },
				Begin: func() {
					_ = rc.EnableFullDuplex()
					w.Header().Set("Content-Type", "application/x-ndjson")
					w.WriteHeader(http.StatusOK)
				},
				Emit:     emit,
				Fail:     func(msg string) { emit(ErrorResponse{Error: msg}) },
				Draining: drainingNow,
			})
			return
		}
		hdr.Model = shard
	}
	g, err := s.fleet.resolve(hdr.Model, hdr.Device)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	// A session pins its home replica the way it pins the shard version: the
	// device's consistent-hash slot (round-robin for device-less streams),
	// chosen once at accept time. Streams run their own per-connection
	// Session rather than the replica's coalescer, so the pin is affinity
	// and accounting — a hot swap mid-stream changes neither.
	sh := g.home(hdr.Device)
	if hdr.Window > s.fleet.cfg.MaxStreamWindow {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("window %d exceeds limit %d", hdr.Window, s.fleet.cfg.MaxStreamWindow))
		return
	}
	cfg := detector.StreamConfig{Levels: hdr.Levels, Window: hdr.Window, Stride: hdr.Stride}
	// Fail fast on dimensionality: a Levels value whose windows can never
	// match the model's input — including absurd ones that would size the
	// per-window histogram allocation, an unauthenticated DoS lever — is
	// rejected here with a 400 instead of an error line after the first
	// full window. The check is arithmetic (levels determines the feature
	// dim); nothing is allocated before it passes.
	if err := sh.det.ValidateStream(cfg); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess, err := detector.NewSession(sh.det, cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	defer sess.Close()
	sh.stats.streamSessions.Add(1)

	// HTTP/1.x half-closes the request body on the first response write;
	// this stream writes decisions while states are still arriving, so it
	// needs full duplex (a no-op error on transports that always have it).
	_ = rc.EnableFullDuplex()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	emit := s.streamEmitter(w, rc, drainingNow)
	// After the 200 the status is spent; mid-stream failures become a
	// terminal error line in the same envelope shape as ErrorResponse.
	fail := func(msg string) { emit(ErrorResponse{Error: msg}) }
	defer func() {
		st := sess.Stats()
		sh.stats.streamSamples.Add(int64(st.Samples))
		sh.stats.streamDecisions.Add(int64(st.Decisions))
		sh.stats.streamCacheHits.Add(int64(st.CacheHits))
	}()

	// summary ends the stream; draining marks a server-initiated cutoff so
	// clients can distinguish "all my telemetry was assessed" from "the
	// server wound me down mid-stream — resume against a fresh stream".
	summary := func(draining bool) {
		st := sess.Stats()
		emit(StreamSummary{
			Done:      true,
			Draining:  draining,
			Model:     sh.name,
			Version:   sh.version,
			Samples:   st.Samples,
			Decisions: st.Decisions,
			CacheHits: st.CacheHits,
			Benign:    st.Benign,
			Malware:   st.Malware,
			Rejected:  st.Rejected,
		})
	}

	seq := 0
	samples := 0
	for {
		armIdle()
		line, err := nextLine(sc)
		switch {
		case errors.Is(err, io.EOF):
			summary(false)
			return
		case errors.Is(err, bufio.ErrTooLong):
			fail(fmt.Sprintf("stream line exceeds %d bytes", s.fleet.cfg.MaxStreamLineBytes))
			return
		case err != nil:
			if drainingNow() {
				// The watchdog expired the read because the server is
				// shutting down: end the stream cleanly with a summary
				// marked as truncated.
				summary(true)
				return
			}
			// Client disconnects land here; the error line is best-effort.
			fail(fmt.Sprintf("reading stream: %v", err))
			return
		}
		states, err := decodeStreamStates(line)
		if err != nil {
			// Ambiguous or malformed lines are hard errors — the line's
			// intent is unclear, so nothing of it is applied.
			fail(err.Error())
			return
		}
		for _, state := range states {
			res, ok, err := sess.Push(state)
			samples++
			if err != nil {
				fail(fmt.Sprintf("sample %d: %v", samples-1, err))
				return
			}
			if !ok {
				continue
			}
			seq++
			sh.stats.observeOne(res.Decision)
			// Stream verdicts are stored without features: the session's
			// extracted window vector is internal, and stream forensics
			// are reconstructible from the raw states client-side.
			s.fleet.recordVerdict(hdr.Device, "stream", sh.name, sh.version, res, nil, 0)
			if !emit(StreamResult{
				Seq:            seq,
				Sample:         samples - 1,
				AssessResponse: toResponse(sh.name, sh.version, res),
			}) {
				// The client stopped reading (or the write deadline hit):
				// abandon the stream rather than wedge on the next write.
				return
			}
		}
	}
}

// streamEmitter builds the stream's response writer: emit reports whether
// the line was written. Every write carries a deadline — a client that
// sends states but never reads its responses would otherwise fill the
// socket buffer and wedge the handler goroutine (and its Session) in
// Write forever; emit failing aborts the stream instead. While draining,
// the tighter grace keeps shutdown snappy.
func (s *Server) streamEmitter(w http.ResponseWriter, rc *http.ResponseController, drainingNow func() bool) func(v any) bool {
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	return func(v any) bool {
		_ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		// Re-check draining AFTER arming the deadline: checking first
		// would let a drain that fires in between leave the long deadline
		// in place and pin shutdown on a non-reading client. With this
		// order every interleaving ends on the short grace — either this
		// re-check sees the drain, or the watchdog's own SetWriteDeadline
		// happens after ours.
		if drainingNow() {
			_ = rc.SetWriteDeadline(time.Now().Add(drainWriteGrace))
		}
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
}

// nextLine returns the next non-blank line, io.EOF at end of stream, or
// the scanner's error (bufio.ErrTooLong for an oversized line).
func nextLine(sc *bufio.Scanner) ([]byte, error) {
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// unmarshalStrict decodes one JSON line rejecting unknown fields and
// trailing data, matching the strictness of the non-streaming endpoints:
// two values on one line would otherwise silently drop the second.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}
