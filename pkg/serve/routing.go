package serve

import (
	"sort"
	"strconv"
)

// Consistent-hash routing: requests that carry a device key instead of an
// explicit model name are mapped onto the fleet's shards through a hash
// ring, so a given device always lands on the same shard while the fleet
// membership is stable, and loading or unloading a shard only remaps the
// ~1/n of devices nearest to it on the ring — the rest keep their shard
// (and therefore their warm result-cache entries).

// ringReplicas is the number of virtual nodes per shard. More replicas
// smooth the load split between shards at the cost of a larger (still
// tiny) sorted ring.
const ringReplicas = 128

type ringPoint struct {
	hash uint64
	name string
}

// hashRing is an immutable consistent-hash ring over shard names. The
// fleet rebuilds it on every membership change; lookups are lock-free on
// the snapshot they captured.
type hashRing struct {
	points []ringPoint
}

// buildRing constructs the ring for the given shard names (order does not
// matter). Returns nil for an empty fleet.
func buildRing(names []string) *hashRing {
	if len(names) == 0 {
		return nil
	}
	points := make([]ringPoint, 0, len(names)*ringReplicas)
	for _, name := range names {
		for i := 0; i < ringReplicas; i++ {
			points = append(points, ringPoint{
				hash: hashKey(name + "#" + strconv.Itoa(i)),
				name: name,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Equal hashes (astronomically rare): break the tie by name so the
		// ring is deterministic regardless of input order.
		return points[i].name < points[j].name
	})
	return &hashRing{points: points}
}

// lookup maps a device key to its shard: the first virtual node at or
// clockwise after the key's hash, wrapping around the ring.
func (r *hashRing) lookup(device string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := hashKey(device)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].name
}

// Replica routing: within a replica group the same consistent-hash shape
// maps a device key onto a *home* replica, so a device keeps hitting the
// same coalescer and result cache while the group size is stable, and
// resizing a group only remaps the ~1/n of devices nearest the changed
// replica. The ring members are the replica indices themselves — affinity
// depends only on the group size, so a hot swap (same size, fresh
// replicas) preserves every device's home slot.

// buildReplicaRing constructs the within-group ring for n replicas.
// Returns nil for n < 2: a single replica needs no ring.
func buildReplicaRing(n int) *hashRing {
	if n < 2 {
		return nil
	}
	labels := make([]string, n)
	for i := range labels {
		labels[i] = strconv.Itoa(i)
	}
	return buildRing(labels)
}

// lookupReplica maps a device key onto a replica index. A nil ring (one
// replica) always answers 0.
func (r *hashRing) lookupReplica(device string) int {
	label := r.lookup(device)
	if label == "" {
		return 0
	}
	idx, err := strconv.Atoi(label)
	if err != nil {
		return 0 // unreachable: labels are built from strconv.Itoa
	}
	return idx
}

// hashKey is FNV-1a over the key's bytes, finished with a 64-bit avalanche
// mix. The mix matters: raw FNV-1a perturbs the hash by only ~2^46 when
// just the tail bytes differ, so "shard#0".."shard#127" (and "device-1"
// vs "device-2") would cluster into one arc of the ring instead of
// spreading — exactly the keys a consistent-hash ring is fed.
func hashKey(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	// Murmur3's fmix64 finalizer: full avalanche, so every input byte
	// flips every output bit with probability ~1/2.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
