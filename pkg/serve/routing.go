package serve

import (
	"strconv"

	"trusthmd/pkg/cluster/ring"
)

// Consistent-hash routing: requests that carry a device key instead of an
// explicit model name are mapped onto the fleet's shards through a hash
// ring, so a given device always lands on the same shard while the fleet
// membership is stable, and loading or unloading a shard only remaps the
// ~1/n of devices nearest to it on the ring — the rest keep their shard
// (and therefore their warm result-cache entries).
//
// The ring itself lives in pkg/cluster/ring — one tested implementation
// shared by all three routing levels (device→shard and device→replica
// here, shard→node in pkg/cluster); this file is the serve-layer alias
// over it.

// ringReplicas is the number of virtual nodes per shard.
const ringReplicas = ring.DefaultVNodes

// hashRing is the serve-layer view of one consistent-hash ring: the same
// immutable snapshot semantics, with the replica-index convenience lookup
// layered on top.
type hashRing struct {
	r *ring.Ring
}

// buildRing constructs the ring for the given shard names (order does not
// matter). Returns nil for an empty fleet.
func buildRing(names []string) *hashRing {
	r := ring.New(names, ringReplicas)
	if r == nil {
		return nil
	}
	return &hashRing{r: r}
}

// lookup maps a device key to its shard: the first virtual node at or
// clockwise after the key's hash, wrapping around the ring.
func (h *hashRing) lookup(device string) string {
	if h == nil {
		return ""
	}
	return h.r.Lookup(device)
}

// Replica routing: within a replica group the same consistent-hash shape
// maps a device key onto a *home* replica, so a device keeps hitting the
// same coalescer and result cache while the group size is stable, and
// resizing a group only remaps the ~1/n of devices nearest the changed
// replica. The ring members are the replica indices themselves — affinity
// depends only on the group size, so a hot swap (same size, fresh
// replicas) preserves every device's home slot.

// buildReplicaRing constructs the within-group ring for n replicas.
// Returns nil for n < 2: a single replica needs no ring.
func buildReplicaRing(n int) *hashRing {
	if n < 2 {
		return nil
	}
	labels := make([]string, n)
	for i := range labels {
		labels[i] = strconv.Itoa(i)
	}
	return buildRing(labels)
}

// lookupReplica maps a device key onto a replica index. A nil ring (one
// replica) always answers 0.
func (h *hashRing) lookupReplica(device string) int {
	label := h.lookup(device)
	if label == "" {
		return 0
	}
	idx, err := strconv.Atoi(label)
	if err != nil {
		return 0 // unreachable: labels are built from strconv.Itoa
	}
	return idx
}

// hashKey hashes one routing key; kept as the serve-layer alias so every
// historical call site (and test) reads the same.
func hashKey(s string) uint64 { return ring.Hash(s) }
