package serve

import (
	"container/list"
	"math"
	"sync"

	"trusthmd/pkg/detector"
)

// Cross-request memoisation: DVFS/HPC telemetry is bursty, so identical
// feature vectors arrive from many independent clients — the cross-request
// analogue of the window memo inside detector.Online. Each shard owns a
// bounded LRU keyed on the vector's FNV-1a hash; a hit answers without
// touching the coalescer or the detector at all. A trained detector is
// deterministic (same vector, same verdict — the property the coalescer
// already relies on), so cached answers are bit-identical to recomputed
// ones; entries are verified against the stored vector, never trusted on
// hash alone.

// resultCache is one shard's bounded LRU of assessment results. Entries
// own deep copies of both key vector and result, so cached values never
// alias a batch slab or a caller's request buffer.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[uint64]*list.Element
}

type cacheEntry struct {
	key uint64
	x   []float64
	res detector.Result
}

// newResultCache returns a cache bounded to capacity entries, or nil when
// capacity <= 0 (caching disabled).
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{cap: capacity, ll: list.New(), m: make(map[uint64]*list.Element, capacity)}
}

// hashVec is FNV-1a over the IEEE-754 bit patterns of the vector.
func hashVec(x []float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range x {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= prime
		}
	}
	return h
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		// Bit equality, matching the hash: requests with NaNs never reach
		// the cache (validateFeatures rejects them), and -0 vs +0 simply
		// occupy separate entries.
		if math.Float64bits(v) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// get returns the cached result for x, if present, and marks it most
// recently used. The returned result is a private copy.
func (c *resultCache) get(key uint64, x []float64) (detector.Result, bool) {
	if c == nil {
		return detector.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return detector.Result{}, false
	}
	ent := el.Value.(*cacheEntry)
	if !equalVec(ent.x, x) {
		// Hash collision: treat as a miss; put will overwrite the slot.
		return detector.Result{}, false
	}
	c.ll.MoveToFront(el)
	return copyResult(ent.res), true
}

// put stores a deep copy of (x, res), evicting the least recently used
// entry when the cache is full.
func (c *resultCache) put(key uint64, x []float64, res detector.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		// Refresh (or, after a hash collision, overwrite) the slot.
		ent := el.Value.(*cacheEntry)
		ent.x = append(ent.x[:0], x...)
		ent.res = copyResult(res)
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.m, oldest.Value.(*cacheEntry).key)
		}
	}
	ent := &cacheEntry{key: key, x: append([]float64(nil), x...), res: copyResult(res)}
	c.m[key] = c.ll.PushFront(ent)
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// copyResult deep-copies a result so cache entries and cache answers never
// share backing storage with batch slabs or with each other.
func copyResult(r detector.Result) detector.Result {
	out := r
	if r.VoteDist != nil {
		out.VoteDist = append([]float64(nil), r.VoteDist...)
	}
	if r.Decomposition != nil {
		d := *r.Decomposition
		out.Decomposition = &d
	}
	return out
}
