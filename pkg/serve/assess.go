package serve

import (
	"context"
	"errors"
	"net/http"
	"time"

	"trusthmd/pkg/detector"
	"trusthmd/pkg/verdictstore"
)

// AssessSpec is one assessment request against the fleet: the routing
// keys and feature vector of the HTTP assess endpoint, usable by any
// embedder (the ingest pump drives it directly, no HTTP involved).
type AssessSpec struct {
	// Model / Device route like AssessRequest's fields: explicit model
	// wins, else consistent-hash on device, else the default shard.
	Model  string
	Device string
	// Features is the raw feature vector.
	Features []float64
	// Source tags the verdict's origin in the verdict store ("assess",
	// "batch", "stream", "ingest"; default "assess").
	Source string
	// VoteBuf, when non-nil, is a caller-owned buffer the verdict's vote
	// distribution is built in (grown as needed) instead of a fresh
	// allocation. On success the returned Result owns the possibly-regrown
	// buffer; on error the buffer must be considered lost — the coalescer
	// may still be writing into it (see coalescer.submitVotes).
	VoteBuf []float64
}

// AssessOutcome is one served verdict with its provenance.
type AssessOutcome struct {
	// Model / Version identify the shard version that answered.
	Model   string
	Version uint64
	// Replica is the slot index of the replica that answered; Spilled
	// reports whether load-aware routing sent the request away from its
	// home replica.
	Replica int
	Spilled bool
	// Result is the trusted verdict.
	Result detector.Result
	// Cached reports whether the cross-request result cache answered.
	Cached bool
}

// routeError marks a resolve failure (unknown model, empty fleet,
// ambiguous default, closed fleet) so transports can map it onto their
// not-found/unavailable vocabulary. It renders as the inner message.
type routeError struct{ err error }

func (e *routeError) Error() string { return e.err.Error() }
func (e *routeError) Unwrap() error { return e.err }

// validationError marks a malformed feature vector — a caller error, not
// a serving failure.
type validationError struct{ err error }

func (e *validationError) Error() string { return e.err.Error() }
func (e *validationError) Unwrap() error { return e.err }

// Assess routes one feature vector to a shard and returns its verdict —
// the transport-independent core of POST /v1/assess. The full serving
// path applies: resolve (model/device/default precedence), input
// validation, the cross-request result cache, coalesced batching, and
// the lossless retry when a hot swap closes the shard mid-request. When
// a verdict store is attached, every outcome — cache hits included, they
// are served verdicts — is persisted with its latency.
func (f *Fleet) Assess(ctx context.Context, spec AssessSpec) (AssessOutcome, error) {
	start := time.Now()
	missCounted := false
	for attempt := 0; ; attempt++ {
		sh, spilled, err := f.resolveReplica(spec.Model, spec.Device)
		if err != nil {
			return AssessOutcome{}, &routeError{err}
		}
		if err := validateFeatures(spec.Features, sh.det.InputDim()); err != nil {
			return AssessOutcome{}, &validationError{err}
		}
		var key uint64
		if sh.cache != nil { // disabled caches pay no hashing and keep zero counters
			key = hashVec(spec.Features)
			if res, ok := sh.cache.get(key, spec.Features); ok {
				// Cross-request memo hit: same vector, same (deterministic)
				// verdict — answered without queueing or assessing.
				sh.stats.requests.Add(1)
				sh.stats.cacheHits.Add(1)
				sh.stats.cacheHitsSingle.Add(1)
				sh.stats.observeOne(res.Decision)
				sh.served.Add(1)
				out := AssessOutcome{Model: sh.name, Version: sh.version, Replica: sh.idx, Spilled: spilled, Result: res, Cached: true}
				f.recordVerdict(spec.Device, spec.Source, sh.name, sh.version, res, spec.Features, time.Since(start))
				return out, nil
			}
			// One miss per request: a retry after losing the swap race
			// probes the replacement's fresh cache, but it is still the
			// same request.
			if !missCounted {
				sh.stats.cacheMisses.Add(1)
				missCounted = true
			}
		}
		res, err := sh.assessOne(ctx, spec.Features, spec.VoteBuf)
		switch {
		case err == nil:
			sh.cache.put(key, spec.Features, res)
			sh.served.Add(1)
			out := AssessOutcome{Model: sh.name, Version: sh.version, Replica: sh.idx, Spilled: spilled, Result: res}
			f.recordVerdict(spec.Device, spec.Source, sh.name, sh.version, res, spec.Features, time.Since(start))
			return out, nil
		case errors.Is(err, ErrClosed) && attempt < maxSwapRetries:
			// The shard was hot-swapped between resolve and submit; its
			// replacement is already serving. Re-resolve instead of failing
			// the request — this is what makes a Swap lossless under load.
			continue
		default:
			return AssessOutcome{}, err
		}
	}
}

// recordVerdict persists one served verdict when a store is attached.
// Features are kept only for rejections — they are the forensic evidence
// the retraining loop feeds back into training; accepted verdicts stay
// compact. Append failures are counted, never propagated: persistence
// must not fail serving.
func (f *Fleet) recordVerdict(device, source, model string, version uint64, res detector.Result, features []float64, lat time.Duration) {
	st := f.cfg.Verdicts
	if st == nil {
		return
	}
	if source == "" {
		source = "assess"
	}
	rec := verdictstore.Record{
		Device:        device,
		Model:         model,
		Version:       version,
		Source:        source,
		Prediction:    res.Prediction,
		Decision:      res.Decision.String(),
		Entropy:       res.Entropy,
		Votes:         append([]float64(nil), res.VoteDist...),
		LatencyMicros: lat.Microseconds(),
	}
	if res.Decision == detector.Reject && features != nil {
		rec.Features = append([]float64(nil), features...)
	}
	if _, err := st.Append(rec); err != nil {
		f.verdictAppendErrs.Add(1)
	}
}

// writeAssessError maps an Assess failure onto the HTTP wire, preserving
// the status vocabulary of the original handler: route errors follow
// writeResolveError (404, or 503 for a closed fleet), validation is 400,
// overload and shutdown shed with 503 + Retry-After, a vanished client
// gets the 503 formality, anything else is a 500.
func writeAssessError(w http.ResponseWriter, err error) {
	var route *routeError
	var invalid *validationError
	switch {
	case errors.As(err, &route):
		writeResolveError(w, route.err)
	case errors.As(err, &invalid):
		writeError(w, http.StatusBadRequest, err.Error())
	case err == ErrQueueFull:
		// The exact sentinel is the hot shed path: precomputed body, no
		// formatting — overload rejection must itself be cheap.
		w.Header()["Retry-After"] = retryAfterOne
		writeBytes(w, http.StatusServiceUnavailable, bodyQueueFull)
	case err == ErrClosed:
		w.Header()["Retry-After"] = retryAfterOne
		writeBytes(w, http.StatusServiceUnavailable, bodyClosed)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client is gone; the status code is a formality.
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}
