package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestCoalescerFlushOnBatchSize: with an effectively infinite MaxWait, the
// only way n == maxBatch concurrent submits can all return is a size-
// triggered flush into one batch.
func TestCoalescerFlushOnBatchSize(t *testing.T) {
	d, X := testDetector(t)
	st := &shardStats{}
	c := newCoalescer(d, coTuning{maxBatch: 4, queueSize: 64, maxWait: time.Hour}, st)
	defer c.close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.submit(context.Background(), X[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("size-triggered flush never happened")
	}
	if got := st.batches.Load(); got != 1 {
		t.Fatalf("expected exactly 1 coalesced batch, got %d", got)
	}
	if got := st.requests.Load(); got != 4 {
		t.Fatalf("requests %d, want 4", got)
	}
}

// TestCoalescerFlushOnLatency: a lone request must not wait for a full
// batch — the MaxWait timer flushes it.
func TestCoalescerFlushOnLatency(t *testing.T) {
	d, X := testDetector(t)
	st := &shardStats{}
	c := newCoalescer(d, coTuning{maxBatch: 1 << 20, queueSize: 64, maxWait: 5 * time.Millisecond}, st)
	defer c.close()

	res, err := c.submit(context.Background(), X[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Assess(X[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Prediction != want.Prediction || res.Entropy != want.Entropy {
		t.Fatalf("lone coalesced result diverged: %+v vs %+v", res, want)
	}
	if st.batches.Load() != 1 {
		t.Fatalf("batches %d, want 1", st.batches.Load())
	}
}

// TestCoalescerQueueFull exercises the shed path against a stalled flusher
// (the coalescer here has no loop goroutine, so the queue never drains).
func TestCoalescerQueueFull(t *testing.T) {
	d, X := testDetector(t)
	st := &shardStats{}
	c := &coalescer{det: d, tuning: coTuning{maxBatch: 8, queueSize: 1, maxWait: time.Hour}, stats: st, queue: make(chan *pending, 1)}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	// Enqueues, then gives up immediately on the dead context — the sample
	// stays in the queue.
	if _, err := c.submit(cancelled, X[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := c.submit(context.Background(), X[1]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st.shed.Load() != 1 {
		t.Fatalf("shed %d, want 1", st.shed.Load())
	}
}

// TestCoalescerShedDepth: the queue-depth watermark sheds BEFORE the hard
// channel bound — admission control answers fast instead of maximising
// queueing latency. Like TestCoalescerQueueFull this uses a coalescer with
// no flusher, so queued samples stay queued.
func TestCoalescerShedDepth(t *testing.T) {
	d, X := testDetector(t)
	st := &shardStats{}
	c := &coalescer{
		det:    d,
		tuning: coTuning{maxBatch: 8, queueSize: 8, maxWait: time.Hour, shedDepth: 1},
		stats:  st,
		queue:  make(chan *pending, 8),
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.submit(cancelled, X[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// One sample waiting == the watermark: the channel has 7 free slots,
	// but admission control refuses anyway.
	if _, err := c.submit(context.Background(), X[1]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull at the shed watermark", err)
	}
	if st.shed.Load() != 1 {
		t.Fatalf("shed %d, want 1", st.shed.Load())
	}
	if got := c.inflight.Load(); got != 1 {
		t.Fatalf("inflight gauge %d, want 1 (shed must not count)", got)
	}
}

// TestCoalescerEarlyFlush: with MaxWait effectively infinite, a backlog at
// the flush watermark must flush immediately — the only way the submits
// below can return is the latency-aware early flush. The flusher is
// started only after the backlog exists so the race is deterministic.
func TestCoalescerEarlyFlush(t *testing.T) {
	d, X := testDetector(t)
	st := &shardStats{}
	c := &coalescer{
		det:    d,
		tuning: coTuning{maxBatch: 1 << 20, queueSize: 64, maxWait: time.Hour, flushDepth: 2},
		stats:  st,
		queue:  make(chan *pending, 64),
	}

	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.submit(context.Background(), X[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	// Wait until all n are queued, then start the flusher against the
	// ready-made backlog.
	deadline := time.Now().Add(5 * time.Second)
	for len(c.queue) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d submits queued", len(c.queue), n)
		}
		time.Sleep(time.Millisecond)
	}
	c.wg.Add(1)
	go c.loop()
	defer c.close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("backlog at flushDepth never early-flushed (MaxWait is an hour)")
	}
	if st.earlyFlushes.Load() == 0 {
		t.Fatalf("early flush not counted: %d batches, %d early", st.batches.Load(), st.earlyFlushes.Load())
	}
	if got := st.requests.Load(); got != n {
		t.Fatalf("requests %d, want %d", got, n)
	}
	if got := c.inflight.Load(); got != 0 {
		t.Fatalf("inflight gauge %d after settle, want 0", got)
	}
}

func TestCoalescerClosedRejects(t *testing.T) {
	d, X := testDetector(t)
	st := &shardStats{}
	c := newCoalescer(d, coTuning{maxBatch: 8, queueSize: 8, maxWait: time.Millisecond}, st)
	c.close()
	c.close() // idempotent
	if _, err := c.submit(context.Background(), X[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestCoalescerCloseDrains: requests already queued at shutdown are still
// assessed, not dropped.
func TestCoalescerCloseDrains(t *testing.T) {
	d, X := testDetector(t)
	st := &shardStats{}
	c := newCoalescer(d, coTuning{maxBatch: 16, queueSize: 64, maxWait: 50 * time.Millisecond}, st)

	const n = 8
	results := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = c.submit(context.Background(), X[i])
		}(i)
	}
	// Give the submits a moment to enqueue, then shut down mid-wait.
	time.Sleep(5 * time.Millisecond)
	c.close()
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("queued request %d dropped at shutdown: %v", i, err)
		}
	}
}

// TestCoalescerPropagatesAssessError: a failing batch fails every caller
// in it with the error, and counts it.
func TestCoalescerPropagatesAssessError(t *testing.T) {
	d, _ := testDetector(t)
	st := &shardStats{}
	c := newCoalescer(d, coTuning{maxBatch: 8, queueSize: 8, maxWait: time.Millisecond}, st)
	defer c.close()
	// Wrong dimensionality reaches the pipeline only because this bypasses
	// the server's validation.
	if _, err := c.submit(context.Background(), []float64{1, 2, 3}); err == nil {
		t.Fatal("expected projection error")
	}
	if st.errors.Load() == 0 {
		t.Fatal("error not counted")
	}
}

// BenchmarkCoalescer measures aggregate throughput of concurrent
// single-sample submits through the coalescer (the daemon's hot path).
// Compare with BenchmarkUncoalescedAssess: the coalescer turns the same
// request stream into batched projections plus pooled member inference.
func BenchmarkCoalescer(b *testing.B) {
	d, X := testDetector(b)
	st := &shardStats{}
	c := newCoalescer(d, coTuning{maxBatch: 32, queueSize: 4096, maxWait: 2 * time.Millisecond}, st)
	defer c.close()
	b.ReportAllocs()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := c.submit(context.Background(), X[i%len(X)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	if b.N > 1 && st.batches.Load() > 0 {
		b.ReportMetric(float64(st.requests.Load())/float64(st.batches.Load()), "reqs/batch")
	}
}

// BenchmarkUncoalescedAssess is the baseline: the same concurrent request
// stream served by direct per-request Assess calls.
func BenchmarkUncoalescedAssess(b *testing.B) {
	d, X := testDetector(b)
	b.ReportAllocs()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := d.Assess(X[i%len(X)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// detectorInfoSanity guards the Info surface the daemon's /v1/models
// endpoint depends on.
func TestDetectorInfoSurface(t *testing.T) {
	d, X := testDetector(t)
	info := d.Info()
	if info.Model != "rf" || info.Members != 11 || info.InputDim != len(X[0]) {
		t.Fatalf("info: %+v", info)
	}
	if info.Diversity != "bootstrap" {
		t.Fatalf("diversity: %q", info.Diversity)
	}
}
