package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestCoalescerFlushOnBatchSize: with an effectively infinite MaxWait, the
// only way n == maxBatch concurrent submits can all return is a size-
// triggered flush into one batch.
func TestCoalescerFlushOnBatchSize(t *testing.T) {
	d, X := testDetector(t)
	st := &shardStats{}
	c := newCoalescer(d, 4, 64, time.Hour, st)
	defer c.close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.submit(context.Background(), X[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("size-triggered flush never happened")
	}
	if got := st.batches.Load(); got != 1 {
		t.Fatalf("expected exactly 1 coalesced batch, got %d", got)
	}
	if got := st.requests.Load(); got != 4 {
		t.Fatalf("requests %d, want 4", got)
	}
}

// TestCoalescerFlushOnLatency: a lone request must not wait for a full
// batch — the MaxWait timer flushes it.
func TestCoalescerFlushOnLatency(t *testing.T) {
	d, X := testDetector(t)
	st := &shardStats{}
	c := newCoalescer(d, 1<<20, 64, 5*time.Millisecond, st)
	defer c.close()

	res, err := c.submit(context.Background(), X[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Assess(X[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Prediction != want.Prediction || res.Entropy != want.Entropy {
		t.Fatalf("lone coalesced result diverged: %+v vs %+v", res, want)
	}
	if st.batches.Load() != 1 {
		t.Fatalf("batches %d, want 1", st.batches.Load())
	}
}

// TestCoalescerQueueFull exercises the shed path against a stalled flusher
// (the coalescer here has no loop goroutine, so the queue never drains).
func TestCoalescerQueueFull(t *testing.T) {
	d, X := testDetector(t)
	st := &shardStats{}
	c := &coalescer{det: d, maxBatch: 8, maxWait: time.Hour, stats: st, queue: make(chan pending, 1)}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	// Enqueues, then gives up immediately on the dead context — the sample
	// stays in the queue.
	if _, err := c.submit(cancelled, X[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := c.submit(context.Background(), X[1]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st.shed.Load() != 1 {
		t.Fatalf("shed %d, want 1", st.shed.Load())
	}
}

func TestCoalescerClosedRejects(t *testing.T) {
	d, X := testDetector(t)
	st := &shardStats{}
	c := newCoalescer(d, 8, 8, time.Millisecond, st)
	c.close()
	c.close() // idempotent
	if _, err := c.submit(context.Background(), X[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestCoalescerCloseDrains: requests already queued at shutdown are still
// assessed, not dropped.
func TestCoalescerCloseDrains(t *testing.T) {
	d, X := testDetector(t)
	st := &shardStats{}
	c := newCoalescer(d, 16, 64, 50*time.Millisecond, st)

	const n = 8
	results := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = c.submit(context.Background(), X[i])
		}(i)
	}
	// Give the submits a moment to enqueue, then shut down mid-wait.
	time.Sleep(5 * time.Millisecond)
	c.close()
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("queued request %d dropped at shutdown: %v", i, err)
		}
	}
}

// TestCoalescerPropagatesAssessError: a failing batch fails every caller
// in it with the error, and counts it.
func TestCoalescerPropagatesAssessError(t *testing.T) {
	d, _ := testDetector(t)
	st := &shardStats{}
	c := newCoalescer(d, 8, 8, time.Millisecond, st)
	defer c.close()
	// Wrong dimensionality reaches the pipeline only because this bypasses
	// the server's validation.
	if _, err := c.submit(context.Background(), []float64{1, 2, 3}); err == nil {
		t.Fatal("expected projection error")
	}
	if st.errors.Load() == 0 {
		t.Fatal("error not counted")
	}
}

// BenchmarkCoalescer measures aggregate throughput of concurrent
// single-sample submits through the coalescer (the daemon's hot path).
// Compare with BenchmarkUncoalescedAssess: the coalescer turns the same
// request stream into batched projections plus pooled member inference.
func BenchmarkCoalescer(b *testing.B) {
	d, X := testDetector(b)
	st := &shardStats{}
	c := newCoalescer(d, 32, 4096, 2*time.Millisecond, st)
	defer c.close()
	b.ReportAllocs()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := c.submit(context.Background(), X[i%len(X)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	if b.N > 1 && st.batches.Load() > 0 {
		b.ReportMetric(float64(st.requests.Load())/float64(st.batches.Load()), "reqs/batch")
	}
}

// BenchmarkUncoalescedAssess is the baseline: the same concurrent request
// stream served by direct per-request Assess calls.
func BenchmarkUncoalescedAssess(b *testing.B) {
	d, X := testDetector(b)
	b.ReportAllocs()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := d.Assess(X[i%len(X)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// detectorInfoSanity guards the Info surface the daemon's /v1/models
// endpoint depends on.
func TestDetectorInfoSurface(t *testing.T) {
	d, X := testDetector(t)
	info := d.Info()
	if info.Model != "rf" || info.Members != 11 || info.InputDim != len(X[0]) {
		t.Fatalf("info: %+v", info)
	}
	if info.Diversity != "bootstrap" {
		t.Fatalf("diversity: %q", info.Diversity)
	}
}
