package serve

import (
	"bytes"
	"crypto/subtle"
	"errors"
	"fmt"
	"net/http"
	"os"

	"trusthmd/pkg/detector"
)

// The admin surface is the hot model lifecycle over HTTP:
//
//	POST   /v1/models          {"name":..., "path":...}  load or swap from a gob file on the server
//	POST   /v1/models          {"name":..., "data":...}  load or swap from an inline base64 gob body
//	DELETE /v1/models/{name}                             unload
//
// Both mutate the fleet while traffic flows: a swap drains in-flight
// coalesced batches on the old detector and routes everything after it to
// the new version (see Fleet.Swap). When Config.AdminToken is set, both
// require "Authorization: Bearer <token>".

// LoadModelRequest is the JSON body of POST /v1/models. Exactly one of
// Path and Data must be set.
type LoadModelRequest struct {
	// Name is the shard to create or replace.
	Name string `json:"name"`
	// Path points to a gob-saved detector on the server's filesystem
	// (the `trusthmd -save` / detector.Save output).
	Path string `json:"path,omitempty"`
	// Data is the gob-saved detector itself, base64-encoded in JSON.
	Data []byte `json:"data,omitempty"`
}

// LoadModelResponse answers a successful POST /v1/models.
type LoadModelResponse struct {
	Name string `json:"name"`
	// Version is the shard's new version; Replaced reports whether an
	// earlier version was hot-swapped out (false: the name is new).
	Version  uint64 `json:"version"`
	Replaced bool   `json:"replaced"`
	// Replicas is the group size the new version was fanned out to.
	Replicas int           `json:"replicas"`
	Info     detector.Info `json:"info"`
}

// UnloadModelResponse answers a successful DELETE /v1/models/{name}.
type UnloadModelResponse struct {
	Name     string `json:"name"`
	Unloaded bool   `json:"unloaded"`
}

// checkAdmin enforces the optional bearer token on mutating endpoints.
func (s *Server) checkAdmin(w http.ResponseWriter, r *http.Request) bool {
	token := s.fleet.cfg.AdminToken
	if token == "" {
		return true
	}
	auth := r.Header.Get("Authorization")
	if subtle.ConstantTimeCompare([]byte(auth), []byte("Bearer "+token)) == 1 {
		return true
	}
	w.Header().Set("WWW-Authenticate", `Bearer realm="trusthmd admin"`)
	writeError(w, http.StatusUnauthorized, "admin endpoint requires a valid bearer token")
	return false
}

// handleLoadModel is POST /v1/models: decode a detector from a gob path or
// inline body, run it through the PrepareDetector hook, and install it —
// Load for a new name, Swap (lossless under load) for an existing one.
func (s *Server) handleLoadModel(w http.ResponseWriter, r *http.Request) {
	if !s.checkAdmin(w, r) {
		return
	}
	var req LoadModelRequest
	// Inline uploads carry a whole base64 gob model, so the admin path
	// has its own (much larger) body cap than the assessment endpoints.
	if !s.decodeJSONLimit(w, r, &req, s.fleet.cfg.MaxAdminBodyBytes) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "name missing")
		return
	}
	if (req.Path == "") == (len(req.Data) == 0) {
		writeError(w, http.StatusBadRequest, "exactly one of path and data must be set")
		return
	}
	// In a cluster the load becomes a fleet-wide two-phase hot swap (stage
	// the model on every member, then commit everywhere, rolling back on
	// partial failure); the hook owns the whole exchange. Admin auth has
	// already been enforced above.
	if hook := s.clusterHook(); hook != nil && hook.HandleModelLoad(w, r, req) {
		return
	}
	var (
		det *detector.Detector
		err error
	)
	if req.Path != "" {
		det, err = loadDetectorFile(req.Path)
	} else {
		det, err = detector.Load(bytes.NewReader(req.Data))
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("model %s: %v", req.Name, err))
		return
	}
	if prep := s.fleet.cfg.PrepareDetector; prep != nil {
		if det, err = prep(det); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("model %s: %v", req.Name, err))
			return
		}
	}
	version, replaced, err := s.fleet.LoadOrSwapCause(req.Name, det, "admin")
	if err != nil {
		// For an upsert the only non-shutdown failures are caller errors
		// (bad name, nil detector), not missing resources.
		if errors.Is(err, ErrClosed) {
			writeResolveError(w, err)
		} else {
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, LoadModelResponse{
		Name:     req.Name,
		Version:  version,
		Replaced: replaced,
		Replicas: s.fleet.cfg.Replicas,
		Info:     det.Info(),
	})
}

// handleUnloadModel is DELETE /v1/models/{name}.
func (s *Server) handleUnloadModel(w http.ResponseWriter, r *http.Request, name string) {
	if !s.checkAdmin(w, r) {
		return
	}
	if err := s.fleet.Unload(name); err != nil {
		writeResolveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, UnloadModelResponse{Name: name, Unloaded: true})
}

// loadDetectorFile opens and decodes one gob-saved detector.
func loadDetectorFile(path string) (*detector.Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return detector.Load(f)
}
