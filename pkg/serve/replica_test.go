package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trusthmd/pkg/detector"
)

// TestReplicaGroupShape: the fleet fans each name out to Config.Replicas
// instances — visible in the resolve path, /v1/models and the stats
// snapshot — and a same-size hot swap preserves every device's home slot.
func TestReplicaGroupShape(t *testing.T) {
	d, _ := testDetector(t)
	f, err := NewFleet(map[string]*detector.Detector{"m": d}, Config{Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	g, err := f.resolve("m", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.replicas) != 3 {
		t.Fatalf("group has %d replicas, want 3", len(g.replicas))
	}
	for i, r := range g.replicas {
		if r.idx != i || r.name != "m" || r.version != 1 || r.co == nil || r.cache == nil {
			t.Fatalf("replica %d malformed: %+v", i, r)
		}
		if g.replicas[i].co == g.replicas[(i+1)%3].co {
			t.Fatal("replicas share a coalescer")
		}
		if g.replicas[i].cache == g.replicas[(i+1)%3].cache {
			t.Fatal("replicas share a result cache")
		}
	}

	// Home affinity is deterministic per device and survives a swap: the
	// within-group ring is keyed on replica indices, so a fresh same-size
	// group maps every device to the same slot.
	homes := make(map[string]int)
	for i := 0; i < 32; i++ {
		dev := fmt.Sprintf("device-%d", i)
		homes[dev] = g.home(dev).idx
		if again := g.home(dev).idx; again != homes[dev] {
			t.Fatalf("device %s home flapped: %d vs %d", dev, homes[dev], again)
		}
	}
	if _, err := f.Swap("m", d); err != nil {
		t.Fatal(err)
	}
	g2, err := f.resolve("m", "")
	if err != nil {
		t.Fatal(err)
	}
	if g2 == g || g2.version != 2 {
		t.Fatalf("swap did not install a fresh group (version %d)", g2.version)
	}
	for dev, idx := range homes {
		if got := g2.home(dev).idx; got != idx {
			t.Fatalf("device %s home moved across swap: %d -> %d", dev, idx, got)
		}
	}

	if _, models := f.ModelsWithEpoch(); models[0].Replicas != 3 {
		t.Fatalf("ModelInfo.Replicas = %d, want 3", models[0].Replicas)
	}
	if _, stats := f.StatsWithEpoch(); len(stats[0].Replicas) != 3 {
		t.Fatalf("ShardStats.Replicas has %d entries, want 3", len(stats[0].Replicas))
	}
}

// TestReplicaSpillUnderLoad is the tentpole's routing acceptance test: a
// bursty load keyed to ONE device (whose home is therefore one replica)
// must spill onto sibling replicas once the home queue is hot, siblings
// must serve a real share (>10%) of it, and every spilled response must be
// element-wise identical to direct assessment.
func TestReplicaSpillUnderLoad(t *testing.T) {
	d, X := testDetector(t)
	f, err := NewFleet(map[string]*detector.Detector{"m": d}, Config{
		Replicas: 3,
		// Spill as soon as the home replica has anything in flight, and
		// disable the result cache so every request exercises the queue.
		SpillDepth: 1,
		CacheSize:  -1,
		MaxBatch:   8,
		MaxWait:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Reference verdicts, computed directly — the equality oracle.
	want := make([]detector.Result, len(X))
	for i, x := range X {
		r, err := d.Assess(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	const workers = 16
	const perWorker = 40
	var wg sync.WaitGroup
	var mismatches atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				j := (w*perWorker + i) % len(X)
				out, err := f.Assess(context.Background(), AssessSpec{Device: "hot-device", Features: X[j]})
				if err != nil {
					t.Error(err)
					return
				}
				if out.Result.Prediction != want[j].Prediction ||
					out.Result.Entropy != want[j].Entropy ||
					out.Result.Decision != want[j].Decision {
					mismatches.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := mismatches.Load(); n != 0 {
		t.Fatalf("%d spill-routed responses diverged from direct assessment", n)
	}

	_, stats := f.StatsWithEpoch()
	st := stats[0]
	if st.Spills == 0 {
		t.Fatal("bursty single-device load never spilled")
	}
	g, err := f.resolve("m", "")
	if err != nil {
		t.Fatal(err)
	}
	home := g.home("hot-device")
	total, sibling := int64(0), int64(0)
	for _, r := range g.replicas {
		n := r.served.Load()
		total += n
		if r != home {
			sibling += n
		}
	}
	if total != workers*perWorker {
		t.Fatalf("served %d, want %d", total, workers*perWorker)
	}
	if share := float64(sibling) / float64(total); share <= 0.10 {
		t.Fatalf("sibling replicas served %.1f%% of the burst, want >10%%", 100*share)
	}
}

// TestReplicaGroupSwapUnderLoadLossless: hot-swapping a 3-replica group
// under sustained concurrent load must lose zero requests, and every
// response — whichever version and replica answered — must carry the
// correct verdict.
func TestReplicaGroupSwapUnderLoadLossless(t *testing.T) {
	d, X := testDetector(t)
	f, err := NewFleet(map[string]*detector.Detector{"m": d}, Config{
		Replicas:   3,
		SpillDepth: 1,
		CacheSize:  -1,
		MaxBatch:   8,
		MaxWait:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	want := make([]detector.Result, len(X))
	for i, x := range X {
		r, err := d.Assess(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	const workers = 8
	const perWorker = 50
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			lastVersion := uint64(0)
			for i := 0; i < perWorker; i++ {
				j := (w*perWorker + i) % len(X)
				out, err := f.Assess(context.Background(), AssessSpec{Device: "hot-device", Features: X[j]})
				if err != nil {
					t.Errorf("worker %d request %d lost: %v", w, i, err)
					return
				}
				if out.Version < lastVersion {
					t.Errorf("version went backwards: %d after %d", out.Version, lastVersion)
					return
				}
				lastVersion = out.Version
				if out.Result.Prediction != want[j].Prediction || out.Result.Entropy != want[j].Entropy {
					t.Errorf("response diverged during swap (version %d, replica %d)", out.Version, out.Replica)
					return
				}
			}
		}(w)
	}
	swapsDone := make(chan uint64, 1)
	go func() {
		var v uint64
		for i := 0; i < 3; i++ {
			time.Sleep(2 * time.Millisecond)
			nv, err := f.Swap("m", d)
			if err != nil {
				t.Errorf("swap %d: %v", i, err)
				break
			}
			v = nv
		}
		swapsDone <- v
	}()
	close(start)
	wg.Wait()
	if v := <-swapsDone; v < 2 {
		t.Fatalf("swaps never ran (final version %d)", v)
	}
	_, stats := f.StatsWithEpoch()
	if got := stats[0].Requests; got != workers*perWorker {
		t.Fatalf("requests %d, want %d (lossless group swap)", got, workers*perWorker)
	}
	if stats[0].Errors != 0 || stats[0].Shed != 0 {
		t.Fatalf("swap under load errored/shed: %+v", stats[0])
	}
}

// TestAssessShedsWithRetryAfter: a replica at its in-flight cap sheds
// /v1/assess with 503 + Retry-After (satellite: both assessment endpoints
// shed the same way).
func TestAssessShedsWithRetryAfter(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 1, CacheSize: -1})
	// Saturate the only replica's admission gauge from the inside — the
	// deterministic way to make "overloaded" hold for exactly one request.
	g, err := srv.fleet.resolve("dvfs-rf", "")
	if err != nil {
		t.Fatal(err)
	}
	rep := g.replicas[0]
	rep.batchInflight.Add(1)

	_, X := testDetector(t)
	resp, body := postJSON(t, ts.URL+"/v1/assess", AssessRequest{Features: X[0]})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	rep.batchInflight.Add(-1)
	resp, body = postJSON(t, ts.URL+"/v1/assess", AssessRequest{Features: X[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d: %s", resp.StatusCode, body)
	}
	if _, stats := srv.fleet.StatsWithEpoch(); stats[0].Shed != 1 {
		t.Fatalf("shed counter %d, want 1", stats[0].Shed)
	}
}

// TestBatchShedsWithRetryAfter: /v1/assess/batch sheds a full queue with
// 503 + Retry-After exactly like /v1/assess (satellite: today's divergence
// — batch never shed — is gone).
func TestBatchShedsWithRetryAfter(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 1, CacheSize: -1})
	g, err := srv.fleet.resolve("dvfs-rf", "")
	if err != nil {
		t.Fatal(err)
	}
	rep := g.replicas[0]
	rep.batchInflight.Add(1)

	_, X := testDetector(t)
	resp, body := postJSON(t, ts.URL+"/v1/assess/batch", BatchRequest{Batch: X[:4]})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("batch shed response missing Retry-After")
	}
	var errResp ErrorResponse
	if err := json.Unmarshal(body, &errResp); err != nil || errResp.Error == "" {
		t.Fatalf("shed body is not the JSON error envelope: %s", body)
	}

	// Releasing the load admits the same batch; the reservation is one
	// admission unit, so an idle replica takes a batch of any size.
	rep.batchInflight.Add(-1)
	resp, body = postJSON(t, ts.URL+"/v1/assess/batch", BatchRequest{Batch: X[:4]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d: %s", resp.StatusCode, body)
	}
	if got := rep.batchInflight.Load(); got != 0 {
		t.Fatalf("batch reservation leaked: %d", got)
	}
	if _, stats := srv.fleet.StatsWithEpoch(); stats[0].Shed != 1 {
		t.Fatalf("shed counter %d, want 1", stats[0].Shed)
	}
}

// TestStatsReplicaFields: /stats exposes the fleet-wide shed_total and the
// per-replica queue_depth/inflight/served gauges, epoch-consistent with
// the rest of the snapshot (satellite).
func TestStatsReplicaFields(t *testing.T) {
	_, ts := newTestServer(t, Config{Replicas: 2})
	_, X := testDetector(t)
	for i := 0; i < 4; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/assess", AssessRequest{Device: fmt.Sprintf("d%d", i), Features: X[i]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("assess %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		FleetEpoch uint64       `json:"fleet_epoch"`
		ShedTotal  *int64       `json:"shed_total"`
		Shards     []ShardStats `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.ShedTotal == nil {
		t.Fatal("/stats missing shed_total")
	}
	if *stats.ShedTotal != 0 {
		t.Fatalf("shed_total %d, want 0 under no load", *stats.ShedTotal)
	}
	if len(stats.Shards) != 1 || len(stats.Shards[0].Replicas) != 2 {
		t.Fatalf("expected 1 shard with 2 replica entries: %+v", stats.Shards)
	}
	var served int64
	for i, r := range stats.Shards[0].Replicas {
		if r.Replica != i {
			t.Fatalf("replica index %d at slot %d", r.Replica, i)
		}
		if r.QueueDepth != 0 || r.Inflight != 0 {
			t.Fatalf("idle replica %d shows load: %+v", i, r)
		}
		served += r.Served
	}
	if served != 4 {
		t.Fatalf("per-replica served sums to %d, want 4", served)
	}
	if stats.FleetEpoch == 0 {
		t.Fatal("fleet_epoch missing from /stats")
	}
}

// TestPinCoresServes builds a pinned fleet and drives coalesced + batch
// traffic through it: pinning is a locality discipline, so every verdict
// must come back exactly as from an unpinned fleet, with distinct one-based
// core assignments handed to the flushers (wrapping on small machines).
func TestPinCoresServes(t *testing.T) {
	d, X := testDetector(t)
	f, err := NewFleet(map[string]*detector.Detector{"m": d}, Config{Replicas: 3, PinCores: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	g, err := f.resolve("m", "")
	if err != nil {
		t.Fatal(err)
	}
	ncpu := runtime.NumCPU()
	for i, r := range g.replicas {
		want := 1 + i%ncpu
		if got := r.co.tuning.pinCPU; got != want {
			t.Fatalf("replica %d pinned to %d, want %d (NumCPU=%d)", i, got, want, ncpu)
		}
	}

	want, err := d.Assess(X[0])
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Assess(context.Background(), AssessSpec{Model: "m", Features: X[0], Source: "assess"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Prediction != want.Prediction || out.Result.Decision != want.Decision {
		t.Fatalf("pinned fleet answered %+v, direct assess %+v", out.Result, want)
	}

	// A swap keeps counting cores instead of restacking on the first ones.
	if _, err := f.Swap("m", d); err != nil {
		t.Fatal(err)
	}
	g2, err := f.resolve("m", "")
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range g2.replicas {
		want := 1 + (3+i)%ncpu
		if got := r.co.tuning.pinCPU; got != want {
			t.Fatalf("post-swap replica %d pinned to %d, want %d", i, got, want)
		}
	}
}
