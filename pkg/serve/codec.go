package serve

// Hand-rolled request/response codecs for the assessment hot path.
//
// encoding/json walks every request and response through reflection and
// allocates intermediate state per call; at high QPS the daemon spends a
// measurable share of each request marshalling, not assessing. The codecs
// here are specialised to the four wire shapes of the hot path —
// AssessRequest and BatchRequest in, AssessResponse and BatchResponse (and
// the ErrorResponse envelope) out — and decode into pooled scratch /
// encode into pooled byte buffers, so the steady-state request path
// performs no codec allocations at all.
//
// The contract with encoding/json is exact, not approximate:
//
//   - decoding accepts an input if and only if a json.Decoder with
//     DisallowUnknownFields (plus the trailing-data check the handlers
//     apply) accepts it, and produces the same decoded values — including
//     the fussy corners: case-folded key matching, escaped keys, null
//     semantics per field kind, "[]" vs "null" slices, number grammar and
//     range errors, surrogate-pair and invalid-UTF-8 replacement
//     (FuzzAssessRequestDecode cross-checks all of this on arbitrary
//     bytes);
//   - encoding is byte-identical to json.Encoder.Encode of the response
//     structs, trailing newline included (golden-pinned in codec_test.go).
//
// A codecScratch is one request's workspace, recycled through a sync.Pool:
// the decoded feature slices alias it, the coalescer copies the verdict's
// VoteDist into its votes buffer, and the response bytes are assembled in
// its out buffer. Ownership is strictly per-request — everything the
// serving layer retains (result cache, verdict store) copies out of it
// before the handler returns it to the pool.

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"

	"trusthmd/pkg/detector"
)

// codecScratch is the pooled per-request workspace of the hot-path codecs
// and handlers. The zero value is ready to use; buffers grow on demand and
// are reused across requests.
type codecScratch struct {
	body     []byte      // raw request body
	features []float64   // AssessRequest.Features backing
	rows     [][]float64 // BatchRequest.Batch row views; each row keeps its own backing
	votes    []float64   // VoteDist copy-out buffer threaded to the coalescer
	out      []byte      // response encode buffer
	str      []byte      // unquoted string/key scratch
	keys     []uint64    // batch path: per-row cache keys
	missIdx  []int       // batch path: indices of cache misses
	missX    [][]float64 // batch path: vectors needing assessment
	results  []detector.Result
	assess   detector.BatchScratch
}

var codecPool = sync.Pool{New: func() any { return new(codecScratch) }}

func getCodecScratch() *codecScratch  { return codecPool.Get().(*codecScratch) }
func putCodecScratch(s *codecScratch) { codecPool.Put(s) }

// errTrailingData marks syntactically complete JSON followed by more
// non-whitespace input — the handlers answer it with the same message the
// generic decoder path uses for dec.More().
var errTrailingData = errors.New("trailing data after JSON body")

// checkTrailing mirrors the generic path's dec.More() guard exactly:
// More() peeks the next non-whitespace byte and reports false for '}' and
// ']', so trailing input starting with either is (perhaps surprisingly)
// accepted and ignored — parity demands we do the same.
func (p *jsonParser) checkTrailing() error {
	p.skipWS()
	if p.pos < len(p.buf) && p.buf[p.pos] != '}' && p.buf[p.pos] != ']' {
		return errTrailingData
	}
	return nil
}

// ---------------------------------------------------------------------------
// Decoding

type jsonParser struct {
	buf []byte
	pos int
	sc  *codecScratch
}

func (p *jsonParser) errAt(format string, args ...any) error {
	return fmt.Errorf("invalid JSON at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *jsonParser) skipWS() {
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// lit consumes the literal s ("null", "true", "false") or errors.
func (p *jsonParser) lit(s string) error {
	if len(p.buf)-p.pos < len(s) || string(p.buf[p.pos:p.pos+len(s)]) != s {
		return p.errAt("expected %q", s)
	}
	p.pos += len(s)
	return nil
}

// decodeAssessRequest decodes one AssessRequest body with semantics
// identical to the strict json.Decoder path (see the package comment).
// req.Features aliases sc and is valid until sc's next use.
func decodeAssessRequest(data []byte, sc *codecScratch, req *AssessRequest) error {
	*req = AssessRequest{}
	p := jsonParser{buf: data, sc: sc}
	p.skipWS()
	if p.pos >= len(p.buf) {
		return p.errAt("unexpected end of input")
	}
	switch p.buf[p.pos] {
	case 'n':
		// A bare null leaves the target untouched, exactly like Decode.
		if err := p.lit("null"); err != nil {
			return err
		}
	case '{':
		if err := p.object(func(key []byte) error {
			switch {
			case fieldMatch(key, "model"):
				return p.stringField(&req.Model)
			case fieldMatch(key, "device"):
				return p.stringField(&req.Device)
			case fieldMatch(key, "features"):
				f, err := p.floatArrayField(sc.features)
				if err != nil {
					return err
				}
				if f != nil {
					sc.features = f
				}
				req.Features = f
				return nil
			default:
				return p.errAt("unknown field %q", key)
			}
		}); err != nil {
			return err
		}
	default:
		return p.errAt("request body must be a JSON object")
	}
	return p.checkTrailing()
}

// decodeBatchRequest decodes one BatchRequest body; row slices alias sc.
func decodeBatchRequest(data []byte, sc *codecScratch, req *BatchRequest) error {
	*req = BatchRequest{}
	p := jsonParser{buf: data, sc: sc}
	p.skipWS()
	if p.pos >= len(p.buf) {
		return p.errAt("unexpected end of input")
	}
	switch p.buf[p.pos] {
	case 'n':
		if err := p.lit("null"); err != nil {
			return err
		}
	case '{':
		if err := p.object(func(key []byte) error {
			switch {
			case fieldMatch(key, "model"):
				return p.stringField(&req.Model)
			case fieldMatch(key, "device"):
				return p.stringField(&req.Device)
			case fieldMatch(key, "batch"):
				b, err := p.batchField()
				if err != nil {
					return err
				}
				req.Batch = b
				return nil
			default:
				return p.errAt("unknown field %q", key)
			}
		}); err != nil {
			return err
		}
	default:
		return p.errAt("request body must be a JSON object")
	}
	return p.checkTrailing()
}

// object walks {"key": value, ...}, calling field for each key with the
// cursor positioned at the value. field must consume the value.
func (p *jsonParser) object(field func(key []byte) error) error {
	p.pos++ // '{'
	p.skipWS()
	if p.pos < len(p.buf) && p.buf[p.pos] == '}' {
		p.pos++
		return nil
	}
	for {
		p.skipWS()
		if p.pos >= len(p.buf) || p.buf[p.pos] != '"' {
			return p.errAt("expected object key")
		}
		key, err := p.parseString(p.sc.str[:0])
		if err != nil {
			return err
		}
		p.sc.str = key[:0]
		p.skipWS()
		if p.pos >= len(p.buf) || p.buf[p.pos] != ':' {
			return p.errAt("expected ':' after object key")
		}
		p.pos++
		p.skipWS()
		if err := field(key); err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.buf) {
			return p.errAt("unexpected end of object")
		}
		switch p.buf[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return nil
		default:
			return p.errAt("expected ',' or '}' in object")
		}
	}
}

// fieldMatch replicates encoding/json's member matching: exact name first,
// then a case-insensitive match under Unicode simple folding.
func fieldMatch(key []byte, name string) bool {
	if string(key) == name {
		return true
	}
	return foldEqual(key, name)
}

// foldEqual reports whether key and name are equal under Unicode simple
// case folding — the same relation encoding/json's folded field names and
// strings.EqualFold implement.
func foldEqual(key []byte, name string) bool {
	for len(key) > 0 && len(name) > 0 {
		var kr, nr rune
		if key[0] < utf8.RuneSelf {
			kr, key = rune(key[0]), key[1:]
		} else {
			r, size := utf8.DecodeRune(key)
			kr, key = r, key[size:]
		}
		if name[0] < utf8.RuneSelf {
			nr, name = rune(name[0]), name[1:]
		} else {
			r, size := utf8.DecodeRuneInString(name)
			nr, name = r, name[size:]
		}
		if kr == nr {
			continue
		}
		// Fold both to their minimal simple-fold representative.
		if minFold(kr) != minFold(nr) {
			return false
		}
	}
	return len(key) == 0 && len(name) == 0
}

// minFold returns the smallest rune in r's simple-fold orbit.
func minFold(r rune) rune {
	min := r
	for f := unicode.SimpleFold(r); f != r; f = unicode.SimpleFold(f) {
		if f < min {
			min = f
		}
	}
	return min
}

// stringField consumes a string (or null, which leaves dst untouched) into
// dst.
func (p *jsonParser) stringField(dst *string) error {
	if p.pos < len(p.buf) && p.buf[p.pos] == 'n' {
		return p.lit("null")
	}
	if p.pos >= len(p.buf) || p.buf[p.pos] != '"' {
		return p.errAt("expected string value")
	}
	s, err := p.parseString(p.sc.str[:0])
	if err != nil {
		return err
	}
	p.sc.str = s[:0]
	*dst = string(s)
	return nil
}

// floatArrayField consumes an array of numbers (or null → nil) appending
// into buf; a null element leaves its freshly-grown slot at zero, exactly
// like encoding/json. The returned slice is non-nil for "[]".
func (p *jsonParser) floatArrayField(buf []float64) ([]float64, error) {
	if p.pos < len(p.buf) && p.buf[p.pos] == 'n' {
		if err := p.lit("null"); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if p.pos >= len(p.buf) || p.buf[p.pos] != '[' {
		return nil, p.errAt("expected array of numbers")
	}
	p.pos++
	out := buf[:0]
	if out == nil {
		out = make([]float64, 0, 8)
	}
	p.skipWS()
	if p.pos < len(p.buf) && p.buf[p.pos] == ']' {
		p.pos++
		return out, nil
	}
	for {
		p.skipWS()
		if p.pos >= len(p.buf) {
			return nil, p.errAt("unexpected end of array")
		}
		if p.buf[p.pos] == 'n' {
			if err := p.lit("null"); err != nil {
				return nil, err
			}
			out = append(out, 0)
		} else {
			v, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		p.skipWS()
		if p.pos >= len(p.buf) {
			return nil, p.errAt("unexpected end of array")
		}
		switch p.buf[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return out, nil
		default:
			return nil, p.errAt("expected ',' or ']' in array")
		}
	}
}

// batchField consumes [][]float64 (or null → nil). Row backing arrays are
// recycled from sc.rows so a steady-state client batch decodes without
// allocation.
func (p *jsonParser) batchField() ([][]float64, error) {
	if p.pos < len(p.buf) && p.buf[p.pos] == 'n' {
		if err := p.lit("null"); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if p.pos >= len(p.buf) || p.buf[p.pos] != '[' {
		return nil, p.errAt("expected array of arrays")
	}
	p.pos++
	rows := p.sc.rows[:0]
	if rows == nil {
		rows = make([][]float64, 0, 8)
	}
	n := 0
	p.skipWS()
	if p.pos < len(p.buf) && p.buf[p.pos] == ']' {
		p.pos++
		p.sc.rows = rows
		return rows, nil
	}
	for {
		p.skipWS()
		if p.pos >= len(p.buf) {
			return nil, p.errAt("unexpected end of array")
		}
		// Reuse the n-th row's previous backing when there is one.
		var rowBuf []float64
		if n < len(p.sc.rows) {
			rowBuf = p.sc.rows[n]
		}
		row, err := p.floatArrayField(rowBuf)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		n++
		p.skipWS()
		if p.pos >= len(p.buf) {
			return nil, p.errAt("unexpected end of array")
		}
		switch p.buf[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			// Keep every row's backing for reuse: rows beyond n retain their
			// old capacity in sc.rows' tail.
			if len(rows) >= len(p.sc.rows) {
				p.sc.rows = rows
			} else {
				copy(p.sc.rows, rows)
				p.sc.rows = p.sc.rows[:len(p.sc.rows)]
			}
			return rows, nil
		default:
			return nil, p.errAt("expected ',' or ']' in array")
		}
	}
}

// parseNumber validates the JSON number grammar, then defers to
// strconv.ParseFloat — rejecting range errors like encoding/json does.
func (p *jsonParser) parseNumber() (float64, error) {
	start := p.pos
	if p.pos < len(p.buf) && p.buf[p.pos] == '-' {
		p.pos++
	}
	// Integer part: "0" or [1-9][0-9]*.
	switch {
	case p.pos < len(p.buf) && p.buf[p.pos] == '0':
		p.pos++
	case p.pos < len(p.buf) && p.buf[p.pos] >= '1' && p.buf[p.pos] <= '9':
		p.pos++
		for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
			p.pos++
		}
	default:
		return 0, p.errAt("invalid number")
	}
	if p.pos < len(p.buf) && p.buf[p.pos] == '.' {
		p.pos++
		if p.pos >= len(p.buf) || p.buf[p.pos] < '0' || p.buf[p.pos] > '9' {
			return 0, p.errAt("invalid number: digits required after '.'")
		}
		for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
			p.pos++
		}
	}
	if p.pos < len(p.buf) && (p.buf[p.pos] == 'e' || p.buf[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.buf) && (p.buf[p.pos] == '+' || p.buf[p.pos] == '-') {
			p.pos++
		}
		if p.pos >= len(p.buf) || p.buf[p.pos] < '0' || p.buf[p.pos] > '9' {
			return 0, p.errAt("invalid number: digits required in exponent")
		}
		for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
			p.pos++
		}
	}
	v, err := strconv.ParseFloat(string(p.buf[start:p.pos]), 64)
	if err != nil {
		// Overflow/underflow: encoding/json rejects any ParseFloat error.
		return 0, p.errAt("number %q out of range", p.buf[start:p.pos])
	}
	return v, nil
}

// parseString unquotes one JSON string into buf, replicating
// encoding/json's unquote: short escapes, \uXXXX with surrogate-pair
// combination (unpaired surrogates become U+FFFD), invalid UTF-8 bytes
// replaced by U+FFFD, raw control characters rejected.
func (p *jsonParser) parseString(buf []byte) ([]byte, error) {
	p.pos++ // opening '"'
	out := buf
	var runeBuf [utf8.UTFMax]byte
	for {
		if p.pos >= len(p.buf) {
			return nil, p.errAt("unterminated string")
		}
		c := p.buf[p.pos]
		switch {
		case c == '"':
			p.pos++
			if out == nil {
				out = []byte{}
			}
			return out, nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.buf) {
				return nil, p.errAt("unterminated escape")
			}
			switch p.buf[p.pos] {
			case '"', '\\', '/':
				out = append(out, p.buf[p.pos])
				p.pos++
			case 'b':
				out = append(out, '\b')
				p.pos++
			case 'f':
				out = append(out, '\f')
				p.pos++
			case 'n':
				out = append(out, '\n')
				p.pos++
			case 'r':
				out = append(out, '\r')
				p.pos++
			case 't':
				out = append(out, '\t')
				p.pos++
			case 'u':
				p.pos-- // rewind to the backslash for getu4
				rr := p.getu4()
				if rr < 0 {
					return nil, p.errAt("invalid \\u escape")
				}
				p.pos += 6
				if utf16.IsSurrogate(rr) {
					rr1 := p.getu4()
					if dec := utf16.DecodeRune(rr, rr1); dec != unicode.ReplacementChar {
						p.pos += 6
						n := utf8.EncodeRune(runeBuf[:], dec)
						out = append(out, runeBuf[:n]...)
						break
					}
					rr = unicode.ReplacementChar
				}
				n := utf8.EncodeRune(runeBuf[:], rr)
				out = append(out, runeBuf[:n]...)
			default:
				return nil, p.errAt("invalid escape character %q", p.buf[p.pos])
			}
		case c < 0x20:
			return nil, p.errAt("raw control character in string")
		case c < utf8.RuneSelf:
			out = append(out, c)
			p.pos++
		default:
			r, size := utf8.DecodeRune(p.buf[p.pos:])
			p.pos += size
			n := utf8.EncodeRune(runeBuf[:], r)
			out = append(out, runeBuf[:n]...)
		}
	}
}

// getu4 decodes \uXXXX at the cursor without consuming it, returning -1 on
// malformed input — the shape of encoding/json's helper.
func (p *jsonParser) getu4() rune {
	s := p.buf[p.pos:]
	if len(s) < 6 || s[0] != '\\' || s[1] != 'u' {
		return -1
	}
	var r rune
	for _, c := range s[2:6] {
		switch {
		case c >= '0' && c <= '9':
			c -= '0'
		case c >= 'a' && c <= 'f':
			c = c - 'a' + 10
		case c >= 'A' && c <= 'F':
			c = c - 'A' + 10
		default:
			return -1
		}
		r = r*16 + rune(c)
	}
	return r
}

// ---------------------------------------------------------------------------
// Encoding

// appendAssessResponse appends the exact bytes json.Encoder.Encode emits
// for resp, trailing newline included.
func appendAssessResponse(b []byte, resp *AssessResponse) []byte {
	b = appendAssessObject(b, resp.Model, resp.Version, resp.Prediction, resp.Entropy, resp.VoteDist, resp.Decision, resp.Decomposition)
	return append(b, '\n')
}

// appendBatchResponseResults appends the BatchResponse wire form straight
// from detector results, skipping the intermediate []AssessResponse the
// reflective encoder would need. Byte-identical to encoding BatchResponse
// built via toResponse.
func appendBatchResponseResults(b []byte, model string, version uint64, results []detector.Result) []byte {
	b = append(b, `{"model":`...)
	b = appendJSONString(b, model)
	b = append(b, `,"version":`...)
	b = strconv.AppendUint(b, version, 10)
	b = append(b, `,"results":[`...)
	for i := range results {
		if i > 0 {
			b = append(b, ',')
		}
		r := &results[i]
		var dec *Decomposition
		if r.Decomposition != nil {
			dec = &Decomposition{
				Total:     r.Decomposition.Total,
				Aleatoric: r.Decomposition.Aleatoric,
				Epistemic: r.Decomposition.Epistemic,
			}
		}
		b = appendAssessObject(b, model, version, r.Prediction, r.Entropy, r.VoteDist, r.Decision.String(), dec)
	}
	b = append(b, ']', '}', '\n')
	return b
}

func appendAssessObject(b []byte, model string, version uint64, prediction int, entropy float64, voteDist []float64, decision string, dec *Decomposition) []byte {
	b = append(b, `{"model":`...)
	b = appendJSONString(b, model)
	b = append(b, `,"version":`...)
	b = strconv.AppendUint(b, version, 10)
	b = append(b, `,"prediction":`...)
	b = strconv.AppendInt(b, int64(prediction), 10)
	b = append(b, `,"entropy":`...)
	b = appendJSONFloat(b, entropy)
	b = append(b, `,"vote_dist":`...)
	if voteDist == nil {
		b = append(b, `null`...)
	} else {
		b = append(b, '[')
		for i, v := range voteDist {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONFloat(b, v)
		}
		b = append(b, ']')
	}
	b = append(b, `,"decision":`...)
	b = appendJSONString(b, decision)
	if dec != nil {
		b = append(b, `,"decomposition":{"total":`...)
		b = appendJSONFloat(b, dec.Total)
		b = append(b, `,"aleatoric":`...)
		b = appendJSONFloat(b, dec.Aleatoric)
		b = append(b, `,"epistemic":`...)
		b = appendJSONFloat(b, dec.Epistemic)
		b = append(b, '}')
	}
	return append(b, '}')
}

// appendResultResponse appends the AssessResponse wire form straight from
// a detector result — the single-verdict counterpart of
// appendBatchResponseResults, byte-identical to encoding via toResponse.
func appendResultResponse(b []byte, model string, version uint64, r *detector.Result) []byte {
	var dec *Decomposition
	if r.Decomposition != nil {
		dec = &Decomposition{
			Total:     r.Decomposition.Total,
			Aleatoric: r.Decomposition.Aleatoric,
			Epistemic: r.Decomposition.Epistemic,
		}
	}
	b = appendAssessObject(b, model, version, r.Prediction, r.Entropy, r.VoteDist, r.Decision.String(), dec)
	return append(b, '\n')
}

// appendErrorResponse appends the ErrorResponse envelope, newline included.
func appendErrorResponse(b []byte, msg string) []byte {
	b = append(b, `{"error":`...)
	b = appendJSONString(b, msg)
	return append(b, '}', '\n')
}

// appendJSONFloat formats a float64 exactly like encoding/json: shortest
// round-trip form, 'e' notation only past the same magnitude thresholds,
// and the two-digit exponent cleanup ("e-09" → "e-9").
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string exactly like encoding/json
// with HTML escaping on (the json.Encoder default the generic path uses):
// `<`, `>`, `&` become \u00XX, U+2028 and U+2029 are escaped, control
// characters use the short escapes encoding/json uses (only \n, \r, \t)
// or \u00XX, and each invalid UTF-8 byte becomes the literal escape
// `\ufffd`.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				// Other control characters and the HTML-sensitive trio.
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == ' ' || r == ' ' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
