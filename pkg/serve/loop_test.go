package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"trusthmd/internal/gen"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/ingest"
	"trusthmd/pkg/verdictstore"
)

// newLoopServer builds a server whose fleet taps every verdict into a
// fresh store.
func newLoopServer(t testing.TB) (*Server, *httptest.Server, *verdictstore.Store) {
	t.Helper()
	store, err := verdictstore.Open(t.TempDir(), verdictstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := testDetector(t)
	s, err := New(map[string]*detector.Detector{"dvfs-rf": d}, Config{Verdicts: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
		store.Close()
	})
	return s, ts, store
}

func getJSON(t testing.TB, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestVerdictTapMatchesResponses is the store half of the closed-loop
// acceptance criterion at package level: every served verdict (including
// cache hits) lands in the store, element-wise identical to the
// synchronous HTTP responses, and /v1/verdicts returns them filtered.
func TestVerdictTapMatchesResponses(t *testing.T) {
	_, ts, store := newLoopServer(t)
	_, xs := testDetector(t)

	var want []AssessResponse
	for i := 0; i < 30; i++ {
		x := xs[i%10] // repeats force cache hits; hits must still be stored
		dev := fmt.Sprintf("dev-%d", i%2)
		resp, body := postJSON(t, ts.URL+"/v1/assess", AssessRequest{Device: dev, Features: x})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("assess %d: %d %s", i, resp.StatusCode, body)
		}
		var ar AssessResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		want = append(want, ar)
	}

	recs, err := store.Query(verdictstore.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("stored %d verdicts, served %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Prediction != want[i].Prediction || rec.Entropy != want[i].Entropy ||
			rec.Decision != want[i].Decision || rec.Version != want[i].Version ||
			rec.Model != want[i].Model {
			t.Fatalf("verdict %d diverged from response: %+v vs %+v", i, rec, want[i])
		}
		if rec.Device != fmt.Sprintf("dev-%d", i%2) || rec.Source != "assess" {
			t.Fatalf("verdict %d provenance: %+v", i, rec)
		}
		if rec.Decision != "reject" && rec.Features != nil {
			t.Fatalf("verdict %d: accepted verdict stored features", i)
		}
	}

	// The HTTP range query sees the same records, filtered by device.
	resp, out := getJSON(t, ts.URL+"/v1/verdicts?device=dev-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verdicts query: %d", resp.StatusCode)
	}
	if int(out["count"].(float64)) != 15 {
		t.Fatalf("device filter count = %v, want 15", out["count"])
	}

	// since_seq pagination.
	resp, out = getJSON(t, ts.URL+"/v1/verdicts?since_seq=21")
	if resp.StatusCode != http.StatusOK || int(out["count"].(float64)) != 10 {
		t.Fatalf("since_seq query: %d count=%v", resp.StatusCode, out["count"])
	}

	// Bad params are 400.
	for _, q := range []string{"?since_seq=x", "?since=yesterday", "?limit=0"} {
		resp, err := http.Get(ts.URL + "/v1/verdicts" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestVerdictsEndpointDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/verdicts")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("verdicts without a store: %d, want 404", resp.StatusCode)
	}
}

// TestIngestEndpoint drives the HTTP push source end to end: events
// accepted with 202 flow through the pump into Fleet.Assess and land in
// the verdict store tagged source=ingest.
func TestIngestEndpoint(t *testing.T) {
	s, ts, store := newLoopServer(t)
	_, xs := testDetector(t)

	// Without a pump attached the endpoint does not exist.
	resp, _ := postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Device: "d", Features: xs[0]})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ingest without pump: %d, want 404", resp.StatusCode)
	}

	pump := ingest.NewPump(func(ctx context.Context, ev ingest.Event) error {
		_, err := s.Fleet().Assess(ctx, AssessSpec{
			Model: ev.Model, Device: ev.Device, Features: ev.Features, Source: "ingest",
		})
		return err
	}, ingest.Config{Queue: 64, Workers: 2})
	s.AttachIngest(pump)
	ctx, cancel := context.WithCancel(context.Background())
	pumpDone := make(chan error, 1)
	go func() { pumpDone <- pump.Run(ctx) }()
	defer func() { cancel(); <-pumpDone }()

	resp, body := postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Device: "edge-1", Features: xs[0]})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("single ingest: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Events: []ingest.Event{
		{Device: "edge-2", Features: xs[1]},
		{Device: "edge-2", Features: xs[2]},
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch ingest: %d %s", resp.StatusCode, body)
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil || ir.Queued != 2 {
		t.Fatalf("batch ingest queued %d (%v)", ir.Queued, err)
	}

	// Malformed: both or neither of features/events.
	resp, _ = postJSON(t, ts.URL+"/v1/ingest", IngestRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ingest: %d, want 400", resp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		recs, err := store.Query(verdictstore.Filter{})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 3 {
			for _, rec := range recs {
				if rec.Source != "ingest" {
					t.Fatalf("ingested verdict source %q", rec.Source)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingested verdicts never stored: %d of 3", len(recs))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStatsClosedLoopCounters asserts the four closed-loop /stats keys:
// present (zero-valued) without attachments, and live once the store,
// pump and a caused swap exist.
func TestStatsClosedLoopCounters(t *testing.T) {
	// Bare server: keys exist with zero values.
	_, bare := newTestServer(t, Config{})
	resp, out := getJSON(t, bare.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	for _, key := range []string{"verdicts_stored", "ingest_lag", "retrains_triggered", "last_swap_cause"} {
		if _, ok := out[key]; !ok {
			t.Fatalf("stats missing %q on a bare server: %v", key, out)
		}
	}
	if out["verdicts_stored"].(float64) != 0 || out["last_swap_cause"].(string) != "" {
		t.Fatalf("bare stats not zero-valued: %v", out)
	}

	// Wired server: counters move.
	s, ts, _ := newLoopServer(t)
	d, xs := testDetector(t)
	for i := 0; i < 5; i++ {
		if resp, body := postJSON(t, ts.URL+"/v1/assess", AssessRequest{Features: xs[i]}); resp.StatusCode != 200 {
			t.Fatalf("assess: %d %s", resp.StatusCode, body)
		}
	}
	// A pump with a blocked handler: pushed events sit in the queue, so
	// ingest_lag is observably non-zero.
	block := make(chan struct{})
	pump := ingest.NewPump(func(context.Context, ingest.Event) error { <-block; return nil },
		ingest.Config{Queue: 8, Workers: 1})
	s.AttachIngest(pump)
	ctx, cancel := context.WithCancel(context.Background())
	pumpDone := make(chan error, 1)
	go func() { pumpDone <- pump.Run(ctx) }()
	// LIFO: unblock the handler BEFORE waiting for the pump to drain, or
	// the wait deadlocks on the worker stuck in the handler.
	defer func() { cancel(); <-pumpDone }()
	defer close(block)
	for i := 0; i < 4; i++ {
		if err := pump.Push(ingest.Event{Features: xs[0]}); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := s.Fleet().SwapCause("dvfs-rf", d, "drift-retrain"); err != nil {
		t.Fatal(err)
	}

	_, out = getJSON(t, ts.URL+"/stats")
	if got := out["verdicts_stored"].(float64); got != 5 {
		t.Fatalf("verdicts_stored = %v, want 5", got)
	}
	if got := out["ingest_lag"].(float64); got < 1 {
		t.Fatalf("ingest_lag = %v, want >= 1", got)
	}
	if got := out["last_swap_cause"].(string); got != "drift-retrain" {
		t.Fatalf("last_swap_cause = %q", got)
	}
	if got := out["retrains_triggered"].(float64); got != 0 {
		t.Fatalf("retrains_triggered = %v, want 0 (no controller attached)", got)
	}
}

// TestRetrainControllerClosedLoop exercises the full automatic loop at
// package level: a drifting device's verdicts accumulate in the store,
// the controller's per-device monitor alarms, forensics reach quorum, a
// background retrain fires and SwapCause installs the new version — all
// while the healthy device keeps serving.
func TestRetrainControllerClosedLoop(t *testing.T) {
	splits, err := gen.DVFSWithSizes(5, gen.Sizes{Train: 320, Test: 80, Unknown: 120})
	if err != nil {
		t.Fatal(err)
	}
	det, err := detector.New(splits.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(9), detector.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	store, err := verdictstore.Open(t.TempDir(), verdictstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	fleet, err := NewFleet(map[string]*detector.Detector{"hmd": det}, Config{Verdicts: store})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	ctrl, err := NewRetrainController(RetrainConfig{
		Store:          store,
		Fleet:          fleet,
		Model:          "hmd",
		Base:           splits.Train,
		Interval:       20 * time.Millisecond,
		Drift:          detector.DriftConfig{Window: 16},
		BaselineSample: 100,
		Sustain:        3,
		Quorum:         20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ctrlDone := make(chan error, 1)
	go func() { ctrlDone <- ctrl.Run(ctx) }()
	defer func() { cancel(); <-ctrlDone }()

	epochBefore := fleet.Epoch()
	deadline := time.Now().Add(30 * time.Second)
	sent := 0
	for fleet.Epoch() == epochBefore {
		if time.Now().After(deadline) {
			t.Fatalf("no retrain after %d verdicts; controller: %+v", sent, ctrl.Stats())
		}
		// Interleave: a healthy device on known data, a drifting edge
		// device on the zero-day split.
		known := splits.Test.At(sent % splits.Test.Len()).Features
		if _, err := fleet.Assess(ctx, AssessSpec{Device: "healthy", Features: known}); err != nil {
			t.Fatal(err)
		}
		unknown := splits.Unknown.At(sent % splits.Unknown.Len()).Features
		if _, err := fleet.Assess(ctx, AssessSpec{Device: "edge-7", Features: unknown}); err != nil {
			t.Fatal(err)
		}
		sent++
		time.Sleep(time.Millisecond)
	}

	// The swap must be attributed to the loop and counted.
	if cause := fleet.LastSwapCause(); cause != "drift-retrain" {
		t.Fatalf("last swap cause %q, want drift-retrain", cause)
	}
	waitDeadline := time.Now().Add(5 * time.Second)
	for ctrl.Stats().Retrains < 1 {
		if time.Now().After(waitDeadline) {
			t.Fatalf("swap landed but retrains counter stayed at %d", ctrl.Stats().Retrains)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Serving continued throughout and continues now, on the new version.
	out, err := fleet.Assess(ctx, AssessSpec{Device: "healthy", Features: splits.Test.At(0).Features})
	if err != nil {
		t.Fatal(err)
	}
	if out.Version < 2 {
		t.Fatalf("post-retrain version %d, want >= 2", out.Version)
	}
}

func TestRetrainControllerValidation(t *testing.T) {
	splits, err := gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 40, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := testDetector(t)
	store, err := verdictstore.Open(t.TempDir(), verdictstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	fleet, err := NewFleet(map[string]*detector.Detector{"m": d}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	cases := []RetrainConfig{
		{Fleet: fleet, Model: "m", Base: splits.Train},                     // no store
		{Store: store, Model: "m", Base: splits.Train},                     // no fleet
		{Store: store, Fleet: fleet, Base: splits.Train},                   // no model
		{Store: store, Fleet: fleet, Model: "m"},                           // no base
		{Store: store, Fleet: fleet, Model: "missing", Base: splits.Train}, // unknown shard
	}
	for i, cfg := range cases {
		if _, err := NewRetrainController(cfg); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}
