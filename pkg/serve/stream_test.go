package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"trusthmd/pkg/detector"
)

// streamNDJSON posts body to /v1/assess/stream and splits the NDJSON
// answer into results, an optional summary, and an optional error line.
func streamNDJSON(t *testing.T, url, body string) (status int, results []StreamResult, summary *StreamSummary, errLine *ErrorResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/assess/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("non-JSON stream line: %s", line)
		}
		switch {
		case probe["error"] != nil:
			errLine = new(ErrorResponse)
			if err := json.Unmarshal(line, errLine); err != nil {
				t.Fatal(err)
			}
		case probe["done"] != nil:
			summary = new(StreamSummary)
			if err := json.Unmarshal(line, summary); err != nil {
				t.Fatal(err)
			}
		default:
			var r StreamResult
			if err := json.Unmarshal(line, &r); err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, results, summary, errLine
}

// streamBody renders a header plus one state per line.
func streamBody(hdr StreamHeader, states []int) string {
	var b strings.Builder
	raw, _ := json.Marshal(hdr)
	b.Write(raw)
	b.WriteByte('\n')
	for _, s := range states {
		fmt.Fprintf(&b, "{\"state\":%d}\n", s)
	}
	return b.String()
}

// TestStreamMatchesOnlinePush is the streaming acceptance e2e: NDJSON
// assessments streamed through /v1/assess/stream must be element-wise
// identical to driving detector.Online.Push directly with the same state
// sequence.
func TestStreamMatchesOnlinePush(t *testing.T) {
	d, _ := testDetector(t)
	s, ts := newTestServer(t, Config{})

	const levels, window, stride = 8, 16, 4
	rng := rand.New(rand.NewSource(3))
	states := make([]int, 300)
	for i := range states {
		states[i] = rng.Intn(levels)
	}

	online, err := detector.NewOnline(d, detector.StreamConfig{Levels: levels, Window: window, Stride: stride})
	if err != nil {
		t.Fatal(err)
	}
	type ref struct {
		res    detector.Result
		sample int
	}
	var want []ref
	for i, st := range states {
		r, ok, err := online.Push(st)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			want = append(want, ref{res: r, sample: i})
		}
	}
	if len(want) == 0 {
		t.Fatal("reference stream produced no decisions")
	}

	status, got, summary, errLine := streamNDJSON(t, ts.URL,
		streamBody(StreamHeader{Levels: levels, Window: window, Stride: stride}, states))
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if errLine != nil {
		t.Fatalf("stream errored: %s", errLine.Error)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d decisions, direct Online.Push produced %d", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.Seq != i+1 || g.Sample != w.sample {
			t.Fatalf("decision %d: seq=%d sample=%d, want seq=%d sample=%d", i, g.Seq, g.Sample, i+1, w.sample)
		}
		if g.Prediction != w.res.Prediction || g.Entropy != w.res.Entropy || g.Decision != w.res.Decision.String() {
			t.Fatalf("decision %d diverged from Online.Push:\n got %+v\nwant %+v", i, g, w.res)
		}
		if len(g.VoteDist) != len(w.res.VoteDist) {
			t.Fatalf("decision %d: vote dist length %d vs %d", i, len(g.VoteDist), len(w.res.VoteDist))
		}
		for j := range g.VoteDist {
			if g.VoteDist[j] != w.res.VoteDist[j] {
				t.Fatalf("decision %d: vote dist diverged at %d", i, j)
			}
		}
		if g.Model != "dvfs-rf" || g.Version != 1 {
			t.Fatalf("decision %d: model/version %q/%d", i, g.Model, g.Version)
		}
	}
	if summary == nil {
		t.Fatal("stream ended without a summary line")
	}
	if summary.Samples != len(states) || summary.Decisions != len(want) {
		t.Fatalf("summary %+v, want %d samples / %d decisions", summary, len(states), len(want))
	}
	if summary.Benign+summary.Malware+summary.Rejected != summary.Decisions {
		t.Fatalf("summary decision split inconsistent: %+v", summary)
	}
	if summary.CacheHits != online.Stats.CacheHits {
		t.Fatalf("summary cache hits %d, online memo hits %d", summary.CacheHits, online.Stats.CacheHits)
	}

	// The session's activity lands in the shard's /stats counters.
	st := s.Stats()[0]
	if st.StreamSessions != 1 || st.StreamSamples != int64(len(states)) || st.StreamDecisions != int64(len(want)) {
		t.Fatalf("stream counters: %+v", st)
	}
	if st.Benign+st.Malware+st.Rejected != len(want) {
		t.Fatalf("stream decisions missing from the shard tally: %+v", st)
	}
	if st.StreamCacheHits != int64(online.Stats.CacheHits) {
		t.Fatalf("stream cache hits %d, want %d", st.StreamCacheHits, online.Stats.CacheHits)
	}
}

// TestStreamChunkedStates pins the {"states":[...]} chunk form: chunked
// and one-per-line delivery produce identical decisions.
func TestStreamChunkedStates(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const levels, window = 8, 16
	rng := rand.New(rand.NewSource(5))
	states := make([]int, 96)
	for i := range states {
		states[i] = rng.Intn(levels)
	}

	_, perLine, _, errLine := streamNDJSON(t, ts.URL,
		streamBody(StreamHeader{Levels: levels, Window: window}, states))
	if errLine != nil {
		t.Fatalf("per-line stream errored: %s", errLine.Error)
	}

	var b strings.Builder
	hdrRaw, _ := json.Marshal(StreamHeader{Levels: levels, Window: window})
	b.Write(hdrRaw)
	b.WriteByte('\n')
	for i := 0; i < len(states); i += 24 {
		chunk, _ := json.Marshal(StreamSample{States: states[i : i+24]})
		b.Write(chunk)
		b.WriteByte('\n')
	}
	status, chunked, summary, errLine := streamNDJSON(t, ts.URL, b.String())
	if status != http.StatusOK || errLine != nil {
		t.Fatalf("chunked stream: status %d, err %v", status, errLine)
	}
	if len(chunked) != len(perLine) {
		t.Fatalf("chunked %d decisions, per-line %d", len(chunked), len(perLine))
	}
	for i := range chunked {
		if chunked[i].Entropy != perLine[i].Entropy || chunked[i].Sample != perLine[i].Sample {
			t.Fatalf("decision %d diverged between chunked and per-line delivery", i)
		}
	}
	if summary == nil || summary.Samples != len(states) {
		t.Fatalf("summary: %+v", summary)
	}
}

// TestStreamErrorPaths covers the serve error paths of the new endpoint:
// missing/oversized/malformed headers, unknown models, invalid stream
// lines and out-of-range states.
func TestStreamErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxStreamLineBytes: 512, MaxStreamWindow: 64})

	t.Run("missing header", func(t *testing.T) {
		status, _, _, _ := streamNDJSON(t, ts.URL, "")
		if status != http.StatusBadRequest {
			t.Fatalf("status %d", status)
		}
	})
	t.Run("oversized header line", func(t *testing.T) {
		// MaxBytes behaviour before the 200 is committed: a proper 413
		// with the JSON envelope, not a stream error line.
		status, _, _, _ := streamNDJSON(t, ts.URL,
			`{"levels":8,"window":16,"device":"`+strings.Repeat("x", 600)+`"}`+"\n")
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", status)
		}
	})
	t.Run("bad header json", func(t *testing.T) {
		status, _, _, _ := streamNDJSON(t, ts.URL, "not json\n")
		if status != http.StatusBadRequest {
			t.Fatalf("status %d", status)
		}
	})
	t.Run("unknown header field", func(t *testing.T) {
		status, _, _, _ := streamNDJSON(t, ts.URL, `{"levels":8,"window":16,"nope":1}`+"\n")
		if status != http.StatusBadRequest {
			t.Fatalf("status %d", status)
		}
	})
	t.Run("unknown model", func(t *testing.T) {
		status, _, _, _ := streamNDJSON(t, ts.URL, `{"model":"ghost","levels":8,"window":16}`+"\n")
		if status != http.StatusNotFound {
			t.Fatalf("status %d, want 404", status)
		}
	})
	t.Run("levels above model input dim", func(t *testing.T) {
		// The residency histogram is sized by levels, so unchecked levels
		// would be an unauthenticated allocation lever; anything beyond
		// the shard's input dim can never assess and is rejected up front.
		status, _, _, _ := streamNDJSON(t, ts.URL, `{"levels":1000000000,"window":16}`+"\n")
		if status != http.StatusBadRequest {
			t.Fatalf("status %d", status)
		}
	})
	t.Run("levels mismatching feature dim", func(t *testing.T) {
		// levels=4 passes the allocation cap (4 <= input dim 17) but a
		// (4, 16) window yields 13 features, not 17 — rejected with a 400
		// at the header instead of an error line after the first window.
		status, _, _, _ := streamNDJSON(t, ts.URL, `{"levels":4,"window":16}`+"\n")
		if status != http.StatusBadRequest {
			t.Fatalf("status %d", status)
		}
	})
	t.Run("trailing data on a line", func(t *testing.T) {
		_, _, _, errLine := streamNDJSON(t, ts.URL,
			`{"levels":8,"window":16}`+"\n"+`{"state":1}{"state":2}`+"\n")
		if errLine == nil || !strings.Contains(errLine.Error, "trailing data") {
			t.Fatalf("two values on one line must be rejected, got %+v", errLine)
		}
	})
	t.Run("window above cap", func(t *testing.T) {
		status, _, _, _ := streamNDJSON(t, ts.URL, `{"levels":8,"window":128}`+"\n")
		if status != http.StatusBadRequest {
			t.Fatalf("status %d", status)
		}
	})
	t.Run("invalid online config", func(t *testing.T) {
		status, _, _, _ := streamNDJSON(t, ts.URL, `{"levels":1,"window":16}`+"\n")
		if status != http.StatusBadRequest {
			t.Fatalf("status %d", status)
		}
	})
	t.Run("oversized mid-stream line", func(t *testing.T) {
		// Past the header the 200 is already on the wire; MaxBytes
		// behaviour becomes a terminal error line naming the cap.
		body := `{"levels":8,"window":16}` + "\n" +
			`{"state":1}` + "\n" +
			`{"states":[` + strings.Repeat("1,", 400) + `1]}` + "\n"
		status, _, summary, errLine := streamNDJSON(t, ts.URL, body)
		if status != http.StatusOK {
			t.Fatalf("status %d (the 200 was committed before the bad line)", status)
		}
		if errLine == nil || !strings.Contains(errLine.Error, "exceeds 512 bytes") {
			t.Fatalf("expected line-cap error line, got %+v", errLine)
		}
		if summary != nil {
			t.Fatal("errored stream must not emit a summary")
		}
	})
	t.Run("bad sample line", func(t *testing.T) {
		_, _, summary, errLine := streamNDJSON(t, ts.URL,
			`{"levels":8,"window":16}`+"\n"+`{"nope":1}`+"\n")
		if errLine == nil {
			t.Fatalf("expected error line, summary %+v", summary)
		}
	})
	t.Run("both state and states", func(t *testing.T) {
		_, _, _, errLine := streamNDJSON(t, ts.URL,
			`{"levels":8,"window":16}`+"\n"+`{"state":1,"states":[2,3]}`+"\n")
		if errLine == nil || !strings.Contains(errLine.Error, "both") {
			t.Fatalf("ambiguous sample line must be rejected, got %+v", errLine)
		}
	})
	t.Run("empty sample line", func(t *testing.T) {
		_, _, _, errLine := streamNDJSON(t, ts.URL,
			`{"levels":8,"window":16}`+"\n"+`{}`+"\n")
		if errLine == nil || !strings.Contains(errLine.Error, `"state"`) {
			t.Fatalf("expected neither-state-nor-states error, got %+v", errLine)
		}
	})
	t.Run("out of range state", func(t *testing.T) {
		_, _, _, errLine := streamNDJSON(t, ts.URL,
			`{"levels":8,"window":16}`+"\n"+`{"state":9}`+"\n")
		if errLine == nil || !strings.Contains(errLine.Error, "sample 0") {
			t.Fatalf("expected per-sample error, got %+v", errLine)
		}
	})
	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/assess/stream")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Fatalf("Allow header %q", allow)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("non-JSON 405 body: %s", body)
		}
	})
}

// TestStreamDrainEndsOpenStreams: BeginDrain must wind down a stream whose
// client is idle but connected — the open stream gets its summary line and
// the handler returns, so http.Server.Shutdown is not pinned until the
// client hangs up.
func TestStreamDrainEndsOpenStreams(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/assess/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	// Do blocks until response headers arrive, which the server sends only
	// after reading the stream header — so the request/read loop runs in a
	// goroutine while this goroutine feeds the pipe.
	errc := make(chan error, 1)
	lines := make(chan string, 64)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		errc <- sc.Err()
	}()

	// Header plus a few states, then the client goes idle without EOF.
	if _, err := io.WriteString(pw, `{"levels":8,"window":16}`+"\n"+`{"states":[0,1,2,3]}`+"\n"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the handler consume the states

	s.BeginDrain()
	deadline := time.After(5 * time.Second)
	var summary *StreamSummary
	for summary == nil {
		select {
		case line := <-lines:
			var probe map[string]json.RawMessage
			if err := json.Unmarshal([]byte(line), &probe); err != nil {
				t.Fatalf("bad line: %s", line)
			}
			if probe["error"] != nil {
				t.Fatalf("drain produced an error line: %s", line)
			}
			if probe["done"] != nil {
				summary = new(StreamSummary)
				if err := json.Unmarshal([]byte(line), summary); err != nil {
					t.Fatal(err)
				}
			}
		case err := <-errc:
			t.Fatalf("stream ended without summary: %v", err)
		case <-deadline:
			t.Fatal("drain did not end the open stream")
		}
	}
	if summary.Samples != 4 {
		t.Fatalf("summary samples %d, want 4", summary.Samples)
	}
	if !summary.Draining {
		t.Fatalf("server-initiated cutoff must be marked draining: %+v", summary)
	}
	pw.Close()
	if err := <-errc; err != nil {
		t.Fatalf("reading drained stream: %v", err)
	}
}

// TestStreamIdleTimeout: a client that opens a stream and goes silent must
// not pin the handler goroutine forever — the idle deadline ends the
// stream with a terminal error line.
func TestStreamIdleTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{StreamIdleTimeout: 100 * time.Millisecond})

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/assess/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	var errLine *ErrorResponse
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var probe map[string]json.RawMessage
			if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
				done <- fmt.Errorf("bad line: %s", sc.Bytes())
				return
			}
			if probe["error"] != nil {
				errLine = new(ErrorResponse)
				_ = json.Unmarshal(sc.Bytes(), errLine)
			}
		}
		done <- sc.Err()
	}()

	// Header + one state, then silence (no EOF): the server must cut the
	// stream on its own within the idle budget.
	if _, err := io.WriteString(pw, `{"levels":8,"window":16}`+"\n"+`{"state":1}`+"\n"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("reading idle-timed-out stream: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle stream was never cut")
	}
	if errLine == nil {
		t.Fatal("idle cutoff should surface as a terminal error line")
	}
	pw.Close()
}

// TestStreamPinsShardAcrossMidStreamSwap holds one stream OPEN across a
// hot swap: decisions emitted after the swap must still come from the
// shard version that accepted the session (matching direct Online.Push on
// the original detector, element-wise), while a stream opened afterwards
// gets the new version.
func TestStreamPinsShardAcrossMidStreamSwap(t *testing.T) {
	d, _ := testDetector(t)
	s, ts := newTestServer(t, Config{})
	strict, err := d.WithOptions(detector.WithThreshold(0))
	if err != nil {
		t.Fatal(err)
	}

	const levels, window = 8, 16
	rng := rand.New(rand.NewSource(17))
	states := make([]int, 64)
	for i := range states {
		states[i] = rng.Intn(levels)
	}
	online, err := detector.NewOnline(d, detector.StreamConfig{Levels: levels, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	var want []detector.Result
	for _, st := range states {
		r, ok, err := online.Push(st)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			want = append(want, r)
		}
	}
	if len(want) != 4 {
		t.Fatalf("reference produced %d decisions, want 4", len(want))
	}

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/assess/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	results := make(chan StreamResult, 16)
	summaryCh := make(chan StreamSummary, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var probe map[string]json.RawMessage
			if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
				done <- fmt.Errorf("bad line: %s", sc.Bytes())
				return
			}
			switch {
			case probe["error"] != nil:
				done <- fmt.Errorf("stream error: %s", sc.Bytes())
				return
			case probe["done"] != nil:
				var sum StreamSummary
				if err := json.Unmarshal(sc.Bytes(), &sum); err != nil {
					done <- err
					return
				}
				summaryCh <- sum
			default:
				var r StreamResult
				if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
					done <- err
					return
				}
				results <- r
			}
		}
		done <- sc.Err()
	}()

	send := func(chunk []int) {
		t.Helper()
		raw, _ := json.Marshal(StreamSample{States: chunk})
		if _, err := pw.Write(append(raw, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	recv := func() StreamResult {
		t.Helper()
		select {
		case r := <-results:
			return r
		case err := <-done:
			t.Fatalf("stream ended early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for a decision")
		}
		panic("unreachable")
	}

	if _, err := io.WriteString(pw, `{"levels":8,"window":16}`+"\n"); err != nil {
		t.Fatal(err)
	}
	// First half on v1.
	send(states[:32])
	var got []StreamResult
	for len(got) < 2 {
		got = append(got, recv())
	}

	// Swap while the stream is OPEN, then push the second half.
	if _, err := s.Fleet().Swap("dvfs-rf", strict); err != nil {
		t.Fatal(err)
	}
	send(states[32:])
	for len(got) < 4 {
		got = append(got, recv())
	}
	pw.Close()

	for i, g := range got {
		if g.Version != 1 {
			t.Fatalf("decision %d after mid-stream swap carries version %d — session must pin v1", i, g.Version)
		}
		if g.Prediction != want[i].Prediction || g.Entropy != want[i].Entropy || g.Decision != want[i].Decision.String() {
			t.Fatalf("decision %d diverged from the pinned detector:\n got %+v\nwant %+v", i, g, want[i])
		}
	}
	select {
	case sum := <-summaryCh:
		if sum.Version != 1 || sum.Decisions != 4 {
			t.Fatalf("pinned stream summary: %+v", sum)
		}
	case err := <-done:
		t.Fatalf("no summary: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for summary")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// A stream opened after the swap serves the new version.
	_, fresh, sum, errLine := streamNDJSON(t, ts.URL, streamBody(StreamHeader{Levels: levels, Window: window}, states[:32]))
	if errLine != nil || sum == nil || sum.Version != 2 {
		t.Fatalf("post-swap stream: err=%v summary=%+v", errLine, sum)
	}
	if len(fresh) == 0 || fresh[0].Version != 2 {
		t.Fatalf("post-swap stream results: %+v", fresh)
	}
}

// TestStreamSessionPinsVersion: a hot swap mid-stream never changes an
// open stream's decisions — the session drains on the version that
// accepted it, while new streams (and the summary of a post-swap stream)
// see the new version.
func TestStreamSessionPinsVersion(t *testing.T) {
	d, _ := testDetector(t)
	s, ts := newTestServer(t, Config{})
	const levels, window = 8, 16
	rng := rand.New(rand.NewSource(9))
	states := make([]int, 64)
	for i := range states {
		states[i] = rng.Intn(levels)
	}

	// First stream on v1.
	_, got, summary, errLine := streamNDJSON(t, ts.URL,
		streamBody(StreamHeader{Levels: levels, Window: window}, states))
	if errLine != nil || summary == nil || summary.Version != 1 {
		t.Fatalf("v1 stream: err=%v summary=%+v", errLine, summary)
	}
	if len(got) == 0 || got[0].Version != 1 {
		t.Fatalf("v1 stream results: %+v", got)
	}

	// Swap, then stream again: the new session reports v2.
	if _, err := s.Fleet().Swap("dvfs-rf", d); err != nil {
		t.Fatal(err)
	}
	_, got, summary, errLine = streamNDJSON(t, ts.URL,
		streamBody(StreamHeader{Levels: levels, Window: window}, states))
	if errLine != nil || summary == nil || summary.Version != 2 {
		t.Fatalf("v2 stream: err=%v summary=%+v", errLine, summary)
	}
	if len(got) == 0 || got[0].Version != 2 {
		t.Fatalf("v2 stream results: %+v", got)
	}
}
