// Package serve is the HTTP serving layer of the trusted HMD: a mutable,
// versioned fleet of named detector shards (Fleet) exposed through a thin
// HTTP transport (Server) with per-shard request coalescing, cross-request
// result caching, consistent-hash device routing, NDJSON streaming and a
// hot model-lifecycle admin surface.
//
// Endpoints:
//
//	POST   /v1/assess          one feature vector  -> one trusted verdict
//	POST   /v1/assess/batch    pre-batched vectors -> verdicts, one AssessBatch
//	POST   /v1/assess/stream   NDJSON stream of raw DVFS states -> NDJSON verdicts
//	GET    /v1/models          loaded shards, versions and configurations
//	POST   /v1/models          load or hot-swap a shard (admin)
//	GET    /v1/models/{name}   one shard's description
//	DELETE /v1/models/{name}   unload a shard (admin)
//	GET    /healthz            liveness
//	GET    /stats              fleet epoch + per-shard serving counters
//
// Requests route to shards by precedence: an explicit "model" field wins;
// otherwise a "device" key is mapped through a consistent-hash ring (a
// device sticks to its shard until the fleet membership changes, and a
// membership change only remaps the devices nearest the changed shard);
// otherwise the default model serves.
//
// Each shard name resolves to a replica group of Config.Replicas
// independent instances (own coalescer, own queue, own result cache) over
// one shared detector. Within the group a second consistent-hash level
// picks a *home* replica per device — cache and session affinity — and
// when the home replica's load crosses Config.SpillDepth, power-of-two-
// choices spills the request to the least-loaded sibling. Admission
// control bounds each replica: Config.MaxInflight caps concurrent work
// and Config.ShedDepth sheds on queue depth; both assessment endpoints
// answer a shed with 503 + Retry-After. /stats reports shed and spill
// totals plus per-replica queue-depth/in-flight/served gauges.
//
// Concurrent /v1/assess requests are coalesced: each replica owns a
// bounded queue and a flusher goroutine that drains waiting requests into
// a single AssessBatch call when the batch fills, the oldest request has
// waited Config.MaxWait, or the backlog crosses Config.FlushDepth (the
// latency-aware early flush). Results are element-wise identical to
// direct Assess — batching changes latency and throughput, never
// decisions.
//
// Each replica additionally owns a bounded cross-request result cache
// (LRU keyed on the feature-vector hash, Config.CacheSize): telemetry
// streams repeat vectors heavily, and a repeat is answered from the cache
// without queueing or assessing at all. Detectors are deterministic, so
// cached verdicts are bit-identical to recomputed ones; /stats exposes
// hit, miss and occupancy counters per shard. A hot swap replaces the
// caches along with the detector — a stale cache must never answer for a
// retired model version.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trusthmd/pkg/detector"
	"trusthmd/pkg/ingest"
	"trusthmd/pkg/verdictstore"
)

// Config tunes the serving layer; the zero value gets sane defaults.
type Config struct {
	// MaxBatch is the coalescer flush size (default 32). Larger batches
	// amortise projection further but add queueing latency under load.
	MaxBatch int
	// MaxWait is the max time the first request of a batch waits for
	// company before the batch flushes anyway (default 2ms).
	MaxWait time.Duration
	// QueueSize bounds each replica's pending-request buffer (default
	// 1024); requests beyond it are shed with 503.
	QueueSize int
	// Replicas is the number of independent shard instances per name
	// (default 1; clamped to 64). Each replica owns its coalescer, queue
	// and result cache over the group's shared detector; devices keep a
	// consistent-hash home replica and overflow spills to the least-loaded
	// sibling.
	Replicas int
	// PinCores pins each replica's flusher thread to its own CPU core,
	// assigned round-robin across the fleet (sched_setaffinity on Linux,
	// no-op elsewhere). With per-replica scratch arenas this keeps every
	// replica's hot projection and vote buffers resident in one core's
	// cache and stops flushers from migrating under load. Best with
	// Replicas x shards <= NumCPU; assignment wraps beyond that. Verdicts
	// are unaffected — pinning changes locality, never results.
	PinCores bool
	// MaxInflight caps one replica's concurrent work — coalesced requests
	// accepted and not yet answered plus client-batch samples assessing.
	// Beyond it requests shed with 503 + Retry-After. 0 means unbounded.
	MaxInflight int
	// ShedDepth sheds new requests once a replica's queue holds this many
	// waiting — admission control ahead of the hard QueueSize bound, so
	// overload answers fast instead of maximising queueing latency.
	// Default: QueueSize (shed only when the queue is actually full);
	// clamped to QueueSize.
	ShedDepth int
	// SpillDepth is the home-replica load at which device-keyed requests
	// spill to the least-loaded sibling (power-of-two-choices). Default:
	// MaxBatch — a home replica with a full batch in flight is busy enough
	// to share. Negative disables spilling. Irrelevant for Replicas=1.
	SpillDepth int
	// FlushDepth is the latency-aware flush watermark: once this many
	// requests queue behind the batch being collected, the coalescer stops
	// waiting out MaxWait and flushes what is immediately available.
	// Default: MaxBatch. Negative disables (size/timer flushes only).
	FlushDepth int
	// MaxBatchSamples caps the size of a client-supplied /v1/assess/batch
	// body (default 4096 vectors).
	MaxBatchSamples int
	// MaxBodyBytes caps request body size on the JSON assessment
	// endpoints (default 8 MiB). The streaming endpoint is exempt — it is
	// bounded per line by MaxStreamLineBytes — and POST /v1/models uses
	// MaxAdminBodyBytes, since an inline model upload is far larger than
	// any feature vector.
	MaxBodyBytes int64
	// MaxAdminBodyBytes caps POST /v1/models bodies (default 64 MiB):
	// inline uploads carry a whole base64-encoded gob model.
	MaxAdminBodyBytes int64
	// DefaultModel names the shard serving requests that carry neither
	// "model" nor "device"; when unset, the only loaded shard serves them.
	DefaultModel string
	// CacheSize bounds each shard's cross-request result cache (an LRU
	// keyed on the feature-vector hash; see /stats cache_hits and
	// cache_misses). 0 means the default of 4096 entries; negative
	// disables caching. Telemetry streams repeat vectors heavily, so hits
	// skip coalescing and assessment entirely; answers are bit-identical
	// either way because a trained detector is deterministic.
	CacheSize int
	// AdminToken guards the mutating admin endpoints (POST /v1/models,
	// DELETE /v1/models/{name}): when set, they require
	// "Authorization: Bearer <token>". Empty leaves them open — acceptable
	// on trusted networks and in tests, unacceptable on anything public.
	AdminToken string
	// PrepareDetector, when set, is applied to every detector entering the
	// fleet through the admin endpoint before it is installed — the hook
	// the daemon uses to reapply its fleet-wide -workers/-threshold
	// overrides to hot-swapped models.
	PrepareDetector func(*detector.Detector) (*detector.Detector, error)
	// MaxStreamLineBytes caps one NDJSON line on /v1/assess/stream
	// (default 256 KiB). The stream body as a whole is unbounded — that is
	// the point of streaming — so the line cap is the overload valve.
	MaxStreamLineBytes int
	// MaxStreamWindow caps the per-session window size a stream header may
	// request (default 65536 samples), bounding per-connection memory.
	MaxStreamWindow int
	// StreamIdleTimeout bounds the wait for the next NDJSON line on
	// /v1/assess/stream (default 5m): a client that opens a stream and
	// goes silent would otherwise pin a handler goroutine and its session
	// for the daemon's lifetime. Negative disables the idle bound.
	StreamIdleTimeout time.Duration
	// Verdicts, when set, receives every served verdict (assess, batch,
	// stream and ingest paths alike; cache hits included — they are served
	// verdicts) and powers GET /v1/verdicts and the drift-driven retrain
	// loop. Nil disables persistence. The caller owns the store's
	// lifecycle: close it after the fleet.
	Verdicts *verdictstore.Store
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Replicas > 64 {
		c.Replicas = 64
	}
	if c.MaxInflight < 0 {
		c.MaxInflight = 0
	}
	switch {
	case c.ShedDepth <= 0, c.ShedDepth > c.QueueSize:
		// Shedding at (or beyond) the hard channel bound is the legacy
		// behavior: refuse only what cannot be buffered at all.
		c.ShedDepth = c.QueueSize
	}
	switch {
	case c.SpillDepth == 0:
		c.SpillDepth = c.MaxBatch
	case c.SpillDepth < 0:
		// Never spill: a home replica keeps its devices no matter how hot.
		c.SpillDepth = int(^uint(0) >> 1)
	}
	switch {
	case c.FlushDepth == 0:
		c.FlushDepth = c.MaxBatch
	case c.FlushDepth < 0:
		c.FlushDepth = 0 // disabled: size/timer flushes only
	}
	if c.MaxBatchSamples <= 0 {
		c.MaxBatchSamples = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxAdminBodyBytes <= 0 {
		c.MaxAdminBodyBytes = 64 << 20
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.MaxStreamLineBytes <= 0 {
		c.MaxStreamLineBytes = 256 << 10
	}
	if c.MaxStreamWindow <= 0 {
		c.MaxStreamWindow = 1 << 16
	}
	if c.StreamIdleTimeout == 0 {
		c.StreamIdleTimeout = 5 * time.Minute
	}
	return c
}

// maxSwapRetries bounds how many times a request re-resolves after losing
// the race with a hot swap (its shard's coalescer closed between resolve
// and submit). One retry suffices in practice; the bound is paranoia
// against a pathological swap storm.
const maxSwapRetries = 4

// Server is the HTTP transport over a Fleet. Create it with NewServer,
// mount it as an http.Handler, and Close it on shutdown to drain the
// fleet's coalescers.
type Server struct {
	fleet *Fleet
	mux   *http.ServeMux
	// draining is closed by BeginDrain so long-lived handlers (NDJSON
	// streams) finish promptly instead of pinning http.Server.Shutdown
	// until the client hangs up.
	draining  chan struct{}
	drainOnce sync.Once
	// pump / retrain are the closed-loop attachments (AttachIngest /
	// AttachRetrain): /v1/ingest feeds the pump, /stats reports both.
	pump    atomic.Pointer[ingest.Pump]
	retrain atomic.Pointer[RetrainController]
	// cluster is the fleet-membership attachment (AttachCluster): non-local
	// shards forward to their owner, POST /v1/models goes fleet-wide, and
	// /stats + /v1/cluster report the node's cluster identity.
	cluster atomic.Pointer[clusterBox]
}

// NewServer mounts the HTTP transport over a fleet. Closing the server
// closes the fleet.
func NewServer(f *Fleet) *Server {
	s := &Server{fleet: f, mux: http.NewServeMux(), draining: make(chan struct{})}
	s.mux.HandleFunc("/v1/assess", s.handleAssess)
	s.mux.HandleFunc("/v1/assess/batch", s.handleAssessBatch)
	s.mux.HandleFunc("/v1/assess/stream", s.handleAssessStream)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/v1/models/", s.handleModelByName)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/v1/verdicts", s.handleVerdicts)
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/v1/cluster", s.handleClusterStatus)
	return s
}

// AttachIngest wires a running ingest pump into the server: POST
// /v1/ingest enqueues into it and /stats reports its lag and counters.
func (s *Server) AttachIngest(p *ingest.Pump) { s.pump.Store(p) }

// AttachRetrain wires a retrain controller into the server so /stats
// reports its trigger count and state.
func (s *Server) AttachRetrain(c *RetrainController) { s.retrain.Store(c) }

// New builds a server over the given named detectors.
//
// Deprecated: New freezes the fleet shape at construction. Build a Fleet
// with NewFleet (mutable: Load/Swap/Unload while serving) and mount it
// with NewServer; New remains as a thin wrapper doing exactly that, and
// still requires at least one model for compatibility.
func New(models map[string]*detector.Detector, cfg Config) (*Server, error) {
	if len(models) == 0 {
		return nil, errors.New("serve: no models to serve")
	}
	f, err := NewFleet(models, cfg)
	if err != nil {
		return nil, err
	}
	return NewServer(f), nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Fleet returns the shard registry the server fronts.
func (s *Server) Fleet() *Fleet { return s.fleet }

// BeginDrain tells long-lived handlers (open NDJSON streams) to wind
// down: each open stream emits its summary line and returns, so
// http.Server.Shutdown can complete instead of waiting out its budget on
// a client that keeps its stream open. Call it before (or concurrently
// with) Shutdown; Close implies it.
func (s *Server) BeginDrain() { s.drainOnce.Do(func() { close(s.draining) }) }

// Close closes the underlying fleet, draining every shard's coalescer.
// The HTTP listener should be shut down first so no new requests arrive.
func (s *Server) Close() {
	s.BeginDrain()
	s.fleet.Close()
}

// Stats snapshots every shard's serving counters, sorted by shard name.
func (s *Server) Stats() []ShardStats { return s.fleet.Stats() }

func (s *Server) handleAssess(w http.ResponseWriter, r *http.Request) {
	sc := getCodecScratch()
	defer putCodecScratch(sc)
	if !s.readBody(w, r, sc, s.fleet.cfg.MaxBodyBytes) {
		return
	}
	var req AssessRequest
	if err := decodeAssessRequest(sc.body, sc, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	// In a cluster, resolve against the cluster-wide shard space first:
	// shards owned by another node forward there (the hook writes the
	// relayed response), local ones are pinned by rewriting the model key
	// so the local ring cannot re-route a device the cluster already
	// placed.
	if hook := s.clusterHook(); hook != nil {
		shard, local := hook.ResolveAssess(r, req.Model, req.Device)
		if !local {
			hook.ForwardAssess(w, r, shard, req.Device, sc.body)
			return
		}
		req.Model = shard
	}
	// Hand the scratch vote buffer to the assessment: the coalescer copies
	// the verdict's vote distribution into it instead of allocating. The
	// buffer's ownership rides with the request — on any error after
	// enqueue the flusher may still write into it, so it is recovered only
	// from a successful outcome and abandoned otherwise.
	voteBuf := sc.votes
	sc.votes = nil
	out, err := s.fleet.Assess(r.Context(), AssessSpec{
		Model:    req.Model,
		Device:   req.Device,
		Features: req.Features,
		Source:   "assess",
		VoteBuf:  voteBuf,
	})
	if err != nil {
		writeAssessError(w, err)
		return
	}
	sc.votes = out.Result.VoteDist
	sc.out = appendResultResponse(sc.out[:0], out.Model, out.Version, &out.Result)
	writeBytes(w, http.StatusOK, sc.out)
}

func (s *Server) handleAssessBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sc := getCodecScratch()
	defer putCodecScratch(sc)
	if !s.readBody(w, r, sc, s.fleet.cfg.MaxBodyBytes) {
		return
	}
	var req BatchRequest
	if err := decodeBatchRequest(sc.body, sc, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	// Cluster routing mirrors handleAssess: forward non-local shards to
	// their owner, pin local ones by model name.
	if hook := s.clusterHook(); hook != nil {
		shard, local := hook.ResolveAssess(r, req.Model, req.Device)
		if !local {
			hook.ForwardAssess(w, r, shard, req.Device, sc.body)
			return
		}
		req.Model = shard
	}
	g, err := s.fleet.resolve(req.Model, req.Device)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	if len(req.Batch) == 0 {
		writeError(w, http.StatusBadRequest, "batch missing or empty")
		return
	}
	if len(req.Batch) > s.fleet.cfg.MaxBatchSamples {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Batch), s.fleet.cfg.MaxBatchSamples))
		return
	}
	dim := g.det.InputDim()
	for i, x := range req.Batch {
		if err := validateFeatures(x, dim); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("batch[%d]: %v", i, err))
			return
		}
	}
	n := len(req.Batch)
	// A client batch is one admission unit on one replica: load-aware pick,
	// then reserve capacity up front so the coalesced path observes batch
	// work in its load gauge. An overloaded replica sheds the whole batch
	// with the same 503 + Retry-After as /v1/assess.
	sh, _ := g.pick(req.Device)
	if err := sh.admitBatch(n); err != nil {
		writeAssessError(w, err)
		return
	}
	defer sh.releaseBatch(n)
	// The client already aggregated; consult the cross-request cache per
	// vector and go straight to the batched path for the misses only.
	// With the cache disabled, every row is a "miss" without hashing or
	// counter traffic. All working slices live in the request scratch; the
	// assessed results are scratch-owned too, which is safe here because
	// everything retained past the handler (cache entries, verdict
	// records) copies out of them and the response is encoded before the
	// scratch is pooled again.
	if cap(sc.results) < n {
		sc.results = make([]detector.Result, n)
	}
	results := sc.results[:n]
	keys := sc.keys[:0]
	missIdx := sc.missIdx[:0]
	missX := req.Batch
	if sh.cache != nil {
		missX = sc.missX[:0]
		for i, x := range req.Batch {
			keys = append(keys, hashVec(x))
			if r, ok := sh.cache.get(keys[i], x); ok {
				results[i] = r
				continue
			}
			missIdx = append(missIdx, i)
			missX = append(missX, x)
		}
		sc.keys, sc.missIdx, sc.missX = keys, missIdx, missX
		sh.stats.cacheHits.Add(int64(n - len(missX)))
		sh.stats.cacheMisses.Add(int64(len(missX)))
	}
	if len(missX) > 0 {
		rs, err := sh.det.AssessBatchInto(&sc.assess, missX)
		if err != nil {
			sh.stats.errors.Add(int64(len(missX)))
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		for j := range rs {
			idx := j
			if sh.cache != nil {
				idx = missIdx[j]
				sh.cache.put(keys[idx], missX[j], rs[j])
			}
			results[idx] = rs[j]
		}
	}
	sh.stats.batchRequests.Add(1)
	sh.stats.batchSamples.Add(int64(n))
	sh.served.Add(int64(n))
	sh.stats.observe(results)
	// Tap every row into the verdict store (latency is the whole batch's
	// serving time — the rows were answered together).
	elapsed := time.Since(start)
	for i := range results {
		s.fleet.recordVerdict(req.Device, "batch", sh.name, sh.version, results[i], req.Batch[i], elapsed)
	}
	sc.out = appendBatchResponseResults(sc.out[:0], sh.name, sh.version, results)
	writeBytes(w, http.StatusOK, sc.out)
}

// handleModels serves the listing (GET) and the admin load/swap (POST).
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	if r.Method == http.MethodPost {
		s.handleLoadModel(w, r)
		return
	}
	epoch, models := s.fleet.ModelsWithEpoch()
	writeJSON(w, http.StatusOK, ModelsResponse{Epoch: epoch, Models: models})
}

// handleModelByName serves /v1/models/{name}: GET describes one shard,
// DELETE (admin) unloads it.
func (s *Server) handleModelByName(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/models/")
	if name == "" || strings.Contains(name, "/") {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such resource %q", r.URL.Path))
		return
	}
	if !requireMethod(w, r, http.MethodGet, http.MethodDelete) {
		return
	}
	if r.Method == http.MethodDelete {
		s.handleUnloadModel(w, r, name)
		return
	}
	for _, m := range s.fleet.Models() {
		if m.Name == name {
			writeJSON(w, http.StatusOK, m)
			return
		}
	}
	writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q (loaded: %v)", name, s.fleet.Names()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": s.fleet.Len()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	epoch, stats := s.fleet.StatsWithEpoch()
	// shed_total aggregates admission-control rejections fleet-wide — the
	// single number an operator watches to know the box is saturated.
	var shedTotal int64
	for _, st := range stats {
		shedTotal += st.Shed
	}
	// The closed-loop keys are always present (zero-valued when the
	// corresponding piece is not attached) so dashboards and tests can
	// assert on them unconditionally.
	out := map[string]any{
		"fleet_epoch":        epoch,
		"shards":             stats,
		"shed_total":         shedTotal,
		"last_swap_cause":    s.fleet.LastSwapCause(),
		"verdicts_stored":    int64(0),
		"ingest_lag":         0,
		"retrains_triggered": int64(0),
		// Cluster identity keys are likewise always present (zero-valued on
		// a standalone daemon) and overwritten from the hook's snapshot when
		// the node is a fleet member.
		"node_id":       "",
		"role":          "",
		"members_alive": 0,
		"forwards_in":   int64(0),
		"forwards_out":  int64(0),
	}
	if st := s.fleet.cfg.Verdicts; st != nil {
		snap := st.Stats()
		out["verdicts_stored"] = snap.Records
		out["verdict_store"] = snap
	}
	if p := s.pump.Load(); p != nil {
		snap := p.Stats()
		out["ingest_lag"] = snap.Lag
		out["ingest"] = snap
	}
	if rc := s.retrain.Load(); rc != nil {
		snap := rc.Stats()
		out["retrains_triggered"] = snap.Retrains
		out["retrain"] = snap
	}
	if hook := s.clusterHook(); hook != nil {
		for k, v := range hook.StatsFields() {
			out[k] = v
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// readBody enforces POST and slurps the request body into sc.body,
// bounding it at limit bytes — the hot-path replacement for the
// MaxBytesReader + json.Decoder pipeline, reading into pooled scratch
// instead of wrapping the body in a fresh limiter per request.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, sc *codecScratch, limit int64) bool {
	if !requireMethod(w, r, http.MethodPost) {
		return false
	}
	buf := sc.body[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if int64(len(buf)) > limit {
			sc.body = buf
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", limit))
			return false
		}
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			sc.body = buf
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return false
		}
	}
	sc.body = buf
	if int64(len(buf)) > limit {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", limit))
		return false
	}
	return true
}

// decodeJSON enforces POST, bounds the body, and decodes strictly.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	return s.decodeJSONLimit(w, r, v, s.fleet.cfg.MaxBodyBytes)
}

func (s *Server) decodeJSONLimit(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	if !requireMethod(w, r, http.MethodPost) {
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	if dec.More() {
		// Two concatenated documents would silently drop the second.
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// writeResolveError maps a fleet resolve failure onto the wire: a closed
// fleet sheds with 503, everything else (unknown model, empty fleet,
// ambiguous default) is the caller naming something that is not there.
func writeResolveError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrClosed) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeError(w, http.StatusNotFound, err.Error())
}

// contentTypeJSON is the shared Content-Type header value; assigning the
// slice directly skips the per-call []string allocation Header().Set pays.
var contentTypeJSON = []string{"application/json"}

// retryAfterOne is the shared Retry-After value every shed answer carries.
var retryAfterOne = []string{"1"}

// bodyQueueFull / bodyClosed are the precomputed shed envelopes: a
// saturated box answers 503 from static bytes instead of encoding its way
// through its own overload.
var (
	bodyQueueFull = appendErrorResponse(nil, ErrQueueFull.Error())
	bodyClosed    = appendErrorResponse(nil, ErrClosed.Error())
)

// methodNotAllowedBodies precomputes the 405 envelope for every
// Allow-header combination the mux mounts, so method discipline on a
// saturated box costs no encoding.
var methodNotAllowedBodies = map[string][]byte{}

func init() {
	for _, ms := range [][]string{
		{http.MethodPost},
		{http.MethodGet},
		{http.MethodGet, http.MethodPost},
		{http.MethodGet, http.MethodDelete},
	} {
		methodNotAllowedBodies[strings.Join(ms, ", ")] =
			appendErrorResponse(nil, "use "+strings.Join(ms, " or "))
	}
}

// requireMethod answers 405 (with the Allow header listing every accepted
// method, per RFC 9110) unless the request used one of them. The error
// body keeps the JSON envelope like every other non-2xx answer; the known
// method combinations are served from precomputed bytes.
func requireMethod(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	allow := strings.Join(methods, ", ")
	w.Header().Set("Allow", allow)
	if body, ok := methodNotAllowedBodies[allow]; ok {
		writeBytes(w, http.StatusMethodNotAllowed, body)
		return false
	}
	writeError(w, http.StatusMethodNotAllowed, fmt.Sprintf("use %s", strings.Join(methods, " or ")))
	return false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header()["Content-Type"] = contentTypeJSON
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeBytes answers with a pre-encoded JSON body.
func writeBytes(w http.ResponseWriter, code int, body []byte) {
	w.Header()["Content-Type"] = contentTypeJSON
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeBytes(w, code, appendErrorResponse(nil, msg))
}
