// Package serve is the HTTP serving layer of the trusted HMD: it loads
// trained detectors (one or more named shards) and exposes them as a small
// JSON API with per-shard request coalescing.
//
// Endpoints:
//
//	POST /v1/assess        one feature vector  -> one trusted verdict
//	POST /v1/assess/batch  pre-batched vectors -> verdicts, one AssessBatch
//	GET  /v1/models        loaded shards and their configurations
//	GET  /healthz          liveness
//	GET  /stats            per-shard serving counters
//
// Concurrent /v1/assess requests are coalesced: each shard owns a bounded
// queue and a flusher goroutine that drains waiting requests into a single
// AssessBatch call when the batch fills or the oldest request has waited
// Config.MaxWait. Results are element-wise identical to direct Assess —
// batching changes latency and throughput, never decisions.
//
// Each shard additionally owns a bounded cross-request result cache (LRU
// keyed on the feature-vector hash, Config.CacheSize): telemetry streams
// repeat vectors heavily, and a repeat is answered from the cache without
// queueing or assessing at all. Detectors are deterministic, so cached
// verdicts are bit-identical to recomputed ones; /stats exposes hit, miss
// and occupancy counters per shard.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"trusthmd/pkg/detector"
)

// Config tunes the serving layer; the zero value gets sane defaults.
type Config struct {
	// MaxBatch is the coalescer flush size (default 32). Larger batches
	// amortise projection further but add queueing latency under load.
	MaxBatch int
	// MaxWait is the max time the first request of a batch waits for
	// company before the batch flushes anyway (default 2ms).
	MaxWait time.Duration
	// QueueSize bounds each shard's pending-request buffer (default 1024);
	// requests beyond it are shed with 503.
	QueueSize int
	// MaxBatchSamples caps the size of a client-supplied /v1/assess/batch
	// body (default 4096 vectors).
	MaxBatchSamples int
	// MaxBodyBytes caps request body size (default 8 MiB).
	MaxBodyBytes int64
	// DefaultModel names the shard serving requests that omit "model";
	// defaults to the only shard when exactly one is loaded.
	DefaultModel string
	// CacheSize bounds each shard's cross-request result cache (an LRU
	// keyed on the feature-vector hash; see /stats cache_hits and
	// cache_misses). 0 means the default of 4096 entries; negative
	// disables caching. Telemetry streams repeat vectors heavily, so hits
	// skip coalescing and assessment entirely; answers are bit-identical
	// either way because a trained detector is deterministic.
	CacheSize int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.MaxBatchSamples <= 0 {
		c.MaxBatchSamples = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	return c
}

// shard is one named detector with its coalescer, result cache and
// counters.
type shard struct {
	name  string
	det   *detector.Detector
	co    *coalescer
	cache *resultCache
	stats *shardStats
}

// Server routes assessment traffic to model shards. Create it with New,
// mount it as an http.Handler, and Close it on shutdown to drain the
// coalescers.
type Server struct {
	cfg         Config
	shards      map[string]*shard
	names       []string // sorted shard names
	defaultName string
	mux         *http.ServeMux
}

// New builds a server over the given named detectors. Every detector must
// be trained; with more than one shard, Config.DefaultModel (if set) must
// name one of them.
func New(models map[string]*detector.Detector, cfg Config) (*Server, error) {
	if len(models) == 0 {
		return nil, errors.New("serve: no models to serve")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		shards: make(map[string]*shard, len(models)),
		mux:    http.NewServeMux(),
	}
	for name, det := range models {
		if name == "" {
			return nil, errors.New("serve: empty model name")
		}
		if det == nil {
			return nil, fmt.Errorf("serve: model %q is nil", name)
		}
		st := &shardStats{}
		s.shards[name] = &shard{
			name:  name,
			det:   det,
			co:    newCoalescer(det, cfg.MaxBatch, cfg.QueueSize, cfg.MaxWait, st),
			cache: newResultCache(cfg.CacheSize),
			stats: st,
		}
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	switch {
	case cfg.DefaultModel != "":
		if _, ok := s.shards[cfg.DefaultModel]; !ok {
			s.Close()
			return nil, fmt.Errorf("serve: default model %q not among loaded models", cfg.DefaultModel)
		}
		s.defaultName = cfg.DefaultModel
	case len(s.names) == 1:
		s.defaultName = s.names[0]
	}
	s.mux.HandleFunc("/v1/assess", s.handleAssess)
	s.mux.HandleFunc("/v1/assess/batch", s.handleAssessBatch)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the shard coalescers after draining queued requests. The
// HTTP listener should be shut down first so no new requests arrive.
func (s *Server) Close() {
	for _, sh := range s.shards {
		sh.co.close()
	}
}

// Stats snapshots every shard's serving counters, sorted by shard name.
func (s *Server) Stats() []ShardStats {
	out := make([]ShardStats, 0, len(s.names))
	for _, name := range s.names {
		sh := s.shards[name]
		st := sh.stats.snapshot(name)
		st.CacheEntries = sh.cache.len()
		out = append(out, st)
	}
	return out
}

// resolve picks the shard for a request's model field.
func (s *Server) resolve(model string) (*shard, error) {
	if model == "" {
		if s.defaultName == "" {
			return nil, fmt.Errorf("request must name a model (loaded: %v)", s.names)
		}
		model = s.defaultName
	}
	sh, ok := s.shards[model]
	if !ok {
		return nil, fmt.Errorf("unknown model %q (loaded: %v)", model, s.names)
	}
	return sh, nil
}

func (s *Server) handleAssess(w http.ResponseWriter, r *http.Request) {
	var req AssessRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	sh, err := s.resolve(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if err := validateFeatures(req.Features, sh.det.InputDim()); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var key uint64
	if sh.cache != nil { // disabled caches pay no hashing and keep zero counters
		key = hashVec(req.Features)
		if res, ok := sh.cache.get(key, req.Features); ok {
			// Cross-request memo hit: same vector, same (deterministic)
			// verdict — answered without queueing or assessing.
			sh.stats.requests.Add(1)
			sh.stats.cacheHits.Add(1)
			sh.stats.cacheHitsSingle.Add(1)
			sh.stats.observeOne(res.Decision)
			writeJSON(w, http.StatusOK, toResponse(sh.name, res))
			return
		}
		sh.stats.cacheMisses.Add(1)
	}
	res, err := sh.co.submit(r.Context(), req.Features)
	switch {
	case err == nil:
		sh.cache.put(key, req.Features, res)
		writeJSON(w, http.StatusOK, toResponse(sh.name, res))
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client is gone; the status code is a formality.
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handleAssessBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	sh, err := s.resolve(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if len(req.Batch) == 0 {
		writeError(w, http.StatusBadRequest, "batch missing or empty")
		return
	}
	if len(req.Batch) > s.cfg.MaxBatchSamples {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Batch), s.cfg.MaxBatchSamples))
		return
	}
	dim := sh.det.InputDim()
	for i, x := range req.Batch {
		if err := validateFeatures(x, dim); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("batch[%d]: %v", i, err))
			return
		}
	}
	// The client already aggregated; consult the cross-request cache per
	// vector and go straight to the batched path for the misses only.
	// With the cache disabled, every row is a "miss" without hashing or
	// counter traffic.
	n := len(req.Batch)
	results := make([]detector.Result, n)
	var keys []uint64
	var missIdx []int
	missX := req.Batch
	if sh.cache != nil {
		keys = make([]uint64, n)
		missX = nil
		for i, x := range req.Batch {
			keys[i] = hashVec(x)
			if r, ok := sh.cache.get(keys[i], x); ok {
				results[i] = r
				continue
			}
			missIdx = append(missIdx, i)
			missX = append(missX, x)
		}
		sh.stats.cacheHits.Add(int64(n - len(missX)))
		sh.stats.cacheMisses.Add(int64(len(missX)))
	}
	if len(missX) > 0 {
		rs, err := sh.det.AssessBatch(missX)
		if err != nil {
			sh.stats.errors.Add(int64(len(missX)))
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		for j, r := range rs {
			idx := j
			if sh.cache != nil {
				idx = missIdx[j]
				sh.cache.put(keys[idx], missX[j], r)
			}
			results[idx] = r
		}
	}
	sh.stats.batchRequests.Add(1)
	sh.stats.batchSamples.Add(int64(n))
	sh.stats.observe(results)
	resp := BatchResponse{Model: sh.name, Results: make([]AssessResponse, n)}
	for i, r := range results {
		resp.Results[i] = toResponse(sh.name, r)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	resp := ModelsResponse{Models: make([]ModelInfo, 0, len(s.names))}
	for _, name := range s.names {
		resp.Models = append(resp.Models, ModelInfo{
			Name:    name,
			Default: name == s.defaultName,
			Info:    s.shards[name].det.Info(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": len(s.shards)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"shards": s.Stats()})
}

// decodeJSON enforces POST, bounds the body, and decodes strictly.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if !requireMethod(w, r, http.MethodPost) {
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, fmt.Sprintf("use %s", method))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}
