//go:build race

package serve

// raceEnabled reports that this test binary was built with -race, under
// which sync.Pool intentionally drops entries and the instrumentation
// itself allocates — allocation-count assertions are meaningless there.
const raceEnabled = true
