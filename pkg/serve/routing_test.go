package serve

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndOrderless(t *testing.T) {
	a := buildRing([]string{"alpha", "beta", "gamma"})
	b := buildRing([]string{"gamma", "alpha", "beta"})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("device-%d", i)
		if a.lookup(key) != b.lookup(key) {
			t.Fatalf("ring depends on construction order for %q", key)
		}
		if a.lookup(key) != a.lookup(key) {
			t.Fatalf("lookup not deterministic for %q", key)
		}
	}
	if buildRing(nil) != nil {
		t.Fatal("empty ring should be nil")
	}
	var nilRing *hashRing
	if nilRing.lookup("x") != "" {
		t.Fatal("nil ring lookup should return empty")
	}
}

func TestRingSpreadsDevices(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	r := buildRing(names)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.lookup(fmt.Sprintf("device-%d", i))]++
	}
	for _, name := range names {
		share := float64(counts[name]) / n
		// With 128 virtual nodes per shard the split stays near 1/4; a
		// shard starved below 10% or hogging above 50% means the ring is
		// broken, not merely unlucky.
		if share < 0.10 || share > 0.50 {
			t.Fatalf("shard %s serves %.1f%% of devices: %v", name, 100*share, counts)
		}
	}
}

// TestRingMinimalRemapping is consistent hashing's defining property: when
// a shard leaves, only its devices remap — everyone else keeps their
// shard (and therefore their warm caches).
func TestRingMinimalRemapping(t *testing.T) {
	before := buildRing([]string{"a", "b", "c", "d"})
	after := buildRing([]string{"a", "b", "c"}) // "d" unloaded
	const n = 4000
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("device-%d", i)
		was, is := before.lookup(key), after.lookup(key)
		if was == "d" {
			if is == "d" {
				t.Fatalf("device %q still routes to the removed shard", key)
			}
			continue // had to move
		}
		if was != is {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d devices moved between surviving shards (consistent hashing should move none)", moved)
	}
}
