package serve

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndOrderless(t *testing.T) {
	a := buildRing([]string{"alpha", "beta", "gamma"})
	b := buildRing([]string{"gamma", "alpha", "beta"})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("device-%d", i)
		if a.lookup(key) != b.lookup(key) {
			t.Fatalf("ring depends on construction order for %q", key)
		}
		if a.lookup(key) != a.lookup(key) {
			t.Fatalf("lookup not deterministic for %q", key)
		}
	}
	if buildRing(nil) != nil {
		t.Fatal("empty ring should be nil")
	}
	var nilRing *hashRing
	if nilRing.lookup("x") != "" {
		t.Fatal("nil ring lookup should return empty")
	}
}

func TestRingSpreadsDevices(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	r := buildRing(names)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.lookup(fmt.Sprintf("device-%d", i))]++
	}
	for _, name := range names {
		share := float64(counts[name]) / n
		// With 128 virtual nodes per shard the split stays near 1/4; a
		// shard starved below 10% or hogging above 50% means the ring is
		// broken, not merely unlucky.
		if share < 0.10 || share > 0.50 {
			t.Fatalf("shard %s serves %.1f%% of devices: %v", name, 100*share, counts)
		}
	}
}

// TestRingMinimalRemapping is consistent hashing's defining property: when
// a shard leaves, only its devices remap — everyone else keeps their
// shard (and therefore their warm caches).
func TestRingMinimalRemapping(t *testing.T) {
	before := buildRing([]string{"a", "b", "c", "d"})
	after := buildRing([]string{"a", "b", "c"}) // "d" unloaded
	const n = 4000
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("device-%d", i)
		was, is := before.lookup(key), after.lookup(key)
		if was == "d" {
			if is == "d" {
				t.Fatalf("device %q still routes to the removed shard", key)
			}
			continue // had to move
		}
		if was != is {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d devices moved between surviving shards (consistent hashing should move none)", moved)
	}
}

// TestReplicaRingMinimalRemap is the same property one level down, as a
// sweep over group sizes: growing a replica group from n to n+1 must send
// devices ONLY to the new replica (survivors keep their home slot and
// their warm caches), and shrinking back must remap only the removed
// replica's devices.
func TestReplicaRingMinimalRemap(t *testing.T) {
	const devices = 2000
	for n := 2; n <= 8; n++ {
		small := buildReplicaRing(n)
		big := buildReplicaRing(n + 1)
		gained, moved := 0, 0
		for i := 0; i < devices; i++ {
			key := fmt.Sprintf("device-%d", i)
			was, is := small.lookupReplica(key), big.lookupReplica(key)
			if is == n {
				gained++ // picked up by the added replica — the only legal move
				continue
			}
			if was != is {
				moved++
			}
		}
		if moved != 0 {
			t.Fatalf("grow %d->%d: %d devices moved between surviving replicas", n, n+1, moved)
		}
		if gained == 0 {
			t.Fatalf("grow %d->%d: the new replica picked up no devices", n, n+1)
		}
		// Shrink is the same comparison read backwards: devices homed on the
		// removed replica must land elsewhere, everyone else must stay put.
		for i := 0; i < devices; i++ {
			key := fmt.Sprintf("device-%d", i)
			was, is := big.lookupReplica(key), small.lookupReplica(key)
			if was == n {
				if is == n {
					t.Fatalf("shrink %d->%d: device %q still routes to the removed replica", n+1, n, key)
				}
				continue
			}
			if was != is {
				t.Fatalf("shrink %d->%d: device %q moved between surviving replicas (%d -> %d)", n+1, n, key, was, is)
			}
		}
	}
}

// TestReplicaRingSpreads: every replica in a group takes a meaningful
// share of the device space (no starved slot, no hog).
func TestReplicaRingSpreads(t *testing.T) {
	const n = 3
	r := buildReplicaRing(n)
	counts := make([]int, n)
	const devices = 3000
	for i := 0; i < devices; i++ {
		counts[r.lookupReplica(fmt.Sprintf("device-%d", i))]++
	}
	for idx, c := range counts {
		share := float64(c) / devices
		if share < 0.10 || share > 0.60 {
			t.Fatalf("replica %d homes %.1f%% of devices: %v", idx, 100*share, counts)
		}
	}
	if buildReplicaRing(1) != nil {
		t.Fatal("single-replica group should have a nil ring")
	}
	var nilRing *hashRing
	if nilRing.lookupReplica("x") != 0 {
		t.Fatal("nil ring must home everything on replica 0")
	}
}
