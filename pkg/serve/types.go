package serve

import (
	"fmt"
	"math"

	"trusthmd/pkg/detector"
)

// AssessRequest is the JSON body of POST /v1/assess: one raw feature
// vector, routed to a shard by explicit model name, by consistent-hashed
// device key, or to the default model.
type AssessRequest struct {
	// Model selects the shard explicitly and wins over Device.
	Model string `json:"model,omitempty"`
	// Device is a stable telemetry-source key (host, core, sensor id);
	// when Model is empty it is consistent-hashed onto the fleet, so one
	// device always lands on the same shard while membership is stable.
	Device string `json:"device,omitempty"`
	// Features is the raw feature vector (length must match the model's
	// input dimensionality, see /v1/models).
	Features []float64 `json:"features"`
}

// BatchRequest is the JSON body of POST /v1/assess/batch: a pre-batched
// set of feature vectors assessed in one AssessBatch call, bypassing the
// coalescer (the client already did the aggregation). Model and Device
// route like AssessRequest's.
type BatchRequest struct {
	Model  string      `json:"model,omitempty"`
	Device string      `json:"device,omitempty"`
	Batch  [][]float64 `json:"batch"`
}

// Decomposition is the JSON form of the aleatoric/epistemic uncertainty
// split (present only for models trained WithDecomposition).
type Decomposition struct {
	Total     float64 `json:"total"`
	Aleatoric float64 `json:"aleatoric"`
	Epistemic float64 `json:"epistemic"`
}

// AssessResponse is one trusted verdict.
type AssessResponse struct {
	// Model is the shard that served the request; Version is the shard
	// version that answered (it increments on every hot swap, so clients
	// can observe a model rollout request by request).
	Model   string `json:"model"`
	Version uint64 `json:"version"`
	// Prediction is the ensemble's plurality label (0 benign, 1 malware).
	Prediction int `json:"prediction"`
	// Entropy is the vote-entropy uncertainty in bits.
	Entropy float64 `json:"entropy"`
	// VoteDist is the normalised member-vote distribution.
	VoteDist []float64 `json:"vote_dist"`
	// Decision is "benign", "malware" or "reject" — rejected inputs should
	// be routed to an analyst, not trusted.
	Decision string `json:"decision"`
	// Decomposition splits the uncertainty when the model provides it.
	Decomposition *Decomposition `json:"decomposition,omitempty"`
}

// BatchResponse is the JSON body answering POST /v1/assess/batch.
type BatchResponse struct {
	Model   string           `json:"model"`
	Version uint64           `json:"version"`
	Results []AssessResponse `json:"results"`
}

// ModelInfo describes one loaded shard for GET /v1/models.
type ModelInfo struct {
	// Name is the routing key used in request bodies.
	Name string `json:"name"`
	// Version counts hot swaps of this name: 1 on first load, +1 per Swap.
	Version uint64 `json:"version"`
	// Replicas is the group size serving this name: how many independent
	// instances (own coalescer, queue and cache) fan out the same detector.
	Replicas int `json:"replicas"`
	// Default marks the shard used when requests carry neither "model"
	// nor "device".
	Default bool `json:"default,omitempty"`
	detector.Info
}

// ModelsResponse is the JSON body answering GET /v1/models. Epoch is the
// fleet generation — it increments on every load, swap and unload.
type ModelsResponse struct {
	Epoch  uint64      `json:"epoch"`
	Models []ModelInfo `json:"models"`
}

// StreamHeader is the first NDJSON line of POST /v1/assess/stream: it
// routes the session (model/device, like the assess endpoints) and
// parameterises the online loop.
type StreamHeader struct {
	Model  string `json:"model,omitempty"`
	Device string `json:"device,omitempty"`
	// Levels is the DVFS ladder size of the telemetry source; Window the
	// number of states per assessment window; Stride how many new samples
	// arrive between assessments (0 = non-overlapping windows).
	Levels int `json:"levels"`
	Window int `json:"window"`
	Stride int `json:"stride,omitempty"`
}

// StreamSample is one subsequent NDJSON line: a single state or a chunk.
type StreamSample struct {
	State  *int  `json:"state,omitempty"`
	States []int `json:"states,omitempty"`
}

// StreamResult is one NDJSON response line, emitted whenever the session's
// window produces a decision.
type StreamResult struct {
	// Seq numbers the decisions of this stream from 1; Sample is the
	// 0-based index of the pushed state that completed the window.
	Seq    int `json:"seq"`
	Sample int `json:"sample"`
	AssessResponse
}

// StreamSummary is the final NDJSON line of a stream that ended without a
// protocol error. Draining distinguishes a server-initiated cutoff
// (graceful shutdown truncated the stream — resume against a new server)
// from a clean client EOF after which every sent state was assessed.
type StreamSummary struct {
	Done      bool   `json:"done"`
	Draining  bool   `json:"draining,omitempty"`
	Model     string `json:"model"`
	Version   uint64 `json:"version"`
	Samples   int    `json:"samples"`
	Decisions int    `json:"decisions"`
	CacheHits int    `json:"cache_hits"`
	Benign    int    `json:"benign"`
	Malware   int    `json:"malware"`
	Rejected  int    `json:"rejected"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// toResponse converts a detector result into its wire form.
func toResponse(model string, version uint64, r detector.Result) AssessResponse {
	out := AssessResponse{
		Model:      model,
		Version:    version,
		Prediction: r.Prediction,
		Entropy:    r.Entropy,
		VoteDist:   r.VoteDist,
		Decision:   r.Decision.String(),
	}
	if r.Decomposition != nil {
		out.Decomposition = &Decomposition{
			Total:     r.Decomposition.Total,
			Aleatoric: r.Decomposition.Aleatoric,
			Epistemic: r.Decomposition.Epistemic,
		}
	}
	return out
}

// validateFeatures rejects malformed inputs before they reach a coalesced
// batch, so one bad request can never fail a flush that carries innocent
// neighbours: the vector must be non-empty, finite, and match the shard's
// trained input dimensionality.
func validateFeatures(x []float64, dim int) error {
	if len(x) == 0 {
		return fmt.Errorf("features missing or empty")
	}
	if len(x) != dim {
		return fmt.Errorf("feature vector has %d values, model expects %d", len(x), dim)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("feature %d is not finite", i)
		}
	}
	return nil
}
