package serve

import (
	"fmt"
	"math"

	"trusthmd/pkg/detector"
)

// AssessRequest is the JSON body of POST /v1/assess: one raw feature
// vector, optionally routed to a named model shard.
type AssessRequest struct {
	// Model selects the shard; empty means the server's default model.
	Model string `json:"model,omitempty"`
	// Features is the raw feature vector (length must match the model's
	// input dimensionality, see /v1/models).
	Features []float64 `json:"features"`
}

// BatchRequest is the JSON body of POST /v1/assess/batch: a pre-batched
// set of feature vectors assessed in one AssessBatch call, bypassing the
// coalescer (the client already did the aggregation).
type BatchRequest struct {
	Model string      `json:"model,omitempty"`
	Batch [][]float64 `json:"batch"`
}

// Decomposition is the JSON form of the aleatoric/epistemic uncertainty
// split (present only for models trained WithDecomposition).
type Decomposition struct {
	Total     float64 `json:"total"`
	Aleatoric float64 `json:"aleatoric"`
	Epistemic float64 `json:"epistemic"`
}

// AssessResponse is one trusted verdict.
type AssessResponse struct {
	// Model is the shard that served the request.
	Model string `json:"model"`
	// Prediction is the ensemble's plurality label (0 benign, 1 malware).
	Prediction int `json:"prediction"`
	// Entropy is the vote-entropy uncertainty in bits.
	Entropy float64 `json:"entropy"`
	// VoteDist is the normalised member-vote distribution.
	VoteDist []float64 `json:"vote_dist"`
	// Decision is "benign", "malware" or "reject" — rejected inputs should
	// be routed to an analyst, not trusted.
	Decision string `json:"decision"`
	// Decomposition splits the uncertainty when the model provides it.
	Decomposition *Decomposition `json:"decomposition,omitempty"`
}

// BatchResponse is the JSON body answering POST /v1/assess/batch.
type BatchResponse struct {
	Model   string           `json:"model"`
	Results []AssessResponse `json:"results"`
}

// ModelInfo describes one loaded shard for GET /v1/models.
type ModelInfo struct {
	// Name is the routing key used in request bodies.
	Name string `json:"name"`
	// Default marks the shard used when requests omit "model".
	Default bool `json:"default,omitempty"`
	detector.Info
}

// ModelsResponse is the JSON body answering GET /v1/models.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// toResponse converts a detector result into its wire form.
func toResponse(model string, r detector.Result) AssessResponse {
	out := AssessResponse{
		Model:      model,
		Prediction: r.Prediction,
		Entropy:    r.Entropy,
		VoteDist:   r.VoteDist,
		Decision:   r.Decision.String(),
	}
	if r.Decomposition != nil {
		out.Decomposition = &Decomposition{
			Total:     r.Decomposition.Total,
			Aleatoric: r.Decomposition.Aleatoric,
			Epistemic: r.Decomposition.Epistemic,
		}
	}
	return out
}

// validateFeatures rejects malformed inputs before they reach a coalesced
// batch, so one bad request can never fail a flush that carries innocent
// neighbours: the vector must be non-empty, finite, and match the shard's
// trained input dimensionality.
func validateFeatures(x []float64, dim int) error {
	if len(x) == 0 {
		return fmt.Errorf("features missing or empty")
	}
	if len(x) != dim {
		return fmt.Errorf("feature vector has %d values, model expects %d", len(x), dim)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("feature %d is not finite", i)
		}
	}
	return nil
}
