package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"os"
	"testing"

	"trusthmd/pkg/detector"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	mk := func(v float64) []float64 { return []float64{v, v + 1} }
	res := func(p int) detector.Result {
		return detector.Result{Prediction: p, VoteDist: []float64{0.3, 0.7}}
	}
	put := func(x []float64, p int) { c.put(hashVec(x), x, res(p)) }
	get := func(x []float64) (detector.Result, bool) { return c.get(hashVec(x), x) }

	put(mk(1), 1)
	put(mk(2), 2)
	if r, ok := get(mk(1)); !ok || r.Prediction != 1 {
		t.Fatalf("expected hit for vec 1, got %v %v", r, ok)
	}
	put(mk(3), 3) // evicts vec 2 (1 was just refreshed)
	if _, ok := get(mk(2)); ok {
		t.Fatal("vec 2 should have been evicted as least recently used")
	}
	if _, ok := get(mk(1)); !ok {
		t.Fatal("vec 1 should have survived eviction")
	}
	if _, ok := get(mk(3)); !ok {
		t.Fatal("vec 3 should be cached")
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}

	// Cached results are deep copies: mutating a served result must not
	// corrupt the cache.
	r, _ := get(mk(3))
	r.VoteDist[0] = math.NaN()
	r2, _ := get(mk(3))
	if math.IsNaN(r2.VoteDist[0]) {
		t.Fatal("cache entry aliases a served result's VoteDist")
	}

	// A disabled cache (capacity <= 0) is a nil no-op.
	var off *resultCache
	off.put(1, mk(1), res(1))
	if _, ok := off.get(1, mk(1)); ok {
		t.Fatal("nil cache should never hit")
	}
	if newResultCache(0) != nil || newResultCache(-1) != nil {
		t.Fatal("capacity <= 0 should disable the cache")
	}
}

func TestHashVecDiscriminates(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3.0000000001}
	if hashVec(a) == hashVec(b) {
		t.Fatal("nearby vectors should hash apart")
	}
	if hashVec(a) != hashVec([]float64{1, 2, 3}) {
		t.Fatal("equal vectors must hash equal")
	}
	// Collisions must be detected by the stored-vector comparison.
	c := newResultCache(4)
	key := hashVec(a)
	c.put(key, a, detector.Result{Prediction: 1})
	if _, ok := c.get(key, b); ok {
		t.Fatal("a colliding key with a different vector must miss")
	}
}

// TestServeCacheHitsAreIdentical is the cross-request caching e2e: the
// same vectors served twice over HTTP must answer bit-identically, /stats
// must show the second pass as pure cache hits, and the coalescer must see
// no additional batches. When TRUSTHMD_SERVE_STATS_OUT is set (the CI
// bench job does this), the final /stats snapshot is written there as a
// build artifact.
func TestServeCacheHitsAreIdentical(t *testing.T) {
	d, X := testDetector(t)
	s, ts := newTestServer(t, Config{CacheSize: 1024})
	n := 60

	assess := func(i int) AssessResponse {
		resp, body := postJSON(t, ts.URL+"/v1/assess", AssessRequest{Features: X[i%len(X)]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("assess %d: status %d: %s", i, resp.StatusCode, body)
		}
		var out AssessResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	first := make([]AssessResponse, n)
	for i := 0; i < n; i++ {
		first[i] = assess(i)
	}
	st := s.Stats()[0]
	if st.CacheMisses == 0 {
		t.Fatalf("first pass recorded no cache misses: %+v", st)
	}
	batchesAfterFirst := st.Batches

	for i := 0; i < n; i++ {
		second := assess(i)
		want := first[i]
		if second.Prediction != want.Prediction || second.Entropy != want.Entropy || second.Decision != want.Decision {
			t.Fatalf("request %d: cached answer diverged: %+v vs %+v", i, second, want)
		}
		for j := range want.VoteDist {
			if second.VoteDist[j] != want.VoteDist[j] {
				t.Fatalf("request %d: cached vote dist diverged", i)
			}
		}
		// And the cache answers exactly what the detector would compute.
		direct, err := d.Assess(X[i%len(X)])
		if err != nil {
			t.Fatal(err)
		}
		if second.Prediction != direct.Prediction || second.Entropy != direct.Entropy {
			t.Fatalf("request %d: cached answer diverged from direct Assess", i)
		}
	}
	st = s.Stats()[0]
	if st.CacheHits < int64(n) {
		t.Fatalf("second pass expected >= %d cache hits, got %d", n, st.CacheHits)
	}
	if st.Batches != batchesAfterFirst {
		t.Fatalf("cache hits still flushed batches: %d -> %d", batchesAfterFirst, st.Batches)
	}
	if st.Requests != int64(2*n) {
		t.Fatalf("stats requests %d, want %d", st.Requests, 2*n)
	}
	if st.CacheEntries == 0 {
		t.Fatal("cache reports zero entries after serving")
	}

	// The batch endpoint shares the cache: an all-repeat batch is pure hits.
	hitsBefore := s.Stats()[0].CacheHits
	batch := make([][]float64, n)
	for i := range batch {
		batch[i] = X[i%len(X)]
	}
	resp, body := postJSON(t, ts.URL+"/v1/assess/batch", BatchRequest{Batch: batch})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var bout BatchResponse
	if err := json.Unmarshal(body, &bout); err != nil {
		t.Fatal(err)
	}
	for i, r := range bout.Results {
		if r.Prediction != first[i].Prediction || r.Entropy != first[i].Entropy {
			t.Fatalf("batch[%d]: cached answer diverged", i)
		}
	}
	st = s.Stats()[0]
	if st.CacheHits < hitsBefore+int64(n) {
		t.Fatalf("batch pass expected >= %d more hits, got %d -> %d", n, hitsBefore, st.CacheHits)
	}

	if path := os.Getenv("TRUSTHMD_SERVE_STATS_OUT"); path != "" {
		raw, err := json.MarshalIndent(map[string]any{"shards": s.Stats()}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatalf("writing serve stats artifact: %v", err)
		}
	}
}

// TestServeCacheDisabled pins the opt-out: with CacheSize < 0 every
// repeat request goes through the coalescer and the cache counters stay
// untouched — a disabled cache reports no activity at all, rather than a
// 100% miss rate for a cache that does not exist.
func TestServeCacheDisabled(t *testing.T) {
	_, X := testDetector(t)
	s, ts := newTestServer(t, Config{CacheSize: -1})
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/assess", AssessRequest{Features: X[0]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/assess/batch", BatchRequest{Batch: [][]float64{X[0], X[0]}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	st := s.Stats()[0]
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEntries != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
	if st.Batches != 3 {
		t.Fatalf("every repeat should have flushed: %d batches, want 3", st.Batches)
	}
	if st.BatchSamples != 2 {
		t.Fatalf("batch endpoint served %d samples, want 2", st.BatchSamples)
	}
}
