package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"trusthmd/internal/cpupin"
	"trusthmd/pkg/detector"
)

// Coalescing turns the daemon's dominant request shape — millions of
// independent single-sample assessments — into the detector's fastest
// path: concurrent /v1/assess requests queue into a bounded buffer, and a
// single flusher goroutine per replica drains them into one AssessBatch
// call whenever the batch fills, the oldest queued request has waited
// MaxWait, or the backlog crosses the flush watermark (a hot queue flushes
// immediately instead of adding MaxWait to every batch). AssessBatch
// amortises scaling+PCA across the batch as one matrix projection and fans
// member inference out over the worker pool, so the aggregate throughput
// is the batched curve, not the one-at-a-time curve, while results stay
// element-wise identical to direct Assess.

// ErrQueueFull is returned when a replica refuses a request — its bounded
// buffer reached the shed watermark or its in-flight cap — so the daemon
// sheds load instead of queueing unboundedly.
var ErrQueueFull = errors.New("serve: assessment queue full")

// ErrClosed is returned for requests submitted after shutdown began.
var ErrClosed = errors.New("serve: server is shutting down")

// pending is one queued single-sample request. Pendings are pooled: the
// 1-slot result channel is the expensive part, and the steady state reuses
// it across requests instead of allocating one per submit.
type pending struct {
	x []float64
	// votes, when non-nil, is the caller-owned buffer the flusher copies
	// the verdict's vote distribution into (nil falls back to a fresh
	// allocation). Ownership rides with the request: once enqueued, the
	// buffer belongs to the flusher until the caller receives the outcome,
	// and a caller that gives up (context cancellation) must abandon it.
	votes []float64
	// out is buffered (capacity 1) so the flusher never blocks on a caller
	// that gave up (context cancellation, client disconnect).
	out chan outcome
}

// pendingPool recycles pending objects and their result channels. A
// pending is returned to the pool only after its outcome was received —
// one abandoned mid-flight stays out (the flusher may still write to it)
// and is collected with its channel when both sides drop it.
var pendingPool = sync.Pool{New: func() any { return &pending{out: make(chan outcome, 1)} }}

type outcome struct {
	res detector.Result
	err error
}

// coTuning bundles the per-replica coalescer knobs, resolved from Config
// by Fleet (all values final: zero means the feature is off, not "use a
// default").
type coTuning struct {
	maxBatch  int
	queueSize int
	maxWait   time.Duration
	// shedDepth sheds new submits once the queue holds this many waiting
	// requests — admission control ahead of the hard channel bound, so the
	// daemon answers 503 + Retry-After instead of growing its worst-case
	// queueing latency. 0 disables (shed only on a full channel).
	shedDepth int
	// flushDepth is the backlog watermark of the latency-aware flush
	// policy: once at least this many requests are queued behind the batch
	// being collected, the flusher stops waiting out maxWait and flushes
	// what is immediately available. 0 disables (timer/size flushes only).
	flushDepth int
	// pinCPU, when nonzero, is 1 + the CPU the flusher's OS thread is
	// pinned to (sched_setaffinity on Linux, no-op elsewhere). 0 leaves
	// the thread to the scheduler. One-based so the zero value stays
	// unpinned.
	pinCPU int
}

// coalescer batches concurrent single-sample requests for one replica.
type coalescer struct {
	det    *detector.Detector
	tuning coTuning
	stats  *shardStats

	// inflight gauges this replica's coalesced load: requests accepted into
	// the queue and not yet settled. The group's load-aware pick reads it.
	inflight atomic.Int64

	queue chan *pending
	wg    sync.WaitGroup

	// scratch is the flusher's private assessment workspace: one arena per
	// replica, touched only from the flusher goroutine, so the projection
	// and vote buffers of a pinned replica stay resident in that core's
	// cache across batches. xbuf and one are the flusher-owned batch view
	// and single-result slot, reused every flush.
	scratch detector.BatchScratch
	xbuf    [][]float64
	one     [1]detector.Result

	mu     sync.RWMutex // guards queue close vs concurrent submit
	closed bool
}

// newCoalescer starts the replica's flusher goroutine.
func newCoalescer(det *detector.Detector, tuning coTuning, stats *shardStats) *coalescer {
	c := &coalescer{
		det:    det,
		tuning: tuning,
		stats:  stats,
		queue:  make(chan *pending, tuning.queueSize),
	}
	c.wg.Add(1)
	go c.loop()
	return c
}

// queueDepth reports how many accepted requests are waiting uncollected.
func (c *coalescer) queueDepth() int { return len(c.queue) }

// submit enqueues one feature vector and blocks until its coalesced batch
// is assessed, the context is cancelled, or admission control rejects it.
func (c *coalescer) submit(ctx context.Context, x []float64) (detector.Result, error) {
	return c.submitVotes(ctx, x, nil)
}

// submitVotes is submit with a caller-owned vote buffer: the verdict's
// VoteDist is built in votes (growing it as needed) instead of a fresh
// allocation. On success the returned Result owns the (possibly regrown)
// buffer; on any error after enqueue the buffer must be considered lost.
func (c *coalescer) submitVotes(ctx context.Context, x, votes []float64) (detector.Result, error) {
	p := pendingPool.Get().(*pending)
	p.x, p.votes = x, votes
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		p.x, p.votes = nil, nil
		pendingPool.Put(p)
		return detector.Result{}, ErrClosed
	}
	if c.tuning.shedDepth > 0 && len(c.queue) >= c.tuning.shedDepth {
		// Queue-depth shedding: the backlog already guarantees more
		// latency than a retry would cost the client.
		c.mu.RUnlock()
		c.stats.shed.Add(1)
		p.x, p.votes = nil, nil
		pendingPool.Put(p)
		return detector.Result{}, ErrQueueFull
	}
	select {
	case c.queue <- p:
		c.inflight.Add(1)
		c.mu.RUnlock()
	default:
		c.mu.RUnlock()
		c.stats.shed.Add(1)
		p.x, p.votes = nil, nil
		pendingPool.Put(p)
		return detector.Result{}, ErrQueueFull
	}
	c.stats.requests.Add(1)
	select {
	case o := <-p.out:
		p.x, p.votes = nil, nil
		pendingPool.Put(p)
		return o.res, o.err
	case <-ctx.Done():
		// The flusher still assesses the sample; the buffered channel
		// absorbs the result nobody is waiting for. The pending (and the
		// caller's vote buffer with it) is abandoned, not pooled — the
		// flusher may still be writing to both.
		return detector.Result{}, ctx.Err()
	}
}

// close stops accepting work, waits for the flusher to drain everything
// already queued, and returns. Safe to call more than once.
func (c *coalescer) close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.queue)
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// loop is the replica's flusher: collect one batch, assess, repeat. The
// max-latency timer starts when the first request of a batch arrives, so
// an idle replica adds no latency; a busy one flushes every MaxWait at the
// latest; and a hot one (backlog at or beyond flushDepth) flushes as soon
// as the immediately available requests are drained, without waiting out
// the timer at all.
func (c *coalescer) loop() {
	defer c.wg.Done()
	if cpu := c.tuning.pinCPU - 1; cpu >= 0 {
		// Pin this flusher to its core for the goroutine's lifetime. The
		// locked thread is destroyed when the goroutine exits, so the
		// narrowed affinity mask never leaks to unrelated goroutines.
		runtime.LockOSThread()
		cpupin.PinThread(cpu)
	}
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	batch := make([]*pending, 0, c.tuning.maxBatch)
	for {
		p, ok := <-c.queue
		if !ok {
			return
		}
		batch = append(batch[:0], p)
		timer.Reset(c.tuning.maxWait)
		open := true
		early := false
	collect:
		for open && len(batch) < c.tuning.maxBatch {
			if c.tuning.flushDepth > 0 && len(c.queue) >= c.tuning.flushDepth {
				// Latency-aware flush: enough requests are already queued
				// behind this batch that waiting out maxWait would only
				// stack latency. Drain what is immediately there and go.
				for len(batch) < c.tuning.maxBatch {
					select {
					case pn, more := <-c.queue:
						if !more {
							open = false
							break collect
						}
						batch = append(batch, pn)
					default:
						early = true
						break collect
					}
				}
				break collect
			}
			select {
			case pn, more := <-c.queue:
				if !more {
					open = false
					break collect
				}
				batch = append(batch, pn)
			case <-timer.C:
				break collect
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		if early {
			c.stats.earlyFlushes.Add(1)
		}
		c.flush(batch)
		if !open {
			return
		}
	}
}

// flush assesses one coalesced batch and fans the results back out. The
// results come out of the flusher's scratch arena — settle copies each
// vote distribution out (into the caller's buffer when one was provided)
// before the next flush reuses the arena.
func (c *coalescer) flush(batch []*pending) {
	c.stats.batches.Add(1)
	if len(batch) == 1 {
		var err error
		c.one[0], err = c.det.AssessInto(&c.scratch, batch[0].x)
		c.settle(batch, c.one[:], err)
		return
	}
	X := c.xbuf[:0]
	for _, p := range batch {
		X = append(X, p.x)
	}
	c.xbuf = X
	// The flusher is this scratch's only user, so the replica's hot
	// buffers never migrate between workers (or cores, when pinned).
	rs, err := c.det.AssessBatchInto(&c.scratch, X)
	c.settle(batch, rs, err)
	// Drop the borrowed feature-vector views so the batch's request
	// scratches are not pinned until the next flush.
	clear(c.xbuf)
}

// settle delivers per-request outcomes, updates the decision tally, and
// retires the batch from the in-flight gauge. rs is scratch-owned: each
// result's VoteDist is copied into the request's vote buffer (or a fresh
// slice for buffer-less callers) before it leaves the flusher.
func (c *coalescer) settle(batch []*pending, rs []detector.Result, err error) {
	defer c.inflight.Add(-int64(len(batch)))
	if err != nil {
		c.stats.errors.Add(int64(len(batch)))
		for _, p := range batch {
			p.out <- outcome{err: err}
		}
		return
	}
	c.stats.observe(rs)
	for i, p := range batch {
		r := rs[i]
		r.VoteDist = append(p.votes[:0], r.VoteDist...)
		p.out <- outcome{res: r}
	}
}
