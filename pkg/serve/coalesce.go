package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"trusthmd/pkg/detector"
)

// Coalescing turns the daemon's dominant request shape — millions of
// independent single-sample assessments — into the detector's fastest
// path: concurrent /v1/assess requests queue into a bounded buffer, and a
// single flusher goroutine per shard drains them into one AssessBatch call
// whenever the batch fills or the oldest queued request has waited MaxWait.
// AssessBatch amortises scaling+PCA across the batch as one matrix
// projection and fans member inference out over the worker pool, so the
// aggregate throughput is the batched curve, not the one-at-a-time curve,
// while results stay element-wise identical to direct Assess.

// ErrQueueFull is returned when the coalescer's bounded buffer is at
// capacity — the daemon sheds load instead of queueing unboundedly.
var ErrQueueFull = errors.New("serve: assessment queue full")

// ErrClosed is returned for requests submitted after shutdown began.
var ErrClosed = errors.New("serve: server is shutting down")

// pending is one queued single-sample request.
type pending struct {
	x []float64
	// out is buffered (capacity 1) so the flusher never blocks on a caller
	// that gave up (context cancellation, client disconnect).
	out chan outcome
}

type outcome struct {
	res detector.Result
	err error
}

// coalescer batches concurrent single-sample requests for one shard.
type coalescer struct {
	det      *detector.Detector
	maxBatch int
	maxWait  time.Duration
	stats    *shardStats

	queue chan pending
	wg    sync.WaitGroup

	mu     sync.RWMutex // guards queue close vs concurrent submit
	closed bool
}

// newCoalescer starts the shard's flusher goroutine.
func newCoalescer(det *detector.Detector, maxBatch, queueSize int, maxWait time.Duration, stats *shardStats) *coalescer {
	c := &coalescer{
		det:      det,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		stats:    stats,
		queue:    make(chan pending, queueSize),
	}
	c.wg.Add(1)
	go c.loop()
	return c
}

// submit enqueues one feature vector and blocks until its coalesced batch
// is assessed, the context is cancelled, or the queue rejects it.
func (c *coalescer) submit(ctx context.Context, x []float64) (detector.Result, error) {
	p := pending{x: x, out: make(chan outcome, 1)}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return detector.Result{}, ErrClosed
	}
	select {
	case c.queue <- p:
		c.mu.RUnlock()
	default:
		c.mu.RUnlock()
		c.stats.shed.Add(1)
		return detector.Result{}, ErrQueueFull
	}
	c.stats.requests.Add(1)
	select {
	case o := <-p.out:
		return o.res, o.err
	case <-ctx.Done():
		// The flusher still assesses the sample; the buffered channel
		// absorbs the result nobody is waiting for.
		return detector.Result{}, ctx.Err()
	}
}

// close stops accepting work, waits for the flusher to drain everything
// already queued, and returns. Safe to call more than once.
func (c *coalescer) close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.queue)
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// loop is the shard's flusher: collect one batch, assess, repeat. The
// max-latency timer starts when the first request of a batch arrives, so
// an idle shard adds no latency and a busy one flushes every MaxWait at
// the latest.
func (c *coalescer) loop() {
	defer c.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	batch := make([]pending, 0, c.maxBatch)
	for {
		p, ok := <-c.queue
		if !ok {
			return
		}
		batch = append(batch[:0], p)
		timer.Reset(c.maxWait)
		open := true
	collect:
		for open && len(batch) < c.maxBatch {
			select {
			case p, ok := <-c.queue:
				if !ok {
					open = false
					break collect
				}
				batch = append(batch, p)
			case <-timer.C:
				break collect
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		c.flush(batch)
		if !open {
			return
		}
	}
}

// flush assesses one coalesced batch and fans the results back out.
func (c *coalescer) flush(batch []pending) {
	c.stats.batches.Add(1)
	if len(batch) == 1 {
		r, err := c.det.Assess(batch[0].x)
		c.settle(batch[:1], []detector.Result{r}, err)
		return
	}
	X := make([][]float64, len(batch))
	for i, p := range batch {
		X[i] = p.x
	}
	rs, err := c.det.AssessBatch(X)
	c.settle(batch, rs, err)
}

// settle delivers per-request outcomes and updates the decision tally.
func (c *coalescer) settle(batch []pending, rs []detector.Result, err error) {
	if err != nil {
		c.stats.errors.Add(int64(len(batch)))
		for _, p := range batch {
			p.out <- outcome{err: err}
		}
		return
	}
	c.stats.observe(rs)
	for i, p := range batch {
		p.out <- outcome{res: rs[i]}
	}
}
