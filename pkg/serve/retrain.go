package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"trusthmd/pkg/dataset"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/verdictstore"
)

// RetrainController closes the paper's deployment loop automatically: it
// tails the verdict store, feeds each device's entropy stream into its
// own DriftMonitor, and when drift is sustained, drains the rejected
// verdicts' stored feature vectors into a Retrainer, retrains in the
// background and installs the result via Fleet.SwapCause — a zero-
// downtime model refresh with no operator in the loop. The swap is the
// same lossless hot swap the admin endpoint uses: in-flight requests
// finish on the old version, everything after routes to the new one.
//
// Per-device monitoring matters: one drifting edge device must trip the
// loop even while a hundred healthy devices keep the aggregate entropy
// distribution looking normal.
type RetrainController struct {
	cfg       RetrainConfig
	retrainer *detector.Retrainer

	mu       sync.Mutex
	monitors map[string]*deviceState
	baseline []float64
	lastSeq  uint64
	// retraining serializes retrain rounds: the tick loop never touches
	// the retrainer while a background round owns it.
	retraining  bool
	lastSwapped time.Time
	retrains    int64
	failures    int64

	wg sync.WaitGroup
}

// deviceState is one device's drift tracking.
type deviceState struct {
	monitor *detector.DriftMonitor
	// alarmed counts consecutive observations with the alarm up; the
	// trigger requires Sustain of them so a single noisy window cannot
	// fire a retrain.
	alarmed int
	// rejects stashes this device's rejected verdicts (with features) so
	// the trigger can hand them to the retrainer as forensics.
	rejects []verdictstore.Record
}

// RetrainConfig parameterises a RetrainController. Store, Fleet, Model
// and Base are required; everything else has serviceable defaults.
type RetrainConfig struct {
	// Store is the verdict store the controller tails.
	Store *verdictstore.Store
	// Fleet receives the retrained model via SwapCause.
	Fleet *Fleet
	// Model is the shard under supervision; its verdicts are monitored
	// and it is the one hot-swapped on retrain.
	Model string
	// Base is the original training set; every retrain round folds the
	// accumulated forensics into it.
	Base *dataset.Dataset
	// Options train the replacement (default: the supervised shard's
	// Info.Options(), i.e. retrain exactly what is being served).
	Options []detector.Option
	// Interval is the store-tail poll cadence (default 1s).
	Interval time.Duration
	// Drift parameterises each device's DriftMonitor. A zero Threshold
	// defaults to the supervised detector's rejection threshold.
	Drift detector.DriftConfig
	// BaselineSample is how many Base rows are assessed through the live
	// detector to form the drift baseline (default 200, capped at
	// Base.Len()).
	BaselineSample int
	// Sustain is how many consecutive alarmed observations a device needs
	// before the controller acts (default 3).
	Sustain int
	// Quorum is the forensic-sample quorum handed to the Retrainer
	// (default 25): a retrain fires only once that many rejected vectors
	// have been collected.
	Quorum int
	// Cooldown is the minimum gap between swaps (default 1m), so an
	// ineffective retrain cannot thrash the fleet.
	Cooldown time.Duration
	// Prepare, when set, post-processes the retrained detector before the
	// swap — the daemon reapplies its fleet-wide overrides here.
	Prepare func(*detector.Detector) (*detector.Detector, error)
	// Labeler assigns a training label to one rejected verdict, or false
	// to discard it. The default pseudo-labels with the ensemble's
	// plurality prediction — the paper's loop has an analyst here, and
	// deployments with one should plug it in.
	Labeler func(verdictstore.Record) (int, bool)
	// Logf, when set, receives the controller's lifecycle lines.
	Logf func(format string, args ...any)
}

// RetrainStats is the controller snapshot /stats reports.
type RetrainStats struct {
	Model string `json:"model"`
	// Retrains counts completed retrain+swap rounds; Failures the rounds
	// that errored (training or swap).
	Retrains int64 `json:"retrains"`
	Failures int64 `json:"failures,omitempty"`
	// TailSeq is the last verdict sequence the controller has consumed.
	TailSeq uint64 `json:"tail_seq"`
	// PendingForensics is the retrainer's labelled-but-unconsumed sample
	// count; Devices the number of devices currently tracked; Retraining
	// whether a background round is in flight.
	PendingForensics int  `json:"pending_forensics"`
	Devices          int  `json:"devices"`
	Retraining       bool `json:"retraining,omitempty"`
}

// NewRetrainController validates the loop's wiring and seeds the drift
// baseline from the live detector. The supervised shard must be loaded.
func NewRetrainController(cfg RetrainConfig) (*RetrainController, error) {
	if cfg.Store == nil {
		return nil, errors.New("serve: retrain controller needs a verdict store")
	}
	if cfg.Fleet == nil {
		return nil, errors.New("serve: retrain controller needs a fleet")
	}
	if cfg.Model == "" {
		return nil, errors.New("serve: retrain controller needs a model name")
	}
	if cfg.Base == nil || cfg.Base.Len() == 0 {
		return nil, errors.New("serve: retrain controller needs the base training set")
	}
	det, err := cfg.Fleet.Detector(cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("serve: retrain controller: %w", err)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.BaselineSample <= 0 {
		cfg.BaselineSample = 200
	}
	if cfg.Sustain <= 0 {
		cfg.Sustain = 3
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = 25
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Minute
	}
	if cfg.Drift.Threshold == 0 {
		cfg.Drift.Threshold = det.Threshold()
	}
	if cfg.Options == nil {
		cfg.Options = det.Info().Options()
	}
	if cfg.Labeler == nil {
		cfg.Labeler = func(rec verdictstore.Record) (int, bool) { return rec.Prediction, true }
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	retrainer, err := detector.NewRetrainer(cfg.Base, cfg.Quorum, cfg.Options...)
	if err != nil {
		return nil, fmt.Errorf("serve: retrain controller: %w", err)
	}
	c := &RetrainController{
		cfg:       cfg,
		retrainer: retrainer,
		monitors:  make(map[string]*deviceState),
	}
	if err := c.reseedBaseline(det); err != nil {
		return nil, err
	}
	return c, nil
}

// reseedBaseline assesses a sample of the base training set through det
// and stores the resulting entropies — the in-distribution reference
// every device's monitor compares against. Called at construction and
// after every swap (the new model has its own entropy profile).
func (c *RetrainController) reseedBaseline(det *detector.Detector) error {
	n := c.cfg.BaselineSample
	if n > c.cfg.Base.Len() {
		n = c.cfg.Base.Len()
	}
	xs := make([][]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = c.cfg.Base.At(i).Features
	}
	rs, err := det.AssessBatch(xs)
	if err != nil {
		return fmt.Errorf("serve: retrain controller baseline: %w", err)
	}
	baseline := make([]float64, len(rs))
	for i, r := range rs {
		baseline[i] = r.Entropy
	}
	c.mu.Lock()
	c.baseline = baseline
	c.monitors = make(map[string]*deviceState)
	c.mu.Unlock()
	return nil
}

// Run tails the store until ctx is done, waiting out any in-flight
// retrain round before returning.
func (c *RetrainController) Run(ctx context.Context) error {
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			c.wg.Wait()
			return ctx.Err()
		case <-ticker.C:
			if err := c.tick(); err != nil {
				c.cfg.Logf("retrain: %v", err)
			}
		}
	}
}

// tick consumes the verdicts appended since the last tick and updates
// every device's drift state, possibly launching a retrain round.
func (c *RetrainController) tick() error {
	c.mu.Lock()
	since := c.lastSeq + 1
	c.mu.Unlock()
	recs, err := c.cfg.Store.Query(verdictstore.Filter{Model: c.cfg.Model, SinceSeq: since})
	if err != nil {
		if errors.Is(err, verdictstore.ErrClosed) {
			return nil // shutting down; Run's ctx ends the loop
		}
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var trigger *deviceState
	var triggerDevice string
	for _, rec := range recs {
		if rec.Seq > c.lastSeq {
			c.lastSeq = rec.Seq
		}
		dev := rec.Device
		ds := c.monitors[dev]
		if ds == nil {
			m, err := detector.NewDriftMonitor(c.baseline, c.cfg.Drift)
			if err != nil {
				return fmt.Errorf("device %q monitor: %w", dev, err)
			}
			ds = &deviceState{monitor: m}
			c.monitors[dev] = ds
		}
		if rec.Decision == detector.Reject.String() && len(rec.Features) > 0 {
			// Bound the stash: the oldest forensics age out once a device
			// has far more than a quorum's worth.
			if len(ds.rejects) >= 4*c.cfg.Quorum {
				ds.rejects = ds.rejects[1:]
			}
			ds.rejects = append(ds.rejects, rec)
		}
		st, err := ds.monitor.Observe(rec.Entropy)
		if err != nil {
			// A stored verdict with a poisoned entropy must not wedge the
			// loop; skip the observation.
			c.cfg.Logf("retrain: device %q: %v", dev, err)
			continue
		}
		if st.Alarm {
			ds.alarmed++
			if ds.alarmed >= c.cfg.Sustain && trigger == nil {
				trigger = ds
				triggerDevice = dev
			}
		} else {
			ds.alarmed = 0
		}
	}
	if trigger == nil || c.retraining || time.Since(c.lastSwapped) < c.cfg.Cooldown {
		return nil
	}
	// Sustained drift on triggerDevice: hand its stashed rejections to the
	// retrainer as pseudo-labelled forensics.
	forensics := make([]detector.Forensic, 0, len(trigger.rejects))
	for _, rec := range trigger.rejects {
		label, ok := c.cfg.Labeler(rec)
		if !ok {
			continue
		}
		forensics = append(forensics, detector.Forensic{
			Features: rec.Features,
			Label:    label,
			App:      "drift:" + triggerDevice,
		})
	}
	trigger.rejects = trigger.rejects[:0]
	trigger.alarmed = 0
	if len(forensics) > 0 {
		if err := c.retrainer.ReportForensics(forensics); err != nil {
			return err
		}
	}
	if !c.retrainer.ShouldRetrain() {
		c.cfg.Logf("retrain: drift on %q, %d/%d forensics collected",
			triggerDevice, c.retrainer.Pending(), c.cfg.Quorum)
		return nil
	}
	c.cfg.Logf("retrain: sustained drift on %q, launching round %d with %d forensics",
		triggerDevice, c.retrainer.Rounds()+1, c.retrainer.Pending())
	c.retraining = true
	c.wg.Add(1)
	go c.retrainAndSwap()
	return nil
}

// retrainAndSwap runs one background round: train on base+forensics,
// apply the prepare hook, hot-swap the shard, reseed the baseline.
// Serving never pauses — the fleet keeps answering on the old version
// until the swap installs the new one.
func (c *RetrainController) retrainAndSwap() {
	defer c.wg.Done()
	fail := func(err error) {
		c.cfg.Logf("retrain: round failed: %v", err)
		c.mu.Lock()
		c.failures++
		c.retraining = false
		c.mu.Unlock()
	}
	det, err := c.retrainer.Retrain()
	if err != nil {
		fail(err)
		return
	}
	// Snapshot while this round still owns the retrainer: after the
	// retraining flag clears, the tick loop may touch it again.
	trainSize := c.retrainer.TrainingSize()
	if c.cfg.Prepare != nil {
		if det, err = c.cfg.Prepare(det); err != nil {
			fail(err)
			return
		}
	}
	version, err := c.cfg.Fleet.SwapCause(c.cfg.Model, det, "drift-retrain")
	if err != nil {
		fail(err)
		return
	}
	if err := c.reseedBaseline(det); err != nil {
		// The swap already landed; a baseline error only degrades future
		// drift detection. Keep the old baseline and say so.
		c.cfg.Logf("retrain: %v (keeping previous baseline)", err)
	}
	c.mu.Lock()
	c.retrains++
	c.retraining = false
	c.lastSwapped = time.Now()
	c.mu.Unlock()
	c.cfg.Logf("retrain: swapped %s to version %d (training set now %d samples)",
		c.cfg.Model, version, trainSize)
}

// Stats snapshots the controller.
func (c *RetrainController) Stats() RetrainStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	pending := 0
	if !c.retraining {
		// While a round is in flight the background goroutine owns the
		// retrainer; its pending set is being consumed anyway.
		pending = c.retrainer.Pending()
	}
	return RetrainStats{
		Model:            c.cfg.Model,
		Retrains:         c.retrains,
		Failures:         c.failures,
		TailSeq:          c.lastSeq,
		PendingForensics: pending,
		Devices:          len(c.monitors),
		Retraining:       c.retraining,
	}
}
