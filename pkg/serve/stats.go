package serve

import (
	"sync"
	"sync/atomic"

	"trusthmd/pkg/detector"
)

// ShardStats is the serving snapshot of one model shard, exposed by
// GET /stats. Counters cover the coalesced single-assess path, the
// client-batched path and the NDJSON streaming path; they are cumulative
// across hot swaps of the shard (Version tells versions apart, the cache
// occupancy restarts per version because the cache itself does).
type ShardStats struct {
	Model string `json:"model"`
	// Version is the shard version currently serving this name.
	Version uint64 `json:"version"`

	// Requests counts accepted /v1/assess requests (queue-full shedding
	// excluded, see Shed).
	Requests int64 `json:"requests"`
	// BatchRequests / BatchSamples count /v1/assess/batch traffic.
	BatchRequests int64 `json:"batch_requests"`
	BatchSamples  int64 `json:"batch_samples"`
	// Batches is the number of coalesced AssessBatch flushes. MeanBatchSize
	// is the mean over requests that actually queued: Requests minus the
	// /v1/assess cache hits (hits were answered without queueing; batch
	// endpoint hits never counted into Requests), divided by Batches —
	// above 1 means coalescing is doing its job.
	Batches       int64   `json:"batches"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	// Shed counts requests rejected by admission control — the replica's
	// queue hit its shed watermark (or the hard channel bound) or its
	// in-flight cap was exhausted; every shed answered 503 + Retry-After.
	// Errors counts failed assessments.
	Shed   int64 `json:"shed"`
	Errors int64 `json:"errors"`
	// Spills counts device-keyed requests routed away from their home
	// replica to a less-loaded sibling (power-of-two-choices overflow);
	// EarlyFlushes counts coalescer batches flushed by the latency-aware
	// backlog watermark instead of the size/timer triggers.
	Spills       int64 `json:"spills"`
	EarlyFlushes int64 `json:"early_flushes"`

	// CacheHits / CacheMisses count cross-request result-cache lookups on
	// both assessment endpoints: a hit is served straight from the
	// per-shard LRU (no coalescing, no detector work) with a bit-identical
	// verdict. CacheEntries is the current number of cached vectors.
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`

	// StreamSessions counts /v1/assess/stream connections accepted;
	// StreamSamples / StreamDecisions the raw states pushed and window
	// decisions emitted across them; StreamCacheHits the windows served
	// from the sessions' projected-vector memo (OnlineStats.CacheHits).
	// Samples/decisions/memo-hit counters fold in when a session ends.
	StreamSessions  int64 `json:"stream_sessions"`
	StreamSamples   int64 `json:"stream_samples"`
	StreamDecisions int64 `json:"stream_decisions"`
	StreamCacheHits int64 `json:"stream_cache_hits"`

	// Benign/Malware/Rejected tally served verdicts (an OnlineStats-style
	// decision count); RejectionRate is the share of decisions the detector
	// refused to trust.
	Benign        int     `json:"benign"`
	Malware       int     `json:"malware"`
	Rejected      int     `json:"rejected"`
	RejectionRate float64 `json:"rejection_rate"`

	// Replicas holds the live per-replica gauges of the group currently
	// serving this name, indexed by replica slot. Unlike the counters
	// above these are instantaneous, and they restart on a swap because
	// the replicas themselves do.
	Replicas []ReplicaStats `json:"replicas"`
}

// ReplicaStats is the live gauge set of one replica in a group, read
// under the fleet's registry lock so the whole /stats snapshot describes
// one fleet generation.
type ReplicaStats struct {
	// Replica is the slot index (0-based) — the home target of the
	// within-group consistent-hash routing.
	Replica int `json:"replica"`
	// QueueDepth is the number of accepted requests waiting uncollected in
	// this replica's coalescer queue.
	QueueDepth int `json:"queue_depth"`
	// Inflight is the replica's admission gauge: coalesced requests
	// accepted and not yet settled plus client-batch samples assessing.
	Inflight int64 `json:"inflight"`
	// Served counts requests this replica answered (cache hits included) —
	// compare across slots to read the spillover share.
	Served int64 `json:"served"`
	// CacheEntries is this replica's result-cache occupancy.
	CacheEntries int `json:"cache_entries"`
}

// shardStats is the live counter set behind a ShardStats snapshot. The
// request-path counters are atomics (hit concurrently by every handler);
// the decision tally reuses detector.OnlineStats under a mutex, updated
// once per flush rather than once per request.
type shardStats struct {
	requests        atomic.Int64
	batchRequests   atomic.Int64
	batchSamples    atomic.Int64
	batches         atomic.Int64
	shed            atomic.Int64
	spills          atomic.Int64
	earlyFlushes    atomic.Int64
	errors          atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	streamSessions  atomic.Int64
	streamSamples   atomic.Int64
	streamDecisions atomic.Int64
	streamCacheHits atomic.Int64
	// cacheHitsSingle counts the subset of cacheHits from /v1/assess; only
	// those were diverted from the coalescer queue, so only they are
	// excluded from the mean-batch-size denominator.
	cacheHitsSingle atomic.Int64

	mu        sync.Mutex
	decisions detector.OnlineStats
}

// observe folds one served result set into the decision tally.
func (s *shardStats) observe(rs []detector.Result) {
	s.mu.Lock()
	for _, r := range rs {
		s.decisions.Observe(r.Decision)
	}
	s.mu.Unlock()
}

// observeOne folds a single cache-served decision into the tally.
func (s *shardStats) observeOne(d detector.Decision) {
	s.mu.Lock()
	s.decisions.Observe(d)
	s.mu.Unlock()
}

// snapshot freezes the counters into the wire form.
func (s *shardStats) snapshot(model string) ShardStats {
	s.mu.Lock()
	dec := s.decisions
	s.mu.Unlock()
	out := ShardStats{
		Model:           model,
		Requests:        s.requests.Load(),
		BatchRequests:   s.batchRequests.Load(),
		BatchSamples:    s.batchSamples.Load(),
		Batches:         s.batches.Load(),
		Shed:            s.shed.Load(),
		Spills:          s.spills.Load(),
		EarlyFlushes:    s.earlyFlushes.Load(),
		Errors:          s.errors.Load(),
		CacheHits:       s.cacheHits.Load(),
		CacheMisses:     s.cacheMisses.Load(),
		StreamSessions:  s.streamSessions.Load(),
		StreamSamples:   s.streamSamples.Load(),
		StreamDecisions: s.streamDecisions.Load(),
		StreamCacheHits: s.streamCacheHits.Load(),
		Benign:          dec.Benign,
		Malware:         dec.Malware,
		Rejected:        dec.Rejected,
	}
	if out.Batches > 0 {
		if queued := out.Requests - s.cacheHitsSingle.Load(); queued > 0 {
			out.MeanBatchSize = float64(queued) / float64(out.Batches)
		}
	}
	out.RejectionRate = dec.RejectedFraction()
	return out
}
