package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"trusthmd/internal/gen"
	"trusthmd/pkg/detector"
)

// The trained detector is shared across tests (training dominates test
// time and a trained Detector is immutable and safe for concurrent use).
var (
	testOnce sync.Once
	testDet  *detector.Detector
	testErr  error
	testX    [][]float64
)

func testDetector(t testing.TB) (*detector.Detector, [][]float64) {
	t.Helper()
	testOnce.Do(func() {
		var s gen.Splits
		s, testErr = gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 140, Unknown: 40})
		if testErr != nil {
			return
		}
		testDet, testErr = detector.New(s.Train,
			detector.WithModel("rf"), detector.WithEnsembleSize(11), detector.WithSeed(1))
		if testErr != nil {
			return
		}
		testX = make([][]float64, s.Test.Len())
		for i := range testX {
			testX[i] = s.Test.At(i).Features
		}
	})
	if testErr != nil {
		t.Fatal(testErr)
	}
	return testDet, testX
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	d, _ := testDetector(t)
	s, err := New(map[string]*detector.Detector{"dvfs-rf": d}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestAssessCoalescedMatchesSequential is the acceptance test of the
// serving layer: N concurrent /v1/assess requests must return decisions
// element-wise identical to direct sequential Assess, and /stats must show
// a mean batch size above 1 — proof that the identical answers really went
// through coalesced AssessBatch calls.
func TestAssessCoalescedMatchesSequential(t *testing.T) {
	d, X := testDetector(t)
	s, ts := newTestServer(t, Config{MaxBatch: 16, MaxWait: 10 * time.Millisecond})

	const n = 96
	want := make([]detector.Result, n)
	for i := 0; i < n; i++ {
		var err error
		if want[i], err = d.Assess(X[i%len(X)]); err != nil {
			t.Fatal(err)
		}
	}

	got := make([]AssessResponse, n)
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			raw, err := json.Marshal(AssessRequest{Features: X[i%len(X)]})
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/assess", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&got[i])
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	for i := range got {
		w := want[i]
		g := got[i]
		if g.Prediction != w.Prediction || g.Entropy != w.Entropy || g.Decision != w.Decision.String() {
			t.Fatalf("request %d diverged from sequential Assess:\n got %+v\nwant %+v", i, g, w)
		}
		if len(g.VoteDist) != len(w.VoteDist) {
			t.Fatalf("request %d: vote dist length %d vs %d", i, len(g.VoteDist), len(w.VoteDist))
		}
		for j := range g.VoteDist {
			if g.VoteDist[j] != w.VoteDist[j] {
				t.Fatalf("request %d: vote dist diverged at %d", i, j)
			}
		}
	}

	st := s.Stats()
	if len(st) != 1 {
		t.Fatalf("expected 1 shard, got %d", len(st))
	}
	if st[0].Requests != n {
		t.Fatalf("stats requests %d, want %d", st[0].Requests, n)
	}
	if st[0].MeanBatchSize <= 1 {
		t.Fatalf("no coalescing happened: mean batch size %.2f over %d batches",
			st[0].MeanBatchSize, st[0].Batches)
	}
	t.Logf("coalesced %d requests into %d batches (mean %.1f)", st[0].Requests, st[0].Batches, st[0].MeanBatchSize)

	// The /stats endpoint serves the same snapshot.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire struct {
		Shards []ShardStats `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if len(wire.Shards) != 1 || wire.Shards[0].Requests != n || wire.Shards[0].Model != "dvfs-rf" {
		t.Fatalf("/stats wire mismatch: %+v", wire.Shards)
	}
	if total := wire.Shards[0].Benign + wire.Shards[0].Malware + wire.Shards[0].Rejected; total != n {
		t.Fatalf("decision tally %d, want %d", total, n)
	}
}

// TestBatchEndpointMatchesAssessBatch checks the client-batched path.
func TestBatchEndpointMatchesAssessBatch(t *testing.T) {
	d, X := testDetector(t)
	s, ts := newTestServer(t, Config{})

	batch := X[:20]
	want, err := d.AssessBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/assess/batch", BatchRequest{Batch: batch})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got BatchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Model != "dvfs-rf" || len(got.Results) != len(want) {
		t.Fatalf("batch response shape: model=%q n=%d", got.Model, len(got.Results))
	}
	for i := range want {
		if got.Results[i].Prediction != want[i].Prediction ||
			got.Results[i].Entropy != want[i].Entropy ||
			got.Results[i].Decision != want[i].Decision.String() {
			t.Fatalf("batch[%d] diverged: %+v vs %+v", i, got.Results[i], want[i])
		}
	}
	st := s.Stats()[0]
	if st.BatchRequests != 1 || st.BatchSamples != int64(len(batch)) {
		t.Fatalf("batch counters: %+v", st)
	}
}

func TestRequestValidation(t *testing.T) {
	_, X := testDetector(t)
	_, ts := newTestServer(t, Config{})

	cases := []struct {
		name string
		url  string
		body string
		code int
	}{
		{"empty features", "/v1/assess", `{"features":[]}`, http.StatusBadRequest},
		{"missing features", "/v1/assess", `{}`, http.StatusBadRequest},
		{"wrong dim", "/v1/assess", `{"features":[1,2,3]}`, http.StatusBadRequest},
		{"unknown field", "/v1/assess", `{"features":[1],"nope":true}`, http.StatusBadRequest},
		{"not json", "/v1/assess", `hello`, http.StatusBadRequest},
		{"empty body", "/v1/assess", ``, http.StatusBadRequest},
		{"two documents", "/v1/assess", `{"features":[1]}{"features":[1]}`, http.StatusBadRequest},
		{"unknown model", "/v1/assess", `{"model":"nope","features":[1]}`, http.StatusNotFound},
		{"empty batch", "/v1/assess/batch", `{"batch":[]}`, http.StatusBadRequest},
		{"empty batch body", "/v1/assess/batch", ``, http.StatusBadRequest},
		{"batch missing entirely", "/v1/assess/batch", `{}`, http.StatusBadRequest},
		{"ragged batch", "/v1/assess/batch", `{"batch":[[1,2]]}`, http.StatusBadRequest},
		{"batch unknown model", "/v1/assess/batch", `{"model":"nope","batch":[[1,2]]}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.code {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.code, body)
			}
			var e ErrorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("non-JSON error body: %s", body)
			}
		})
	}

	// A valid request still works after the rejected ones (no poisoned state).
	resp, body := postJSON(t, ts.URL+"/v1/assess", AssessRequest{Features: X[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid request after rejects: status %d: %s", resp.StatusCode, body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Every 405 must name the accepted methods in the Allow header
	// (RFC 9110) and keep the JSON error envelope.
	for _, url := range []string{"/v1/assess", "/v1/assess/batch", "/v1/assess/stream"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Fatalf("GET %s: Allow header %q, want %q", url, allow, http.MethodPost)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("GET %s: non-JSON 405 body: %s", url, body)
		}
	}
	for _, url := range []string{"/stats", "/healthz"} {
		resp, err := http.Post(ts.URL+url, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: status %d", url, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Fatalf("POST %s: Allow header %q, want %q", url, allow, http.MethodGet)
		}
	}
	// The multi-method admin path advertises its full method set.
	req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/models/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PATCH /v1/models/x: status %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, DELETE" {
		t.Fatalf("PATCH /v1/models/x: Allow header %q, want \"GET, DELETE\"", allow)
	}
}

func TestOversizedBatchRejected(t *testing.T) {
	_, X := testDetector(t)
	_, ts := newTestServer(t, Config{MaxBatchSamples: 4})
	batch := [][]float64{X[0], X[1], X[2], X[3], X[4]}
	resp, body := postJSON(t, ts.URL+"/v1/assess/batch", BatchRequest{Batch: batch})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	_, X := testDetector(t)
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	resp, body := postJSON(t, ts.URL+"/v1/assess", AssessRequest{Features: X[0]})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
	}
}

func TestModelsAndHealthz(t *testing.T) {
	d, _ := testDetector(t)
	tuned, err := d.WithOptions(detector.WithThreshold(0.25))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(map[string]*detector.Detector{"a": d, "b": tuned}, Config{DefaultModel: "b"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var models ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if len(models.Models) != 2 {
		t.Fatalf("models: %+v", models)
	}
	if models.Models[0].Name != "a" || models.Models[0].Default ||
		models.Models[1].Name != "b" || !models.Models[1].Default {
		t.Fatalf("model listing wrong: %+v", models.Models)
	}
	if models.Models[0].InputDim != d.InputDim() || models.Models[0].Members != d.Members() {
		t.Fatalf("model info lost: %+v", models.Models[0])
	}
	if models.Models[1].Threshold != 0.25 {
		t.Fatalf("per-shard threshold lost: %+v", models.Models[1])
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hz.StatusCode)
	}

	// Two shards and no default: a model-less request must be refused.
	s2, err := New(map[string]*detector.Detector{"a": d, "b": tuned}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	r2, body := postJSON(t, ts2.URL+"/v1/assess", AssessRequest{Features: make([]float64, d.InputDim())})
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("ambiguous model routing: status %d: %s", r2.StatusCode, body)
	}
}

func TestRoutingByModelName(t *testing.T) {
	d, X := testDetector(t)
	// Same pipeline, radically different thresholds: routing is observable
	// through the decision.
	strict, err := d.WithOptions(detector.WithThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(map[string]*detector.Detector{"normal": d, "strict": strict}, Config{DefaultModel: "normal"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Find a sample with non-zero entropy so threshold 0 rejects it.
	var x []float64
	for _, cand := range X {
		r, err := d.Assess(cand)
		if err != nil {
			t.Fatal(err)
		}
		if r.Entropy > 0 {
			x = cand
			break
		}
	}
	if x == nil {
		t.Skip("no uncertain sample in test split")
	}
	resp, body := postJSON(t, ts.URL+"/v1/assess", AssessRequest{Model: "strict", Features: x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got AssessResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Model != "strict" || got.Decision != "reject" {
		t.Fatalf("routed to wrong shard: %+v", got)
	}
}

func TestShutdownShedsNewRequests(t *testing.T) {
	d, X := testDetector(t)
	s, err := New(map[string]*detector.Detector{"m": d}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	s.Close() // drain coalescers; handler must now shed with 503
	resp, body := postJSON(t, ts.URL+"/v1/assess", AssessRequest{Features: X[0]})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status %d: %s", resp.StatusCode, body)
	}
	// Close is idempotent.
	s.Close()
}

func TestNewValidation(t *testing.T) {
	d, _ := testDetector(t)
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("expected no-models error")
	}
	if _, err := New(map[string]*detector.Detector{"": d}, Config{}); err == nil {
		t.Fatal("expected empty-name error")
	}
	if _, err := New(map[string]*detector.Detector{"m": nil}, Config{}); err == nil {
		t.Fatal("expected nil-detector error")
	}
	if _, err := New(map[string]*detector.Detector{"m": d}, Config{DefaultModel: "other"}); err == nil {
		t.Fatal("expected unknown-default error")
	}
}
