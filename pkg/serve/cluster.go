package serve

import (
	"fmt"
	"net/http"
	"time"

	"trusthmd/pkg/detector"
)

// Cluster integration: serve stays a single-node transport, and a cluster
// control plane (pkg/cluster) attaches through the ClusterHook interface —
// serve defines the seam, the cluster implements it, so the import points
// cluster -> serve and no cycle forms. Without an attached hook every path
// below is a no-op and the server behaves exactly as a standalone daemon.
//
// The hook intercepts at four places:
//
//   - assessment routing: ResolveAssess maps the request's model/device
//     keys onto the cluster-wide shard space and says whether this node
//     owns the shard; ForwardAssess proxies non-local requests to the
//     owner (with a loop-guard header so a forwarded request is always
//     served where it lands).
//   - streaming: a non-local NDJSON stream is proxied line by line via
//     ProxyStream; serve hands the hook a StreamConn bundling the parsed
//     header and deadline-disciplined read/write closures, so all socket
//     hygiene (idle timeouts, write deadlines, drain behaviour) stays in
//     one place regardless of who runs the loop.
//   - admin: HandleModelLoad lets the hook turn POST /v1/models into a
//     fleet-wide two-phase hot swap.
//   - observability: StatsFields merges cluster counters into /stats and
//     Status answers GET /v1/cluster.

// ForwardedHeader is the loop guard on node-to-node forwarded requests:
// a request carrying it is always served locally by the receiving node
// (installing the shard from the cluster catalog on demand), never
// forwarded again — so a stale routing table cannot create a forwarding
// cycle. The value names the node that forwarded.
const ForwardedHeader = "X-Trusthmd-Forwarded"

// ClusterHook is the seam a cluster control plane implements to make one
// server a fleet member. Methods must be safe for concurrent use.
type ClusterHook interface {
	// ResolveAssess maps a request's routing keys onto the cluster: it
	// returns the cluster-wide shard name the request belongs to (device
	// keys are hashed over the whole cluster's shard set, not just the
	// local fleet's) and whether this node serves it locally. Forwarded
	// requests (ForwardedHeader present) always resolve local.
	ResolveAssess(r *http.Request, model, device string) (shard string, local bool)
	// ForwardAssess proxies a non-local request (original body bytes, same
	// path) to the shard's owner and relays the response. It always writes
	// a response, falling over to ring successors on network errors and
	// answering 503 when no owner is reachable.
	ForwardAssess(w http.ResponseWriter, r *http.Request, shard, device string, body []byte)
	// ProxyStream runs a non-local NDJSON stream by replaying its samples
	// onto the owning node (and, on owner death, replaying the exported
	// session state onto a ring successor so the stream survives).
	ProxyStream(conn *StreamConn)
	// HandleModelLoad intercepts an authenticated POST /v1/models and
	// applies it cluster-wide; returning false falls back to the local
	// single-node install.
	HandleModelLoad(w http.ResponseWriter, r *http.Request, req LoadModelRequest) bool
	// StatsFields returns the cluster counters /stats merges into its
	// snapshot: node_id, role, members_alive, forwards_in, forwards_out.
	StatsFields() map[string]any
	// Status answers GET /v1/cluster: the node's view of the membership
	// table and catalog.
	Status() any
}

// StreamConn is the serve-side of a proxied NDJSON stream: the parsed
// header plus closures that keep every read and write under the same
// deadline discipline as a locally served stream. The hook's proxy loop
// calls Next for the client's sample chunks and Emit/Fail for response
// lines; exactly one of HTTPError (before Begin) or Begin-then-Emit
// terminates the exchange.
type StreamConn struct {
	// Hdr is the stream's parsed header line.
	Hdr StreamHeader
	// Next returns the next sample chunk. io.EOF means a clean client
	// end-of-stream; a *StreamLineError is a protocol violation whose
	// message should be sent with Fail; any other error is a transport
	// failure (check Draining to distinguish shutdown from disconnect).
	Next func() ([]int, error)
	// HTTPError rejects the stream with a proper HTTP status; only valid
	// before Begin.
	HTTPError func(code int, msg string)
	// Begin commits the 200 and switches to NDJSON framing.
	Begin func()
	// Emit writes one NDJSON response line under a write deadline; false
	// means the client stopped reading and the stream must be abandoned.
	Emit func(v any) bool
	// Fail emits a terminal error line (the post-200 failure shape).
	Fail func(msg string)
	// Draining reports whether the server began draining (the stream
	// should end with a Draining summary).
	Draining func() bool
}

// StreamLineError is a protocol violation on a stream line (oversized
// line, malformed JSON, ambiguous sample shape): the stream fails with
// this message but the transport is healthy.
type StreamLineError struct{ Msg string }

func (e *StreamLineError) Error() string { return e.Msg }

// decodeStreamStates parses one NDJSON sample line into its states,
// returning a *StreamLineError on any protocol violation.
func decodeStreamStates(line []byte) ([]int, error) {
	var sample StreamSample
	if err := unmarshalStrict(line, &sample); err != nil {
		return nil, &StreamLineError{Msg: fmt.Sprintf("bad stream line: %v", err)}
	}
	if sample.State != nil && len(sample.States) > 0 {
		return nil, &StreamLineError{Msg: `stream line carries both "state" and "states"`}
	}
	states := sample.States
	if sample.State != nil {
		states = append(states, *sample.State)
	}
	if len(states) == 0 {
		return nil, &StreamLineError{Msg: `stream line carries neither "state" nor "states"`}
	}
	return states, nil
}

// clusterBox wraps the hook interface so it can live in an
// atomic.Pointer (which needs a concrete element type).
type clusterBox struct{ hook ClusterHook }

// AttachCluster wires a cluster control plane into the server: assessment
// and stream requests for shards owned elsewhere are forwarded, POST
// /v1/models becomes fleet-wide, and /stats + /v1/cluster report the
// node's cluster identity.
func (s *Server) AttachCluster(h ClusterHook) { s.cluster.Store(&clusterBox{hook: h}) }

// clusterHook returns the attached hook, nil when standalone.
func (s *Server) clusterHook() ClusterHook {
	if b := s.cluster.Load(); b != nil {
		return b.hook
	}
	return nil
}

// handleClusterStatus is GET /v1/cluster: the node's membership view, or
// 404 on a standalone daemon.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	hook := s.clusterHook()
	if hook == nil {
		writeError(w, http.StatusNotFound, "no cluster attached")
		return
	}
	writeJSON(w, http.StatusOK, hook.Status())
}

// WriteJSON / WriteError expose the server's response envelope to the
// cluster package, so node-to-node endpoints answer in the same shape as
// every other endpoint.
func WriteJSON(w http.ResponseWriter, code int, v any) { writeJSON(w, code, v) }

// WriteError writes the standard JSON error envelope.
func WriteError(w http.ResponseWriter, code int, msg string) { writeError(w, code, msg) }

// StreamPushDecision is one decision produced by a StreamPush chunk.
type StreamPushDecision struct {
	// Offset is the index within the pushed chunk of the sample that
	// completed the window.
	Offset int             `json:"offset"`
	Result detector.Result `json:"result"`
}

// StreamPushResult answers one StreamPush: the shard version that served
// the chunk, the decisions it produced, and the exported session state the
// caller must carry into the next push — the state is the whole session,
// so the next chunk may land on any node holding the same model.
type StreamPushResult struct {
	Model   string                `json:"model"`
	Version uint64                `json:"version"`
	Results []StreamPushDecision  `json:"results"`
	State   detector.SessionState `json:"state"`
}

// StreamPush is the owner-side half of cluster stream proxying: it applies
// one chunk of DVFS states to a streaming session materialised from the
// pushed state (nil state opens the session) and returns the decisions
// plus the re-exported state. Holding the session state on the caller
// makes the protocol stateless here — a chunk may be replayed onto a ring
// successor after this node dies and the stream continues losslessly,
// which is exactly what the cluster does on failover.
func (f *Fleet) StreamPush(model, device string, cfg detector.StreamConfig, st *detector.SessionState, states []int) (StreamPushResult, error) {
	g, err := f.resolve(model, device)
	if err != nil {
		return StreamPushResult{}, &routeError{err}
	}
	sh := g.home(device)
	if cfg.Window > f.cfg.MaxStreamWindow {
		return StreamPushResult{}, fmt.Errorf("window %d exceeds limit %d", cfg.Window, f.cfg.MaxStreamWindow)
	}
	if err := sh.det.ValidateStream(cfg); err != nil {
		return StreamPushResult{}, err
	}
	sess, err := detector.ResumeSession(sh.det, cfg, st)
	if err != nil {
		return StreamPushResult{}, err
	}
	defer sess.Close()
	if st == nil {
		sh.stats.streamSessions.Add(1)
	}
	before := sess.Stats()
	out := StreamPushResult{Model: sh.name, Version: sh.version}
	for i, state := range states {
		res, ok, err := sess.Push(state)
		if err != nil {
			return StreamPushResult{}, fmt.Errorf("sample %d: %w", i, err)
		}
		if !ok {
			continue
		}
		sh.stats.observeOne(res.Decision)
		f.recordVerdict(device, "stream", sh.name, sh.version, res, nil, time.Duration(0))
		out.Results = append(out.Results, StreamPushDecision{Offset: i, Result: res})
	}
	after := sess.Stats()
	sh.stats.streamSamples.Add(int64(after.Samples - before.Samples))
	sh.stats.streamDecisions.Add(int64(after.Decisions - before.Decisions))
	sh.stats.streamCacheHits.Add(int64(after.CacheHits - before.CacheHits))
	out.State = sess.Export()
	return out, nil
}

// PrepareDetector runs a detector through the fleet's configured prepare
// hook (identity when none is set) — the cluster applies it when
// installing models that arrive over the wire, so fleet-wide swaps get
// the same per-node overrides as admin loads.
func (f *Fleet) PrepareDetector(det *detector.Detector) (*detector.Detector, error) {
	if prep := f.cfg.PrepareDetector; prep != nil {
		return prep(det)
	}
	return det, nil
}

// ToResponse converts a raw detector result into the wire form, stamped
// with the serving shard version — the cluster's stream proxy uses it to
// emit result lines identical to a locally served stream's.
func ToResponse(model string, version uint64, r detector.Result) AssessResponse {
	return toResponse(model, version, r)
}
