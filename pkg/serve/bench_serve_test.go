package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"trusthmd/pkg/detector"
)

// The loopback harness drives ServeHTTP directly with a reusable request
// body and response sink, so the benchmarks (and TestAllocsServe) measure
// the serving path itself — decode, route, coalesce, assess, encode — not
// the cost of rebuilding net/http plumbing per iteration.

// replayBody is a resettable request body over a fixed byte slice.
type replayBody struct {
	data []byte
	off  int
}

func (b *replayBody) reset()       { b.off = 0 }
func (b *replayBody) Close() error { return nil }

func (b *replayBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

// sinkWriter is a reusable ResponseWriter that retains the last status and
// body without per-request allocation.
type sinkWriter struct {
	h    http.Header
	code int
	body []byte
}

func newSinkWriter() *sinkWriter           { return &sinkWriter{h: make(http.Header, 4)} }
func (w *sinkWriter) Header() http.Header  { return w.h }
func (w *sinkWriter) WriteHeader(code int) { w.code = code }
func (w *sinkWriter) reset() {
	w.code = 0
	w.body = w.body[:0]
	for k := range w.h {
		delete(w.h, k)
	}
}

func (w *sinkWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	w.body = append(w.body, p...)
	return len(p), nil
}

// benchServer builds a single-shard fleet tuned for the loopback path:
// MaxBatch 1 so a sequential driver never waits out the coalescing timer,
// cache disabled so every request walks the full assess path instead of
// turning the benchmark into a hashmap lookup.
func benchServer(tb testing.TB) (*Server, [][]float64) {
	tb.Helper()
	d, X := testDetector(tb)
	f, err := NewFleet(map[string]*detector.Detector{"dvfs-rf": d}, Config{
		MaxBatch:  1,
		CacheSize: -1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return NewServer(f), X
}

// BenchmarkServeAssess is the steady-state single-request loopback: one
// POST /v1/assess round trip per iteration through decode, admission,
// coalescer handoff, assessment and response encoding.
func BenchmarkServeAssess(b *testing.B) {
	srv, X := benchServer(b)
	defer srv.Close()
	payload, err := json.Marshal(AssessRequest{Device: "bench-0", Features: X[0]})
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/assess", nil)
	body := &replayBody{data: payload}
	w := newSinkWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.reset()
		req.Body = body
		w.reset()
		srv.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("status %d: %s", w.code, w.body)
		}
	}
}

// BenchmarkServeBatch is the pre-batched loopback: one POST
// /v1/assess/batch of 16 vectors per iteration, exercising the client-
// batched path (validation, admission, one AssessBatch, per-row encode).
func BenchmarkServeBatch(b *testing.B) {
	srv, X := benchServer(b)
	defer srv.Close()
	n := 16
	if n > len(X) {
		n = len(X)
	}
	payload, err := json.Marshal(BatchRequest{Batch: X[:n]})
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/assess/batch", nil)
	body := &replayBody{data: payload}
	w := newSinkWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.reset()
		req.Body = body
		w.reset()
		srv.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("status %d: %s", w.code, w.body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n), "samples/op")
}

// TestAllocsServe pins the steady-state allocation budget of the hot
// request paths. The pooled codecs, coalescer fast path and precomputed
// error bodies brought /v1/assess to ~1 alloc/op and /v1/assess/batch to
// ~0; the budgets below leave a little headroom for runtime noise (pool
// misses after a GC) while still catching any regression back toward the
// reflection-based path, which costs tens of allocations per request.
func TestAllocsServe(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc-budget test")
	}
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	srv, X := benchServer(t)
	defer srv.Close()

	run := func(path string, payload []byte) float64 {
		req := httptest.NewRequest(http.MethodPost, path, nil)
		body := &replayBody{data: payload}
		w := newSinkWriter()
		do := func() {
			body.reset()
			req.Body = body
			w.reset()
			srv.ServeHTTP(w, req)
			if w.code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", path, w.code, w.body)
			}
		}
		// Warm the pools and the coalescer before counting.
		for i := 0; i < 32; i++ {
			do()
		}
		return testing.AllocsPerRun(200, do)
	}

	assess, err := json.Marshal(AssessRequest{Device: "bench-0", Features: X[0]})
	if err != nil {
		t.Fatal(err)
	}
	if got := run("/v1/assess", assess); got > 4 {
		t.Errorf("POST /v1/assess allocates %.1f/op, budget 4", got)
	}
	batch, err := json.Marshal(BatchRequest{Batch: X[:8]})
	if err != nil {
		t.Fatal(err)
	}
	if got := run("/v1/assess/batch", batch); got > 4 {
		t.Errorf("POST /v1/assess/batch allocates %.1f/op, budget 4", got)
	}
}
