// Package gbm implements gradient-boosted decision stumps as a trusted-HMD
// base-classifier family, and registers it with the pkg/detector model
// registry under the name "gbm".
//
// The package is written as proof that the classifier contract is fully
// exported: it imports only the public packages (pkg/model, pkg/linalg,
// pkg/detector) — never internal/ — so an identical implementation compiles
// unchanged in a separate module. A test walks the imports to keep it that
// way. Out-of-tree families follow the same recipe: implement
// model.Classifier (and optionally model.ProbClassifier), add a gob
// round-trip for the trained state, and self-register in init via
// detector.Register with a prototype.
//
// Binaries enable the family with a blank import:
//
//	import _ "trusthmd/pkg/model/gbm"
//
// The learner is binary Newton-step gradient boosting on the logistic loss
// (Friedman 2001; the stump leaf values use the standard second-order
// gain/weight formulas with L2 regularisation λ=1). Stumps are weak but
// boosting makes the family strong, and its soft sigmoid posterior gives
// the ensemble's uncertainty decomposition non-trivial aleatoric mass.
package gbm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"trusthmd/pkg/detector"
	"trusthmd/pkg/linalg"
	"trusthmd/pkg/model"
)

func init() {
	detector.Register("gbm", func(p detector.Params) model.Factory {
		return func(seed int64) model.Classifier {
			return New(Config{Seed: seed})
		}
	}, &GBM{})
}

// Config parameterises a GBM member.
type Config struct {
	// Rounds is the number of boosting rounds / stumps (default 50).
	Rounds int
	// LearningRate is the shrinkage applied to every stump (default 0.3).
	LearningRate float64
	// FeatureFrac is the fraction of features each round may split on,
	// drawn per round from the member's seed (default 0.8). Values below 1
	// diversify ensemble members beyond what bootstrap resampling gives.
	FeatureFrac float64
	// Seed drives the per-round feature subsampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 50
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.3
	}
	if c.FeatureFrac <= 0 || c.FeatureFrac > 1 {
		c.FeatureFrac = 0.8
	}
	return c
}

// stump is one boosted decision stump: inputs with x[Feature] <= Threshold
// contribute Left to the logit, the rest contribute Right.
type stump struct {
	Feature     int
	Threshold   float64
	Left, Right float64
}

// GBM is a gradient-boosted-stumps binary classifier. The zero value is
// unfitted; construct with New. A fitted GBM is immutable and safe for
// concurrent Predict use.
type GBM struct {
	cfg       Config
	bias      float64
	stumps    []stump
	nFeatures int
}

// ErrNotFitted reports use before Fit.
var ErrNotFitted = errors.New("gbm: not fitted")

// New returns an untrained GBM.
func New(cfg Config) *GBM {
	return &GBM{cfg: cfg.withDefaults()}
}

// Rounds returns the number of fitted stumps (0 before Fit). Early rounds
// may stop when the training set is perfectly separated.
func (g *GBM) Rounds() int { return len(g.stumps) }

// Fit trains the boosted stumps on X and binary labels y.
func (g *GBM) Fit(X *linalg.Matrix, y []int) error {
	n, d := X.Rows(), X.Cols()
	if n == 0 || d == 0 {
		return errors.New("gbm: empty training set")
	}
	if n != len(y) {
		return fmt.Errorf("gbm: %d rows but %d labels", n, len(y))
	}
	for i, lab := range y {
		if lab != 0 && lab != 1 {
			return fmt.Errorf("gbm: label %d at sample %d; gbm is a binary family", lab, i)
		}
	}
	cfg := g.cfg.withDefaults()

	// Presort each feature once; every round's split scan walks these.
	order := make([][]int, d)
	for f := 0; f < d; f++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		col := f
		sort.Slice(idx, func(a, b int) bool { return X.At(idx[a], col) < X.At(idx[b], col) })
		order[f] = idx
	}

	// Prior logit: F starts at log(p/(1-p)) of the base rate.
	pos := 0
	for _, lab := range y {
		pos += lab
	}
	prior := clamp(float64(pos)/float64(n), 1e-6, 1-1e-6)
	bias := math.Log(prior / (1 - prior))

	F := make([]float64, n)
	for i := range F {
		F[i] = bias
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	rng := rand.New(rand.NewSource(cfg.Seed))
	nSub := int(cfg.FeatureFrac * float64(d))
	if nSub < 1 {
		nSub = 1
	}

	stumps := make([]stump, 0, cfg.Rounds)
	for t := 0; t < cfg.Rounds; t++ {
		for i := range F {
			p := sigmoid(F[i])
			grad[i] = float64(y[i]) - p
			hess[i] = p * (1 - p)
		}
		feats := rng.Perm(d)[:nSub]
		best, ok := bestStump(X, order, grad, hess, feats)
		if !ok {
			break // no split improves: training set separated or constant
		}
		best.Left *= cfg.LearningRate
		best.Right *= cfg.LearningRate
		stumps = append(stumps, best)
		for i := 0; i < n; i++ {
			if X.At(i, best.Feature) <= best.Threshold {
				F[i] += best.Left
			} else {
				F[i] += best.Right
			}
		}
	}

	g.cfg = cfg
	g.bias = bias
	g.stumps = stumps
	g.nFeatures = d
	return nil
}

// lambda is the L2 leaf regulariser of the Newton gain/weight formulas.
const lambda = 1.0

// bestStump scans the candidate features for the split with the largest
// second-order gain. ok is false when no split beats the unsplit node.
func bestStump(X *linalg.Matrix, order [][]int, grad, hess []float64, feats []int) (stump, bool) {
	var totG, totH float64
	for i := range grad {
		totG += grad[i]
		totH += hess[i]
	}
	rootGain := totG * totG / (totH + lambda)

	var best stump
	bestGain := rootGain + 1e-12
	found := false
	for _, f := range feats {
		idx := order[f]
		var gl, hl float64
		for k := 0; k < len(idx)-1; k++ {
			i := idx[k]
			gl += grad[i]
			hl += hess[i]
			xv, xn := X.At(i, f), X.At(idx[k+1], f)
			if xv == xn {
				continue // can't split between equal values
			}
			gr, hr := totG-gl, totH-hl
			gain := gl*gl/(hl+lambda) + gr*gr/(hr+lambda)
			if gain > bestGain {
				bestGain = gain
				best = stump{
					Feature:   f,
					Threshold: xv + (xn-xv)/2,
					Left:      gl / (hl + lambda),
					Right:     gr / (hr + lambda),
				}
				found = true
			}
		}
	}
	return best, found
}

// score returns the raw logit for x.
func (g *GBM) score(x []float64) float64 {
	s := g.bias
	for _, st := range g.stumps {
		if x[st.Feature] <= st.Threshold {
			s += st.Left
		} else {
			s += st.Right
		}
	}
	return s
}

// Predict returns the hard class label for one input.
func (g *GBM) Predict(x []float64) int {
	if g.nFeatures == 0 {
		panic(ErrNotFitted)
	}
	if g.score(x) > 0 {
		return 1
	}
	return 0
}

// PredictBatch writes the hard label of every row of X into out,
// satisfying model.BatchClassifier. The stump array is already one
// contiguous slab (the boosted analogue of a flattened tree), so scoring
// rows back-to-back keeps it L1-resident for the whole batch; labels are
// identical to per-row Predict calls and no memory is allocated.
func (g *GBM) PredictBatch(X *linalg.Matrix, out []int) {
	if g.nFeatures == 0 {
		panic(ErrNotFitted)
	}
	if len(out) != X.Rows() {
		panic(fmt.Sprintf("gbm: predict batch out len %d for %d rows", len(out), X.Rows()))
	}
	for i := range out {
		if g.score(X.Row(i)) > 0 {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
}

// PredictProba returns the calibrated-by-construction sigmoid posterior
// [P(benign), P(malware)], satisfying model.ProbClassifier.
func (g *GBM) PredictProba(x []float64) []float64 {
	if g.nFeatures == 0 {
		panic(ErrNotFitted)
	}
	p := sigmoid(g.score(x))
	return []float64{1 - p, p}
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// The family must satisfy the exported contract it advertises.
var (
	_ model.Classifier      = (*GBM)(nil)
	_ model.ProbClassifier  = (*GBM)(nil)
	_ model.BatchClassifier = (*GBM)(nil)
)
