package gbm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"trusthmd/pkg/dataset"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/linalg"
)

// blobs builds a two-cluster binary problem: class 0 near the origin,
// class 1 shifted by sep on every axis.
func blobs(n, d int, sep float64, seed int64) (*linalg.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := linalg.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		y[i] = i % 2
		base := 0.0
		if y[i] == 1 {
			base = sep
		}
		row := X.Row(i)
		for j := range row {
			row[j] = base + rng.NormFloat64()
		}
	}
	return X, y
}

func TestFitPredict(t *testing.T) {
	X, y := blobs(240, 5, 2.5, 1)
	g := New(Config{Seed: 7})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if g.Rounds() == 0 {
		t.Fatal("no stumps fitted")
	}
	correct := 0
	Xt, yt := blobs(120, 5, 2.5, 2)
	for i := 0; i < Xt.Rows(); i++ {
		if g.Predict(Xt.Row(i)) == yt[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(Xt.Rows()); acc < 0.95 {
		t.Fatalf("holdout accuracy %v", acc)
	}
}

func TestPredictProba(t *testing.T) {
	X, y := blobs(200, 4, 2.5, 3)
	g := New(Config{Seed: 1})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < X.Rows(); i++ {
		p := g.PredictProba(X.Row(i))
		if len(p) != 2 {
			t.Fatalf("posterior has %d classes", len(p))
		}
		if math.Abs(p[0]+p[1]-1) > 1e-12 || p[0] < 0 || p[1] < 0 {
			t.Fatalf("invalid posterior %v", p)
		}
		if pred := g.Predict(X.Row(i)); (p[1] > 0.5) != (pred == 1) {
			t.Fatalf("posterior %v disagrees with prediction %d", p, pred)
		}
	}
}

func TestFitErrors(t *testing.T) {
	g := New(Config{})
	if err := g.Fit(linalg.New(0, 0), nil); err == nil {
		t.Fatal("expected empty-set error")
	}
	X, y := blobs(10, 2, 2, 1)
	if err := g.Fit(X, y[:5]); err == nil {
		t.Fatal("expected row/label mismatch error")
	}
	y[3] = 2
	if err := g.Fit(X, y); err == nil {
		t.Fatal("expected binary-labels error")
	}
}

func TestNotFittedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unfitted Predict")
		}
	}()
	New(Config{}).Predict([]float64{1, 2})
}

func TestGobRoundTrip(t *testing.T) {
	X, y := blobs(160, 4, 2.5, 5)
	g := New(Config{Seed: 9, Rounds: 20})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		t.Fatal(err)
	}
	var back GBM
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Rounds() != g.Rounds() {
		t.Fatalf("rounds %d != %d after round trip", back.Rounds(), g.Rounds())
	}
	for i := 0; i < X.Rows(); i++ {
		x := X.Row(i)
		if g.Predict(x) != back.Predict(x) {
			t.Fatalf("prediction changed after round trip at sample %d", i)
		}
		pa, pb := g.PredictProba(x), back.PredictProba(x)
		if pa[1] != pb[1] {
			t.Fatalf("posterior changed after round trip at sample %d", i)
		}
	}
}

// TestRegisteredFamily drives the family exactly as an out-of-tree module
// would: through the public registry, training pipeline and Save/Load —
// with only exported imports in play.
func TestRegisteredFamily(t *testing.T) {
	found := false
	for _, m := range detector.Models() {
		if m == "gbm" {
			found = true
		}
	}
	if !found {
		t.Fatalf("gbm missing from registry: %v", detector.Models())
	}

	rng := rand.New(rand.NewSource(11))
	train := dataset.New(6)
	for i := 0; i < 300; i++ {
		label := i % 2
		base := 0.0
		if label == 1 {
			base = 2.5
		}
		f := make([]float64, 6)
		for j := range f {
			f[j] = base + rng.NormFloat64()
		}
		if err := train.Add(dataset.Sample{Features: f, Label: label, App: fmt.Sprintf("app%d", i%4)}); err != nil {
			t.Fatal(err)
		}
	}

	d, err := detector.New(train, detector.WithModel("gbm"),
		detector.WithEnsembleSize(9), detector.WithSeed(4), detector.WithDecomposition(true))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := detector.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Model() != "gbm" || back.Members() != d.Members() {
		t.Fatalf("loaded %s/%d, want gbm/%d", back.Model(), back.Members(), d.Members())
	}

	correct, aleatoric := 0, false
	for i := 0; i < train.Len(); i++ {
		smp := train.At(i)
		r1, err := d.Assess(smp.Features)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := back.Assess(smp.Features)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Prediction != r2.Prediction || r1.Entropy != r2.Entropy || r1.Decision != r2.Decision {
			t.Fatalf("sample %d: loaded detector diverged: %+v vs %+v", i, r1, r2)
		}
		if r1.Prediction == smp.Label {
			correct++
		}
		// Soft sigmoid members must register aleatoric mass somewhere.
		if r1.Decomposition != nil && r1.Decomposition.Aleatoric > 1e-6 {
			aleatoric = true
		}
	}
	if acc := float64(correct) / float64(train.Len()); acc < 0.95 {
		t.Fatalf("training accuracy %v", acc)
	}
	if !aleatoric {
		t.Fatal("no sample showed aleatoric uncertainty despite soft members")
	}
}

// TestPredictBatchMatchesPredict pins the model.BatchClassifier contract:
// batched labels are exactly the per-row Predict labels, with no heap
// allocations (the stump slab is already flat).
func TestPredictBatchMatchesPredict(t *testing.T) {
	X, y := blobs(180, 4, 1.2, 3)
	g := New(Config{Seed: 5})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	out := make([]int, X.Rows())
	g.PredictBatch(X, out)
	for i := 0; i < X.Rows(); i++ {
		if want := g.Predict(X.Row(i)); out[i] != want {
			t.Fatalf("row %d: PredictBatch %d, Predict %d", i, out[i], want)
		}
	}
	if allocs := testing.AllocsPerRun(10, func() { g.PredictBatch(X, out) }); allocs > 0 {
		t.Fatalf("PredictBatch allocates %.1f times per batch, want 0", allocs)
	}
	var unfitted GBM
	defer func() {
		if recover() == nil {
			t.Fatal("unfitted PredictBatch should panic")
		}
	}()
	unfitted.PredictBatch(X, out)
}
