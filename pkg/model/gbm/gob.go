package gbm

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// gbmGob is the exported wire form of a trained GBM. The concrete *GBM
// type itself is gob-registered by the detector.Register prototype in this
// package's init, which is what lets saved ensembles decode members behind
// the model.Classifier interface.
type gbmGob struct {
	Cfg       Config
	Bias      float64
	Stumps    []stump
	NFeatures int
}

// GobEncode implements gob.GobEncoder for trained-pipeline serialization.
func (g *GBM) GobEncode() ([]byte, error) {
	if g.nFeatures == 0 {
		return nil, ErrNotFitted
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(gbmGob{
		Cfg: g.cfg, Bias: g.bias, Stumps: g.stumps, NFeatures: g.nFeatures,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (g *GBM) GobDecode(b []byte) error {
	var w gbmGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	if w.NFeatures <= 0 {
		return fmt.Errorf("gbm: corrupt gob: %d features", w.NFeatures)
	}
	for i, st := range w.Stumps {
		if st.Feature < 0 || st.Feature >= w.NFeatures {
			return fmt.Errorf("gbm: corrupt gob: stump %d splits feature %d of %d", i, st.Feature, w.NFeatures)
		}
	}
	g.cfg, g.bias, g.stumps, g.nFeatures = w.Cfg, w.Bias, w.Stumps, w.NFeatures
	return nil
}
