package model_test

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// The exported-contract packages: everything a client (or an out-of-tree
// classifier family) needs must be expressible through these, so their
// exported signatures may not mention any trusthmd/internal type.
var auditedPackages = []string{
	"trusthmd/pkg/linalg",
	"trusthmd/pkg/model",
	"trusthmd/pkg/model/gbm",
	"trusthmd/pkg/dataset",
	"trusthmd/pkg/detector",
	"trusthmd/pkg/serve",
}

// contractOnlyPackages must not depend on trusthmd/internal at all, even
// transitively — they are the pure contract surface.
var contractOnlyPackages = []string{
	"trusthmd/pkg/linalg",
	"trusthmd/pkg/model",
	"trusthmd/pkg/dataset",
}

// outOfTreePackages may not *directly* import trusthmd/internal — the same
// constraint the compiler enforces on modules outside this one, which is
// what makes pkg/model/gbm a faithful stand-in for an external family.
// (Its exported-package imports still pull internal code transitively,
// exactly as they would for a real external module; Go's internal rule
// restricts naming, not linking.)
var outOfTreePackages = []string{
	"trusthmd/pkg/model/gbm",
}

// TestExportedAPIReferencesNoInternalTypes typechecks the public packages
// and walks every exported declaration — constants, variables, functions,
// types, their exported methods and exported struct fields — rejecting any
// named type that lives under trusthmd/internal. This is the machine check
// behind the registry's promise: external modules can implement and
// register classifier families using exported packages alone.
func TestExportedAPIReferencesNoInternalTypes(t *testing.T) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	for _, path := range auditedPackages {
		pkg, err := imp.Import(path)
		if err != nil {
			t.Fatalf("typecheck %s: %v", path, err)
		}
		w := &apiWalker{origin: path, seen: map[types.Type]bool{}}
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if !obj.Exported() {
				continue
			}
			w.at = fmt.Sprintf("%s.%s", path, name)
			w.check(obj.Type())
			if tn, ok := obj.(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					for i := 0; i < named.NumMethods(); i++ {
						m := named.Method(i)
						if !m.Exported() {
							continue
						}
						w.at = fmt.Sprintf("%s.%s.%s", path, name, m.Name())
						w.check(m.Type())
					}
				}
			}
		}
		for _, v := range w.violations {
			t.Errorf("%s", v)
		}
	}
}

// TestContractPackagesImportNoInternal pins the import graph itself: the
// packages an external family builds against depend on no internal code,
// directly or otherwise.
func TestContractPackagesImportNoInternal(t *testing.T) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	for _, path := range contractOnlyPackages {
		pkg, err := imp.Import(path)
		if err != nil {
			t.Fatalf("typecheck %s: %v", path, err)
		}
		seen := map[string]bool{}
		var visit func(p *types.Package)
		visit = func(p *types.Package) {
			if seen[p.Path()] {
				return
			}
			seen[p.Path()] = true
			if strings.HasPrefix(p.Path(), "trusthmd/internal") {
				t.Errorf("%s transitively imports %s", path, p.Path())
				return
			}
			for _, dep := range p.Imports() {
				if strings.HasPrefix(dep.Path(), "trusthmd/") {
					visit(dep)
				}
			}
		}
		visit(pkg)
	}
	for _, path := range outOfTreePackages {
		pkg, err := imp.Import(path)
		if err != nil {
			t.Fatalf("typecheck %s: %v", path, err)
		}
		for _, dep := range pkg.Imports() {
			if strings.HasPrefix(dep.Path(), "trusthmd/internal") {
				t.Errorf("%s directly imports %s; out-of-tree families cannot", path, dep.Path())
			}
		}
	}
}

// apiWalker recursively visits the types reachable from one exported
// declaration. It descends into the structure of anonymous types and of
// exported named types declared in the audited package set; a named type
// from any other package is checked by package path and treated as opaque
// (clients cannot reach further without importing it themselves).
type apiWalker struct {
	origin     string
	at         string
	seen       map[types.Type]bool
	violations []string
}

func (w *apiWalker) check(t types.Type) {
	if t == nil || w.seen[t] {
		return
	}
	w.seen[t] = true
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if p := obj.Pkg(); p != nil {
			if strings.HasPrefix(p.Path(), "trusthmd/internal") {
				w.violations = append(w.violations,
					fmt.Sprintf("%s references internal type %s.%s", w.at, p.Path(), obj.Name()))
				return
			}
			if !w.audited(p.Path()) || !obj.Exported() {
				return // opaque to clients of the audited packages
			}
		}
		w.check(tt.Underlying())
	case *types.Alias:
		w.check(types.Unalias(tt))
	case *types.Pointer:
		w.check(tt.Elem())
	case *types.Slice:
		w.check(tt.Elem())
	case *types.Array:
		w.check(tt.Elem())
	case *types.Map:
		w.check(tt.Key())
		w.check(tt.Elem())
	case *types.Chan:
		w.check(tt.Elem())
	case *types.Signature:
		w.check(tt.Params())
		w.check(tt.Results())
	case *types.Tuple:
		for i := 0; i < tt.Len(); i++ {
			w.check(tt.At(i).Type())
		}
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if f := tt.Field(i); f.Exported() {
				w.check(f.Type())
			}
		}
	case *types.Interface:
		for i := 0; i < tt.NumMethods(); i++ {
			if m := tt.Method(i); m.Exported() {
				w.check(m.Type())
			}
		}
	}
}

func (w *apiWalker) audited(path string) bool {
	for _, p := range auditedPackages {
		if p == path {
			return true
		}
	}
	return false
}
