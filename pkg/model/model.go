// Package model exports the base-classifier contract of the trusted HMD
// ensemble: the interfaces a classifier family must satisfy, the Factory
// hook the ensemble trains through, and the tuning Params the model
// registry hands to family builders.
//
// This is the plug-in boundary of the system. The bagging framework
// (internal/ensemble), the training pipeline (internal/hmd) and the public
// pkg/detector registry all speak these types, so a family implemented in a
// separate module — importing only pkg/model, pkg/linalg and pkg/detector —
// participates on equal footing with the built-ins:
//
//	detector.Register("stump", func(p model.Params) model.Factory {
//	    return func(seed int64) model.Classifier { return NewStump(seed) }
//	}, &Stump{})
//
// # Serialization contract
//
// Trained ensembles are persisted with encoding/gob (detector.Save /
// detector.Load), and members are encoded behind the Classifier interface.
// A family that should survive a save/load round trip must therefore:
//
//   - encode and decode every field needed for Predict — either via
//     exported fields or, for unexported state, by implementing
//     gob.GobEncoder and gob.GobDecoder on the concrete type;
//   - register its concrete type with the gob stream, most conveniently by
//     passing prototype values to detector.Register (shown above), which
//     gob-registers them;
//   - keep the registered concrete type's package path and name stable
//     across versions: gob identifies interface implementations by that
//     name, so moving or renaming the type orphans previously saved blobs.
//
// A decoded member must be ready to Predict; it is never re-Fit (retraining
// goes back through the registry with a fresh Factory).
package model

import "trusthmd/pkg/linalg"

// Classifier is the minimal contract a base model must satisfy to join the
// ensemble.
type Classifier interface {
	// Fit trains on X (one sample per row) and integer class labels y.
	// Implementations must treat X as read-only: the ensemble shares row
	// storage between members and batches.
	Fit(X *linalg.Matrix, y []int) error
	// Predict returns the hard class label for one input.
	Predict(x []float64) int
}

// ProbClassifier is optionally implemented by base models that can emit a
// class-probability distribution. The ensemble then supports averaged
// posteriors (the paper's Eq. 3) and a non-trivial aleatoric/epistemic
// uncertainty split; hard-vote-only members degrade gracefully to one-hot
// distributions.
type ProbClassifier interface {
	Classifier
	// PredictProba returns P(class | x); entries are non-negative and sum
	// to 1 over the classes seen at fit time.
	PredictProba(x []float64) []float64
}

// BatchClassifier is optionally implemented by base models that can
// predict a whole batch in one call. The ensemble's batched assessment
// path uses it to keep one member's model state (a flattened tree slab,
// a stump array) cache-hot across every row of the batch instead of
// re-touching all members per sample. PredictBatch must produce exactly
// the labels that per-row Predict calls would.
type BatchClassifier interface {
	Classifier
	// PredictBatch writes the hard class label of every row of X into out,
	// which has length X.Rows(). Implementations must treat X as read-only
	// and must not retain out.
	PredictBatch(X *linalg.Matrix, out []int)
}

// ColsBatchClassifier is optionally implemented by batch classifiers that
// can additionally exploit a feature-major (transposed) copy of the batch.
// The vectorized tree kernel loads one feature across 32 samples at a
// time, which is contiguous only in column-major storage; the caller
// computes the transpose once per batch and shares it across every member
// that wants it.
type ColsBatchClassifier interface {
	BatchClassifier
	// WantsCols reports whether PredictBatchCols would actually use XT on
	// this host (vector kernel dispatched, model shape eligible). Callers
	// may skip computing the transpose when no member wants it.
	WantsCols() bool
	// PredictBatchCols is PredictBatch with XT = transpose of X alongside.
	// Implementations must produce exactly PredictBatch's labels and fall
	// back to it when XT is nil or mis-shaped.
	PredictBatchCols(X, XT *linalg.Matrix, out []int)
}

// Factory constructs one untrained ensemble member from a seed. The
// ensemble calls it once per member with that member's own seed;
// deterministic families may ignore the seed (bootstrap resampling still
// diversifies them).
type Factory = func(seed int64) Classifier

// Params carries the model-specific tuning knobs a registry builder may
// consult. Families ignore knobs that do not apply to them, so one Params
// value configures a heterogeneous set of family builders.
type Params struct {
	// SVMMaxObjective is the non-convergence ceiling for hinge-loss
	// training (0 disables the check).
	SVMMaxObjective float64
	// TreeMaxDepth / TreeMinLeaf bound decision-tree members (0 keeps the
	// defaults: unlimited depth, leaf size 1).
	TreeMaxDepth int
	TreeMinLeaf  int
}
