package detector

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// v2Expectation mirrors the fixture JSON frozen alongside the blobs: the
// assessments the saving binary produced at freeze time.
type v2Expectation struct {
	Model    string      `json:"model"`
	Inputs   [][]float64 `json:"inputs"`
	Preds    []int       `json:"preds"`
	Entropy  []float64   `json:"entropy"`
	Decision []int       `json:"decision"`
	Members  int         `json:"members"`
	InputDim int         `json:"input_dim"`
}

// TestLoadFrozenV2Blobs is the wire-compatibility contract of the exported
// classifier boundary: the serialVersion-2 blobs in testdata were written
// by the pre-refactor build (when the classifier contract and matrix type
// still lived in internal packages), and they must keep loading — with
// bit-identical assessments — for as long as serialVersion 2 is supported.
// The fixtures cover the three wire shapes: tree members (rf), a
// matrix-carrying member plus a PCA stage (knn), and weight-vector members
// with per-member feature subspaces (lr).
//
// If this test fails after a refactor, a gob-visible name changed (a
// registered concrete member type moved packages, or a GobEncoder payload
// changed shape). That breaks every model file in every deployment: fix the
// refactor, do not regenerate the fixtures.
func TestLoadFrozenV2Blobs(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "detector_v2_expect.json"))
	if err != nil {
		t.Fatal(err)
	}
	var expects []v2Expectation
	if err := json.Unmarshal(raw, &expects); err != nil {
		t.Fatal(err)
	}
	if len(expects) == 0 {
		t.Fatal("no frozen expectations")
	}
	for _, e := range expects {
		t.Run(e.Model, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", "detector_v2_"+e.Model+".gob"))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			d, err := Load(f)
			if err != nil {
				t.Fatalf("frozen v2 blob no longer loads: %v", err)
			}
			if d.Model() != e.Model {
				t.Fatalf("loaded model %q, frozen as %q", d.Model(), e.Model)
			}
			if d.Members() != e.Members || d.InputDim() != e.InputDim {
				t.Fatalf("loaded %d members/%d features, frozen %d/%d",
					d.Members(), d.InputDim(), e.Members, e.InputDim)
			}
			for i, x := range e.Inputs {
				r, err := d.Assess(x)
				if err != nil {
					t.Fatalf("input %d: %v", i, err)
				}
				if r.Prediction != e.Preds[i] {
					t.Fatalf("input %d: prediction %d, frozen %d", i, r.Prediction, e.Preds[i])
				}
				if math.Abs(r.Entropy-e.Entropy[i]) > 1e-12 {
					t.Fatalf("input %d: entropy %v, frozen %v", i, r.Entropy, e.Entropy[i])
				}
				if int(r.Decision) != e.Decision[i] {
					t.Fatalf("input %d: decision %d, frozen %d", i, int(r.Decision), e.Decision[i])
				}
			}
		})
	}
}
