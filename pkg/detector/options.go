package detector

import (
	"fmt"

	"trusthmd/internal/ensemble"
)

// DefaultThreshold is the paper's DVFS operating point: predictions whose
// vote entropy exceeds 0.40 bits are rejected.
const DefaultThreshold = 0.40

// config is the resolved option set of a Detector.
type config struct {
	model       string
	m           int
	pca         int
	seed        int64
	threshold   float64
	workers     int
	diversity   ensemble.Diversity
	maxSamples  float64
	maxFeatures float64
	decompose   bool
	params      Params
	err         error // first option error, surfaced by resolve
}

// Option configures a Detector at construction time.
type Option func(*config)

func defaults() config {
	return config{model: "rf", m: 25, threshold: DefaultThreshold}
}

func resolve(opts []Option) (config, error) {
	cfg := defaults()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return config{}, cfg.err
	}
	if err := cfg.validate(); err != nil {
		return config{}, err
	}
	return cfg, nil
}

func (c *config) validate() error {
	switch {
	case c.m < 1:
		return fmt.Errorf("detector: ensemble size %d must be >=1", c.m)
	case c.pca < 0:
		return fmt.Errorf("detector: pca components %d must be >=0", c.pca)
	case c.threshold < 0:
		return fmt.Errorf("detector: negative threshold %v", c.threshold)
	case c.maxSamples < 0 || c.maxSamples > 1:
		return fmt.Errorf("detector: max samples %v outside [0,1]", c.maxSamples)
	case c.maxFeatures < 0 || c.maxFeatures > 1:
		return fmt.Errorf("detector: max features %v outside [0,1]", c.maxFeatures)
	}
	return nil
}

// WithModel selects the base-classifier family by registry name (built-ins:
// "rf", "lr", "svm", "nb", "knn"; default "rf").
func WithModel(name string) Option {
	return func(c *config) { c.model = name }
}

// WithEnsembleSize sets the number of bagged members (default 25, the
// paper's operating point).
func WithEnsembleSize(m int) Option {
	return func(c *config) { c.m = m }
}

// WithPCA reduces inputs to k principal components before the ensemble;
// k = 0 (the default) skips PCA.
func WithPCA(k int) Option {
	return func(c *config) { c.pca = k }
}

// WithThreshold sets the entropy rejection threshold in bits (default
// DefaultThreshold).
func WithThreshold(t float64) Option {
	return func(c *config) { c.threshold = t }
}

// WithSeed fixes all randomness in training for reproducibility.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithWorkers caps parallelism for both member training and batched
// assessment; 0 (the default) means GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithDiversity selects how ensemble members are diversified: "bootstrap"
// (bagging, the paper's method and the default) or "random-init"
// (deep-ensembles style: full data, different seeds).
func WithDiversity(mode string) Option {
	return func(c *config) {
		switch mode {
		case "", "bootstrap":
			c.diversity = ensemble.Bootstrap
		case "random-init":
			c.diversity = ensemble.RandomInit
		default:
			c.err = fmt.Errorf("detector: unknown diversity %q (want bootstrap or random-init)", mode)
		}
	}
}

// WithMaxSamples sets the bootstrap replicate size as a fraction of the
// training set (0 = full size).
func WithMaxSamples(f float64) Option {
	return func(c *config) { c.maxSamples = f }
}

// WithMaxFeatures sets the per-member random feature-subspace fraction
// (0 = all features). The linear and instance-based families need this to
// diversify members that would otherwise be nearly identical.
func WithMaxFeatures(f float64) Option {
	return func(c *config) { c.maxFeatures = f }
}

// WithDecomposition enables the aleatoric/epistemic uncertainty split on
// every Result (computed in the same pass over member outputs).
func WithDecomposition(on bool) Option {
	return func(c *config) { c.decompose = on }
}

// WithSVMMaxObjective sets the convergence ceiling for the "svm" family:
// training fails with a non-convergence error when the final hinge
// objective stays above it (0 disables the check).
func WithSVMMaxObjective(obj float64) Option {
	return func(c *config) { c.params.SVMMaxObjective = obj }
}

// WithTreeLimits bounds the "rf" family's trees: maxDepth 0 means
// unlimited, minLeaf < 1 means 1. Leaf-limited trees emit soft posteriors,
// which the uncertainty decomposition needs to observe aleatoric mass.
func WithTreeLimits(maxDepth, minLeaf int) Option {
	return func(c *config) {
		c.params.TreeMaxDepth = maxDepth
		c.params.TreeMinLeaf = minLeaf
	}
}
