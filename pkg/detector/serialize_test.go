package detector

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"trusthmd/internal/ensemble"
	"trusthmd/internal/hmd"
)

// TestSaveLoadRoundTrip trains each built-in family that converges on the
// DVFS data, serializes it, loads it back and requires identical decisions
// on the whole test split — the train-once-serve-many contract.
func TestSaveLoadRoundTrip(t *testing.T) {
	s := dvfsSplits(t)
	cases := map[string][]Option{
		"rf":      {WithModel("rf"), WithPCA(6)},
		"lr":      {WithModel("lr"), WithMaxFeatures(0.45)},
		"svm":     {WithModel("svm"), WithSVMMaxObjective(0.3)},
		"nb":      {WithModel("nb"), WithMaxFeatures(0.45)},
		"knn":     {WithModel("knn"), WithMaxFeatures(0.45)},
		"rf-deco": {WithModel("rf"), WithTreeLimits(0, 10), WithDecomposition(true)},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			d, err := New(s.Train, append([]Option{WithEnsembleSize(7), WithSeed(6), WithThreshold(0.35)}, opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := d.Save(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if back.Model() != d.Model() || back.Threshold() != d.Threshold() || back.Members() != d.Members() {
				t.Fatalf("metadata lost: %s/%v/%d vs %s/%v/%d",
					back.Model(), back.Threshold(), back.Members(),
					d.Model(), d.Threshold(), d.Members())
			}
			want, err := d.AssessDataset(s.Test)
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.AssessDataset(s.Test)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if want[i].Prediction != got[i].Prediction ||
					want[i].Entropy != got[i].Entropy ||
					want[i].Decision != got[i].Decision {
					t.Fatalf("sample %d: loaded detector diverged: %+v vs %+v", i, got[i], want[i])
				}
				if want[i].Decomposition != nil &&
					(got[i].Decomposition == nil || *got[i].Decomposition != *want[i].Decomposition) {
					t.Fatalf("sample %d: decomposition lost in round trip", i)
				}
			}
		})
	}
}

// TestRoundTripPreservesConfig requires Save→Load→Save to carry the full
// training-time configuration: before version 2 a loaded detector's PCA,
// seed and subsample fractions silently reverted to defaults, so a second
// Save (or WithOptions) misreported the pipeline.
func TestRoundTripPreservesConfig(t *testing.T) {
	s := dvfsSplits(t)
	d, err := New(s.Train,
		WithModel("rf"), WithEnsembleSize(7), WithSeed(42), WithPCA(6),
		WithMaxSamples(0.8), WithMaxFeatures(0.5), WithThreshold(0.33), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Info(), d.Info(); got != want {
		t.Fatalf("config lost in round trip:\n got %+v\nwant %+v", got, want)
	}
	// A second round trip must be a fixed point.
	var buf2 bytes.Buffer
	if err := back.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	again, err := Load(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := again.Info(), d.Info(); got != want {
		t.Fatalf("config drifted on second round trip:\n got %+v\nwant %+v", got, want)
	}
	// WithOptions on a loaded detector must keep reporting the trained
	// pipeline, not defaults.
	tuned, err := back.WithOptions(WithThreshold(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if info := tuned.Info(); info.PCA != 6 || info.Seed != 42 || info.MaxSamples != 0.8 || info.MaxFeatures != 0.5 {
		t.Fatalf("WithOptions on loaded detector misreports training config: %+v", info)
	}
}

// savedDetectorV1 is the version-1 wire struct, frozen here so the
// back-compat path keeps being exercised after the format moves on.
type savedDetectorV1 struct {
	Version   int
	Model     string
	Threshold float64
	Workers   int
	Decompose bool
	Diversity ensemble.Diversity
	Params    Params
	Pipeline  *hmd.Pipeline
}

// TestLoadVersion1 writes a version-1 stream (no training-time config
// fields) and requires Load to accept it with identical decisions.
func TestLoadVersion1(t *testing.T) {
	d, s := trainRF(t, WithPCA(6))
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(savedDetectorV1{
		Version:   1,
		Model:     d.Model(),
		Threshold: d.Threshold(),
		Diversity: d.cfg.diversity,
		Params:    d.cfg.params,
		Pipeline:  d.pipe,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("version-1 blob no longer loads: %v", err)
	}
	if back.Model() != d.Model() || back.Threshold() != d.Threshold() || back.Members() != d.Members() {
		t.Fatalf("version-1 metadata lost: %+v", back.Info())
	}
	// Version 1 never carried the training-time config; the loaded Info
	// reports defaults for those fields, but inference is identical.
	if back.Info().PCA != 0 {
		t.Fatalf("version-1 load invented a PCA config: %+v", back.Info())
	}
	want, err := d.AssessDataset(s.Test)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.AssessDataset(s.Test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].Prediction != got[i].Prediction || want[i].Entropy != got[i].Entropy {
			t.Fatalf("sample %d: version-1 detector diverged", i)
		}
	}
}

func TestLoadRejectsFutureVersion(t *testing.T) {
	d, _ := trainRF(t)
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(savedDetector{
		Version:  serialVersion + 1,
		Model:    d.Model(),
		Pipeline: d.pipe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("expected unsupported-version error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a detector"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSavedDetectorIsRetrainable(t *testing.T) {
	// A loaded detector carries its model name, so the registry can train
	// successors (the forensic feedback loop keeps working after a restart).
	d, s := trainRF(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRetrainer(s.Train, 1, WithModel(back.Model()), WithEnsembleSize(5), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	smp := s.Unknown.At(0)
	if err := r.ReportRejection(smp.Features, smp.Label, smp.App); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retrain(); err != nil {
		t.Fatal(err)
	}
}

// TestSaveFileAtomic pins the crash-safety contract: SaveFile never
// leaves a torn model at the destination path, leaves no temp debris
// behind, and atomically replaces an existing model.
func TestSaveFileAtomic(t *testing.T) {
	s := dvfsSplits(t)
	d, err := New(s.Train, WithEnsembleSize(5), WithSeed(11), WithThreshold(0.35))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if back.Members() != d.Members() || back.Threshold() != d.Threshold() {
		t.Fatalf("SaveFile round trip lost config")
	}

	// Overwrite with a different detector: the path flips atomically.
	d2, err := New(s.Train, WithEnsembleSize(7), WithSeed(12), WithThreshold(0.35))
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if back2.Members() != 7 {
		t.Fatalf("overwrite served stale model: %d members", back2.Members())
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.gob" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("temp debris left behind: %v", names)
	}

	// Failure path: a missing directory errors and creates nothing.
	if err := d.SaveFile(filepath.Join(dir, "no-such-dir", "m.gob")); err == nil {
		t.Fatal("expected error saving into a missing directory")
	}
}
