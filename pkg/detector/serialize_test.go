package detector

import (
	"bytes"
	"testing"
)

// TestSaveLoadRoundTrip trains each built-in family that converges on the
// DVFS data, serializes it, loads it back and requires identical decisions
// on the whole test split — the train-once-serve-many contract.
func TestSaveLoadRoundTrip(t *testing.T) {
	s := dvfsSplits(t)
	cases := map[string][]Option{
		"rf":      {WithModel("rf"), WithPCA(6)},
		"lr":      {WithModel("lr"), WithMaxFeatures(0.45)},
		"svm":     {WithModel("svm"), WithSVMMaxObjective(0.3)},
		"nb":      {WithModel("nb"), WithMaxFeatures(0.45)},
		"knn":     {WithModel("knn"), WithMaxFeatures(0.45)},
		"rf-deco": {WithModel("rf"), WithTreeLimits(0, 10), WithDecomposition(true)},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			d, err := New(s.Train, append([]Option{WithEnsembleSize(7), WithSeed(6), WithThreshold(0.35)}, opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := d.Save(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if back.Model() != d.Model() || back.Threshold() != d.Threshold() || back.Members() != d.Members() {
				t.Fatalf("metadata lost: %s/%v/%d vs %s/%v/%d",
					back.Model(), back.Threshold(), back.Members(),
					d.Model(), d.Threshold(), d.Members())
			}
			want, err := d.AssessDataset(s.Test)
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.AssessDataset(s.Test)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if want[i].Prediction != got[i].Prediction ||
					want[i].Entropy != got[i].Entropy ||
					want[i].Decision != got[i].Decision {
					t.Fatalf("sample %d: loaded detector diverged: %+v vs %+v", i, got[i], want[i])
				}
				if want[i].Decomposition != nil &&
					(got[i].Decomposition == nil || *got[i].Decomposition != *want[i].Decomposition) {
					t.Fatalf("sample %d: decomposition lost in round trip", i)
				}
			}
		})
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a detector"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSavedDetectorIsRetrainable(t *testing.T) {
	// A loaded detector carries its model name, so the registry can train
	// successors (the forensic feedback loop keeps working after a restart).
	d, s := trainRF(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRetrainer(s.Train, 1, WithModel(back.Model()), WithEnsembleSize(5), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	smp := s.Unknown.At(0)
	if err := r.ReportRejection(smp.Features, smp.Label, smp.App); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retrain(); err != nil {
		t.Fatal(err)
	}
}
