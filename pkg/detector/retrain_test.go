package detector

import (
	"testing"

	"trusthmd/internal/gen"
	"trusthmd/pkg/dataset"
	"trusthmd/pkg/linalg"
)

func TestNewRetrainerValidation(t *testing.T) {
	if _, err := NewRetrainer(nil, 5); err == nil {
		t.Fatal("expected nil training set error")
	}
	if _, err := NewRetrainer(dataset.New(3), 5); err == nil {
		t.Fatal("expected empty training set error")
	}
	s := dvfsSplits(t)
	if _, err := NewRetrainer(s.Train, 0); err == nil {
		t.Fatal("expected quorum error")
	}
	if _, err := NewRetrainer(s.Train, 5, WithModel("bogus")); err == nil {
		t.Fatal("expected unknown model error")
	}
}

func TestRetrainerLifecycle(t *testing.T) {
	s := dvfsSplits(t)
	r, err := NewRetrainer(s.Train, 10, WithModel("rf"), WithEnsembleSize(15), WithSeed(30))
	if err != nil {
		t.Fatal(err)
	}
	if r.ShouldRetrain() || r.Pending() != 0 || r.Rounds() != 0 {
		t.Fatal("fresh retrainer state")
	}
	if _, err := r.Retrain(); err == nil {
		t.Fatal("expected no-forensics error")
	}
	baseSize := r.TrainingSize()

	for i := 0; i < 10; i++ {
		smp := s.Unknown.At(i)
		if err := r.ReportRejection(smp.Features, smp.Label, smp.App); err != nil {
			t.Fatal(err)
		}
	}
	if !r.ShouldRetrain() {
		t.Fatal("quorum reached but ShouldRetrain false")
	}
	d, err := r.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("nil detector")
	}
	if r.Pending() != 0 || r.Rounds() != 1 {
		t.Fatalf("post-retrain state: pending %d rounds %d", r.Pending(), r.Rounds())
	}
	if r.TrainingSize() != baseSize+10 {
		t.Fatalf("training size %d, want %d", r.TrainingSize(), baseSize+10)
	}
}

func TestRetrainerReportValidation(t *testing.T) {
	s := dvfsSplits(t)
	r, err := NewRetrainer(s.Train, 5, WithModel("rf"), WithEnsembleSize(5), WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ReportRejection([]float64{1, 2}, 1, "x"); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := r.ReportRejection(s.Unknown.At(0).Features, 7, "x"); err == nil {
		t.Fatal("expected label error")
	}
}

// TestRetrainingAbsorbsZeroDay is the paper's feedback-loop claim end to
// end: a zero-day family with high entropy becomes classifiable (low
// entropy, correct label) after its forensics are folded into training.
func TestRetrainingAbsorbsZeroDay(t *testing.T) {
	splits, err := gen.DVFSWithSizes(32, gen.Sizes{Train: 1400, Test: 280, Unknown: 600})
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{WithModel("rf"), WithEnsembleSize(25), WithSeed(32)}
	before, err := New(splits.Train, opts...)
	if err != nil {
		t.Fatal(err)
	}

	// Split the unknown bucket's cryptojack family: half becomes analyst
	// forensics, half stays held out.
	var forensic, heldOut []dataset.Sample
	for i := 0; i < splits.Unknown.Len(); i++ {
		smp := splits.Unknown.At(i)
		if smp.App != "cryptojack_v2" {
			continue
		}
		// 3:1 forensic-to-held-out split: deployments accumulate forensics
		// over time, while evaluation needs only a modest held-out set.
		if len(forensic) < 3*(len(heldOut)+1) {
			forensic = append(forensic, smp)
		} else {
			heldOut = append(heldOut, smp)
		}
	}
	if len(forensic) < 10 || len(heldOut) < 10 {
		t.Fatalf("not enough cryptojack samples: %d/%d", len(forensic), len(heldOut))
	}

	entropyAndAcc := func(d *Detector) (float64, float64) {
		var hs []float64
		correct := 0
		for _, smp := range heldOut {
			r, err := d.Assess(smp.Features)
			if err != nil {
				t.Fatal(err)
			}
			hs = append(hs, r.Entropy)
			if r.Prediction == smp.Label {
				correct++
			}
		}
		return linalg.Mean(hs), float64(correct) / float64(len(heldOut))
	}

	hBefore, _ := entropyAndAcc(before)

	r, err := NewRetrainer(splits.Train, len(forensic), opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range forensic {
		if err := r.ReportRejection(smp.Features, smp.Label, smp.App); err != nil {
			t.Fatal(err)
		}
	}
	after, err := r.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	hAfter, accAfter := entropyAndAcc(after)

	if hBefore < 0.3 {
		t.Fatalf("zero-day entropy before retraining %.3f should be high", hBefore)
	}
	if hAfter > 0.6*hBefore {
		t.Fatalf("retraining should substantially cut the family's entropy: %.3f -> %.3f", hBefore, hAfter)
	}
	if accAfter < 0.8 {
		t.Fatalf("retrained accuracy on the absorbed family %.3f", accAfter)
	}
	// The rest of the unknown bucket must still be flagged: retraining one
	// family must not silence the detector on others.
	var otherHs []float64
	for i := 0; i < splits.Unknown.Len(); i++ {
		smp := splits.Unknown.At(i)
		if smp.App == "cryptojack_v2" {
			continue
		}
		r, err := after.Assess(smp.Features)
		if err != nil {
			t.Fatal(err)
		}
		otherHs = append(otherHs, r.Entropy)
	}
	if linalg.Mean(otherHs) < 0.25 {
		t.Fatalf("other unknown families lost their entropy: %.3f", linalg.Mean(otherHs))
	}
}

// TestReportForensicsBatch covers the bulk forensic path a retraining
// controller drives from stored verdicts: the batch lands atomically and
// a malformed sample poisons nothing.
func TestReportForensicsBatch(t *testing.T) {
	s := dvfsSplits(t)
	r, err := NewRetrainer(s.Train, 5, WithModel("rf"), WithEnsembleSize(5), WithSeed(33))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Forensic, 0, 6)
	for i := 0; i < 6; i++ {
		smp := s.Unknown.At(i)
		batch = append(batch, Forensic{Features: smp.Features, Label: smp.Label, App: "drift:edge-7"})
	}
	if err := r.ReportForensics(batch); err != nil {
		t.Fatal(err)
	}
	if r.Pending() != 6 || !r.ShouldRetrain() {
		t.Fatalf("pending %d after batch of 6", r.Pending())
	}

	// All-or-nothing: a bad sample mid-batch leaves pending untouched.
	bad := []Forensic{
		{Features: s.Unknown.At(6).Features, Label: 1, App: "ok"},
		{Features: []float64{1, 2}, Label: 1, App: "wrong-dim"},
	}
	if err := r.ReportForensics(bad); err == nil {
		t.Fatal("expected dimension error from malformed batch")
	}
	if r.Pending() != 6 {
		t.Fatalf("failed batch mutated pending: %d", r.Pending())
	}

	if _, err := r.Retrain(); err != nil {
		t.Fatal(err)
	}
	if r.Pending() != 0 || r.Rounds() != 1 {
		t.Fatalf("post-retrain state: pending %d rounds %d", r.Pending(), r.Rounds())
	}
}
