package detector

import (
	"errors"
	"fmt"
	"sync"
)

// ErrSessionClosed is returned by Session.Push after Close.
var ErrSessionClosed = errors.New("detector: session closed")

// Session is the transport-agnostic streaming-assessment contract: a thin
// lifecycle wrapper over Online that serving layers (HTTP NDJSON, gRPC,
// message queues) can hold per connection. It adds what a transport needs
// and Online deliberately omits: an explicit Close with idempotent
// semantics, a snapshot of cumulative session statistics, and internal
// locking so a transport may Push from its read loop while another
// goroutine tears the session down on disconnect.
//
// A Session pins the detector it was opened on: swapping the underlying
// model in a serving fleet never changes the decisions of sessions already
// in flight (they drain on the old pipeline, exactly like coalesced
// batches do).
type Session struct {
	mu     sync.Mutex
	online *Online
	closed bool
}

// SessionStats is a point-in-time snapshot of a session's activity.
type SessionStats struct {
	// Samples counts every state accepted into the session's window
	// (out-of-range states are rejected before the window and do not
	// count; samples whose assessment failed do — the window retains
	// them).
	Samples int `json:"samples"`
	// Decisions counts emitted window decisions.
	Decisions int `json:"decisions"`
	// Benign/Malware/Rejected split the decisions by verdict.
	Benign   int `json:"benign"`
	Malware  int `json:"malware"`
	Rejected int `json:"rejected"`
	// CacheHits counts windows served from the projected-vector memo
	// (see OnlineStats.CacheHits).
	CacheHits int `json:"cache_hits"`
}

// SessionState is the replayable snapshot of a streaming session: the
// window buffer linearised oldest-first, the per-stride phase counter and
// the cumulative stats. It is everything another node needs to continue
// the stream with decisions element-wise identical to never having moved —
// the unit a cluster replays onto a shard's new owner on failover.
type SessionState struct {
	Window    []int       `json:"window"`
	SinceLast int         `json:"since_last"`
	Stats     OnlineStats `json:"stats"`
}

// Export snapshots the session's replayable state. It is safe to call
// concurrently with Push and remains readable after Close.
func (s *Session) Export() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.online.exportState()
}

// ResumeSession opens a streaming session continuing from an exported
// state (nil state means a fresh session, exactly like NewSession). The
// detector need not be the same instance the state was exported from —
// only the same trained model, if identical decisions are required.
func ResumeSession(d *Detector, cfg StreamConfig, st *SessionState) (*Session, error) {
	o, err := resumeOnline(d, cfg, st)
	if err != nil {
		return nil, err
	}
	return &Session{online: o}, nil
}

// NewSession opens a streaming session over a trained detector. The
// config is validated exactly like NewOnline's.
func NewSession(d *Detector, cfg StreamConfig) (*Session, error) {
	o, err := NewOnline(d, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{online: o}, nil
}

// Push feeds one DVFS state sample; ok reports whether a window decision
// was produced. After Close it returns ErrSessionClosed.
func (s *Session) Push(state int) (Result, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Result{}, false, ErrSessionClosed
	}
	res, ok, err := s.online.Push(state)
	if err != nil {
		return Result{}, false, err
	}
	return res, ok, nil
}

// PushAll feeds a chunk of samples and returns the decisions emitted along
// the way. It stops at the first error, which reports the offending
// sample's index within states.
func (s *Session) PushAll(states []int) ([]Result, error) {
	var out []Result
	for i, st := range states {
		res, ok, err := s.Push(st)
		if err != nil {
			return out, fmt.Errorf("sample %d: %w", i, err)
		}
		if ok {
			out = append(out, res)
		}
	}
	return out, nil
}

// Close ends the session. It is idempotent; subsequent Push calls return
// ErrSessionClosed while Stats stays readable.
func (s *Session) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// Closed reports whether the session has been closed.
func (s *Session) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Stats snapshots the session's cumulative counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.online.Stats
	return SessionStats{
		Samples:   st.Samples,
		Decisions: st.Total(),
		Benign:    st.Benign,
		Malware:   st.Malware,
		Rejected:  st.Rejected,
		CacheHits: st.CacheHits,
	}
}
