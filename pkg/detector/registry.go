package detector

import (
	"encoding/gob"
	"fmt"
	"sort"
	"strings"
	"sync"

	"trusthmd/pkg/model"
)

// Params carries the model-specific tuning knobs a Builder may consult.
// Families ignore knobs that do not apply to them. Alias of the exported
// pkg/model type.
type Params = model.Params

// Builder produces a member factory for one base-classifier family, given
// the detector's tuning parameters. The returned factory is called once per
// ensemble member with that member's seed.
//
// Builder speaks only exported types (pkg/model, and through it
// pkg/linalg), so families implemented in other modules register on equal
// footing with the built-ins.
type Builder func(p Params) model.Factory

var registry = struct {
	sync.RWMutex
	builders map[string]Builder
}{builders: map[string]Builder{}}

// Register adds a base-classifier family to the model registry under the
// given name (case-insensitive). The optional prototypes are gob-registered
// so trained ensembles containing members of those concrete types survive
// Save/Load; the built-in families self-register their types instead.
//
// Register makes new families available to WithModel without any change to
// the training pipeline:
//
//	detector.Register("stump", func(p detector.Params) model.Factory {
//	    return func(seed int64) model.Classifier { ... }
//	}, &Stump{})
//
// Register panics if the name is empty, the builder is nil, or the name is
// already taken — a duplicate registration is a wiring bug (two packages
// claiming one family name), and silently replacing the earlier family
// would change which concrete types existing saved models decode into. Use
// TryRegister to handle the collision as an error instead.
func Register(name string, b Builder, prototypes ...any) {
	if err := TryRegister(name, b, prototypes...); err != nil {
		panic(err)
	}
}

// TryRegister is Register returning an error instead of panicking: it
// reports an empty name, a nil builder, or a name already registered,
// leaving the existing registration untouched in every error case.
func TryRegister(name string, b Builder, prototypes ...any) error {
	canon := canonical(name)
	if canon == "" {
		return fmt.Errorf("detector: register with empty model name %q", name)
	}
	if b == nil {
		return fmt.Errorf("detector: register %q with nil builder", canon)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, exists := registry.builders[canon]; exists {
		return fmt.Errorf("detector: model %q already registered", canon)
	}
	for _, p := range prototypes {
		gob.Register(p)
	}
	registry.builders[canon] = b
	return nil
}

// Models lists the registered family names in sorted order.
func Models() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.builders))
	for name := range registry.builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func builderFor(name string) (Builder, error) {
	registry.RLock()
	defer registry.RUnlock()
	b, ok := registry.builders[canonical(name)]
	if !ok {
		known := make([]string, 0, len(registry.builders))
		for n := range registry.builders {
			known = append(known, n)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("detector: unknown model %q (registered: %s)",
			name, strings.Join(known, ", "))
	}
	return b, nil
}

func canonical(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}
