package detector

import (
	"encoding/gob"
	"fmt"
	"sort"
	"strings"
	"sync"

	"trusthmd/internal/hmd"
)

// Params carries the model-specific tuning knobs a Builder may consult.
// Families ignore knobs that do not apply to them.
type Params struct {
	// SVMMaxObjective is the non-convergence ceiling for hinge-loss
	// training (0 disables the check).
	SVMMaxObjective float64
	// TreeMaxDepth / TreeMinLeaf bound decision-tree members (0 keeps the
	// defaults: unlimited depth, leaf size 1).
	TreeMaxDepth int
	TreeMinLeaf  int
}

// Builder produces a member factory for one base-classifier family, given
// the detector's tuning parameters. The returned factory is called once per
// ensemble member with that member's seed.
type Builder func(p Params) hmd.Factory

var registry = struct {
	sync.RWMutex
	builders map[string]Builder
}{builders: map[string]Builder{}}

// Register adds a base-classifier family to the model registry under the
// given name (case-insensitive), replacing any previous registration. The
// optional prototypes are gob-registered so trained ensembles containing
// members of those concrete types survive Save/Load; the built-in families
// self-register their types instead.
//
// Register makes new families available to WithModel without any change to
// internal/hmd:
//
//	detector.Register("stump", func(p detector.Params) hmd.Factory {
//	    return func(seed int64) ensemble.Classifier { ... }
//	}, &Stump{})
//
// Note: Builder's signature currently references internal types (the
// hmd.Factory / ensemble.Classifier contract), so registration is open to
// packages inside this module only. Exporting the classifier contract (and
// the matrix type it consumes) is the planned follow-up that makes the
// registry usable from other modules — see ROADMAP.md.
func Register(name string, b Builder, prototypes ...any) {
	if name = canonical(name); name == "" {
		panic("detector: Register with empty model name")
	}
	if b == nil {
		panic("detector: Register with nil builder")
	}
	for _, p := range prototypes {
		gob.Register(p)
	}
	registry.Lock()
	defer registry.Unlock()
	registry.builders[name] = b
}

// Models lists the registered family names in sorted order.
func Models() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.builders))
	for name := range registry.builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func builderFor(name string) (Builder, error) {
	registry.RLock()
	defer registry.RUnlock()
	b, ok := registry.builders[canonical(name)]
	if !ok {
		known := make([]string, 0, len(registry.builders))
		for n := range registry.builders {
			known = append(known, n)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("detector: unknown model %q (registered: %s)",
			name, strings.Join(known, ", "))
	}
	return b, nil
}

func canonical(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}
