package detector

import (
	"fmt"

	"trusthmd/internal/feature"
)

// Online is the streaming trusted detector: it consumes DVFS states one
// sample at a time, maintains a sliding window, and every Stride samples
// extracts features and produces a trusted decision — the deployment mode
// the paper's title refers to ("online uncertainty estimation"). Decisions
// use the wrapped detector's rejection threshold.
//
// Online is not safe for concurrent use; give each telemetry stream its own
// instance (the shared Detector underneath is safe to reuse).
type Online struct {
	det       *Detector
	levels    int
	window    []int
	stride    int
	sinceLast int

	// Stats accumulates decision counts for monitoring dashboards.
	Stats OnlineStats
}

// OnlineStats tallies the stream's decisions.
type OnlineStats struct {
	Benign, Malware, Rejected int
	Windows                   int
}

// Total returns the number of decisions made.
func (s OnlineStats) Total() int { return s.Benign + s.Malware + s.Rejected }

// RejectedFraction returns the share of windows rejected, or 0 before any
// decision.
func (s OnlineStats) RejectedFraction() float64 {
	if s.Total() == 0 {
		return 0
	}
	return float64(s.Rejected) / float64(s.Total())
}

// StreamConfig parameterises the streaming detector.
type StreamConfig struct {
	// Levels is the DVFS ladder size of the telemetry source.
	Levels int
	// Window is the number of states per assessment window.
	Window int
	// Stride is how many new samples arrive between assessments; 0 means
	// a full window (non-overlapping windows).
	Stride int
}

// NewOnline wraps a trained detector into a streaming detector.
func NewOnline(d *Detector, cfg StreamConfig) (*Online, error) {
	if d == nil {
		return nil, fmt.Errorf("detector: online needs a trained detector")
	}
	if cfg.Levels < 2 {
		return nil, fmt.Errorf("detector: online needs >=2 levels, got %d", cfg.Levels)
	}
	if cfg.Window < 2 {
		return nil, fmt.Errorf("detector: online needs window >=2, got %d", cfg.Window)
	}
	stride := cfg.Stride
	if stride <= 0 {
		stride = cfg.Window
	}
	return &Online{
		det:    d,
		levels: cfg.Levels,
		window: make([]int, 0, cfg.Window),
		stride: stride,
	}, nil
}

// Push feeds one DVFS state sample. When a full window is available and the
// stride has elapsed, it returns a decision; otherwise ok is false.
func (o *Online) Push(state int) (res Result, ok bool, err error) {
	if state < 0 || state >= o.levels {
		return Result{}, false, fmt.Errorf("detector: state %d outside [0,%d)", state, o.levels)
	}
	if len(o.window) == cap(o.window) {
		copy(o.window, o.window[1:])
		o.window = o.window[:len(o.window)-1]
	}
	o.window = append(o.window, state)
	o.sinceLast++
	if len(o.window) < cap(o.window) || o.sinceLast < o.stride {
		return Result{}, false, nil
	}
	o.sinceLast = 0

	feats, err := feature.DVFSVector(o.window, o.levels)
	if err != nil {
		return Result{}, false, fmt.Errorf("detector: online features: %w", err)
	}
	res, err = o.det.Assess(feats)
	if err != nil {
		return Result{}, false, err
	}
	o.Stats.Windows++
	switch res.Decision {
	case Benign:
		o.Stats.Benign++
	case Malware:
		o.Stats.Malware++
	default:
		o.Stats.Rejected++
	}
	return res, true, nil
}
