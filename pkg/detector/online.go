package detector

import (
	"fmt"
	"slices"

	"trusthmd/internal/feature"
)

// Online is the streaming trusted detector: it consumes DVFS states one
// sample at a time, maintains a sliding window, and every Stride samples
// extracts features and produces a trusted decision — the deployment mode
// the paper's title refers to ("online uncertainty estimation"). Decisions
// use the wrapped detector's rejection threshold.
//
// Online is not safe for concurrent use; give each telemetry stream its own
// instance (the shared Detector underneath is safe to reuse).
type Online struct {
	det    *Detector
	levels int

	// ring is the fixed-capacity sample window: head is the next write
	// position and filled counts valid samples, so Push costs O(1) instead
	// of the O(window) slide a copy-based window would pay per sample.
	ring   []int
	head   int
	filled int
	// scratch linearises the ring (oldest first) for feature extraction,
	// reused across windows so the steady state allocates nothing extra.
	scratch []int

	stride    int
	sinceLast int

	// lastWin/lastZ memoise the most recent window's projected feature
	// vector. DVFS telemetry is bursty — steady phases repeat one state
	// pattern for many strides — so when the linearised window matches the
	// previous one, Push skips feature extraction, scaling and PCA and goes
	// straight to member inference on the cached projection.
	lastWin []int
	lastZ   []float64
	hasMemo bool

	// projScaled/projReduced are the stream's private projection buffers:
	// scale+PCA write into them instead of allocating, and lastZ copies the
	// result, so the steady-state miss path allocates only during feature
	// extraction and the memo-hit path allocates nothing beyond the
	// result's VoteDist.
	projScaled  []float64
	projReduced []float64

	// Stats accumulates decision counts for monitoring dashboards.
	Stats OnlineStats
}

// OnlineStats tallies the stream's decisions. The JSON tags make the
// tally transportable as part of an exported SessionState, so a cluster
// can move a live stream between nodes without losing its counters.
type OnlineStats struct {
	Benign   int `json:"benign"`
	Malware  int `json:"malware"`
	Rejected int `json:"rejected"`
	Windows  int `json:"windows"`
	// Samples counts the states accepted into the window — every Push
	// that passed range validation, including samples whose assessment
	// failed (the window retains them and retries on the next Push).
	Samples int `json:"samples"`
	// CacheHits counts windows served from the projected-vector memo
	// (identical to their predecessor, so scale+PCA were skipped).
	CacheHits int `json:"cache_hits"`
}

// Observe folds one decision into the tally. Serving layers reuse it to
// keep per-shard rejection-rate counters.
func (s *OnlineStats) Observe(d Decision) {
	s.Windows++
	switch d {
	case Benign:
		s.Benign++
	case Malware:
		s.Malware++
	default:
		s.Rejected++
	}
}

// Total returns the number of decisions made.
func (s OnlineStats) Total() int { return s.Benign + s.Malware + s.Rejected }

// RejectedFraction returns the share of windows rejected, or 0 before any
// decision.
func (s OnlineStats) RejectedFraction() float64 {
	if s.Total() == 0 {
		return 0
	}
	return float64(s.Rejected) / float64(s.Total())
}

// StreamConfig parameterises the streaming detector.
type StreamConfig struct {
	// Levels is the DVFS ladder size of the telemetry source.
	Levels int
	// Window is the number of states per assessment window.
	Window int
	// Stride is how many new samples arrive between assessments; 0 means
	// a full window (non-overlapping windows).
	Stride int
}

// validateStreamConfig is the shared precondition check of NewOnline and
// ValidateStream; it returns the effective stride.
func validateStreamConfig(d *Detector, cfg StreamConfig) (int, error) {
	if d == nil {
		return 0, fmt.Errorf("detector: online needs a trained detector")
	}
	if cfg.Levels < 2 {
		return 0, fmt.Errorf("detector: online needs >=2 levels, got %d", cfg.Levels)
	}
	if cfg.Window < 2 {
		return 0, fmt.Errorf("detector: online needs window >=2, got %d", cfg.Window)
	}
	stride := cfg.Stride
	if stride <= 0 {
		stride = cfg.Window
	}
	return stride, nil
}

// ValidateStream reports whether windows of the given stream
// configuration are assessable by this detector at all: the feature
// dimension is a pure function of the ladder size (feature.DVFSDim —
// window length does not matter, missing autocorrelation lags are
// zero-padded), so a Levels value whose windows can never match the
// trained pipeline's input is detectable up front. Serving layers call
// this at session-open time so the mismatch becomes an immediate error
// instead of a failure on the first full window mid-stream.
func (d *Detector) ValidateStream(cfg StreamConfig) error {
	if _, err := validateStreamConfig(d, cfg); err != nil {
		return err
	}
	if got, dim := feature.DVFSDim(cfg.Levels), d.pipe.InputDim(); got != dim {
		return fmt.Errorf("detector: stream windows with %d levels produce %d features, model expects %d",
			cfg.Levels, got, dim)
	}
	return nil
}

// NewOnline wraps a trained detector into a streaming detector.
func NewOnline(d *Detector, cfg StreamConfig) (*Online, error) {
	stride, err := validateStreamConfig(d, cfg)
	if err != nil {
		return nil, err
	}
	return &Online{
		det:     d,
		levels:  cfg.Levels,
		ring:    make([]int, cfg.Window),
		scratch: make([]int, cfg.Window),
		stride:  stride,
	}, nil
}

// exportState snapshots the stream's replayable state: the window buffer
// linearised oldest-first (only the filled portion), the stride phase and
// the cumulative stats. The projection memo is deliberately excluded — it
// is a pure optimisation, so a resumed stream produces identical decisions
// with at most a one-window warm-up cost.
func (o *Online) exportState() SessionState {
	win := make([]int, o.filled)
	if o.filled == len(o.ring) {
		n := copy(win, o.ring[o.head:])
		copy(win[n:], o.ring[:o.head])
	} else {
		// A partially filled ring has never wrapped: samples 0..filled-1
		// sit at indices 0..filled-1 and head == filled.
		copy(win, o.ring[:o.filled])
	}
	return SessionState{
		Window:    win,
		SinceLast: o.sinceLast,
		Stats:     o.Stats,
	}
}

// resumeOnline rebuilds a streaming detector from an exported state, so a
// stream can continue on another detector instance (same trained model)
// with decisions identical to never having moved.
func resumeOnline(d *Detector, cfg StreamConfig, st *SessionState) (*Online, error) {
	o, err := NewOnline(d, cfg)
	if err != nil {
		return nil, err
	}
	if st == nil {
		return o, nil
	}
	if len(st.Window) > cfg.Window {
		return nil, fmt.Errorf("detector: resume state holds %d samples, window is %d", len(st.Window), cfg.Window)
	}
	for i, s := range st.Window {
		if s < 0 || s >= cfg.Levels {
			return nil, fmt.Errorf("detector: resume state sample %d: state %d outside [0,%d)", i, s, cfg.Levels)
		}
	}
	// SinceLast has no upper bound: before the first full window it grows
	// with every push (decisions only start once the window fills), and a
	// failed assessment leaves it at or beyond the stride for the retry.
	if st.SinceLast < 0 {
		return nil, fmt.Errorf("detector: resume state since_last %d is negative", st.SinceLast)
	}
	copy(o.ring, st.Window)
	o.filled = len(st.Window)
	o.head = o.filled % len(o.ring)
	o.sinceLast = st.SinceLast
	o.Stats = st.Stats
	return o, nil
}

// Push feeds one DVFS state sample. When a full window is available and the
// stride has elapsed, it returns a decision; otherwise ok is false.
//
// A failed assessment leaves the window and stride state exactly as they
// were: the sample is retained, and the decision is retried on the next
// Push rather than silently skipped until the next stride boundary.
func (o *Online) Push(state int) (res Result, ok bool, err error) {
	if state < 0 || state >= o.levels {
		return Result{}, false, fmt.Errorf("detector: state %d outside [0,%d)", state, o.levels)
	}
	o.ring[o.head] = state
	o.Stats.Samples++
	o.head++
	if o.head == len(o.ring) {
		o.head = 0
	}
	if o.filled < len(o.ring) {
		o.filled++
	}
	o.sinceLast++
	if o.filled < len(o.ring) || o.sinceLast < o.stride {
		return Result{}, false, nil
	}

	// Linearise oldest-first: the oldest sample sits at head once the ring
	// is full. Order matters — transition and autocorrelation features are
	// sequence-sensitive.
	n := copy(o.scratch, o.ring[o.head:])
	copy(o.scratch[n:], o.ring[:o.head])

	if o.hasMemo && slices.Equal(o.scratch, o.lastWin) {
		res, err = o.det.assessProjected(o.lastZ)
		if err != nil {
			return Result{}, false, err
		}
		o.Stats.CacheHits++
	} else {
		feats, ferr := feature.DVFSVector(o.scratch, o.levels)
		if ferr != nil {
			return Result{}, false, fmt.Errorf("detector: online features: %w", ferr)
		}
		if o.projScaled == nil {
			o.projScaled = make([]float64, o.det.pipe.InputDim())
			o.projReduced = make([]float64, o.det.pipe.ProjectedDim())
		}
		z, perr := o.det.pipe.ProjectInto(o.projScaled, o.projReduced, feats)
		if perr != nil {
			return Result{}, false, fmt.Errorf("detector: %w", perr)
		}
		// Memoise before assessing: a failed assessment is retried on the
		// next Push with the same window, and then it hits the cache. The
		// memo owns its copy — z aliases the projection buffers, which the
		// next miss overwrites.
		if o.lastWin == nil {
			o.lastWin = make([]int, len(o.scratch))
			o.lastZ = make([]float64, len(z))
		}
		copy(o.lastWin, o.scratch)
		copy(o.lastZ, z)
		o.hasMemo = true
		res, err = o.det.assessProjected(z)
		if err != nil {
			return Result{}, false, err
		}
	}
	o.sinceLast = 0
	o.Stats.Observe(res.Decision)
	return res, true, nil
}
