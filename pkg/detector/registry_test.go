package detector

import (
	"strings"
	"testing"

	"trusthmd/internal/core"
	"trusthmd/pkg/model"
)

func nopBuilder(Params) model.Factory {
	return func(int64) model.Classifier { return &stump{} }
}

// ensureRegistered registers name, tolerating a leftover registration from
// an earlier in-process run: the registry is package-global state, so with
// `go test -count=2` every fixed test name already exists the second time.
func ensureRegistered(t *testing.T, name string) {
	t.Helper()
	if err := TryRegister(name, nopBuilder); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("registration failed: %v", err)
	}
}

func TestTryRegisterRejectsBadInput(t *testing.T) {
	if err := TryRegister("", nopBuilder); err == nil {
		t.Fatal("expected error for empty name")
	}
	if err := TryRegister("   ", nopBuilder); err == nil {
		t.Fatal("expected error for blank name")
	}
	if err := TryRegister("nilbuilder", nil); err == nil {
		t.Fatal("expected error for nil builder")
	}
	ensureRegistered(t, "try-fresh")
}

func TestDuplicateRegistration(t *testing.T) {
	ensureRegistered(t, "dup-family")
	// Case-insensitive collision, reported as an error by TryRegister...
	err := TryRegister("DUP-Family", nopBuilder)
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate TryRegister: %v", err)
	}
	// ...and as a panic by Register. Silently replacing a family would
	// change which concrete types existing saved models decode into.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Register overwrote an existing family without panicking")
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "already registered") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	Register("dup-family", nopBuilder)
}

func TestDuplicateBuiltinRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering built-in rf did not panic")
		}
	}()
	Register("rf", nopBuilder)
}

// TestDecisionMirrorsCore pins the exported Decision encoding to the
// internal one: assessProjected converts between them with a plain type
// conversion, and the serialized Stats / HTTP wire forms rely on the
// integer values matching.
func TestDecisionMirrorsCore(t *testing.T) {
	pairs := []struct {
		pub Decision
		in  core.Decision
	}{
		{Benign, core.DecideBenign},
		{Malware, core.DecideMalware},
		{Reject, core.DecideReject},
	}
	for _, p := range pairs {
		if int(p.pub) != int(p.in) {
			t.Fatalf("decision %v = %d, core %v = %d", p.pub, int(p.pub), p.in, int(p.in))
		}
		if p.pub.String() != p.in.String() {
			t.Fatalf("decision string %q != core %q", p.pub.String(), p.in.String())
		}
	}
}
