package detector

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// TestSessionMatchesOnline pins the Session contract's core promise: a
// Session is a pure lifecycle wrapper — pushing the same state sequence
// through a Session and through a bare Online yields element-wise
// identical decisions.
func TestSessionMatchesOnline(t *testing.T) {
	d := onlineDetector(t)
	cfg := StreamConfig{Levels: 8, Window: 64, Stride: 16}
	sess, err := NewSession(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	online, err := NewOnline(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	states := make([]int, 400)
	for i := range states {
		states[i] = rng.Intn(cfg.Levels)
	}

	decisions := 0
	for i, st := range states {
		want, wantOK, err := online.Push(st)
		if err != nil {
			t.Fatal(err)
		}
		got, gotOK, err := sess.Push(st)
		if err != nil {
			t.Fatal(err)
		}
		if gotOK != wantOK {
			t.Fatalf("sample %d: session ok=%v, online ok=%v", i, gotOK, wantOK)
		}
		if !gotOK {
			continue
		}
		decisions++
		if got.Prediction != want.Prediction || got.Entropy != want.Entropy || got.Decision != want.Decision {
			t.Fatalf("sample %d: session %+v diverged from online %+v", i, got, want)
		}
	}
	if decisions == 0 {
		t.Fatal("stream produced no decisions")
	}

	st := sess.Stats()
	if st.Samples != len(states) {
		t.Fatalf("session samples %d, want %d", st.Samples, len(states))
	}
	if st.Decisions != decisions {
		t.Fatalf("session decisions %d, want %d", st.Decisions, decisions)
	}
	if st.Benign+st.Malware+st.Rejected != decisions {
		t.Fatalf("decision split %d+%d+%d does not sum to %d", st.Benign, st.Malware, st.Rejected, decisions)
	}
	if st.CacheHits != online.Stats.CacheHits {
		t.Fatalf("session cache hits %d, online %d", st.CacheHits, online.Stats.CacheHits)
	}
}

func TestSessionLifecycle(t *testing.T) {
	d := onlineDetector(t)
	sess, err := NewSession(d, StreamConfig{Levels: 8, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Closed() {
		t.Fatal("fresh session reports closed")
	}
	if _, _, err := sess.Push(0); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if !sess.Closed() {
		t.Fatal("closed session reports open")
	}
	if _, _, err := sess.Push(1); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("push after close: %v, want ErrSessionClosed", err)
	}
	// Stats stay readable after close, and the failed push never counted.
	if st := sess.Stats(); st.Samples != 1 {
		t.Fatalf("samples %d, want 1", st.Samples)
	}

	// Invalid config and state surface like Online's errors.
	if _, err := NewSession(d, StreamConfig{Levels: 1, Window: 4}); err == nil {
		t.Fatal("expected levels validation error")
	}
	if _, err := NewSession(nil, StreamConfig{Levels: 8, Window: 4}); err == nil {
		t.Fatal("expected nil-detector error")
	}
	sess2, err := NewSession(d, StreamConfig{Levels: 8, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	if _, _, err := sess2.Push(8); err == nil {
		t.Fatal("expected out-of-range state error")
	}
}

func TestSessionPushAll(t *testing.T) {
	d := onlineDetector(t)
	cfg := StreamConfig{Levels: 8, Window: 16, Stride: 8}
	sess, err := NewSession(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	online, err := NewOnline(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	states := make([]int, 120)
	for i := range states {
		states[i] = rng.Intn(cfg.Levels)
	}
	var want []Result
	for _, st := range states {
		r, ok, err := online.Push(st)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			want = append(want, r)
		}
	}
	got, err := sess.PushAll(states)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("PushAll emitted %d decisions, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Prediction != want[i].Prediction || got[i].Entropy != want[i].Entropy {
			t.Fatalf("decision %d diverged", i)
		}
	}

	// An invalid state mid-chunk reports its index and keeps the prefix.
	if _, err := sess.PushAll([]int{0, 1, 99}); err == nil {
		t.Fatal("expected error for out-of-range state")
	}
}

// TestSessionExportResumeIdentity pins the failover contract: exporting a
// session mid-stream at an arbitrary cut point and resuming it on a fresh
// Session (fresh detector instance of the same model included) yields
// decisions element-wise identical to the uninterrupted stream — windows
// straddling the cut included.
func TestSessionExportResumeIdentity(t *testing.T) {
	d := onlineDetector(t)
	cfg := StreamConfig{Levels: 8, Window: 32, Stride: 8}

	rng := rand.New(rand.NewSource(31))
	states := make([]int, 300)
	for i := range states {
		states[i] = rng.Intn(cfg.Levels)
	}

	baseline, err := NewSession(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.PushAll(states)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline produced no decisions")
	}

	// Cut points exercise every regime: mid-fill (window not yet full),
	// mid-stride, and exactly on a decision boundary.
	for _, cut := range []int{0, 7, 17, 40, 131, 200} {
		first, err := NewSession(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := first.PushAll(states[:cut])
		if err != nil {
			t.Fatal(err)
		}
		st := first.Export()
		first.Close()

		resumed, err := ResumeSession(d, cfg, &st)
		if err != nil {
			t.Fatal(err)
		}
		rest, err := resumed.PushAll(states[cut:])
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rest...)

		if len(got) != len(want) {
			t.Fatalf("cut %d: %d decisions, want %d", cut, len(got), len(want))
		}
		for i := range got {
			if got[i].Prediction != want[i].Prediction ||
				got[i].Entropy != want[i].Entropy ||
				got[i].Decision != want[i].Decision {
				t.Fatalf("cut %d: decision %d diverged: %+v vs %+v", cut, i, got[i], want[i])
			}
		}
		stats := resumed.Stats()
		if stats.Samples != len(states) {
			t.Fatalf("cut %d: resumed samples %d, want %d", cut, stats.Samples, len(states))
		}
		if stats.Decisions != len(want) {
			t.Fatalf("cut %d: resumed decisions %d, want %d", cut, stats.Decisions, len(want))
		}
		resumed.Close()
	}

	// A nil state resumes fresh; invalid states are rejected up front.
	if _, err := ResumeSession(d, cfg, nil); err != nil {
		t.Fatalf("nil state: %v", err)
	}
	bad := []SessionState{
		{Window: make([]int, cfg.Window+1)},
		{Window: []int{0, 1, 99}},
		{Window: []int{0, 1, -1}},
		{SinceLast: -1},
	}
	for i, st := range bad {
		if _, err := ResumeSession(d, cfg, &st); err == nil {
			t.Fatalf("bad state %d: expected error", i)
		}
	}
}

// TestSessionConcurrentClose exercises the one concurrency promise the
// Session makes beyond Online: a transport may Close from another
// goroutine while the read loop is pushing.
func TestSessionConcurrentClose(t *testing.T) {
	d := onlineDetector(t)
	sess, err := NewSession(d, StreamConfig{Levels: 8, Window: 8, Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			if _, _, err := sess.Push(i % 8); err != nil {
				if !errors.Is(err, ErrSessionClosed) {
					t.Errorf("push: %v", err)
				}
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		sess.Close()
	}()
	wg.Wait()
	if !sess.Closed() {
		t.Fatal("session should be closed")
	}
}
