package detector

import (
	"fmt"
	"math"

	"trusthmd/internal/stats"
)

// DriftMonitor watches the stream of per-window predictive entropies
// emitted by an online trusted HMD and raises an alarm when the recent
// entropy distribution departs from the known-data baseline. This closes
// the loop the paper's introduction sketches: uncertain predictions are
// not just rejected one by one — a sustained shift triggers forensic
// collection and retraining (see Retrainer).
//
// Two detectors run side by side:
//
//   - a rejection-rate detector: the fraction of the last Window decisions
//     whose entropy exceeds the rejection threshold, compared with the
//     baseline rate times Tolerance;
//   - a Kolmogorov-Smirnov detector: the last Window entropies versus the
//     baseline entropy sample, alarming at significance Alpha.
//
// The monitor is not safe for concurrent use.
type DriftMonitor struct {
	baseline     []float64
	baselineRate float64
	threshold    float64
	window       int
	tolerance    float64
	alpha        float64

	// recent is a fixed-capacity ring of the last window entropies: head is
	// the next write position and count the number of valid entries, so a
	// long-running monitor stops re-allocating (the append/reslice form
	// grew a fresh backing array on every observation once full). The
	// detectors are order-insensitive (a rate and a KS statistic), so they
	// read the ring without linearising it.
	recent []float64
	head   int
	count  int
}

// DriftConfig parameterises a DriftMonitor.
type DriftConfig struct {
	// Threshold is the entropy rejection threshold in use by the detector.
	Threshold float64
	// Window is the number of recent decisions considered (default 50).
	Window int
	// Tolerance multiplies the baseline rejection rate to form the alarm
	// level (default 3; an absolute floor of 0.2 applies so that a
	// near-zero baseline does not alarm on a single rejection).
	Tolerance float64
	// Alpha is the KS significance level (default 0.01).
	Alpha float64
}

// NewDriftMonitor builds a monitor from the entropies observed on known
// (in-distribution) validation data.
func NewDriftMonitor(baselineEntropies []float64, cfg DriftConfig) (*DriftMonitor, error) {
	if len(baselineEntropies) == 0 {
		return nil, fmt.Errorf("detector: drift monitor needs a baseline entropy sample, got none")
	}
	if len(baselineEntropies) < 10 {
		return nil, fmt.Errorf("detector: drift monitor needs >=10 baseline entropies, got %d", len(baselineEntropies))
	}
	for i, h := range baselineEntropies {
		if math.IsNaN(h) || math.IsInf(h, 0) || h < 0 {
			return nil, fmt.Errorf("detector: baseline entropy %d is %v, want finite and >=0", i, h)
		}
	}
	if cfg.Threshold < 0 {
		return nil, fmt.Errorf("detector: negative threshold %v", cfg.Threshold)
	}
	if cfg.Window <= 0 {
		cfg.Window = 50
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 3
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		cfg.Alpha = 0.01
	}
	rejected := 0
	for _, h := range baselineEntropies {
		if h > cfg.Threshold {
			rejected++
		}
	}
	return &DriftMonitor{
		baseline:     append([]float64(nil), baselineEntropies...),
		baselineRate: float64(rejected) / float64(len(baselineEntropies)),
		threshold:    cfg.Threshold,
		window:       cfg.Window,
		tolerance:    cfg.Tolerance,
		alpha:        cfg.Alpha,
	}, nil
}

// DriftStatus is the monitor's verdict after an observation.
type DriftStatus struct {
	// Alarm is true when either detector fires.
	Alarm bool
	// RateAlarm / KSAlarm identify which detector(s) fired.
	RateAlarm bool
	KSAlarm   bool
	// RecentRejectRate is the rejection rate over the current window.
	RecentRejectRate float64
	// KSPValue is the significance of the entropy-distribution comparison
	// (1 before the window has filled).
	KSPValue float64
}

// Observe folds one per-window predictive entropy into the monitor and
// returns the current status. Detectors stay quiet until the window fills.
func (m *DriftMonitor) Observe(entropy float64) (DriftStatus, error) {
	// NaN and ±Inf would poison both detectors silently — NaN compares
	// false against the threshold (never counted rejected) and corrupts
	// the KS ordering — so they are hard errors like negative entropy.
	if math.IsNaN(entropy) || math.IsInf(entropy, 0) {
		return DriftStatus{}, fmt.Errorf("detector: non-finite entropy %v", entropy)
	}
	if entropy < 0 {
		return DriftStatus{}, fmt.Errorf("detector: negative entropy %v", entropy)
	}
	if m.recent == nil {
		m.recent = make([]float64, m.window)
	}
	m.recent[m.head] = entropy
	m.head++
	if m.head == m.window {
		m.head = 0
	}
	if m.count < m.window {
		m.count++
	}
	st := DriftStatus{KSPValue: 1}
	if m.count < m.window {
		return st, nil
	}

	rejected := 0
	for _, h := range m.recent {
		if h > m.threshold {
			rejected++
		}
	}
	st.RecentRejectRate = float64(rejected) / float64(len(m.recent))
	alarmLevel := m.baselineRate * m.tolerance
	if alarmLevel < 0.2 {
		alarmLevel = 0.2
	}
	st.RateAlarm = st.RecentRejectRate > alarmLevel

	ks, err := stats.KSTest(m.baseline, m.recent)
	if err != nil {
		return DriftStatus{}, err
	}
	st.KSPValue = ks.PValue
	st.KSAlarm = ks.PValue < m.alpha

	st.Alarm = st.RateAlarm || st.KSAlarm
	return st, nil
}

// BaselineRejectRate returns the rejection rate measured on the baseline.
func (m *DriftMonitor) BaselineRejectRate() float64 { return m.baselineRate }

// Reset clears the recent window (e.g. after retraining) and releases the
// backing array; the next Observe reallocates it.
func (m *DriftMonitor) Reset() { m.recent, m.head, m.count = nil, 0, 0 }
