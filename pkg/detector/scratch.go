package detector

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"trusthmd/internal/core"
	"trusthmd/internal/hmd"
	"trusthmd/pkg/linalg"
)

// BatchScratch is the reusable workspace of AssessBatchInto: input copy,
// projection matrices, vote histograms and the returned results all live
// in one caller-owned arena that is regrown on demand and never shrunk.
// A steady-state caller assessing same-sized batches performs zero heap
// allocations per call.
//
// A BatchScratch may be used by one goroutine at a time, and the results
// returned by AssessBatchInto (including their VoteDist slices) remain
// valid only until the scratch's next use. Callers that hand results to
// other goroutines or retain them across calls must copy them first, or
// use AssessBatch, which returns independently-owned results.
type BatchScratch struct {
	work    *linalg.Matrix // raw input copy, overwritten by scaling
	reduced *linalg.Matrix // PCA projection, when that stage exists
	workT   *linalg.Matrix // transpose of the projected batch, when members want it
	counts  []int          // row-major n x classes vote histograms
	votes   []int          // per-member batched vote scratch
	input   []float64      // member feature-subset scratch
	dists   []float64      // VoteDist backing for scratch-owned results
	results []Result
	rows    [][]float64 // 1-row view for the single-sample AssessInto path

	// Per-worker private histograms for the parallel member partition;
	// integer merges keep the parallel accumulation bit-identical.
	partCounts [][]int
	partVotes  [][]int
	partInput  [][]float64
	errs       []error
}

// batchScratchPool recycles scratches behind the plain AssessBatch API.
// Scratches are shape-agnostic (every buffer is resized per call), so one
// pool serves every detector.
var batchScratchPool = sync.Pool{
	New: func() any {
		return &BatchScratch{work: linalg.New(0, 0), reduced: linalg.New(0, 0)}
	},
}

func (s *BatchScratch) init() {
	if s.work == nil {
		s.work = linalg.New(0, 0)
	}
	if s.reduced == nil {
		s.reduced = linalg.New(0, 0)
	}
}

// growInts returns b resized to n, reallocating only on growth.
func growInts(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

// growFloats returns b resized to n, reallocating only on growth.
func growFloats(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

// AssessBatchInto is AssessBatch with caller-owned memory: every buffer —
// including the returned results and their VoteDist slices — lives in s
// and is reused by the next call, so steady-state batched assessment
// allocates nothing (see TestAllocsAssessBatchInto). Results are
// element-wise identical to AssessBatch. The zero BatchScratch is ready to
// use. Detectors built WithDecomposition take the allocating path: the
// per-member posterior walk is not scratch-managed.
func (d *Detector) AssessBatchInto(s *BatchScratch, X [][]float64) ([]Result, error) {
	if len(X) == 0 {
		return nil, errors.New("detector: empty batch")
	}
	return d.assessScratchRows(s, X, false)
}

// AssessInto is Assess with caller-owned memory: the projection, vote and
// result buffers all live in s, so a steady-state caller assessing one
// sample at a time allocates nothing. The returned Result (including its
// VoteDist) is valid only until the scratch's next use. Results are
// element-wise identical to Assess; member votes accumulate serially, like
// the pooled single-sample path. Detectors built WithDecomposition fall
// back to the allocating Assess.
func (d *Detector) AssessInto(s *BatchScratch, x []float64) (Result, error) {
	if d.cfg.decompose {
		return d.Assess(x)
	}
	s.init()
	if cap(s.rows) == 0 {
		s.rows = make([][]float64, 0, 1)
	}
	s.rows = append(s.rows[:0], x)
	Z, err := d.pipe.ProjectRowsScratch(s.rows, s.work, s.reduced)
	s.rows[0] = nil // do not pin the caller's vector past the call
	if err != nil {
		return Result{}, fmt.Errorf("detector: %w", err)
	}
	rs, err := d.assessZ(s, Z, false, 1)
	if err != nil {
		return Result{}, err
	}
	return rs[0], nil
}

// loadRows copies the raw samples into the scratch work matrix, validating
// that the batch is rectangular. Both AssessBatch entry points share it.
func (s *BatchScratch) loadRows(X [][]float64) error {
	s.init()
	cols := len(X[0])
	s.work.ResizeUnset(len(X), cols) // every row is copied over below
	for i, r := range X {
		if len(r) != cols {
			return fmt.Errorf("detector: ragged row %d: got %d values, want %d: %w",
				i, len(r), cols, linalg.ErrShape)
		}
		copy(s.work.Row(i), r)
	}
	return nil
}

// loadMatrix copies M into the scratch work matrix.
func (s *BatchScratch) loadMatrix(M *linalg.Matrix) {
	s.init()
	s.work.ResizeUnset(M.Rows(), M.Cols())
	for i := 0; i < M.Rows(); i++ {
		copy(s.work.Row(i), M.Row(i))
	}
}

// assessScratch runs the zero-allocation batched path over the raw
// samples already loaded into s.work. With fresh set, the results and
// their VoteDist backing are independently allocated (they escape to the
// caller of AssessBatch); otherwise both live in s.
func (d *Detector) assessScratch(s *BatchScratch, fresh bool) ([]Result, error) {
	if d.cfg.decompose {
		// The decomposition walk needs every member's posterior; it stays
		// on the allocating path.
		return d.assessMatrix(s.work)
	}
	Z, err := d.pipe.ProjectBatchScratch(s.work, s.reduced)
	if err != nil {
		return nil, fmt.Errorf("detector: %w", err)
	}
	return d.assessZ(s, Z, fresh, 0)
}

// assessScratchRows is assessScratch fed directly from raw sample rows:
// the projection reads each row once and writes the scaled batch straight
// into scratch, skipping the separate input copy the matrix-loaded path
// pays. Results are identical to loadRows + assessScratch.
func (d *Detector) assessScratchRows(s *BatchScratch, X [][]float64, fresh bool) ([]Result, error) {
	if d.cfg.decompose {
		if err := s.loadRows(X); err != nil {
			return nil, err
		}
		return d.assessMatrix(s.work)
	}
	s.init()
	Z, err := d.pipe.ProjectRowsScratch(X, s.work, s.reduced)
	if err != nil {
		return nil, fmt.Errorf("detector: %w", err)
	}
	return d.assessZ(s, Z, fresh, 0)
}

// assessZ is the member-vote + summarize tail shared by every batched
// entry point, running over the already-projected batch Z. maxWorkers,
// when positive, caps the member-vote parallelism below the detector's
// configured worker count (the single-sample path forces 1 to match the
// serial pooled path's cost profile); 0 leaves the configuration alone.
func (d *Detector) assessZ(s *BatchScratch, Z *linalg.Matrix, fresh bool, maxWorkers int) ([]Result, error) {
	n, k := Z.Rows(), d.pipe.Classes()
	members := d.pipe.Members()

	// The vectorized tree kernel reads one feature across 32 samples, so
	// members that want it share a single feature-major copy of the
	// projected batch — one transpose per batch, read-only afterwards
	// (race-free under the parallel member partition below).
	var ZT *linalg.Matrix
	if d.pipe.WantsCols() {
		if s.workT == nil {
			s.workT = linalg.New(0, 0)
		}
		s.workT.ResizeUnset(Z.Cols(), Z.Rows()) // TInto writes every cell
		if err := Z.TInto(s.workT); err != nil {
			return nil, fmt.Errorf("detector: %w", err)
		}
		ZT = s.workT
	}

	s.counts = growInts(s.counts, n*k)
	clearInts(s.counts)
	s.votes = growInts(s.votes, n)
	s.input = growFloats(s.input, d.pipe.MemberScratchDim())

	workers := d.cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxWorkers > 0 && workers > maxWorkers {
		workers = maxWorkers
	}
	if workers > members {
		workers = members
	}
	var err error
	if workers <= 1 {
		err = d.pipe.AccumulateVotes(Z, ZT, s.counts, 0, members, s.votes, s.input)
	} else {
		err = d.accumulateParallel(s, Z, ZT, workers, members, k)
	}
	if err != nil {
		if !isVoteRange(err) {
			return nil, fmt.Errorf("detector: %w", err)
		}
		// A member voted outside the class histogram: take the allocating
		// per-row path, which grows its histogram defensively.
		return d.assessRows(Z)
	}

	var results []Result
	var dists []float64
	if fresh {
		results = make([]Result, n)
		dists = make([]float64, n*k)
	} else {
		if cap(s.results) < n {
			s.results = make([]Result, n)
		}
		s.results = s.results[:n]
		results = s.results
		s.dists = growFloats(s.dists, n*k)
		dists = s.dists
	}
	rej := core.Rejector{Threshold: d.cfg.threshold}
	for i := 0; i < n; i++ {
		// Full slice expressions cap each VoteDist at its own window so a
		// caller appending to one result cannot overwrite its neighbour.
		a, err := d.pipe.SummarizeCounts(s.counts[i*k:(i+1)*k], dists[i*k:(i+1)*k:(i+1)*k])
		if err != nil {
			return nil, fmt.Errorf("detector: sample %d: %w", i, err)
		}
		decision, err := rej.Decide(a.Prediction, a.Entropy)
		if err != nil {
			return nil, fmt.Errorf("detector: sample %d: %w", i, err)
		}
		results[i] = Result{
			Prediction: a.Prediction,
			Entropy:    a.Entropy,
			VoteDist:   a.VoteDist,
			Decision:   Decision(decision),
		}
	}
	return results, nil
}

// accumulateParallel partitions the ensemble's members across workers,
// each filling a private vote histogram, and integer-merges the partials —
// counts are order-independent, so the result is bit-identical to the
// serial accumulation.
func (d *Detector) accumulateParallel(s *BatchScratch, Z, ZT *linalg.Matrix, workers, members, k int) error {
	n := Z.Rows()
	for len(s.partCounts) < workers {
		s.partCounts = append(s.partCounts, nil)
		s.partVotes = append(s.partVotes, nil)
		s.partInput = append(s.partInput, nil)
	}
	if cap(s.errs) < workers {
		s.errs = make([]error, workers)
	}
	s.errs = s.errs[:workers]
	for i := range s.errs {
		s.errs[i] = nil
	}
	inputDim := d.pipe.MemberScratchDim()

	var wg sync.WaitGroup
	chunk := (members + workers - 1) / workers
	launched := 0
	for w := 0; w < workers; w++ {
		from := w * chunk
		to := from + chunk
		if to > members {
			to = members
		}
		if from >= to {
			break
		}
		s.partCounts[w] = growInts(s.partCounts[w], n*k)
		clearInts(s.partCounts[w])
		s.partVotes[w] = growInts(s.partVotes[w], n)
		s.partInput[w] = growFloats(s.partInput[w], inputDim)
		wg.Add(1)
		launched++
		go func(w, from, to int) {
			defer wg.Done()
			s.errs[w] = d.pipe.AccumulateVotes(Z, ZT, s.partCounts[w], from, to, s.partVotes[w], s.partInput[w])
		}(w, from, to)
	}
	wg.Wait()
	for _, err := range s.errs {
		if err != nil {
			return err
		}
	}
	for w := 0; w < launched; w++ {
		for i, v := range s.partCounts[w] {
			s.counts[i] += v
		}
	}
	return nil
}

// assessRows is the allocating per-row fallback over an already-projected
// batch (decomposition-free detectors land here only on the defensive
// out-of-histogram vote path).
func (d *Detector) assessRows(Z *linalg.Matrix) ([]Result, error) {
	out := make([]Result, Z.Rows())
	for i := range out {
		r, err := d.assessProjected(Z.Row(i))
		if err != nil {
			return nil, fmt.Errorf("detector: sample %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

func clearInts(b []int) {
	for i := range b {
		b[i] = 0
	}
}

func isVoteRange(err error) bool {
	return errors.Is(err, hmd.ErrVoteRange)
}
