package detector

import (
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"trusthmd/internal/gen"
)

func TestAssessBatchGoldenEqualsSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"rf", []Option{WithModel("rf")}},
		{"rf-pca", []Option{WithModel("rf"), WithPCA(6)}},
		{"lr-decompose", []Option{WithModel("lr"), WithMaxFeatures(0.45), WithDecomposition(true)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := dvfsSplits(t)
			d, err := New(s.Train, append([]Option{WithEnsembleSize(9), WithSeed(4)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			X := make([][]float64, s.Test.Len())
			for i := range X {
				X[i] = s.Test.At(i).Features
			}
			batch, err := d.AssessBatch(X)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(X) {
				t.Fatalf("batch returned %d results for %d inputs", len(batch), len(X))
			}
			for i, x := range X {
				seq, err := d.Assess(x)
				if err != nil {
					t.Fatal(err)
				}
				b := batch[i]
				if b.Prediction != seq.Prediction || b.Entropy != seq.Entropy || b.Decision != seq.Decision {
					t.Fatalf("sample %d: batch %+v != sequential %+v", i, b, seq)
				}
				for j := range seq.VoteDist {
					if b.VoteDist[j] != seq.VoteDist[j] {
						t.Fatalf("sample %d: vote dist diverged at class %d", i, j)
					}
				}
				if (b.Decomposition == nil) != (seq.Decomposition == nil) {
					t.Fatalf("sample %d: decomposition presence diverged", i)
				}
				if b.Decomposition != nil && *b.Decomposition != *seq.Decomposition {
					t.Fatalf("sample %d: decomposition diverged", i)
				}
			}
		})
	}
}

func TestAssessDatasetMatchesAssessBatch(t *testing.T) {
	d, s := trainRF(t)
	rs, err := d.AssessDataset(s.Test)
	if err != nil {
		t.Fatal(err)
	}
	X := make([][]float64, s.Test.Len())
	for i := range X {
		X[i] = s.Test.At(i).Features
	}
	rb, err := d.AssessBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if rs[i].Prediction != rb[i].Prediction || rs[i].Entropy != rb[i].Entropy {
			t.Fatalf("sample %d diverged between AssessDataset and AssessBatch", i)
		}
	}
	if len(Predictions(rs)) != len(rs) || len(Entropies(rs)) != len(rs) {
		t.Fatal("helper length mismatch")
	}
	if _, err := d.AssessBatch(nil); err == nil {
		t.Fatal("expected empty batch error")
	}
	if _, err := d.AssessDataset(nil); err == nil {
		t.Fatal("expected empty dataset error")
	}
}

// TestConcurrentAssess exercises one shared Detector from many goroutines;
// run under -race it proves a trained detector is safe for concurrent
// serving.
func TestConcurrentAssess(t *testing.T) {
	d, s := trainRF(t)
	want := make([]Result, s.Test.Len())
	for i := range want {
		r, err := d.Assess(s.Test.At(i).Features)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < s.Test.Len(); i++ {
				idx := (i + g) % s.Test.Len()
				r, err := d.Assess(s.Test.At(idx).Features)
				if err != nil {
					errCh <- err
					return
				}
				if r.Prediction != want[idx].Prediction || r.Entropy != want[idx].Entropy {
					errCh <- &mismatchError{idx}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Batched assessment from multiple goroutines must also be clean.
	var wg2 sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if _, err := d.AssessDataset(s.Test); err != nil {
				t.Error(err)
			}
		}()
	}
	wg2.Wait()
}

type mismatchError struct{ idx int }

func (e *mismatchError) Error() string { return "concurrent assess diverged" }

// TestAssessBatchSpeedup exercises the acceptance workload — a 1k-sample
// split through both the batched and the per-sample sequential path — and
// always requires identical outputs. The >=2x wall-clock assertion is
// opt-in (TRUSTHMD_TIMING=1, >=4 real cores) because timing assertions
// flake on contended CI machines; BenchmarkAssessBatch at the repository
// root is the canonical measurement.
func TestAssessBatchSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	s, err := gen.DVFSWithSizes(2, gen.Sizes{Train: 700, Test: 1000, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(s.Train, WithModel("rf"), WithEnsembleSize(25), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	X := make([][]float64, s.Test.Len())
	for i := range X {
		X[i] = s.Test.At(i).Features
	}

	// Warm up both paths, then time the better of three runs each.
	if _, err := d.AssessBatch(X); err != nil {
		t.Fatal(err)
	}
	seqTime, batchTime := time.Duration(1<<62), time.Duration(1<<62)
	var seq []Result
	for run := 0; run < 3; run++ {
		start := time.Now()
		seq = make([]Result, len(X))
		for i, x := range X {
			r, err := d.Assess(x)
			if err != nil {
				t.Fatal(err)
			}
			seq[i] = r
		}
		if el := time.Since(start); el < seqTime {
			seqTime = el
		}
	}
	var batch []Result
	for run := 0; run < 3; run++ {
		start := time.Now()
		var err error
		batch, err = d.AssessBatch(X)
		if err != nil {
			t.Fatal(err)
		}
		if el := time.Since(start); el < batchTime {
			batchTime = el
		}
	}
	for i := range seq {
		if seq[i].Prediction != batch[i].Prediction || seq[i].Entropy != batch[i].Entropy {
			t.Fatalf("sample %d: outputs diverged", i)
		}
	}
	speedup := float64(seqTime) / float64(batchTime)
	t.Logf("batch speedup %.2fx (sequential %v, batch %v)", speedup, seqTime, batchTime)
	if os.Getenv("TRUSTHMD_TIMING") == "" {
		return
	}
	if runtime.NumCPU() < 4 || runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("timing assertion needs >= 4 real cores (have %d) at GOMAXPROCS >= 4 (have %d)",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	if speedup < 2 {
		t.Fatalf("batch speedup %.2fx (sequential %v, batch %v), want >= 2x", speedup, seqTime, batchTime)
	}
}

// TestBatchResultsIndependentVoteDist pins the ownership contract of the
// allocating batch API: results share one VoteDist arena internally, but
// each slice is capacity-capped to its own window, so growing one result's
// distribution can never overwrite a neighbour's.
func TestBatchResultsIndependentVoteDist(t *testing.T) {
	d, s := trainRF(t)
	X := make([][]float64, 4)
	for i := range X {
		X[i] = s.Test.At(i).Features
	}
	rs, err := d.AssessBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), rs[1].VoteDist...)
	rs[0].VoteDist = append(rs[0].VoteDist, 0.5)
	for j := range want {
		if rs[1].VoteDist[j] != want[j] {
			t.Fatalf("appending to results[0].VoteDist corrupted results[1]: %v != %v", rs[1].VoteDist, want)
		}
	}
}
