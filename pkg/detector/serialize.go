package detector

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"trusthmd/internal/ensemble"
	"trusthmd/internal/hmd"
)

// serialVersion guards the wire format of Save/Load.
const serialVersion = 1

// savedDetector is the exported wire form of a trained Detector.
type savedDetector struct {
	Version   int
	Model     string
	Threshold float64
	Workers   int
	Decompose bool
	Diversity ensemble.Diversity
	Params    Params
	Pipeline  *hmd.Pipeline
}

// Save serializes the trained detector to w (gob encoding) so a service
// can train once and serve many. Everything needed for inference — fitted
// scaler, PCA basis, every trained ensemble member, threshold and model
// name — is included; Load restores a detector with identical decisions.
func (d *Detector) Save(w io.Writer) error {
	if d.pipe == nil {
		return errors.New("detector: cannot save an untrained detector")
	}
	err := gob.NewEncoder(w).Encode(savedDetector{
		Version:   serialVersion,
		Model:     d.cfg.model,
		Threshold: d.cfg.threshold,
		Workers:   d.cfg.workers,
		Decompose: d.cfg.decompose,
		Diversity: d.cfg.diversity,
		Params:    d.cfg.params,
		Pipeline:  d.pipe,
	})
	if err != nil {
		return fmt.Errorf("detector: save: %w", err)
	}
	return nil
}

// Load deserializes a detector previously written by Save. The loaded
// detector serves assessments immediately; custom (non-built-in) member
// types must have been registered — via Register's prototypes or a gob
// registration — before Load.
func Load(r io.Reader) (*Detector, error) {
	var g savedDetector
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("detector: load: %w", err)
	}
	if g.Version != serialVersion {
		return nil, fmt.Errorf("detector: load: unsupported format version %d", g.Version)
	}
	if g.Pipeline == nil {
		return nil, errors.New("detector: load: no pipeline in stream")
	}
	cfg := defaults()
	cfg.model = canonical(g.Model)
	cfg.threshold = g.Threshold
	cfg.workers = g.Workers
	cfg.decompose = g.Decompose
	cfg.diversity = g.Diversity
	cfg.params = g.Params
	cfg.m = g.Pipeline.Members()
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("detector: load: %w", err)
	}
	return &Detector{cfg: cfg, pipe: g.Pipeline}, nil
}
