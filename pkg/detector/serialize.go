package detector

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"trusthmd/internal/ensemble"
	"trusthmd/internal/hmd"
)

// serialVersion guards the wire format of Save/Load.
//
// Version history:
//
//	1 — model, threshold, workers, decompose, diversity, params, pipeline.
//	2 — adds the remaining training-time configuration (PCA components,
//	    seed, maxSamples, maxFeatures) so a Load→Save round trip and
//	    WithOptions on a loaded detector report the pipeline faithfully.
const serialVersion = 2

// savedDetector is the exported wire form of a trained Detector. Gob
// matches struct fields by name, so version-1 streams (which lack the
// training-time fields) decode into it with those fields left zero.
type savedDetector struct {
	Version   int
	Model     string
	Threshold float64
	Workers   int
	Decompose bool
	Diversity ensemble.Diversity
	Params    Params
	Pipeline  *hmd.Pipeline

	// Training-time configuration, persisted since version 2.
	PCA         int
	Seed        int64
	MaxSamples  float64
	MaxFeatures float64
}

// Save serializes the trained detector to w (gob encoding) so a service
// can train once and serve many. Everything needed for inference — fitted
// scaler, PCA basis, every trained ensemble member, threshold and model
// name — is included, along with the training-time configuration, so Load
// restores a detector with identical decisions and an identical Info.
func (d *Detector) Save(w io.Writer) error {
	if d.pipe == nil {
		return errors.New("detector: cannot save an untrained detector")
	}
	err := gob.NewEncoder(w).Encode(savedDetector{
		Version:     serialVersion,
		Model:       d.cfg.model,
		Threshold:   d.cfg.threshold,
		Workers:     d.cfg.workers,
		Decompose:   d.cfg.decompose,
		Diversity:   d.cfg.diversity,
		Params:      d.cfg.params,
		Pipeline:    d.pipe,
		PCA:         d.cfg.pca,
		Seed:        d.cfg.seed,
		MaxSamples:  d.cfg.maxSamples,
		MaxFeatures: d.cfg.maxFeatures,
	})
	if err != nil {
		return fmt.Errorf("detector: save: %w", err)
	}
	return nil
}

// SaveFile writes the detector to path crash-safely: the gob stream goes
// to a temp file in the same directory, is fsynced, and is renamed into
// place. A concurrent reader — the daemon's -watch poller, an admin load
// — sees either the previous complete model or the new complete model,
// never a torn write; a crash mid-save leaves the previous file intact.
func (d *Detector) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("detector: save: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = d.Save(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("detector: save: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("detector: save: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("detector: save: %w", err)
	}
	return nil
}

// Load deserializes a detector previously written by Save. The loaded
// detector serves assessments immediately; custom (non-built-in) member
// types must have been registered — via Register's prototypes or a gob
// registration — before Load.
//
// Version-1 streams still load: they predate the persisted training-time
// configuration, so the loaded detector's Info reports default PCA, seed
// and subsample fractions (inference is unaffected — the fitted pipeline
// stages themselves were always serialized).
func Load(r io.Reader) (*Detector, error) {
	var g savedDetector
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("detector: load: %w", err)
	}
	if g.Version < 1 || g.Version > serialVersion {
		return nil, fmt.Errorf("detector: load: unsupported format version %d", g.Version)
	}
	if g.Pipeline == nil {
		return nil, errors.New("detector: load: no pipeline in stream")
	}
	cfg := defaults()
	cfg.model = canonical(g.Model)
	cfg.threshold = g.Threshold
	cfg.workers = g.Workers
	cfg.decompose = g.Decompose
	cfg.diversity = g.Diversity
	cfg.params = g.Params
	cfg.m = g.Pipeline.Members()
	cfg.pca = g.PCA
	cfg.seed = g.Seed
	cfg.maxSamples = g.MaxSamples
	cfg.maxFeatures = g.MaxFeatures
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("detector: load: %w", err)
	}
	return &Detector{cfg: cfg, pipe: g.Pipeline}, nil
}
