package detector

import (
	"testing"

	"trusthmd/internal/gen"
)

// The zero-allocation contract of the inference hot path (README
// "Performance"): steady-state batched assessment through a reused
// BatchScratch performs no heap allocations at all, single-sample Assess
// allocates only its result's VoteDist, and the streaming window costs
// nothing between assessment boundaries. CI runs these under
// `-run TestAllocs -count=1` (the make benchcmp job), so a regression
// that re-introduces garbage into the hot path fails the build even when
// it is too small to trip the ns/op gate.

// allocDetector trains the paper's RF detector pinned to one worker: the
// goroutine fan-out of the parallel member partition is the one part of
// the batched path that is allowed to allocate.
func allocDetector(t *testing.T) (*Detector, [][]float64) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	s, err := gen.DVFSWithSizes(5, gen.Sizes{Train: 280, Test: 160, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(s.Train, WithModel("rf"), WithEnsembleSize(11), WithSeed(1), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	X := make([][]float64, s.Test.Len())
	for i := range X {
		X[i] = s.Test.At(i).Features
	}
	return d, X
}

func TestAllocsAssessBatchInto(t *testing.T) {
	d, X := allocDetector(t)
	var sc BatchScratch
	if _, err := d.AssessBatchInto(&sc, X); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := d.AssessBatchInto(&sc, X); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state AssessBatchInto allocates %.1f times per batch, want 0", allocs)
	}
}

func TestAllocsAssess(t *testing.T) {
	d, X := allocDetector(t)
	if _, err := d.Assess(X[0]); err != nil { // warm the pipeline pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := d.Assess(X[0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("steady-state Assess allocates %.1f times per sample, want <= 1 (the VoteDist)", allocs)
	}
}

func TestAllocsOnlinePush(t *testing.T) {
	d, _ := allocDetector(t)

	// Window maintenance between assessment boundaries allocates nothing.
	o, err := NewOnline(d, StreamConfig{Levels: 8, Window: 64, Stride: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	state := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := o.Push(state & 7); err != nil {
			t.Fatal(err)
		}
		state++
	})
	if allocs > 0 {
		t.Fatalf("steady-state Online.Push allocates %.2f times per sample, want 0", allocs)
	}

	// A memo-hit assessment boundary allocates only the result's VoteDist.
	o2, err := NewOnline(d, StreamConfig{Levels: 8, Window: 64, Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 130; i++ { // fill the window and warm the memo
		if _, _, err := o2.Push(3); err != nil {
			t.Fatal(err)
		}
	}
	allocs = testing.AllocsPerRun(50, func() {
		if _, ok, err := o2.Push(3); err != nil || !ok {
			t.Fatalf("push: ok=%v err=%v", ok, err)
		}
	})
	if allocs > 1 {
		t.Fatalf("memo-hit Online.Push allocates %.1f times per decision, want <= 1 (the VoteDist)", allocs)
	}
}
