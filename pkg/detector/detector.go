// Package detector is the public, serving-oriented front door to the
// trusted hardware-based malware detector (HMD) of the source paper. It
// wraps the implementation core in internal/hmd behind one coherent API:
//
//   - New builds a Detector from a training split with functional options
//     (WithModel, WithPCA, WithThreshold, WithWorkers, ...).
//   - Assess produces a Result — prediction, vote-entropy uncertainty, vote
//     distribution, Benign/Malware/Reject decision and (optionally) the
//     aleatoric/epistemic decomposition — in one pass over member outputs.
//   - AssessBatch / AssessDataset amortise feature scaling and PCA across
//     a whole batch (one matrix projection instead of n vector
//     projections) and fan member inference out over a worker pool.
//   - Register plugs new base-classifier families into the open model
//     registry without touching internal/hmd.
//   - Save / Load serialize trained pipelines so a service can train once
//     and serve many.
//   - Online, Retrainer and DriftMonitor provide the deployment loop of
//     the paper's Fig. 1: streaming decisions, forensic retraining and
//     drift alarms.
//
// A trained Detector is immutable and safe for concurrent use.
package detector

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"trusthmd/internal/core"
	"trusthmd/internal/hmd"
	"trusthmd/internal/ml/linear"
	"trusthmd/pkg/dataset"
	"trusthmd/pkg/linalg"
)

// Decision is a trusted-HMD verdict: accept the prediction as Benign or
// Malware, or Reject and route the input to an analyst.
type Decision int

// The three trusted decisions. Values mirror internal/core's decision
// encoding (asserted by a package test) so Save/Load and the serving wire
// formats are unaffected by the exported type.
const (
	Benign Decision = iota
	Malware
	Reject
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Benign:
		return "benign"
	case Malware:
		return "malware"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// Decomposition splits a prediction's total uncertainty into aleatoric
// (data noise) and epistemic (model disagreement) components. All values
// are in bits; Total = Aleatoric + Epistemic.
type Decomposition struct {
	Total     float64
	Aleatoric float64
	Epistemic float64
}

// DominantSource names the larger component of the decomposition:
// "epistemic" for out-of-distribution-style uncertainty (actionable by
// collecting data and retraining), "aleatoric" for class overlap
// (actionable only by changing sensors/features), or "none" when the
// prediction is confident (total below the given floor).
func (d Decomposition) DominantSource(confidentBelow float64) string {
	return core.Decomposition(d).DominantSource(confidentBelow)
}

// Result is the detector's per-input output.
type Result struct {
	// Prediction is the ensemble's plurality label (0 benign, 1 malware).
	Prediction int
	// Entropy is the vote-entropy uncertainty in bits.
	Entropy float64
	// VoteDist is the normalised member-vote distribution.
	VoteDist []float64
	// Decision applies the detector's rejection threshold to the
	// prediction: Benign, Malware, or Reject.
	Decision Decision
	// Decomposition is the aleatoric/epistemic split of the uncertainty;
	// nil unless the detector was built WithDecomposition(true).
	Decomposition *Decomposition
}

// Detector is a trained trusted HMD ready to serve traffic.
type Detector struct {
	cfg  config
	pipe *hmd.Pipeline
}

// New trains a detector on the training split. Options default to the
// paper's deployment configuration: a 25-member random forest, no PCA,
// rejection threshold 0.40.
func New(train *dataset.Dataset, opts ...Option) (*Detector, error) {
	cfg, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	builder, err := builderFor(cfg.model)
	if err != nil {
		return nil, err
	}
	pipe, err := hmd.Train(train, hmd.Config{
		NewMember:     builder(cfg.params),
		M:             cfg.m,
		PCAComponents: cfg.pca,
		Seed:          cfg.seed,
		Diversity:     cfg.diversity,
		MaxSamples:    cfg.maxSamples,
		MaxFeatures:   cfg.maxFeatures,
		Workers:       cfg.workers,
	})
	if err != nil {
		return nil, fmt.Errorf("detector: train %s: %w", cfg.model, err)
	}
	return &Detector{cfg: cfg, pipe: pipe}, nil
}

// Model returns the registry name of the detector's base-classifier family.
func (d *Detector) Model() string { return d.cfg.model }

// Threshold returns the entropy rejection threshold in use.
func (d *Detector) Threshold() float64 { return d.cfg.threshold }

// Members returns the number of trained ensemble members.
func (d *Detector) Members() int { return d.pipe.Members() }

// InputDim returns the raw feature dimensionality the pipeline was fitted
// on — the length Assess expects of its input vectors. Serving layers use
// it to reject malformed requests before they reach the pipeline.
func (d *Detector) InputDim() int { return d.pipe.InputDim() }

// Info is an exported snapshot of a detector's configuration: everything a
// serving layer needs to describe a loaded model, and everything Save
// persists about how the pipeline was trained.
type Info struct {
	// Model is the registry name of the base-classifier family.
	Model string `json:"model"`
	// Members is the trained ensemble size.
	Members int `json:"members"`
	// InputDim is the raw feature dimensionality Assess expects.
	InputDim int `json:"input_dim"`
	// PCA is the number of principal components (0 = no PCA stage).
	PCA int `json:"pca,omitempty"`
	// Seed fixed the training-time randomness.
	Seed int64 `json:"seed"`
	// Threshold is the entropy rejection threshold in bits.
	Threshold float64 `json:"threshold"`
	// Workers caps assessment parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Diversity names the member-diversification scheme.
	Diversity string `json:"diversity"`
	// MaxSamples / MaxFeatures are the bagging subsample fractions
	// (0 = full size / all features).
	MaxSamples  float64 `json:"max_samples,omitempty"`
	MaxFeatures float64 `json:"max_features,omitempty"`
	// Decompose reports whether results carry the aleatoric/epistemic
	// uncertainty split.
	Decompose bool `json:"decompose,omitempty"`
}

// Info returns the detector's configuration snapshot.
func (d *Detector) Info() Info {
	return Info{
		Model:       d.cfg.model,
		Members:     d.pipe.Members(),
		InputDim:    d.pipe.InputDim(),
		PCA:         d.cfg.pca,
		Seed:        d.cfg.seed,
		Threshold:   d.cfg.threshold,
		Workers:     d.cfg.workers,
		Diversity:   d.cfg.diversity.String(),
		MaxSamples:  d.cfg.maxSamples,
		MaxFeatures: d.cfg.maxFeatures,
		Decompose:   d.cfg.decompose,
	}
}

// Options reconstructs the option list that reproduces this
// configuration through New — the bridge from a served model's snapshot
// back to training: a retraining loop reads the live shard's Info and
// trains the replacement with the same family, ensemble shape and
// decision policy (callers append e.g. WithSeed to vary what they must).
func (i Info) Options() []Option {
	opts := []Option{
		WithModel(i.Model),
		WithEnsembleSize(i.Members),
		WithPCA(i.PCA),
		WithSeed(i.Seed),
		WithThreshold(i.Threshold),
		WithDiversity(i.Diversity),
		WithMaxSamples(i.MaxSamples),
		WithMaxFeatures(i.MaxFeatures),
		WithDecomposition(i.Decompose),
	}
	if i.Workers > 0 {
		opts = append(opts, WithWorkers(i.Workers))
	}
	return opts
}

// WithOptions returns a detector sharing this one's trained pipeline but
// with decision-time options (threshold, workers, decomposition) replaced.
// Training-time options are ignored: the pipeline is not refitted and the
// trained configuration (model, ensemble shape, seeds) is kept as-is.
func (d *Detector) WithOptions(opts ...Option) (*Detector, error) {
	cfg := d.cfg
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	// Training-time fields cannot change without refitting; restore them so
	// the returned detector never misreports (or mis-saves) its pipeline.
	cfg.model, cfg.m, cfg.pca, cfg.seed = d.cfg.model, d.cfg.m, d.cfg.pca, d.cfg.seed
	cfg.diversity, cfg.maxSamples, cfg.maxFeatures = d.cfg.diversity, d.cfg.maxSamples, d.cfg.maxFeatures
	cfg.params = d.cfg.params
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, pipe: d.pipe}, nil
}

// Assess runs the trusted path on one raw feature vector. Projection and
// vote buffers come from a per-pipeline scratch pool, so the steady state
// allocates only the result's VoteDist.
func (d *Detector) Assess(x []float64) (Result, error) {
	if d.cfg.decompose {
		z, err := d.pipe.Project(x)
		if err != nil {
			return Result{}, fmt.Errorf("detector: %w", err)
		}
		return d.assessProjected(z)
	}
	a, err := d.pipe.AssessPooled(x)
	if err != nil {
		return Result{}, fmt.Errorf("detector: %w", err)
	}
	return d.finishResult(a, nil)
}

// Predict runs the untrusted path: the plain majority-vote label without
// uncertainty bookkeeping.
func (d *Detector) Predict(x []float64) (int, error) {
	p, err := d.pipe.Predict(x)
	if err != nil {
		return 0, fmt.Errorf("detector: %w", err)
	}
	return p, nil
}

// Posterior returns the averaged member posterior (the paper's Eq. 3).
func (d *Detector) Posterior(x []float64) ([]float64, error) {
	p, err := d.pipe.Posterior(x)
	if err != nil {
		return nil, fmt.Errorf("detector: %w", err)
	}
	return p, nil
}

// AssessBatch assesses a batch of raw feature vectors. Scaling and PCA run
// once over the whole batch as matrix operations into pooled scratch, and
// member inference walks the batch member-by-member (fanned out over the
// detector's worker pool) so each member's model state stays cache-hot
// across every sample; results are element-wise identical to calling
// Assess on each vector. The returned results are independently owned —
// callers that can reuse one workspace across calls should prefer
// AssessBatchInto, which drives the same path with zero steady-state
// allocations.
func (d *Detector) AssessBatch(X [][]float64) ([]Result, error) {
	if len(X) == 0 {
		return nil, errors.New("detector: empty batch")
	}
	s := batchScratchPool.Get().(*BatchScratch)
	defer batchScratchPool.Put(s)
	return d.assessScratchRows(s, X, true)
}

// AssessBatchWith is AssessBatch over a caller-owned workspace: projection
// matrices, transpose and vote histograms live in s and are reused across
// calls, while the returned results (and their VoteDist slices) are
// independently allocated and safe to retain. It suits long-lived serving
// loops — one scratch per worker keeps the hot buffers thread-private and
// cache-resident without the pool's cross-worker churn. Results are
// element-wise identical to AssessBatch.
func (d *Detector) AssessBatchWith(s *BatchScratch, X [][]float64) ([]Result, error) {
	if len(X) == 0 {
		return nil, errors.New("detector: empty batch")
	}
	return d.assessScratchRows(s, X, true)
}

// AssessDataset assesses every sample of a dataset through the batched
// path.
func (d *Detector) AssessDataset(ds *dataset.Dataset) ([]Result, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("detector: empty dataset")
	}
	s := batchScratchPool.Get().(*BatchScratch)
	defer batchScratchPool.Put(s)
	s.loadMatrix(ds.X())
	return d.assessScratch(s, true)
}

func (d *Detector) assessMatrix(M *linalg.Matrix) ([]Result, error) {
	Z, err := d.pipe.ProjectBatch(M)
	if err != nil {
		return nil, fmt.Errorf("detector: %w", err)
	}
	n := Z.Rows()
	out := make([]Result, n)
	workers := d.cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if out[i], err = d.assessProjected(Z.Row(i)); err != nil {
				return nil, fmt.Errorf("detector: sample %d: %w", i, err)
			}
		}
		return out, nil
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		errs = make([]error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := d.assessProjected(Z.Row(i))
				if err != nil {
					errs[w] = fmt.Errorf("detector: sample %d: %w", i, err)
					return
				}
				out[i] = r
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return out, nil
}

// assessProjected builds a full Result from an already-projected vector in
// one pass over the ensemble's member outputs, through the pooled vote
// buffers on the non-decomposing path.
func (d *Detector) assessProjected(z []float64) (Result, error) {
	var (
		a   hmd.Assessment
		dec *Decomposition
		err error
	)
	if d.cfg.decompose {
		var dc core.Decomposition
		a, dc, err = d.pipe.AssessDecomposeProjected(z)
		dec = new(Decomposition)
		*dec = Decomposition(dc)
	} else {
		a, err = d.pipe.AssessProjectedPooled(z)
	}
	if err != nil {
		return Result{}, err
	}
	return d.finishResult(a, dec)
}

// finishResult applies the rejection threshold to an assessment.
func (d *Detector) finishResult(a hmd.Assessment, dec *Decomposition) (Result, error) {
	decision, err := core.Rejector{Threshold: d.cfg.threshold}.Decide(a.Prediction, a.Entropy)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Prediction:    a.Prediction,
		Entropy:       a.Entropy,
		VoteDist:      a.VoteDist,
		Decision:      Decision(decision),
		Decomposition: dec,
	}, nil
}

// Truncated returns a detector view restricted to the first m ensemble
// members, sharing the trained pipeline stages with the receiver. It powers
// entropy-vs-ensemble-size sweeps (the paper's Fig. 9a) without refitting.
func (d *Detector) Truncated(m int) (*Detector, error) {
	pipe, err := d.pipe.Truncated(m)
	if err != nil {
		return nil, fmt.Errorf("detector: %w", err)
	}
	return &Detector{cfg: d.cfg, pipe: pipe}, nil
}

// Predictions extracts the per-sample predictions from a batch of results.
func Predictions(rs []Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Prediction
	}
	return out
}

// Entropies extracts the per-sample entropies from a batch of results.
func Entropies(rs []Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Entropy
	}
	return out
}

// IsNoConvergence reports whether err stems from an ensemble member that
// failed to converge during training (the paper's SVM-on-HPC observation).
// Experiment harnesses use it to exclude a family rather than abort.
func IsNoConvergence(err error) bool {
	var nc *linear.ErrNoConvergence
	return errors.As(err, &nc)
}
