//go:build !race

package detector

const raceEnabled = false
