package detector

import (
	"trusthmd/internal/ml/bayes"
	"trusthmd/internal/ml/knn"
	"trusthmd/internal/ml/linear"
	"trusthmd/internal/ml/tree"
	"trusthmd/pkg/model"
)

// The built-in base-classifier families: the paper's three (random forest,
// logistic regression, SVM) plus the Gaussian NB and kNN extensions from
// the Zhou et al. candidate list. Their concrete types gob-self-register in
// the internal/ml packages, so Save/Load works without prototypes here.
func init() {
	Register("rf", func(p Params) model.Factory {
		return func(seed int64) model.Classifier {
			// MaxFeatures -1 resolves to sqrt(d) at fit time.
			return tree.New(tree.Config{
				MaxFeatures: -1,
				MaxDepth:    p.TreeMaxDepth,
				MinLeaf:     p.TreeMinLeaf,
				Seed:        seed,
			})
		}
	})
	Register("lr", func(Params) model.Factory {
		return func(seed int64) model.Classifier {
			return linear.NewLogistic(linear.LogisticConfig{Seed: seed, Epochs: 20, Batch: 16})
		}
	})
	Register("svm", func(p Params) model.Factory {
		return func(seed int64) model.Classifier {
			return linear.NewSVM(linear.SVMConfig{Seed: seed, Epochs: 100, MaxObjective: p.SVMMaxObjective})
		}
	})
	Register("nb", func(Params) model.Factory {
		return func(int64) model.Classifier {
			return bayes.New(bayes.Config{})
		}
	})
	Register("knn", func(Params) model.Factory {
		return func(int64) model.Classifier {
			return knn.New(knn.Config{K: 5})
		}
	})
}
