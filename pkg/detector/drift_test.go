package detector

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func baselineEntropies(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 0.15 // confident in-distribution entropies
	}
	return out
}

func TestNewDriftMonitorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewDriftMonitor(baselineEntropies(rng, 5), DriftConfig{Threshold: 0.4}); err == nil {
		t.Fatal("expected baseline size error")
	}
	if _, err := NewDriftMonitor(baselineEntropies(rng, 50), DriftConfig{Threshold: -1}); err == nil {
		t.Fatal("expected threshold error")
	}
	m, err := NewDriftMonitor(baselineEntropies(rng, 50), DriftConfig{Threshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if m.BaselineRejectRate() != 0 {
		t.Fatalf("baseline rate %v", m.BaselineRejectRate())
	}
}

func TestDriftQuietOnInDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := NewDriftMonitor(baselineEntropies(rng, 200), DriftConfig{Threshold: 0.4, Window: 40})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		st, err := m.Observe(rng.Float64() * 0.15)
		if err != nil {
			t.Fatal(err)
		}
		if st.Alarm {
			t.Fatalf("false alarm at step %d: %+v", i, st)
		}
	}
}

func TestDriftAlarmsOnShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewDriftMonitor(baselineEntropies(rng, 200), DriftConfig{Threshold: 0.4, Window: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Quiet phase.
	for i := 0; i < 60; i++ {
		if _, err := m.Observe(rng.Float64() * 0.15); err != nil {
			t.Fatal(err)
		}
	}
	// Compromise phase: high-entropy windows.
	alarmed := false
	for i := 0; i < 60; i++ {
		st, err := m.Observe(0.5 + rng.Float64()*0.4)
		if err != nil {
			t.Fatal(err)
		}
		if st.Alarm {
			alarmed = true
			if !st.RateAlarm && !st.KSAlarm {
				t.Fatal("alarm without a firing detector")
			}
			break
		}
	}
	if !alarmed {
		t.Fatal("drift not detected")
	}
}

func TestDriftKSDetectsSubThresholdShift(t *testing.T) {
	// A shift that stays below the rejection threshold: the rate detector
	// is blind, the KS detector must fire.
	rng := rand.New(rand.NewSource(4))
	m, err := NewDriftMonitor(baselineEntropies(rng, 300), DriftConfig{Threshold: 0.4, Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	var last DriftStatus
	for i := 0; i < 120; i++ {
		st, err := m.Observe(0.25 + rng.Float64()*0.1) // 0.25-0.35, below 0.4
		if err != nil {
			t.Fatal(err)
		}
		last = st
		if st.Alarm {
			if st.RateAlarm {
				t.Fatal("rate detector should be blind to sub-threshold shift")
			}
			return
		}
	}
	t.Fatalf("KS detector missed sub-threshold shift: %+v", last)
}

func TestDriftQuietUntilWindowFills(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := NewDriftMonitor(baselineEntropies(rng, 100), DriftConfig{Threshold: 0.4, Window: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 29; i++ {
		st, err := m.Observe(0.99)
		if err != nil {
			t.Fatal(err)
		}
		if st.Alarm {
			t.Fatalf("alarm before window filled at %d", i)
		}
	}
	st, err := m.Observe(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Alarm {
		t.Fatal("expected alarm once window filled with high entropies")
	}
}

func TestDriftReset(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, err := NewDriftMonitor(baselineEntropies(rng, 100), DriftConfig{Threshold: 0.4, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := m.Observe(0.99); err != nil {
			t.Fatal(err)
		}
	}
	m.Reset()
	st, err := m.Observe(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if st.Alarm {
		t.Fatal("reset must clear the window")
	}
}

func TestDriftResetReleasesWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, err := NewDriftMonitor(baselineEntropies(rng, 100), DriftConfig{Threshold: 0.4, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := m.Observe(0.99); err != nil {
			t.Fatal(err)
		}
	}
	m.Reset()
	if m.recent != nil || m.head != 0 || m.count != 0 {
		t.Fatalf("Reset kept the stale backing array: recent=%v head=%d count=%d", m.recent, m.head, m.count)
	}
	// The monitor refills and alarms again after a reset.
	var st DriftStatus
	for i := 0; i < 10; i++ {
		if st, err = m.Observe(0.99); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Alarm {
		t.Fatal("monitor dead after Reset")
	}
}

// TestDriftObserveSteadyStateAllocs pins the bugfix: the ring must not
// re-allocate once the window has filled (the append/reslice form grew a
// fresh backing array on every observation).
func TestDriftObserveSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, err := NewDriftMonitor(baselineEntropies(rng, 50), DriftConfig{Threshold: 0.4, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := m.Observe(0.1); err != nil {
			t.Fatal(err)
		}
	}
	before := m.recent
	for i := 0; i < 100; i++ {
		if _, err := m.Observe(0.1); err != nil {
			t.Fatal(err)
		}
	}
	if &before[0] != &m.recent[0] || len(m.recent) != 10 {
		t.Fatal("ring re-allocated in steady state")
	}
}

func TestDriftObserveRejectsNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := NewDriftMonitor(baselineEntropies(rng, 100), DriftConfig{Threshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(-0.1); err == nil {
		t.Fatal("expected negative entropy error")
	}
}

func TestDriftObserveRejectsNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := NewDriftMonitor(baselineEntropies(rng, 100), DriftConfig{Threshold: 0.4, Window: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := m.Observe(bad); err == nil {
			t.Fatalf("Observe(%v) accepted a non-finite entropy", bad)
		}
	}
	// A rejected observation must not advance the ring: ten good
	// observations after the rejects still fill exactly one window.
	for i := 0; i < 10; i++ {
		if _, err := m.Observe(0.1); err != nil {
			t.Fatal(err)
		}
	}
	if m.count != 10 {
		t.Fatalf("rejected entropies advanced the window: count=%d", m.count)
	}
}

func TestNewDriftMonitorRejectsEmptyBaseline(t *testing.T) {
	_, err := NewDriftMonitor(nil, DriftConfig{Threshold: 0.4})
	if err == nil {
		t.Fatal("expected empty-baseline error")
	}
	if !strings.Contains(err.Error(), "got none") {
		t.Fatalf("empty baseline should get its own message, got: %v", err)
	}
	if _, err := NewDriftMonitor([]float64{}, DriftConfig{Threshold: 0.4}); err == nil {
		t.Fatal("expected empty-baseline error for zero-length slice")
	}
}

func TestNewDriftMonitorRejectsNonFiniteBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, bad := range []float64{math.NaN(), math.Inf(1), -0.5} {
		base := baselineEntropies(rng, 50)
		base[17] = bad
		if _, err := NewDriftMonitor(base, DriftConfig{Threshold: 0.4}); err == nil {
			t.Fatalf("baseline containing %v accepted", bad)
		}
	}
}
