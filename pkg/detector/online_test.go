package detector

import (
	"math/rand"
	"testing"

	"trusthmd/internal/dvfs"
	"trusthmd/internal/workload"
)

func onlineDetector(t *testing.T) *Detector {
	t.Helper()
	s := dvfsSplits(t)
	d, err := New(s.Train, WithModel("rf"), WithEnsembleSize(11), WithSeed(20))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewOnlineValidation(t *testing.T) {
	d := onlineDetector(t)
	cases := map[string]StreamConfig{
		"levels": {Levels: 1, Window: 16},
		"window": {Levels: 8, Window: 1},
	}
	for name, cfg := range cases {
		if _, err := NewOnline(d, cfg); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := NewOnline(nil, StreamConfig{Levels: 8, Window: 16}); err == nil {
		t.Fatal("expected nil detector error")
	}
}

func TestOnlineStream(t *testing.T) {
	d := onlineDetector(t)
	o, err := NewOnline(d, StreamConfig{Levels: 8, Window: 256, Stride: 128})
	if err != nil {
		t.Fatal(err)
	}

	// Stream a miner trace: decisions should flow once the window fills.
	sim, err := dvfs.NewSimulator(dvfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var miner workload.DVFSBehavior
	for _, a := range workload.DVFSApps() {
		if a.Name == "miner_a" {
			miner = a
		}
	}
	rng := rand.New(rand.NewSource(21))
	decisions := 0
	malware := 0
	for i := 0; i < 4; i++ {
		trace, err := sim.Trace(miner, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range trace {
			res, ok, err := o.Push(st)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				decisions++
				if res.Decision == Malware {
					malware++
				}
			}
		}
	}
	if decisions == 0 {
		t.Fatal("no decisions emitted")
	}
	if o.Stats.Total() != decisions || o.Stats.Windows != decisions {
		t.Fatalf("stats mismatch: %+v vs %d", o.Stats, decisions)
	}
	if float64(malware)/float64(decisions) < 0.6 {
		t.Fatalf("miner stream should mostly flag malware: %d/%d", malware, decisions)
	}
}

func TestOnlineStrideControlsRate(t *testing.T) {
	d := onlineDetector(t)
	o, err := NewOnline(d, StreamConfig{Levels: 8, Window: 64, Stride: 16})
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	for i := 0; i < 256; i++ {
		_, ok, err := o.Push(i % 8)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			emitted++
		}
	}
	// Window fills at 64, then one decision per 16 samples: 1 + (256-64)/16.
	want := 1 + (256-64)/16
	if emitted != want {
		t.Fatalf("emitted %d decisions, want %d", emitted, want)
	}
}

func TestOnlineRejectsBadState(t *testing.T) {
	d := onlineDetector(t)
	o, err := NewOnline(d, StreamConfig{Levels: 8, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.Push(8); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, _, err := o.Push(-1); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestOnlineStatsZero(t *testing.T) {
	var s OnlineStats
	if s.RejectedFraction() != 0 || s.Total() != 0 {
		t.Fatal("zero stats")
	}
}
