package detector

import (
	"math/rand"
	"testing"

	"trusthmd/internal/dvfs"
	"trusthmd/internal/feature"
	"trusthmd/internal/workload"
)

func onlineDetector(t *testing.T) *Detector {
	t.Helper()
	s := dvfsSplits(t)
	d, err := New(s.Train, WithModel("rf"), WithEnsembleSize(11), WithSeed(20))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewOnlineValidation(t *testing.T) {
	d := onlineDetector(t)
	cases := map[string]StreamConfig{
		"levels": {Levels: 1, Window: 16},
		"window": {Levels: 8, Window: 1},
	}
	for name, cfg := range cases {
		if _, err := NewOnline(d, cfg); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := NewOnline(nil, StreamConfig{Levels: 8, Window: 16}); err == nil {
		t.Fatal("expected nil detector error")
	}
}

func TestOnlineStream(t *testing.T) {
	d := onlineDetector(t)
	o, err := NewOnline(d, StreamConfig{Levels: 8, Window: 256, Stride: 128})
	if err != nil {
		t.Fatal(err)
	}

	// Stream a miner trace: decisions should flow once the window fills.
	sim, err := dvfs.NewSimulator(dvfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var miner workload.DVFSBehavior
	for _, a := range workload.DVFSApps() {
		if a.Name == "miner_a" {
			miner = a
		}
	}
	rng := rand.New(rand.NewSource(21))
	decisions := 0
	malware := 0
	for i := 0; i < 4; i++ {
		trace, err := sim.Trace(miner, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range trace {
			res, ok, err := o.Push(st)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				decisions++
				if res.Decision == Malware {
					malware++
				}
			}
		}
	}
	if decisions == 0 {
		t.Fatal("no decisions emitted")
	}
	if o.Stats.Total() != decisions || o.Stats.Windows != decisions {
		t.Fatalf("stats mismatch: %+v vs %d", o.Stats, decisions)
	}
	if float64(malware)/float64(decisions) < 0.6 {
		t.Fatalf("miner stream should mostly flag malware: %d/%d", malware, decisions)
	}
}

func TestOnlineStrideControlsRate(t *testing.T) {
	d := onlineDetector(t)
	o, err := NewOnline(d, StreamConfig{Levels: 8, Window: 64, Stride: 16})
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	for i := 0; i < 256; i++ {
		_, ok, err := o.Push(i % 8)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			emitted++
		}
	}
	// Window fills at 64, then one decision per 16 samples: 1 + (256-64)/16.
	want := 1 + (256-64)/16
	if emitted != want {
		t.Fatalf("emitted %d decisions, want %d", emitted, want)
	}
}

func TestOnlineStrideLargerThanWindow(t *testing.T) {
	// stride > window subsamples the stream: the window fills at 16 but
	// decisions only fire every 32 samples.
	d := onlineDetector(t)
	o, err := NewOnline(d, StreamConfig{Levels: 8, Window: 16, Stride: 32})
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	for i := 0; i < 256; i++ {
		_, ok, err := o.Push(i % 8)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			emitted++
		}
	}
	if want := 256 / 32; emitted != want {
		t.Fatalf("emitted %d decisions, want %d", emitted, want)
	}
}

// TestOnlineOverlapMatchesNaive checks the ring buffer against a naive
// sliding window: with stride < window, every emitted decision must be
// identical to assessing the corresponding slice of the raw stream —
// transition and autocorrelation features are order-sensitive, so this
// fails if the ring is linearised in the wrong order.
func TestOnlineOverlapMatchesNaive(t *testing.T) {
	d := onlineDetector(t)
	const levels, window, stride = 8, 64, 16
	o, err := NewOnline(d, StreamConfig{Levels: levels, Window: window, Stride: stride})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	stream := make([]int, 0, 4*window)
	var got []Result
	for i := 0; i < 4*window; i++ {
		st := rng.Intn(levels)
		stream = append(stream, st)
		res, ok, err := o.Push(st)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			got = append(got, res)
		}
		if !ok {
			continue
		}
		// Assess the same window naively from the raw stream.
		feats, err := feature.DVFSVector(stream[len(stream)-window:], levels)
		if err != nil {
			t.Fatal(err)
		}
		want, err := d.Assess(feats)
		if err != nil {
			t.Fatal(err)
		}
		if res.Prediction != want.Prediction || res.Entropy != want.Entropy || res.Decision != want.Decision {
			t.Fatalf("window ending at %d: ring decision %+v != naive %+v", len(stream), res, want)
		}
	}
	if want := 1 + (4*window-window)/stride; len(got) != want {
		t.Fatalf("emitted %d decisions, want %d", len(got), want)
	}
}

// TestOnlineAssessErrorKeepsState drives the streaming detector into a
// failing Assess (the stream's DVFS ladder does not match the trained
// feature dimensionality) and requires the window and stride bookkeeping
// to survive: the error is surfaced on every push past the trigger point,
// the ring keeps sliding, and no phantom decisions are tallied.
func TestOnlineAssessErrorKeepsState(t *testing.T) {
	d := onlineDetector(t) // trained on the 8-level ladder (17 features)
	const levels, window = 4, 16
	o, err := NewOnline(d, StreamConfig{Levels: levels, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < window-1; i++ {
		if _, ok, err := o.Push(i % levels); err != nil || ok {
			t.Fatalf("push %d: ok=%v err=%v before window filled", i, ok, err)
		}
	}
	// The window fills here; features have the wrong width, so Assess fails.
	if _, _, err := o.Push(0); err == nil {
		t.Fatal("expected dimension-mismatch error at window fill")
	}
	if o.filled != window || o.sinceLast < o.stride {
		t.Fatalf("error corrupted state: filled=%d sinceLast=%d", o.filled, o.sinceLast)
	}
	// Subsequent pushes keep the sample, retry, and keep failing loudly —
	// the stream never silently drops windows.
	for i := 0; i < 2*window; i++ {
		if _, _, err := o.Push(i % levels); err == nil {
			t.Fatal("expected persistent error, got silent success")
		}
	}
	if o.filled != window {
		t.Fatalf("ring stopped sliding: filled=%d", o.filled)
	}
	if o.Stats.Total() != 0 || o.Stats.Windows != 0 {
		t.Fatalf("failed assessments leaked into stats: %+v", o.Stats)
	}
	// An out-of-range sample is rejected without touching the window.
	head, filled, since := o.head, o.filled, o.sinceLast
	if _, _, err := o.Push(levels); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if o.head != head || o.filled != filled || o.sinceLast != since {
		t.Fatal("rejected sample mutated window state")
	}
}

func TestOnlineRejectsBadState(t *testing.T) {
	d := onlineDetector(t)
	o, err := NewOnline(d, StreamConfig{Levels: 8, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.Push(8); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, _, err := o.Push(-1); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

// TestOnlinePushMemoisation streams windows that repeat exactly (a steady
// telemetry phase) interleaved with changing ones, and checks that repeats
// are served from the projected-vector memo with decisions identical to
// the unmemoised path.
func TestOnlinePushMemoisation(t *testing.T) {
	d := onlineDetector(t)
	const levels, window, stride = 8, 64, 16
	o, err := NewOnline(d, StreamConfig{Levels: levels, Window: window, Stride: stride})
	if err != nil {
		t.Fatal(err)
	}
	// Pattern with period 8: every stride of 16 slides the window onto an
	// identical copy of itself, so all decisions after the first are hits.
	decisions := 0
	for i := 0; i < 4*window; i++ {
		res, ok, err := o.Push(i % levels)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		decisions++
		// Every decision must match the naive unmemoised assessment.
		win := make([]int, window)
		for j := range win {
			j0 := i - window + 1 + j
			win[j] = j0 % levels
		}
		feats, err := feature.DVFSVector(win, levels)
		if err != nil {
			t.Fatal(err)
		}
		want, err := d.Assess(feats)
		if err != nil {
			t.Fatal(err)
		}
		if res.Prediction != want.Prediction || res.Entropy != want.Entropy || res.Decision != want.Decision {
			t.Fatalf("push %d: memoised decision %+v != naive %+v", i, res, want)
		}
	}
	if decisions < 2 {
		t.Fatalf("only %d decisions emitted", decisions)
	}
	if want := decisions - 1; o.Stats.CacheHits != want {
		t.Fatalf("cache hits %d, want %d (every repeat after the first window)", o.Stats.CacheHits, want)
	}

	// A genuinely new window must miss the cache and still be correct.
	hits := o.Stats.CacheHits
	for i := 0; ; i++ {
		_, ok, err := o.Push((i / 2) % levels) // different pattern
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			break
		}
	}
	if o.Stats.CacheHits != hits {
		t.Fatal("changed window wrongly served from cache")
	}
}

func TestOnlineStatsZero(t *testing.T) {
	var s OnlineStats
	if s.RejectedFraction() != 0 || s.Total() != 0 {
		t.Fatal("zero stats")
	}
}
