package detector

import (
	"errors"
	"fmt"

	"trusthmd/pkg/dataset"
)

// Retrainer implements the feedback loop sketched in the paper's
// introduction: rejected inputs are collected as forensic data, an analyst
// assigns them ground-truth labels, and once enough labelled forensics
// accumulate the detector is retrained with the new workload class folded
// into its training set. After retraining, the formerly-unknown workload
// is in distribution: its predictive entropy drops and it is classified
// rather than rejected.
//
// Retrainer is not safe for concurrent use.
type Retrainer struct {
	base     *dataset.Dataset
	opts     []Option
	baseSeed int64
	quorum   int
	pending  *dataset.Dataset
	rounds   int
}

// NewRetrainer wraps the original training set and the detector options
// used for (re)training. quorum is the number of labelled forensic samples
// required before ShouldRetrain reports true (minimum 1). The options are
// resolved eagerly so misconfiguration surfaces here, not at the first
// retraining round.
func NewRetrainer(train *dataset.Dataset, quorum int, opts ...Option) (*Retrainer, error) {
	if train == nil || train.Len() == 0 {
		return nil, errors.New("detector: retrainer needs a non-empty training set")
	}
	if quorum < 1 {
		return nil, fmt.Errorf("detector: retrainer quorum %d must be >=1", quorum)
	}
	cfg, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	if _, err := builderFor(cfg.model); err != nil {
		return nil, err
	}
	return &Retrainer{
		base:     train,
		opts:     append([]Option(nil), opts...),
		baseSeed: cfg.seed,
		quorum:   quorum,
		pending:  dataset.New(train.Dim()),
	}, nil
}

// ReportRejection records one rejected input together with the analyst's
// verdict. app identifies the workload for bookkeeping (it becomes the
// sample's application tag in the augmented training set).
func (r *Retrainer) ReportRejection(features []float64, analystLabel int, app string) error {
	if err := r.pending.Add(dataset.Sample{
		Features: append([]float64(nil), features...),
		Label:    analystLabel,
		App:      app,
	}); err != nil {
		return fmt.Errorf("detector: report rejection: %w", err)
	}
	return nil
}

// Forensic is one rejected input with its (analyst- or policy-assigned)
// label, the batched form of ReportRejection used when forensics are
// assembled from a verdict store rather than reported one by one.
type Forensic struct {
	Features []float64
	Label    int
	// App tags the workload in the augmented training set (for stored
	// verdicts, typically derived from the device that produced them).
	App string
}

// ReportForensics records a batch of rejected inputs at once — the bulk
// path a retraining controller uses after draining a verdict store's
// rejected records. The batch is all-or-nothing: on a malformed sample
// nothing is recorded and the pending set is unchanged.
func (r *Retrainer) ReportForensics(fs []Forensic) error {
	batch := dataset.New(r.pending.Dim())
	for i, f := range fs {
		if err := batch.Add(dataset.Sample{
			Features: append([]float64(nil), f.Features...),
			Label:    f.Label,
			App:      f.App,
		}); err != nil {
			return fmt.Errorf("detector: report forensics: sample %d: %w", i, err)
		}
	}
	merged, err := r.pending.Merge(batch)
	if err != nil {
		return fmt.Errorf("detector: report forensics: %w", err)
	}
	r.pending = merged
	return nil
}

// Pending returns the number of labelled forensic samples not yet folded
// into a retraining round.
func (r *Retrainer) Pending() int { return r.pending.Len() }

// Rounds returns the number of completed retraining rounds.
func (r *Retrainer) Rounds() int { return r.rounds }

// ShouldRetrain reports whether the forensic quorum has been reached.
func (r *Retrainer) ShouldRetrain() bool { return r.pending.Len() >= r.quorum }

// Retrain merges the forensic samples into the training set and trains a
// fresh detector. The forensic buffer is drained into the base set, so
// subsequent rounds build on all evidence gathered so far. The training
// seed is advanced every round so retrained ensembles are independent.
func (r *Retrainer) Retrain() (*Detector, error) {
	if r.pending.Len() == 0 {
		return nil, errors.New("detector: no forensic samples to retrain on")
	}
	merged, err := r.base.Merge(r.pending)
	if err != nil {
		return nil, fmt.Errorf("detector: retrain merge: %w", err)
	}
	opts := append(append([]Option(nil), r.opts...), WithSeed(r.baseSeed+int64(r.rounds+1)))
	d, err := New(merged, opts...)
	if err != nil {
		return nil, fmt.Errorf("detector: retrain: %w", err)
	}
	r.base = merged
	r.pending = dataset.New(merged.Dim())
	r.rounds++
	return d, nil
}

// TrainingSize returns the current size of the (augmented) training set.
func (r *Retrainer) TrainingSize() int { return r.base.Len() }
