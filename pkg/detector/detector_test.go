package detector

import (
	"math"
	"strings"
	"testing"

	"trusthmd/internal/gen"
	"trusthmd/pkg/linalg"
	"trusthmd/pkg/model"
)

func dvfsSplits(t testing.TB) gen.Splits {
	t.Helper()
	s, err := gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 140, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func trainRF(t testing.TB, opts ...Option) (*Detector, gen.Splits) {
	t.Helper()
	s := dvfsSplits(t)
	d, err := New(s.Train, append([]Option{WithModel("rf"), WithEnsembleSize(11), WithSeed(1)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return d, s
}

func TestNewDefaultsAndAssess(t *testing.T) {
	d, s := trainRF(t)
	if d.Model() != "rf" || d.Threshold() != DefaultThreshold || d.Members() != 11 {
		t.Fatalf("detector state: model=%s threshold=%v members=%d", d.Model(), d.Threshold(), d.Members())
	}
	correct := 0
	for i := 0; i < s.Test.Len(); i++ {
		smp := s.Test.At(i)
		r, err := d.Assess(smp.Features)
		if err != nil {
			t.Fatal(err)
		}
		if r.Prediction == smp.Label {
			correct++
		}
		if r.Entropy < 0 || r.Entropy > 1 {
			t.Fatalf("entropy %v out of range", r.Entropy)
		}
		var sum float64
		for _, v := range r.VoteDist {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("vote dist sums to %v", sum)
		}
		if r.Entropy <= d.Threshold() && r.Decision == Reject {
			t.Fatal("confident prediction rejected")
		}
		if r.Entropy > d.Threshold() && r.Decision != Reject {
			t.Fatal("uncertain prediction accepted")
		}
		if r.Decomposition != nil {
			t.Fatal("decomposition present without WithDecomposition")
		}
	}
	if frac := float64(correct) / float64(s.Test.Len()); frac < 0.9 {
		t.Fatalf("test accuracy %v", frac)
	}
}

func TestOptionValidation(t *testing.T) {
	s := dvfsSplits(t)
	cases := map[string][]Option{
		"unknown model":  {WithModel("bogus")},
		"bad size":       {WithEnsembleSize(0)},
		"bad threshold":  {WithThreshold(-0.1)},
		"bad diversity":  {WithDiversity("chaos")},
		"bad maxsamples": {WithMaxSamples(1.5)},
		"bad pca":        {WithPCA(-1)},
	}
	for name, opts := range cases {
		if _, err := New(s.Train, opts...); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := New(nil); err == nil {
		t.Fatal("expected empty training set error")
	}
}

func TestRegistryExtension(t *testing.T) {
	// A new family plugs in through exported types only: a majority-class
	// stump, registered under a fresh name. TryRegister (tolerating the
	// leftover from an earlier -count run — the registry is package-global)
	// rather than Register, so the suite stays idempotent.
	err := TryRegister("test-stump", func(Params) model.Factory {
		return func(int64) model.Classifier { return &stump{} }
	}, &stump{})
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	found := false
	for _, m := range Models() {
		if m == "test-stump" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered family missing from Models(): %v", Models())
	}
	s := dvfsSplits(t)
	d, err := New(s.Train, WithModel("TEST-STUMP"), WithEnsembleSize(5), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Assess(s.Test.At(0).Features)
	if err != nil {
		t.Fatal(err)
	}
	if r.Prediction != 0 && r.Prediction != 1 {
		t.Fatalf("stump prediction %d", r.Prediction)
	}
}

// stump predicts the majority class of its training labels.
type stump struct{ Class int }

func (s *stump) Fit(X *linalg.Matrix, y []int) error {
	ones := 0
	for _, lab := range y {
		if lab == 1 {
			ones++
		}
	}
	if 2*ones > len(y) {
		s.Class = 1
	}
	return nil
}

func (s *stump) Predict([]float64) int { return s.Class }

func TestModelsListsBuiltins(t *testing.T) {
	have := map[string]bool{}
	for _, m := range Models() {
		have[m] = true
	}
	for _, want := range []string{"rf", "lr", "svm", "nb", "knn"} {
		if !have[want] {
			t.Fatalf("builtin %q missing from registry: %v", want, Models())
		}
	}
}

func TestWithDecomposition(t *testing.T) {
	s := dvfsSplits(t)
	d, err := New(s.Train,
		WithModel("rf"), WithEnsembleSize(9), WithSeed(2),
		WithTreeLimits(0, 25), WithDecomposition(true))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := d.AssessDataset(s.Unknown)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Decomposition == nil {
			t.Fatalf("sample %d: missing decomposition", i)
		}
		dc := r.Decomposition
		if dc.Aleatoric < 0 || dc.Epistemic < 0 {
			t.Fatalf("sample %d: negative component %+v", i, dc)
		}
		if diff := dc.Total - dc.Aleatoric - dc.Epistemic; math.Abs(diff) > 1e-9 {
			t.Fatalf("sample %d: decomposition identity violated: %+v", i, dc)
		}
	}
}

func TestTruncatedMatchesFull(t *testing.T) {
	d, s := trainRF(t)
	x := s.Unknown.At(0).Features
	full, err := d.Assess(x)
	if err != nil {
		t.Fatal(err)
	}
	tFull, err := d.Truncated(11)
	if err != nil {
		t.Fatal(err)
	}
	r, err := tFull.Assess(x)
	if err != nil {
		t.Fatal(err)
	}
	if r.Entropy != full.Entropy || r.Prediction != full.Prediction {
		t.Fatal("full truncation must equal Assess")
	}
	t3, err := d.Truncated(3)
	if err != nil {
		t.Fatal(err)
	}
	if t3.Members() != 3 {
		t.Fatalf("truncated members %d", t3.Members())
	}
	if _, err := d.Truncated(0); err == nil {
		t.Fatal("expected range error")
	}
}

func TestWithOptionsRethreshold(t *testing.T) {
	d, s := trainRF(t)
	strict, err := d.WithOptions(WithThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	lax, err := d.WithOptions(WithThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	x := s.Unknown.At(0).Features
	rs, err := strict.Assess(x)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := lax.Assess(x)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Entropy != rl.Entropy {
		t.Fatal("threshold must not change the assessment")
	}
	if rs.Entropy > 0 && rs.Decision != Reject {
		t.Fatal("strict view must reject any uncertainty")
	}
	if rl.Decision == Reject {
		t.Fatal("lax view must accept everything")
	}
	if _, err := d.WithOptions(WithThreshold(-1)); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := d.WithOptions(WithDiversity("chaos")); err == nil {
		t.Fatal("expected option error to surface")
	}
	// Training-time options must not take effect without a refit.
	same, err := d.WithOptions(WithModel("lr"), WithEnsembleSize(99))
	if err != nil {
		t.Fatal(err)
	}
	if same.Model() != d.Model() || same.Members() != d.Members() {
		t.Fatalf("training-time options leaked into trained detector: %s/%d", same.Model(), same.Members())
	}
}

func TestPosteriorAndPredict(t *testing.T) {
	d, s := trainRF(t)
	x := s.Test.At(0).Features
	post, err := d.Posterior(x)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range post {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posterior sums to %v", sum)
	}
	pred, err := d.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Assess(x)
	if err != nil {
		t.Fatal(err)
	}
	if pred != r.Prediction {
		t.Fatal("Predict and Assess must agree")
	}
	if _, err := d.Assess([]float64{1, 2}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSVMNonConvergenceDetection(t *testing.T) {
	s, err := gen.HPCWithSizes(5, gen.Sizes{Train: 2800, Test: 700, Unknown: 500})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(s.Train, WithModel("svm"), WithEnsembleSize(3), WithSeed(5), WithSVMMaxObjective(0.3))
	if err == nil {
		t.Fatal("SVM should fail to converge on HPC data")
	}
	if !IsNoConvergence(err) {
		t.Fatalf("error %v should be detected as non-convergence", err)
	}
}

// TestInfoOptionsRoundTrip pins Info.Options as the bridge from a served
// snapshot back to training: a detector built with the reconstructed
// options reports an identical Info (and, with the same data and seed,
// identical decisions).
func TestInfoOptionsRoundTrip(t *testing.T) {
	s := dvfsSplits(t)
	d, err := New(s.Train,
		WithModel("rf"), WithEnsembleSize(9), WithPCA(6), WithSeed(21),
		WithThreshold(0.35), WithDiversity("random-init"), WithMaxSamples(0.8),
		WithDecomposition(true), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	info := d.Info()
	rebuilt, err := New(s.Train, info.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	if got := rebuilt.Info(); got != info {
		t.Fatalf("Options() round trip diverged:\n got %+v\nwant %+v", got, info)
	}
	want, err := d.AssessDataset(s.Test)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rebuilt.AssessDataset(s.Test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].Decision != got[i].Decision || want[i].Entropy != got[i].Entropy {
			t.Fatalf("sample %d: rebuilt detector diverged", i)
		}
	}
}
