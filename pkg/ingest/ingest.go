// Package ingest is the telemetry front door of the daemon's closed
// loop: pluggable Sources (a polling drop directory, an in-process /
// HTTP push queue) feed feature-vector events through one bounded,
// backpressure-aware Pump into whatever Handler the daemon wires in —
// in practice the Fleet's assess path, so every ingested window becomes
// a stored, drift-monitored verdict.
//
// Sources are at-least-once: the DirSource keeps a processed-file
// journal (written atomically via temp-file + rename) so restarts skip
// work already done, but a crash mid-file may replay that file's tail.
// Handlers must tolerate duplicates — assessment is idempotent, so the
// daemon's loop does by construction.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one telemetry observation: a feature vector from a device,
// optionally pinned to a model route.
type Event struct {
	// Device routes the event (consistent-hash) and keys per-device drift
	// tracking downstream.
	Device string `json:"device,omitempty"`
	// Model explicitly selects a shard; empty routes by Device.
	Model string `json:"model,omitempty"`
	// Features is the raw feature vector.
	Features []float64 `json:"features"`
	// Time is when the telemetry was captured (zero = now at handling).
	Time time.Time `json:"time,omitempty"`
}

// Sink accepts one event on behalf of the pump; sources call it from
// Run. It blocks while the pump's queue is full (backpressure) and
// returns the context's error once ctx is done.
type Sink func(ctx context.Context, ev Event) error

// Source produces events. Run delivers every event through emit and
// returns when the source is exhausted or ctx is done; a nil return
// means a clean end.
type Source interface {
	// Name identifies the source in logs and stats.
	Name() string
	Run(ctx context.Context, emit Sink) error
}

// Handler consumes one event — the daemon wires this to Fleet.Assess.
// An error counts against Stats.Failed; the pump keeps going.
type Handler func(ctx context.Context, ev Event) error

// ErrBusy is returned by Push when the queue is full: the caller (the
// HTTP ingest endpoint) should shed with a retry hint rather than block
// a request goroutine.
var ErrBusy = errors.New("ingest: queue full")

// ErrStopped is returned by Push once the pump's Run has returned.
var ErrStopped = errors.New("ingest: pump stopped")

// Config tunes the pump; the zero value gets sane defaults.
type Config struct {
	// Queue is the fan-in buffer depth (default 1024). When full, source
	// Sinks block (backpressure) and Push sheds with ErrBusy.
	Queue int
	// Workers is how many goroutines drain the queue into the Handler
	// (default 2).
	Workers int
	// Logf, when set, receives source lifecycle and handler-error lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Queue <= 0 {
		c.Queue = 1024
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Stats is a point-in-time snapshot of the pump.
type Stats struct {
	// Enqueued counts events accepted into the queue (sources + Push);
	// Handled those the Handler finished (success or failure); Failed the
	// subset whose Handler returned an error; Shed the Push calls bounced
	// with ErrBusy.
	Enqueued int64 `json:"enqueued"`
	Handled  int64 `json:"handled"`
	Failed   int64 `json:"failed,omitempty"`
	Shed     int64 `json:"shed,omitempty"`
	// Lag is the current queue depth — events accepted but not yet
	// handled.
	Lag int `json:"lag"`
	// Sources is the number of registered sources.
	Sources int `json:"sources"`
}

// Pump fans events from all registered sources (and Push) into the
// Handler through one bounded queue. Register sources with Add before
// Run; Push works any time between Run's start and return.
type Pump struct {
	cfg     Config
	handler Handler

	mu      sync.Mutex
	sources []Source
	running bool

	queue chan Event
	// qmu orders Push's send against Run's close of the queue: Push holds
	// the read side, the shutdown path takes the write side before
	// closing, so a late Push sheds with ErrStopped instead of panicking
	// on a closed channel.
	qmu     sync.RWMutex
	qclosed bool

	enqueued atomic.Int64
	handled  atomic.Int64
	failed   atomic.Int64
	shed     atomic.Int64
}

// NewPump builds a pump delivering events to h.
func NewPump(h Handler, cfg Config) *Pump {
	if h == nil {
		panic("ingest: nil handler")
	}
	cfg = cfg.withDefaults()
	return &Pump{
		cfg:     cfg,
		handler: h,
		queue:   make(chan Event, cfg.Queue),
	}
}

// Add registers a source. It must be called before Run.
func (p *Pump) Add(src Source) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.running {
		panic("ingest: Add after Run")
	}
	p.sources = append(p.sources, src)
}

// Push enqueues one event without blocking: ErrBusy when the queue is
// full, ErrStopped once the pump has shut down. It is the entry point
// for the HTTP ingest endpoint, where shedding beats blocking.
func (p *Pump) Push(ev Event) error {
	p.qmu.RLock()
	defer p.qmu.RUnlock()
	if p.qclosed {
		return ErrStopped
	}
	select {
	case p.queue <- ev:
		p.enqueued.Add(1)
		return nil
	default:
		p.shed.Add(1)
		return ErrBusy
	}
}

// Run starts the workers and all registered sources and blocks until
// ctx is done and the queue has drained. It returns the first source
// error (context cancellation excluded), if any.
func (p *Pump) Run(ctx context.Context) error {
	p.mu.Lock()
	if p.running {
		p.mu.Unlock()
		return errors.New("ingest: pump already running")
	}
	p.running = true
	sources := p.sources
	p.mu.Unlock()

	// emit blocks while the queue is full — that is the backpressure that
	// slows a fast source down to the Handler's pace.
	emit := func(ctx context.Context, ev Event) error {
		select {
		case p.queue <- ev:
			p.enqueued.Add(1)
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	var srcWG sync.WaitGroup
	errc := make(chan error, len(sources))
	for _, src := range sources {
		srcWG.Add(1)
		go func(src Source) {
			defer srcWG.Done()
			p.cfg.Logf("ingest: source %s started", src.Name())
			if err := src.Run(ctx, emit); err != nil && !errors.Is(err, context.Canceled) {
				p.cfg.Logf("ingest: source %s: %v", src.Name(), err)
				errc <- fmt.Errorf("source %s: %w", src.Name(), err)
			}
		}(src)
	}

	var workWG sync.WaitGroup
	for i := 0; i < p.cfg.Workers; i++ {
		workWG.Add(1)
		go func() {
			defer workWG.Done()
			for ev := range p.queue {
				// The handler gets a background context: once an event is
				// accepted it is processed even while the pump winds down,
				// so "zero lost requests" holds across shutdown.
				if err := p.handler(context.Background(), ev); err != nil {
					p.failed.Add(1)
					p.cfg.Logf("ingest: handler: %v", err)
				}
				p.handled.Add(1)
			}
		}()
	}

	<-ctx.Done()
	srcWG.Wait() // sources hold emit references; wait before close
	p.qmu.Lock()
	p.qclosed = true
	close(p.queue)
	p.qmu.Unlock()
	workWG.Wait()

	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// Lag is the current queue depth: events accepted but not yet handled.
func (p *Pump) Lag() int { return len(p.queue) }

// Stats snapshots the pump's counters.
func (p *Pump) Stats() Stats {
	p.mu.Lock()
	n := len(p.sources)
	p.mu.Unlock()
	return Stats{
		Enqueued: p.enqueued.Load(),
		Handled:  p.handled.Load(),
		Failed:   p.failed.Load(),
		Shed:     p.shed.Load(),
		Lag:      len(p.queue),
		Sources:  n,
	}
}
