package ingest

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// journalName is the processed-file ledger kept inside the watched
// directory; it is never treated as a telemetry drop.
const journalName = ".ingest-journal.json"

// journalEntry fingerprints a processed drop file. A file is reprocessed
// only when its size or mtime changes — rewriting a drop in place counts
// as new telemetry.
type journalEntry struct {
	Size  int64 `json:"size"`
	Mtime int64 `json:"mtime_ns"`
}

// DirConfig tunes a DirSource; the zero value gets sane defaults.
type DirConfig struct {
	// Poll is the directory scan interval (default 2s).
	Poll time.Duration
	// Model pins every event from this directory to one shard (empty
	// routes per-event by device).
	Model string
	// Logf, when set, receives per-file processing lines.
	Logf func(format string, args ...any)
}

// DirSource polls a drop directory for CSV telemetry files and emits one
// Event per line. The line format is
//
//	device,f0,f1,...,f{d-1}
//
// with blank lines and '#' comments skipped. Processed files are recorded
// in a journal (atomic temp-file + rename) so a restart skips them;
// delivery is at-least-once — a crash after emitting but before the
// journal write replays that file.
type DirSource struct {
	dir string
	cfg DirConfig
}

// NewDirSource builds a source polling dir, creating it if missing.
func NewDirSource(dir string, cfg DirConfig) (*DirSource, error) {
	if cfg.Poll <= 0 {
		cfg.Poll = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	return &DirSource{dir: dir, cfg: cfg}, nil
}

// Name identifies the source in logs and stats.
func (d *DirSource) Name() string { return "dir:" + d.dir }

// Run polls the directory until ctx is done, emitting every line of
// every new or changed *.csv file, oldest file first.
func (d *DirSource) Run(ctx context.Context, emit Sink) error {
	journal, err := d.loadJournal()
	if err != nil {
		return err
	}
	ticker := time.NewTicker(d.cfg.Poll)
	defer ticker.Stop()
	for {
		if err := d.scan(ctx, emit, journal); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// scan processes every unseen drop file once, journaling each as it
// completes so a crash loses at most the in-flight file's ledger entry.
func (d *DirSource) scan(ctx context.Context, emit Sink, journal map[string]journalEntry) error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	type drop struct {
		name  string
		entry journalEntry
	}
	var drops []drop
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || name == journalName || !strings.HasSuffix(name, ".csv") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue // racing a concurrent delete
		}
		fp := journalEntry{Size: fi.Size(), Mtime: fi.ModTime().UnixNano()}
		if prev, ok := journal[name]; ok && prev == fp {
			continue
		}
		drops = append(drops, drop{name: name, entry: fp})
	}
	sort.Slice(drops, func(i, j int) bool {
		if drops[i].entry.Mtime != drops[j].entry.Mtime {
			return drops[i].entry.Mtime < drops[j].entry.Mtime
		}
		return drops[i].name < drops[j].name
	})
	for _, dr := range drops {
		n, err := d.processFile(ctx, emit, filepath.Join(d.dir, dr.name))
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// A malformed drop is logged and journaled (not retried every
			// tick); rewriting it bumps the fingerprint and retries.
			d.cfg.Logf("ingest: %s: %v", dr.name, err)
		} else {
			d.cfg.Logf("ingest: %s: %d events", dr.name, n)
		}
		journal[dr.name] = dr.entry
		if err := d.saveJournal(journal); err != nil {
			return err
		}
	}
	return nil
}

// processFile emits one event per CSV line, returning how many.
func (d *DirSource) processFile(ctx context.Context, emit Sink, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	n := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			return n, fmt.Errorf("line %d: want device,f0,...", lineNo)
		}
		ev := Event{
			Device:   strings.TrimSpace(fields[0]),
			Model:    d.cfg.Model,
			Features: make([]float64, len(fields)-1),
		}
		for i, raw := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
			if err != nil {
				return n, fmt.Errorf("line %d: feature %d: %v", lineNo, i, err)
			}
			ev.Features[i] = v
		}
		if err := emit(ctx, ev); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

func (d *DirSource) journalPath() string { return filepath.Join(d.dir, journalName) }

func (d *DirSource) loadJournal() (map[string]journalEntry, error) {
	journal := make(map[string]journalEntry)
	data, err := os.ReadFile(d.journalPath())
	if os.IsNotExist(err) {
		return journal, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	if err := json.Unmarshal(data, &journal); err != nil {
		// A corrupt journal (should be impossible given the atomic write)
		// degrades to at-least-once: reprocess everything.
		d.cfg.Logf("ingest: resetting corrupt journal: %v", err)
		return make(map[string]journalEntry), nil
	}
	return journal, nil
}

// saveJournal writes the ledger atomically: temp file in the same
// directory, then rename — a reader (or a crashed restart) sees either
// the old journal or the new one, never a torn write.
func (d *DirSource) saveJournal(journal map[string]journalEntry) error {
	data, err := json.Marshal(journal)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	tmp, err := os.CreateTemp(d.dir, journalName+".tmp-*")
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("ingest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ingest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.journalPath()); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	return nil
}
