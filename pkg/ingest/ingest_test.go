package ingest

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// collector is a Handler that records every event it sees.
type collector struct {
	mu     sync.Mutex
	events []Event
}

func (c *collector) handle(_ context.Context, ev Event) error {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
	return nil
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func (c *collector) snapshot() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not met within %v", timeout)
}

func TestPumpPushDeliversAndDrains(t *testing.T) {
	var c collector
	p := NewPump(c.handle, Config{Queue: 8, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()

	for i := 0; i < 20; i++ {
		ev := Event{Device: fmt.Sprintf("dev-%d", i%3), Features: []float64{float64(i)}}
		for {
			err := p.Push(ev)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrBusy) {
				t.Fatalf("Push: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return c.len() == 20 })
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := p.Stats()
	if st.Enqueued != 20 || st.Handled != 20 || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if err := p.Push(Event{}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Push after stop: %v", err)
	}
}

func TestPumpShedsWhenFull(t *testing.T) {
	block := make(chan struct{})
	p := NewPump(func(context.Context, Event) error { <-block; return nil }, Config{Queue: 1, Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()

	// Saturate: one event in the worker, one in the queue, then shed.
	shed := 0
	for i := 0; i < 10; i++ {
		if err := p.Push(Event{}); errors.Is(err, ErrBusy) {
			shed++
		}
	}
	if shed == 0 {
		t.Fatalf("expected ErrBusy under a full queue")
	}
	if p.Stats().Shed == 0 {
		t.Fatalf("shed counter not incremented: %+v", p.Stats())
	}
	close(block)
	cancel()
	<-done
}

// sliceSource emits a fixed set of events, then returns.
type sliceSource struct{ events []Event }

func (s sliceSource) Name() string { return "slice" }
func (s sliceSource) Run(ctx context.Context, emit Sink) error {
	for _, ev := range s.events {
		if err := emit(ctx, ev); err != nil {
			return err
		}
	}
	return nil
}

func TestPumpRunsSources(t *testing.T) {
	var c collector
	p := NewPump(c.handle, Config{Queue: 4, Workers: 1})
	p.Add(sliceSource{events: []Event{
		{Device: "a", Features: []float64{1}},
		{Device: "b", Features: []float64{2}},
		{Device: "c", Features: []float64{3}},
	}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()
	waitFor(t, 2*time.Second, func() bool { return c.len() == 3 })
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st := p.Stats(); st.Sources != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func writeDrop(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatalf("write drop: %v", err)
	}
}

func TestDirSourceProcessesDropsOnce(t *testing.T) {
	dir := t.TempDir()
	writeDrop(t, dir, "a.csv", "# comment\nedge-1,0.1,0.2\nedge-2,0.3,0.4\n\n")
	writeDrop(t, dir, "ignore.txt", "not,a,drop")

	src, err := NewDirSource(dir, DirConfig{Poll: 10 * time.Millisecond, Model: "rf"})
	if err != nil {
		t.Fatalf("NewDirSource: %v", err)
	}
	var c collector
	p := NewPump(c.handle, Config{Queue: 16, Workers: 1})
	p.Add(src)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()

	waitFor(t, 2*time.Second, func() bool { return c.len() == 2 })
	evs := c.snapshot()
	if evs[0].Device != "edge-1" || evs[0].Model != "rf" || len(evs[0].Features) != 2 {
		t.Fatalf("first event: %+v", evs[0])
	}
	if evs[1].Device != "edge-2" || evs[1].Features[1] != 0.4 {
		t.Fatalf("second event: %+v", evs[1])
	}

	// A second drop is picked up by a later poll; the first is not replayed.
	writeDrop(t, dir, "b.csv", "edge-3,1,2,3\n")
	waitFor(t, 2*time.Second, func() bool { return c.len() == 3 })
	if ev := c.snapshot()[2]; ev.Device != "edge-3" || len(ev.Features) != 3 {
		t.Fatalf("third event: %+v", ev)
	}
	// Give the poller a few more ticks: still exactly 3.
	time.Sleep(50 * time.Millisecond)
	if c.len() != 3 {
		t.Fatalf("drops replayed: %d events", c.len())
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalName)); err != nil {
		t.Fatalf("journal missing: %v", err)
	}
}

func TestDirSourceJournalSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	writeDrop(t, dir, "a.csv", "edge-1,1\n")

	run := func() int {
		src, err := NewDirSource(dir, DirConfig{Poll: 10 * time.Millisecond})
		if err != nil {
			t.Fatalf("NewDirSource: %v", err)
		}
		var c collector
		p := NewPump(c.handle, Config{Queue: 4, Workers: 1})
		p.Add(src)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- p.Run(ctx) }()
		time.Sleep(60 * time.Millisecond)
		cancel()
		if err := <-done; err != nil {
			t.Fatalf("Run: %v", err)
		}
		return c.len()
	}
	if n := run(); n != 1 {
		t.Fatalf("first run handled %d events, want 1", n)
	}
	// Restart: the journal marks a.csv done, so nothing replays.
	if n := run(); n != 0 {
		t.Fatalf("second run replayed %d events, want 0", n)
	}
	// Rewriting the drop (new size) makes it new telemetry again.
	writeDrop(t, dir, "a.csv", "edge-1,1\nedge-1,2\n")
	if n := run(); n != 2 {
		t.Fatalf("rewritten drop handled %d events, want 2", n)
	}
}

func TestDirSourceMalformedDropJournaledNotRetried(t *testing.T) {
	dir := t.TempDir()
	writeDrop(t, dir, "bad.csv", "edge-1,not-a-number\n")
	var logged int
	src, err := NewDirSource(dir, DirConfig{
		Poll: 10 * time.Millisecond,
		Logf: func(string, ...any) { logged++ },
	})
	if err != nil {
		t.Fatalf("NewDirSource: %v", err)
	}
	var c collector
	p := NewPump(c.handle, Config{Queue: 4, Workers: 1})
	p.Add(src)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()
	time.Sleep(80 * time.Millisecond)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.len() != 0 {
		t.Fatalf("malformed drop produced %d events", c.len())
	}
	if logged != 1 {
		t.Fatalf("malformed drop logged %d times, want exactly 1 (journaled, not retried)", logged)
	}
}
