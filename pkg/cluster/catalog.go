package cluster

import (
	"sort"
	"sync"
)

// catalog is one node's replica of the cluster model catalog: for each
// shard name, the gob-encoded model bytes by catalog version and which
// version is committed. The coordinator's catalog is the source of truth;
// stage/commit requests replicate entries onto every member during a
// fleet-wide swap, the join response seeds a new member, and ensureLocal
// fetches missing entries on demand — so any node can materialise any
// committed shard without touching the node the model was uploaded to.
//
// Catalog versions are a distribution sequence per name, independent of
// each local fleet's own version counter (which increments per install on
// that node).
type catalog struct {
	mu      sync.Mutex
	entries map[string]*catEntry
}

// keepVersions bounds how many version payloads a name retains: the
// committed one, its predecessor (the rollback target of a failed
// two-phase commit), and one staged candidate.
const keepVersions = 3

type catEntry struct {
	versions  map[uint64][]byte
	committed uint64 // 0 = nothing committed
	prev      uint64 // previously committed version, rollback target
}

// CatalogModel is the wire form of one catalog entry (join responses and
// on-demand fetches carry the bytes; status listings zero them out).
type CatalogModel struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	Data    []byte `json:"data,omitempty"`
}

func newCatalog() *catalog {
	return &catalog{entries: make(map[string]*catEntry)}
}

func (c *catalog) entry(name string) *catEntry {
	e, ok := c.entries[name]
	if !ok {
		e = &catEntry{versions: make(map[uint64][]byte)}
		c.entries[name] = e
	}
	return e
}

// stage stores a version's payload without committing it.
func (c *catalog) stage(name string, version uint64, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entry(name)
	e.versions[version] = data
	c.pruneLocked(e)
}

// abort drops a staged (uncommitted) version.
func (c *catalog) abort(name string, version uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok || version == e.committed {
		return
	}
	delete(e.versions, version)
}

// commit makes a staged version the committed one; ok is false when the
// payload is unknown. Committing the already-committed version is a no-op
// (commits are idempotent — the retry after a partial failure depends on
// it). Version 0 reverts the name to uncommitted: the rollback target for
// a name that had no prior version.
func (c *catalog) commit(name string, version uint64) (data []byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.entries[name]
	if version == 0 {
		if found {
			e.prev, e.committed = e.committed, 0
		}
		return nil, true
	}
	if !found {
		return nil, false
	}
	data, ok = e.versions[version]
	if !ok {
		return nil, false
	}
	if e.committed != version {
		e.prev, e.committed = e.committed, version
	}
	c.pruneLocked(e)
	return data, true
}

// committed returns the committed payload for a name.
func (c *catalog) get(name string) (version uint64, data []byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.entries[name]
	if !found || e.committed == 0 {
		return 0, nil, false
	}
	return e.committed, e.versions[e.committed], true
}

// prevCommitted returns the rollback target for a name: the previously
// committed version (0 when the name was new — rolling back means
// reverting to uncommitted).
func (c *catalog) prevCommitted(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[name]; ok {
		return e.prev
	}
	return 0
}

// nextVersion allocates the next catalog version for a name.
func (c *catalog) nextVersion(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entry(name)
	max := e.committed
	for v := range e.versions {
		if v > max {
			max = v
		}
	}
	return max + 1
}

// names lists every name with a committed version, sorted — the cluster's
// shard set.
func (c *catalog) names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for name, e := range c.entries {
		if e.committed != 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// committedModels exports every committed entry with its payload — the
// join response that seeds a new member's catalog.
func (c *catalog) committedModels() []CatalogModel {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CatalogModel, 0, len(c.entries))
	for name, e := range c.entries {
		if e.committed == 0 {
			continue
		}
		out = append(out, CatalogModel{Name: name, Version: e.committed, Data: e.versions[e.committed]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// pruneLocked drops surplus version payloads, never the committed one or
// its rollback target.
func (c *catalog) pruneLocked(e *catEntry) {
	if len(e.versions) <= keepVersions {
		return
	}
	vs := make([]uint64, 0, len(e.versions))
	for v := range e.versions {
		if v != e.committed && v != e.prev {
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	for _, v := range vs {
		if len(e.versions) <= keepVersions {
			break
		}
		delete(e.versions, v)
	}
}
