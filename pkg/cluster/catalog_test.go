package cluster

import (
	"bytes"
	"reflect"
	"testing"
)

func TestCatalogStageCommit(t *testing.T) {
	c := newCatalog()

	if _, _, ok := c.get("m"); ok {
		t.Fatal("empty catalog must not report a committed version")
	}
	if v := c.nextVersion("m"); v != 1 {
		t.Fatalf("first version of a new name: got %d want 1", v)
	}

	// Commit of an unstaged version must fail — the two-phase protocol
	// depends on commit being able to detect a missing stage.
	if _, ok := c.commit("m", 1); ok {
		t.Fatal("committing an unstaged version must fail")
	}

	c.stage("m", 1, []byte("v1"))
	if _, _, ok := c.get("m"); ok {
		t.Fatal("staged-but-uncommitted must not be visible")
	}
	data, ok := c.commit("m", 1)
	if !ok || !bytes.Equal(data, []byte("v1")) {
		t.Fatalf("commit v1: ok=%v data=%q", ok, data)
	}
	if v, data, ok := c.get("m"); !ok || v != 1 || !bytes.Equal(data, []byte("v1")) {
		t.Fatalf("get after commit: v=%d data=%q ok=%v", v, data, ok)
	}
	// Commits are idempotent (the retry path of a partial phase-2 failure).
	if _, ok := c.commit("m", 1); !ok {
		t.Fatal("re-committing the committed version must succeed")
	}

	if v := c.nextVersion("m"); v != 2 {
		t.Fatalf("next version after v1: got %d want 2", v)
	}
	c.stage("m", 2, []byte("v2"))
	if _, ok := c.commit("m", 2); !ok {
		t.Fatal("commit v2 failed")
	}
	if p := c.prevCommitted("m"); p != 1 {
		t.Fatalf("rollback target after v2: got %d want 1", p)
	}

	// Roll back to v1: the previous payload must still be retained.
	data, ok = c.commit("m", 1)
	if !ok || !bytes.Equal(data, []byte("v1")) {
		t.Fatalf("rollback commit v1: ok=%v data=%q", ok, data)
	}
	if v, _, _ := c.get("m"); v != 1 {
		t.Fatalf("committed version after rollback: got %d want 1", v)
	}
}

// TestCatalogCommitZero: version 0 reverts a name to uncommitted — the
// rollback target when a brand-new name fails mid-rollout.
func TestCatalogCommitZero(t *testing.T) {
	c := newCatalog()
	c.stage("m", 1, []byte("v1"))
	c.commit("m", 1)
	if _, ok := c.commit("m", 0); !ok {
		t.Fatal("commit 0 must succeed")
	}
	if _, _, ok := c.get("m"); ok {
		t.Fatal("commit 0 must revert the name to uncommitted")
	}
	if got := c.names(); len(got) != 0 {
		t.Fatalf("uncommitted names must not be shards, got %v", got)
	}
	// Commit 0 of an unknown name is a no-op, not an error.
	if _, ok := c.commit("ghost", 0); !ok {
		t.Fatal("commit 0 of an unknown name must be ok")
	}
}

func TestCatalogAbort(t *testing.T) {
	c := newCatalog()
	c.stage("m", 1, []byte("v1"))
	c.commit("m", 1)
	c.stage("m", 2, []byte("v2"))
	c.abort("m", 2)
	if _, ok := c.commit("m", 2); ok {
		t.Fatal("an aborted stage must not be committable")
	}
	// Abort must never touch the committed version.
	c.abort("m", 1)
	if v, _, ok := c.get("m"); !ok || v != 1 {
		t.Fatalf("abort clobbered the committed version: v=%d ok=%v", v, ok)
	}
}

// TestCatalogPrune: payload retention is bounded, but the committed
// version and its rollback target always survive.
func TestCatalogPrune(t *testing.T) {
	c := newCatalog()
	for v := uint64(1); v <= 10; v++ {
		c.stage("m", v, []byte{byte(v)})
		c.commit("m", v)
	}
	e := c.entries["m"]
	if len(e.versions) > keepVersions {
		t.Fatalf("retained %d payloads, cap is %d", len(e.versions), keepVersions)
	}
	if _, ok := e.versions[10]; !ok {
		t.Fatal("committed payload pruned")
	}
	if _, ok := e.versions[9]; !ok {
		t.Fatal("rollback payload pruned")
	}
}

func TestCatalogNamesAndExport(t *testing.T) {
	c := newCatalog()
	c.stage("b", 1, []byte("b1"))
	c.commit("b", 1)
	c.stage("a", 1, []byte("a1"))
	c.commit("a", 1)
	c.stage("z", 1, []byte("z1")) // staged only: not a shard

	if got := c.names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("names: %v", got)
	}
	models := c.committedModels()
	if len(models) != 2 || models[0].Name != "a" || models[1].Name != "b" {
		t.Fatalf("committedModels: %+v", models)
	}
	if !bytes.Equal(models[0].Data, []byte("a1")) {
		t.Fatalf("exported payload: %q", models[0].Data)
	}
}
