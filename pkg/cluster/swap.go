package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"

	"trusthmd/pkg/detector"
	"trusthmd/pkg/serve"
)

// Fleet-wide hot swaps: an authenticated POST /v1/models on ANY node
// becomes a two-phase rollout. A follower relays the request to the
// coordinator; the coordinator stages the gob on every alive member
// (phase 1 — any failure aborts everywhere, nothing changed), then
// commits everywhere (phase 2 — each member's commit installs the model
// into its local fleet if it serves the shard, via the same lossless
// Fleet.Swap the single-node admin path uses). A partial phase-2 failure
// rolls the already-committed members back to the previous version, so
// the cluster never settles with nodes split across model versions.

// SwapResponse answers a fleet-wide POST /v1/models.
type SwapResponse struct {
	Name string `json:"name"`
	// Version is the cluster catalog version (a distribution sequence per
	// name, independent of each node's local fleet version counter).
	Version  uint64 `json:"version"`
	Replaced bool   `json:"replaced"`
	// Nodes is how many members staged and committed the model.
	Nodes int           `json:"nodes"`
	Info  detector.Info `json:"info"`
}

// HandleModelLoad implements serve.ClusterHook. Admin auth was already
// enforced by the serve handler.
func (a *Agent) HandleModelLoad(w http.ResponseWriter, r *http.Request, req serve.LoadModelRequest) bool {
	if !a.isCoord.Load() {
		a.relayToCoordinator(w, r, req)
		return true
	}
	data := req.Data
	if req.Path != "" {
		var err error
		if data, err = os.ReadFile(req.Path); err != nil {
			serve.WriteError(w, http.StatusBadRequest, fmt.Sprintf("model %s: %v", req.Name, err))
			return true
		}
	}
	det, err := detector.Load(bytes.NewReader(data))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, fmt.Sprintf("model %s: %v", req.Name, err))
		return true
	}

	_, _, existed := a.cat.get(req.Name)
	version := a.cat.nextVersion(req.Name)
	v := a.view.Load()
	members := v.table.Members

	// Phase 1: stage on every non-dead member. Any failure aborts the
	// rollout everywhere — staging changes nothing observable, so the
	// abort path is free of rollback hazards.
	staged := make([]Member, 0, len(members))
	for _, m := range members {
		if m.State == StateDead {
			continue
		}
		if err := a.stageOn(m, req.Name, version, data); err != nil {
			for _, s := range staged {
				a.abortOn(s, req.Name, version)
			}
			serve.WriteError(w, http.StatusBadGateway,
				fmt.Sprintf("staging %s v%d on %s: %v", req.Name, version, m.ID, err))
			return true
		}
		staged = append(staged, m)
	}

	// Phase 2: commit everywhere. On a partial failure, roll the members
	// that already committed back to the previous version (version 0 — a
	// revert to uncommitted — when the name was new).
	prev := a.cat.prevCommitted(req.Name)
	committed := make([]Member, 0, len(staged))
	for _, m := range staged {
		if err := a.commitOn(m, req.Name, version); err != nil {
			rollback := prev
			if !existed {
				rollback = 0
			}
			for _, c := range committed {
				if rerr := a.commitOn(c, req.Name, rollback); rerr != nil {
					a.cfg.Logf("cluster: rollback of %s on %s failed: %v", req.Name, c.ID, rerr)
				}
			}
			serve.WriteError(w, http.StatusBadGateway,
				fmt.Sprintf("committing %s v%d on %s (rolled back): %v", req.Name, version, m.ID, err))
			return true
		}
		committed = append(committed, m)
	}

	a.publishTable() // a new name extends the cluster shard set
	a.cfg.Logf("cluster: %s rolled out %s v%d to %d nodes", a.cfg.NodeID, req.Name, version, len(committed))
	serve.WriteJSON(w, http.StatusOK, SwapResponse{
		Name:     req.Name,
		Version:  version,
		Replaced: existed,
		Nodes:    len(committed),
		Info:     det.Info(),
	})
	return true
}

// stageOn / commitOn / abortOn run one phase step on one member, locally
// when the member is this node.
func (a *Agent) stageOn(m Member, name string, version uint64, data []byte) error {
	if m.ID == a.cfg.NodeID {
		a.cat.stage(name, version, data)
		return nil
	}
	return a.postJSON(m.Addr, "/cluster/v1/stage", CatalogModel{Name: name, Version: version, Data: data}, nil)
}

func (a *Agent) commitOn(m Member, name string, version uint64) error {
	if m.ID == a.cfg.NodeID {
		data, ok := a.cat.commit(name, version)
		if !ok {
			return fmt.Errorf("version %d of %q is not staged locally", version, name)
		}
		if version == 0 {
			_ = a.fleet.Unload(name)
			return nil
		}
		return a.installCommitted(name, data)
	}
	return a.postJSON(m.Addr, "/cluster/v1/commit", commitRequest{Name: name, Version: version}, nil)
}

func (a *Agent) abortOn(m Member, name string, version uint64) {
	if m.ID == a.cfg.NodeID {
		a.cat.abort(name, version)
		return
	}
	_ = a.postJSON(m.Addr, "/cluster/v1/abort", commitRequest{Name: name, Version: version}, nil)
}

// relayToCoordinator forwards a follower's admin load to the coordinator
// and relays the answer.
func (a *Agent) relayToCoordinator(w http.ResponseWriter, r *http.Request, req serve.LoadModelRequest) {
	coord := ""
	if p := a.coordAddr.Load(); p != nil {
		coord = *p
	}
	if coord == "" {
		serve.WriteError(w, http.StatusServiceUnavailable, "no coordinator known")
		return
	}
	body, err := jsonBody(req)
	if err != nil {
		serve.WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	proxy, err := http.NewRequestWithContext(r.Context(), http.MethodPost, coord+"/v1/models", body)
	if err != nil {
		serve.WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	proxy.Header.Set("Content-Type", "application/json")
	if auth := r.Header.Get("Authorization"); auth != "" {
		proxy.Header.Set("Authorization", auth)
	}
	resp, err := a.cfg.Client.Do(proxy)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		serve.WriteError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("relaying model load to coordinator: %v", err))
		return
	}
	relayResponse(w, resp)
}

// jsonBody marshals v into a reader.
func jsonBody(v any) (io.Reader, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(raw), nil
}
