package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"trusthmd/pkg/serve"
)

// Request forwarding: any node accepts any assessment request; one owned
// by another node is relayed there over plain HTTP with the original body
// and the serve.ForwardedHeader loop guard. The receiving node always
// serves a guarded request locally (installing the shard from the catalog
// on demand), so even a routing disagreement between two nodes' tables
// terminates after one hop.

// forwardSuccessors is how many ring positions a forward tries: the owner
// plus fallbacks. A killed node's shards are served by its first ring
// successor immediately — before the coordinator has even noticed the
// death — which is what makes a node kill lossless for forwarded traffic.
const forwardSuccessors = 3

// ResolveAssess implements serve.ClusterHook: it maps the request onto
// the cluster-wide shard space and decides local versus forward.
func (a *Agent) ResolveAssess(r *http.Request, model, device string) (string, bool) {
	v := a.view.Load()
	if v == nil || v.memberRing.Members() == 0 {
		return model, true // cluster not formed yet: behave standalone
	}
	shard := model
	if shard == "" {
		if device == "" {
			return model, true // default-model requests stay local
		}
		// Device keys hash over the cluster's whole shard set — not the
		// local fleet's — so every node maps a device to the same shard.
		shard = v.shardRing.Lookup(device)
		if shard == "" {
			return model, true
		}
	} else if _, known := v.shardSet[shard]; !known {
		return model, true // not cluster-managed; the local fleet decides
	}
	if r.Header.Get(serve.ForwardedHeader) != "" {
		// Loop guard: a forwarded request is served where it lands.
		a.forwardsIn.Add(1)
		if err := a.ensureLocal(shard); err != nil {
			a.cfg.Logf("cluster: %s cannot materialise %q: %v", a.cfg.NodeID, shard, err)
		}
		return shard, true
	}
	if v.owner(shard) == a.cfg.NodeID {
		if err := a.ensureLocal(shard); err != nil {
			a.cfg.Logf("cluster: %s cannot materialise owned shard %q: %v", a.cfg.NodeID, shard, err)
		}
		return shard, true
	}
	return shard, false
}

// ForwardAssess implements serve.ClusterHook: relay the request to the
// shard's owner, falling over to ring successors on transport errors.
// The successor chain may include this node itself — then the request
// loops back over HTTP with the guard header and is served locally, which
// keeps the fallback logic in one place.
func (a *Agent) ForwardAssess(w http.ResponseWriter, r *http.Request, shard, device string, body []byte) {
	v := a.view.Load()
	if v == nil {
		serve.WriteError(w, http.StatusServiceUnavailable, "cluster view not ready")
		return
	}
	var lastErr error
	for i, id := range v.memberRing.Successors(shard, forwardSuccessors) {
		addr, ok := v.addrs[id]
		if !ok {
			continue
		}
		if i > 0 {
			a.forwardFailovers.Add(1)
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
			addr+r.URL.Path, bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(serve.ForwardedHeader, a.cfg.NodeID)
		resp, err := a.cfg.Client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		a.forwardsOut.Add(1)
		relayResponse(w, resp)
		return
	}
	msg := fmt.Sprintf("no reachable owner for shard %q", shard)
	if lastErr != nil {
		msg = fmt.Sprintf("%s: %v", msg, lastErr)
	}
	w.Header().Set("Retry-After", "1")
	serve.WriteError(w, http.StatusServiceUnavailable, msg)
}

// relayResponse copies a forwarded response back to the client: status,
// the headers that matter (content type, shed backoff), and the body.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
