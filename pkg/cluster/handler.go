package cluster

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"trusthmd/pkg/detector"
	"trusthmd/pkg/serve"
)

// The node-to-node API, mounted under /cluster/v1/ next to the public
// serve mux. All bodies are JSON; when Config.Token is set every request
// requires "Authorization: Bearer <token>".
//
//	POST /cluster/v1/join       join the cluster (coordinator only)
//	POST /cluster/v1/heartbeat  liveness + table pull (coordinator only)
//	POST /cluster/v1/stage      phase 1 of a fleet-wide swap: hold the bytes
//	POST /cluster/v1/commit     phase 2: make a staged version the live one
//	POST /cluster/v1/abort      drop a staged version
//	POST /cluster/v1/push       apply one stream chunk + session state
//	GET  /cluster/v1/model      fetch a committed model payload by name
//
// join and heartbeat on a non-coordinator answer 409 with the believed
// coordinator address, so a node aimed at a demoted member converges.

type joinRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Models are the joiner's disk-loaded detectors, folded into the
	// cluster catalog so any member can serve them.
	Models []CatalogModel `json:"models,omitempty"`
}

type joinResponse struct {
	Table   Table          `json:"table"`
	Catalog []CatalogModel `json:"catalog,omitempty"`
}

type heartbeatRequest struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	Epoch uint64 `json:"epoch"`
}

type heartbeatResponse struct {
	Epoch uint64 `json:"epoch"`
	// Table is included when the caller's epoch is stale — the pull half
	// of table propagation.
	Table *Table `json:"table,omitempty"`
}

type commitRequest struct {
	Name string `json:"name"`
	// Version 0 reverts the name to uncommitted (rollback of a first
	// install).
	Version uint64 `json:"version"`
}

type redirectResponse struct {
	Error       string `json:"error"`
	Coordinator string `json:"coordinator,omitempty"`
}

// pushRequest is one proxied stream chunk: the full session state rides
// along, so the receiving node needs no session registry and any node
// holding the model can continue the stream.
type pushRequest struct {
	Shard  string                 `json:"shard"`
	Device string                 `json:"device,omitempty"`
	Levels int                    `json:"levels"`
	Window int                    `json:"window"`
	Stride int                    `json:"stride,omitempty"`
	State  *detector.SessionState `json:"state,omitempty"`
	States []int                  `json:"states"`
}

// maxClusterBodyBytes bounds node-to-node request bodies; model payloads
// dominate, so it mirrors the admin surface's 64 MiB.
const maxClusterBodyBytes = 64 << 20

// Handler returns the /cluster/v1/* mux. Mount it on the same listener as
// the serve mux (http.ServeMux patterns keep them disjoint).
func (a *Agent) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/v1/join", a.guard(a.handleJoin))
	mux.HandleFunc("/cluster/v1/heartbeat", a.guard(a.handleHeartbeat))
	mux.HandleFunc("/cluster/v1/stage", a.guard(a.handleStage))
	mux.HandleFunc("/cluster/v1/commit", a.guard(a.handleCommit))
	mux.HandleFunc("/cluster/v1/abort", a.guard(a.handleAbort))
	mux.HandleFunc("/cluster/v1/push", a.guard(a.handlePush))
	mux.HandleFunc("/cluster/v1/model", a.guard(a.handleModel))
	return mux
}

// guard enforces the bearer token.
func (a *Agent) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if a.cfg.Token != "" {
			auth := r.Header.Get("Authorization")
			if subtle.ConstantTimeCompare([]byte(auth), []byte("Bearer "+a.cfg.Token)) != 1 {
				serve.WriteError(w, http.StatusUnauthorized, "cluster endpoint requires a valid bearer token")
				return
			}
		}
		h(w, r)
	}
}

// decodeBody decodes a bounded JSON body, answering the error itself.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		serve.WriteError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxClusterBodyBytes))
	if err != nil {
		serve.WriteError(w, http.StatusRequestEntityTooLarge, err.Error())
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		serve.WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// requireCoordinator answers the 409 redirect when this node is not the
// coordinator; true means the caller may proceed.
func (a *Agent) requireCoordinator(w http.ResponseWriter) bool {
	if a.isCoord.Load() {
		return true
	}
	coord := ""
	if p := a.coordAddr.Load(); p != nil {
		coord = *p
	}
	w.Header()["Content-Type"] = []string{"application/json"}
	w.WriteHeader(http.StatusConflict)
	_ = json.NewEncoder(w).Encode(redirectResponse{
		Error:       "not the coordinator",
		Coordinator: coord,
	})
	return false
}

func (a *Agent) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !a.requireCoordinator(w) {
		return
	}
	if req.ID == "" || req.Addr == "" {
		serve.WriteError(w, http.StatusBadRequest, "join needs id and addr")
		return
	}
	changed := a.members.observe(req.ID, req.Addr, a.cfg.now())
	// Fold the joiner's disk-loaded models into the catalog: first writer
	// wins per name (the common case is every node booting with the same
	// model flags, so this is a no-op for all but the first).
	for _, m := range req.Models {
		if _, _, ok := a.cat.get(m.Name); ok || len(m.Data) == 0 {
			continue
		}
		v := a.cat.nextVersion(m.Name)
		a.cat.stage(m.Name, v, m.Data)
		a.cat.commit(m.Name, v)
		changed = true
	}
	if changed {
		a.publishTable()
		a.cfg.Logf("cluster: %s joined via %s, table epoch %d", req.ID, a.cfg.NodeID, a.epoch.Load())
	}
	v := a.view.Load()
	serve.WriteJSON(w, http.StatusOK, joinResponse{
		Table:   v.table,
		Catalog: a.cat.committedModels(),
	})
}

func (a *Agent) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !a.requireCoordinator(w) {
		return
	}
	if a.members.observe(req.ID, req.Addr, a.cfg.now()) {
		a.publishTable()
	}
	v := a.view.Load()
	resp := heartbeatResponse{Epoch: v.table.Epoch}
	if req.Epoch != v.table.Epoch {
		t := v.table
		resp.Table = &t
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

func (a *Agent) handleStage(w http.ResponseWriter, r *http.Request) {
	var req CatalogModel
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" || req.Version == 0 || len(req.Data) == 0 {
		serve.WriteError(w, http.StatusBadRequest, "stage needs name, version and data")
		return
	}
	// Validate before holding: a payload that cannot decode must fail the
	// swap in phase 1, where aborting is free.
	if _, err := detector.Load(bytes.NewReader(req.Data)); err != nil {
		serve.WriteError(w, http.StatusBadRequest, fmt.Sprintf("staged model %s: %v", req.Name, err))
		return
	}
	a.cat.stage(req.Name, req.Version, req.Data)
	serve.WriteJSON(w, http.StatusOK, map[string]any{"staged": req.Name, "version": req.Version})
}

func (a *Agent) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req commitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		serve.WriteError(w, http.StatusBadRequest, "commit needs a name")
		return
	}
	data, ok := a.cat.commit(req.Name, req.Version)
	if !ok {
		serve.WriteError(w, http.StatusConflict,
			fmt.Sprintf("version %d of %q is not staged here", req.Version, req.Name))
		return
	}
	if req.Version == 0 {
		// Rollback of a first install: the shard never existed before, so
		// drop the live copy if one was installed.
		_ = a.fleet.Unload(req.Name)
	} else if err := a.installCommitted(req.Name, data); err != nil {
		serve.WriteError(w, http.StatusInternalServerError,
			fmt.Sprintf("installing %s v%d: %v", req.Name, req.Version, err))
		return
	}
	if a.isCoord.Load() {
		a.publishTable() // a new name extends the shard set
	}
	serve.WriteJSON(w, http.StatusOK, map[string]any{"committed": req.Name, "version": req.Version})
}

func (a *Agent) handleAbort(w http.ResponseWriter, r *http.Request) {
	var req commitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	a.cat.abort(req.Name, req.Version)
	serve.WriteJSON(w, http.StatusOK, map[string]any{"aborted": req.Name, "version": req.Version})
}

// handlePush applies one proxied stream chunk. A shard this node cannot
// materialise answers 503 so the proxy fails over to a ring successor;
// application errors (bad header, invalid state) answer 400/404 and end
// the stream.
func (a *Agent) handlePush(w http.ResponseWriter, r *http.Request) {
	var req pushRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Shard == "" {
		serve.WriteError(w, http.StatusBadRequest, "push needs a shard")
		return
	}
	if err := a.ensureLocal(req.Shard); err != nil {
		w.Header().Set("Retry-After", "1")
		serve.WriteError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	a.forwardsIn.Add(1)
	cfg := detector.StreamConfig{Levels: req.Levels, Window: req.Window, Stride: req.Stride}
	res, err := a.fleet.StreamPush(req.Shard, req.Device, cfg, req.State, req.States)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	serve.WriteJSON(w, http.StatusOK, res)
}

// handleModel serves a committed model payload to members healing their
// catalog replica.
func (a *Agent) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		serve.WriteError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	name := r.URL.Query().Get("name")
	version, data, ok := a.cat.get(name)
	if !ok {
		serve.WriteError(w, http.StatusNotFound, fmt.Sprintf("no committed model %q", name))
		return
	}
	serve.WriteJSON(w, http.StatusOK, CatalogModel{Name: name, Version: version, Data: data})
}

// --- client side -----------------------------------------------------

// remoteError is a non-2xx answer from another node: the status separates
// retriable overload (503) from application rejections.
type remoteError struct {
	status int
	msg    string
}

func (e *remoteError) Error() string { return e.msg }

// postJSON posts a JSON body to another node and decodes the JSON answer
// into out (ignored when nil). Non-2xx answers become *remoteError
// carrying the remote's error message; a 409 becomes *errRedirect.
func (a *Agent) postJSON(addr, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, addr+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if a.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+a.cfg.Token)
	}
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxClusterBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusConflict {
		var rd redirectResponse
		_ = json.Unmarshal(raw, &rd)
		return &errRedirect{coordinator: rd.Coordinator}
	}
	if resp.StatusCode/100 != 2 {
		var er struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &er)
		if er.Error == "" {
			er.Error = resp.Status
		}
		return &remoteError{status: resp.StatusCode, msg: fmt.Sprintf("%s%s: %s", addr, path, er.Error)}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// join dials the configured join target (following coordinator redirects)
// until it succeeds or DeadAfter elapses, then adopts the returned table
// and catalog.
func (a *Agent) join() error {
	target := a.cfg.Join
	deadline := a.cfg.now().Add(a.cfg.DeadAfter)
	req := joinRequest{ID: a.cfg.NodeID, Addr: a.cfg.Advertise, Models: localModels(a.fleet)}
	for {
		var resp joinResponse
		err := a.postJSON(target, "/cluster/v1/join", req, &resp)
		var rd *errRedirect
		switch {
		case err == nil:
			for _, m := range resp.Catalog {
				a.cat.stage(m.Name, m.Version, m.Data)
				a.cat.commit(m.Name, m.Version)
			}
			a.view.Store(buildView(resp.Table))
			a.coordAddr.Store(&target)
			a.cfg.Logf("cluster: %s joined %s (table epoch %d)", a.cfg.NodeID, target, resp.Table.Epoch)
			return nil
		case errors.As(err, &rd) && rd.coordinator != "" && rd.coordinator != target:
			target = rd.coordinator
			continue
		}
		if a.cfg.now().After(deadline) {
			return fmt.Errorf("cluster: joining %s: %w", target, err)
		}
		select {
		case <-a.stop:
			return errors.New("cluster: agent closed while joining")
		case <-time.After(a.cfg.Heartbeat):
		}
	}
}

// heartbeat sends one liveness ping to the coordinator and adopts a
// fresher table when the response carries one.
func (a *Agent) heartbeat() error {
	coord := ""
	if p := a.coordAddr.Load(); p != nil {
		coord = *p
	}
	if coord == "" {
		return errors.New("cluster: no coordinator address")
	}
	var resp heartbeatResponse
	err := a.postJSON(coord, "/cluster/v1/heartbeat", heartbeatRequest{
		ID:    a.cfg.NodeID,
		Addr:  a.cfg.Advertise,
		Epoch: a.viewEpoch(),
	}, &resp)
	var rd *errRedirect
	if errors.As(err, &rd) {
		if rd.coordinator != "" && rd.coordinator != coord {
			a.coordAddr.Store(&rd.coordinator)
		}
		return err
	}
	if err != nil {
		return err
	}
	if resp.Table != nil {
		a.view.Store(buildView(*resp.Table))
	}
	return nil
}

// fetchModel pulls a committed model payload from the coordinator.
func (a *Agent) fetchModel(name string) (CatalogModel, error) {
	coord := ""
	if p := a.coordAddr.Load(); p != nil {
		coord = *p
	}
	if coord == "" {
		return CatalogModel{}, errors.New("no coordinator address")
	}
	req, err := http.NewRequest(http.MethodGet,
		coord+"/cluster/v1/model?name="+url.QueryEscape(name), nil)
	if err != nil {
		return CatalogModel{}, err
	}
	if a.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+a.cfg.Token)
	}
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return CatalogModel{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxClusterBodyBytes))
	if err != nil {
		return CatalogModel{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return CatalogModel{}, fmt.Errorf("fetching model %q: %s", name, resp.Status)
	}
	var m CatalogModel
	if err := json.Unmarshal(raw, &m); err != nil {
		return CatalogModel{}, err
	}
	return m, nil
}
