package ring

import (
	"fmt"
	"testing"
)

func TestDeterministicAndOrderless(t *testing.T) {
	a := New([]string{"alpha", "beta", "gamma"}, 0)
	b := New([]string{"gamma", "alpha", "beta"}, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("device-%d", i)
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("ring depends on construction order for %q", key)
		}
	}
	if New(nil, 0) != nil {
		t.Fatal("empty ring should be nil")
	}
	var nilRing *Ring
	if nilRing.Lookup("x") != "" {
		t.Fatal("nil ring lookup should return empty")
	}
	if nilRing.Successors("x", 2) != nil {
		t.Fatal("nil ring successors should return nil")
	}
	if nilRing.Members() != 0 {
		t.Fatal("nil ring should report zero members")
	}
}

func TestDuplicatesCollapse(t *testing.T) {
	a := New([]string{"a", "b", "a", "b", "a"}, 16)
	if a.Members() != 2 {
		t.Fatalf("duplicate members should collapse: got %d", a.Members())
	}
	b := New([]string{"a", "b"}, 16)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("duplicate members changed routing for %q", key)
		}
	}
}

func TestSpread(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r := New(members, 0)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Lookup(fmt.Sprintf("device-%d", i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		// With 128 virtual nodes per member the split stays near 1/4; a
		// member starved below 10% or hogging above 50% means the ring is
		// broken, not merely unlucky.
		if share < 0.10 || share > 0.50 {
			t.Fatalf("member %s owns %.1f%% of keys: %v", m, 100*share, counts)
		}
	}
}

// TestMinimalRemap is consistent hashing's defining property: when a
// member leaves, only its keys remap — everyone else keeps their owner.
func TestMinimalRemap(t *testing.T) {
	before := New([]string{"a", "b", "c", "d"}, 0)
	after := New([]string{"a", "b", "c"}, 0)
	const n = 4000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("device-%d", i)
		was, is := before.Lookup(key), after.Lookup(key)
		if was == "d" {
			if is == "d" {
				t.Fatalf("key %q still routes to the removed member", key)
			}
			continue // had to move
		}
		if was != is {
			t.Fatalf("key %q moved between surviving members (%s -> %s)", key, was, is)
		}
	}
}

func TestSuccessorsDistinctAndStartAtOwner(t *testing.T) {
	r := New([]string{"n1", "n2", "n3", "n4"}, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("shard-%d", i)
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("want 3 successors, got %v", succ)
		}
		if succ[0] != r.Lookup(key) {
			t.Fatalf("successors must start at the owner: %v vs %s", succ, r.Lookup(key))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("duplicate member in successors: %v", succ)
			}
			seen[m] = true
		}
	}
	// Asking for more members than exist returns them all, once each.
	if got := r.Successors("k", 99); len(got) != 4 {
		t.Fatalf("want all 4 members, got %v", got)
	}
}

// TestSuccessorFailoverIsConsistent: the first successor after the owner
// is exactly where the key lands when the owner leaves the ring — the
// property cluster failover leans on to route around a dead node before
// the coordinator rebuilds the table.
func TestSuccessorFailoverIsConsistent(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4"}
	full := New(members, 0)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("shard-%d", i)
		succ := full.Successors(key, 2)
		owner := succ[0]
		var rest []string
		for _, m := range members {
			if m != owner {
				rest = append(rest, m)
			}
		}
		without := New(rest, 0)
		if got := without.Lookup(key); got != succ[1] {
			t.Fatalf("key %q: successor %s but post-removal owner %s", key, succ[1], got)
		}
	}
}

func TestHashAvalanche(t *testing.T) {
	// Same-prefix keys must not cluster: count bit differences between
	// consecutive keys' hashes — an avalanche keeps them near 32.
	for i := 0; i < 64; i++ {
		a := Hash(fmt.Sprintf("shard#%d", i))
		b := Hash(fmt.Sprintf("shard#%d", i+1))
		diff := 0
		for x := a ^ b; x != 0; x &= x - 1 {
			diff++
		}
		if diff < 10 {
			t.Fatalf("hashes of neighbouring keys differ in only %d bits", diff)
		}
	}
}
