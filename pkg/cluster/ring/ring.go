// Package ring is the repository's one consistent-hash ring: FNV-1a
// hashing with a murmur fmix64 avalanche finisher over a sorted set of
// virtual nodes. It backs every routing level of the system — device →
// shard and device → replica inside one daemon (pkg/serve), and shard →
// node across a cluster (pkg/cluster) — so all three inherit the same
// tested minimal-remap and spread properties.
//
// A Ring is immutable: membership changes rebuild it (construction is
// cheap — sort of members×vnodes points) and lookups on the snapshot are
// lock-free.
package ring

import (
	"sort"
	"strconv"
)

// DefaultVNodes is the default number of virtual nodes per member. More
// vnodes smooth the load split between members at the cost of a larger
// (still tiny) sorted ring.
const DefaultVNodes = 128

type point struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over member names.
type Ring struct {
	points  []point
	members int
}

// New constructs the ring for the given members (order does not matter;
// duplicates collapse). vnodes <= 0 uses DefaultVNodes. Returns nil for an
// empty member set.
func New(members []string, vnodes int) *Ring {
	if len(members) == 0 {
		return nil
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]struct{}, len(members))
	points := make([]point, 0, len(members)*vnodes)
	for _, m := range members {
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		for i := 0; i < vnodes; i++ {
			points = append(points, point{
				hash:   Hash(m + "#" + strconv.Itoa(i)),
				member: m,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Equal hashes (astronomically rare): break the tie by member so
		// the ring is deterministic regardless of input order.
		return points[i].member < points[j].member
	})
	return &Ring{points: points, members: len(seen)}
}

// Lookup maps a key to its member: the first virtual node at or clockwise
// after the key's hash, wrapping around the ring. A nil ring answers "".
func (r *Ring) Lookup(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	return r.points[r.at(key)].member
}

// Successors returns up to n distinct members in clockwise order starting
// at the key's owner — the owner first, then the members a consistent-hash
// failover would promote next. A nil ring answers nil.
func (r *Ring) Successors(key string, n int) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > r.members {
		n = r.members
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i, start := 0, r.at(key); len(out) < n && i < len(r.points); i++ {
		m := r.points[(start+i)%len(r.points)].member
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		out = append(out, m)
	}
	return out
}

// Members reports the number of distinct members on the ring.
func (r *Ring) Members() int {
	if r == nil {
		return 0
	}
	return r.members
}

// at finds the index of the key's owning virtual node.
func (r *Ring) at(key string) int {
	h := Hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Hash is FNV-1a over the key's bytes, finished with a 64-bit avalanche
// mix. The mix matters: raw FNV-1a perturbs the hash by only ~2^46 when
// just the tail bytes differ, so "shard#0".."shard#127" (and "device-1"
// vs "device-2") would cluster into one arc of the ring instead of
// spreading — exactly the keys a consistent-hash ring is fed.
func Hash(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	// Murmur3's fmix64 finalizer: full avalanche, so every input byte
	// flips every output bit with probability ~1/2.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
