package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"trusthmd/pkg/cluster/ring"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/serve"
)

// Config parameterises one cluster agent.
type Config struct {
	// NodeID uniquely names this node in the cluster. Required. IDs also
	// order coordinator promotion: on coordinator loss the lowest-ID
	// surviving member promotes itself.
	NodeID string
	// Advertise is the base URL other nodes reach this node at (scheme +
	// host:port; the serve mux and the /cluster/v1/ mux share it).
	// Required.
	Advertise string
	// Coordinator starts this node as the cluster coordinator. Join is
	// the advertise URL of any running member (normally the coordinator; a
	// follower answers with the coordinator's address). Exactly one of the
	// two must be set.
	Coordinator bool
	Join        string
	// Heartbeat is the follower heartbeat interval and the coordinator
	// sweep interval (default 1s).
	Heartbeat time.Duration
	// SuspectAfter / DeadAfter are the membership expiry thresholds
	// (defaults 3x and 6x Heartbeat). Suspect members keep their shards;
	// dead members leave the ring.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// Token, when set, is required as a bearer token on every
	// /cluster/v1/* request — wire it to the daemon's admin token so the
	// node-to-node surface is no more open than the admin surface.
	Token string
	// Client is the HTTP client for node-to-node calls (default: 10s
	// timeout).
	Client *http.Client
	// Logf receives operational log lines (nil discards).
	Logf func(format string, args ...any)

	// now is the clock, overridable in tests.
	now func() time.Time
}

func (c Config) withDefaults() (Config, error) {
	if c.NodeID == "" {
		return c, errors.New("cluster: NodeID required")
	}
	if c.Advertise == "" {
		return c, errors.New("cluster: Advertise URL required")
	}
	if c.Coordinator == (c.Join != "") {
		return c, errors.New("cluster: exactly one of Coordinator and Join must be set")
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.Heartbeat
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 6 * c.Heartbeat
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c, nil
}

// routeView is one node's immutable snapshot of the cluster routing
// state: the table plus the two rings derived from it. Ownership is pure
// computation — every node holding the same table computes the same
// owners — so the view is rebuilt, never mutated.
type routeView struct {
	table Table
	// memberRing places shards onto non-dead member IDs.
	memberRing *ring.Ring
	// shardRing places device keys onto the cluster-wide shard set.
	shardRing *ring.Ring
	shardSet  map[string]struct{}
	addrs     map[string]string
}

func buildView(t Table) *routeView {
	v := &routeView{
		table:      t,
		memberRing: ring.New(aliveMembers(t.Members), 0),
		shardRing:  ring.New(t.Shards, 0),
		shardSet:   make(map[string]struct{}, len(t.Shards)),
		addrs:      make(map[string]string, len(t.Members)),
	}
	for _, s := range t.Shards {
		v.shardSet[s] = struct{}{}
	}
	for _, m := range t.Members {
		v.addrs[m.ID] = m.Addr
	}
	return v
}

// owner computes the shard's owning node under this view.
func (v *routeView) owner(shard string) string { return v.memberRing.Lookup(shard) }

// Agent is one node's cluster membership: it implements serve.ClusterHook
// (request forwarding, stream proxying, fleet-wide swaps, stats) and
// serves the node-to-node /cluster/v1/* API. Create it with New, mount
// Handler alongside the serve mux, attach it with Server.AttachCluster,
// then Start it.
type Agent struct {
	cfg   Config
	fleet *serve.Fleet
	cat   *catalog

	view atomic.Pointer[routeView]
	// members is authoritative only while this node is coordinator.
	members *memberTable
	isCoord atomic.Bool
	// coordAddr is the follower's current coordinator address.
	coordAddr atomic.Pointer[string]
	// epoch is the coordinator's table generation counter.
	epoch atomic.Uint64

	forwardsIn       atomic.Int64
	forwardsOut      atomic.Int64
	forwardFailovers atomic.Int64
	streamFailovers  atomic.Int64

	// installMu serialises install-on-demand so concurrent forwarded
	// requests for the same missing shard load it once.
	installMu sync.Mutex

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds an agent over the node's local fleet. Call Start to join (or
// form) the cluster.
func New(cfg Config, fleet *serve.Fleet) (*Agent, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	a := &Agent{
		cfg:     cfg,
		fleet:   fleet,
		cat:     newCatalog(),
		members: newMemberTable(),
		stop:    make(chan struct{}),
	}
	a.coordAddr.Store(&cfg.Join)
	return a, nil
}

// NodeID returns the node's cluster identity.
func (a *Agent) NodeID() string { return a.cfg.NodeID }

// Role reports "coordinator" or "follower".
func (a *Agent) Role() string {
	if a.isCoord.Load() {
		return "coordinator"
	}
	return "follower"
}

// Start forms or joins the cluster and launches the background loops
// (coordinator: membership sweep; follower: heartbeats with promotion on
// coordinator loss). A joining node retries until the join target
// answers, bounded by DeadAfter.
func (a *Agent) Start() error {
	if a.cfg.Coordinator {
		a.becomeCoordinator(nil)
	} else {
		if err := a.join(); err != nil {
			return err
		}
		a.wg.Add(1)
		go a.followerLoop()
		return nil
	}
	a.wg.Add(1)
	go a.coordinatorLoop()
	return nil
}

// Close stops the background loops. It does not close the fleet.
func (a *Agent) Close() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.wg.Wait()
}

// becomeCoordinator seeds the authoritative member table (from the last
// known view when promoting, from scratch when flagged at boot), folds
// the local fleet's models into the catalog, and publishes the first
// table.
func (a *Agent) becomeCoordinator(last *routeView) {
	now := a.cfg.now()
	if last != nil {
		a.members.adopt(last.table.Members, now)
		a.members.markDead(last.table.Coordinator)
		a.epoch.Store(last.table.Epoch)
		a.cfg.Logf("cluster: %s promoting to coordinator (previous: %s)", a.cfg.NodeID, last.table.Coordinator)
	}
	a.members.observe(a.cfg.NodeID, a.cfg.Advertise, now)
	a.isCoord.Store(true)
	a.coordAddr.Store(&a.cfg.Advertise)
	a.seedCatalogFromFleet()
	a.publishTable()
}

// seedCatalogFromFleet folds the local fleet's models (loaded from disk
// at boot) into the catalog so any member can materialise them.
func (a *Agent) seedCatalogFromFleet() {
	for _, m := range localModels(a.fleet) {
		if _, _, ok := a.cat.get(m.Name); ok {
			continue
		}
		v := a.cat.nextVersion(m.Name)
		a.cat.stage(m.Name, v, m.Data)
		a.cat.commit(m.Name, v)
	}
}

// localModels exports a fleet's loaded detectors as catalog payloads.
func localModels(f *serve.Fleet) []CatalogModel {
	var out []CatalogModel
	for _, name := range f.Names() {
		det, err := f.Detector(name)
		if err != nil {
			continue
		}
		var buf bytes.Buffer
		if err := det.Save(&buf); err != nil {
			continue
		}
		out = append(out, CatalogModel{Name: name, Version: 1, Data: buf.Bytes()})
	}
	return out
}

// publishTable recomputes the routing table from the member table and
// catalog and stores it as the node's view (coordinator only).
func (a *Agent) publishTable() {
	t := Table{
		Epoch:       a.epoch.Add(1),
		Coordinator: a.cfg.NodeID,
		Members:     a.members.snapshot(),
		Shards:      a.cat.names(),
	}
	a.view.Store(buildView(t))
}

// coordinatorLoop sweeps membership on the heartbeat cadence, republishing
// the table whenever a member's state changes — that is the rebalance: a
// new table means a new alive set, and ownership follows the ring.
func (a *Agent) coordinatorLoop() {
	defer a.wg.Done()
	tick := time.NewTicker(a.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-tick.C:
			now := a.cfg.now()
			// The coordinator is its own heartbeat: without this, the sweep
			// would expire the coordinator's own entry.
			changed := a.members.observe(a.cfg.NodeID, a.cfg.Advertise, now)
			if a.members.sweep(now, a.cfg.SuspectAfter, a.cfg.DeadAfter) || changed {
				a.publishTable()
				a.cfg.Logf("cluster: %s republished table epoch %d", a.cfg.NodeID, a.epoch.Load())
			}
		}
	}
}

// followerLoop heartbeats the coordinator, adopting fresher tables from
// the responses. When the coordinator stays silent past DeadAfter, the
// follower elects: the lowest-ID surviving member promotes itself, the
// rest re-aim their heartbeats at it.
func (a *Agent) followerLoop() {
	defer a.wg.Done()
	tick := time.NewTicker(a.cfg.Heartbeat)
	defer tick.Stop()
	var failedSince time.Time
	for {
		select {
		case <-a.stop:
			return
		case <-tick.C:
			if a.isCoord.Load() {
				// Promoted mid-loop: hand over to the coordinator loop.
				a.wg.Add(1)
				go a.coordinatorLoop()
				return
			}
			if err := a.heartbeat(); err != nil {
				now := a.cfg.now()
				if failedSince.IsZero() {
					failedSince = now
				}
				if now.Sub(failedSince) >= a.cfg.DeadAfter {
					a.elect()
					failedSince = time.Time{}
				}
				continue
			}
			failedSince = time.Time{}
		}
	}
}

// elect reacts to coordinator loss: among the last known non-dead members
// (coordinator excluded), the lowest ID promotes itself; everyone else
// points their heartbeats at that candidate and lets the join/heartbeat
// redirects converge the rest.
func (a *Agent) elect() {
	v := a.view.Load()
	if v == nil {
		return
	}
	var candidate string
	for _, id := range aliveMembers(v.table.Members) { // sorted by ID
		if id != v.table.Coordinator {
			candidate = id
			break
		}
	}
	if candidate == "" {
		return
	}
	if candidate == a.cfg.NodeID {
		a.becomeCoordinator(v)
		return
	}
	if addr, ok := v.addrs[candidate]; ok {
		a.coordAddr.Store(&addr)
		a.cfg.Logf("cluster: %s re-aiming heartbeats at %s (%s)", a.cfg.NodeID, candidate, addr)
	}
}

// viewEpoch is the epoch of the node's current view (0 before any table).
func (a *Agent) viewEpoch() uint64 {
	if v := a.view.Load(); v != nil {
		return v.table.Epoch
	}
	return 0
}

// StatsFields implements serve.ClusterHook: the cluster identity keys
// /stats merges into its snapshot.
func (a *Agent) StatsFields() map[string]any {
	alive := 0
	if v := a.view.Load(); v != nil {
		alive = len(aliveMembers(v.table.Members))
	}
	return map[string]any{
		"node_id":       a.cfg.NodeID,
		"role":          a.Role(),
		"members_alive": alive,
		"forwards_in":   a.forwardsIn.Load(),
		"forwards_out":  a.forwardsOut.Load(),
	}
}

// Status is the body of GET /v1/cluster.
type Status struct {
	NodeID      string   `json:"node_id"`
	Role        string   `json:"role"`
	Coordinator string   `json:"coordinator"`
	Table       Table    `json:"table"`
	OwnedShards []string `json:"owned_shards"`
	ForwardsIn  int64    `json:"forwards_in"`
	ForwardsOut int64    `json:"forwards_out"`
	Failovers   int64    `json:"forward_failovers"`
}

// Status implements serve.ClusterHook.
func (a *Agent) Status() any {
	st := Status{
		NodeID:      a.cfg.NodeID,
		Role:        a.Role(),
		ForwardsIn:  a.forwardsIn.Load(),
		ForwardsOut: a.forwardsOut.Load(),
		Failovers:   a.forwardFailovers.Load() + a.streamFailovers.Load(),
	}
	if v := a.view.Load(); v != nil {
		st.Coordinator = v.table.Coordinator
		st.Table = v.table
		for _, s := range v.table.Shards {
			if v.owner(s) == a.cfg.NodeID {
				st.OwnedShards = append(st.OwnedShards, s)
			}
		}
	}
	return st
}

// errRedirect reports a request that must go to the coordinator instead.
type errRedirect struct{ coordinator string }

func (e *errRedirect) Error() string {
	return fmt.Sprintf("not the coordinator (try %s)", e.coordinator)
}

// ensureLocal guarantees the local fleet serves a shard, installing the
// committed catalog version on demand (fetching the payload from the
// coordinator when this node's catalog replica lacks it). It is the heal
// path that makes stale routing harmless: whoever receives a forwarded
// request can always serve it.
func (a *Agent) ensureLocal(shard string) error {
	if _, err := a.fleet.Detector(shard); err == nil {
		return nil
	}
	a.installMu.Lock()
	defer a.installMu.Unlock()
	if _, err := a.fleet.Detector(shard); err == nil {
		return nil // raced another install
	}
	_, data, ok := a.cat.get(shard)
	if !ok {
		m, err := a.fetchModel(shard)
		if err != nil {
			return fmt.Errorf("cluster: shard %q not in catalog: %w", shard, err)
		}
		a.cat.stage(m.Name, m.Version, m.Data)
		a.cat.commit(m.Name, m.Version)
		data = m.Data
	}
	det, err := detector.Load(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("cluster: decoding shard %q: %w", shard, err)
	}
	if det, err = a.fleet.PrepareDetector(det); err != nil {
		return fmt.Errorf("cluster: preparing shard %q: %w", shard, err)
	}
	if _, _, err := a.fleet.LoadOrSwapCause(shard, det, "cluster"); err != nil {
		return err
	}
	a.cfg.Logf("cluster: %s installed shard %q on demand", a.cfg.NodeID, shard)
	return nil
}

// installCommitted applies a committed catalog version to the local fleet
// when this node serves the shard (it owns it, or already has it loaded —
// a commit must swap live copies everywhere, not only on the owner).
func (a *Agent) installCommitted(name string, data []byte) error {
	_, derr := a.fleet.Detector(name)
	loaded := derr == nil
	owns := false
	if v := a.view.Load(); v != nil {
		owns = v.owner(name) == a.cfg.NodeID
	}
	if !loaded && !owns {
		return nil // not serving this shard; the catalog replica suffices
	}
	det, err := detector.Load(bytes.NewReader(data))
	if err != nil {
		return err
	}
	if det, err = a.fleet.PrepareDetector(det); err != nil {
		return err
	}
	_, _, err = a.fleet.LoadOrSwapCause(name, det, "cluster")
	return err
}
