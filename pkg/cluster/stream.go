package cluster

import (
	"errors"
	"io"
	"net/http"

	"trusthmd/pkg/detector"
	"trusthmd/pkg/serve"
)

// Stream proxying: an NDJSON stream whose shard lives on another node is
// replayed there chunk by chunk. Every push carries the complete exported
// session state (window buffer, stride phase, counters) and gets the
// updated state back, so the protocol is stateless on the owner: when the
// owner dies mid-stream, the SAME chunk and state are replayed onto the
// shard's ring successor and the stream continues with decisions
// element-wise identical to an uninterrupted session — the window
// straddling the kill included. That is the lossless-failover property
// the cluster e2e pins.

// ProxyStream implements serve.ClusterHook.
func (a *Agent) ProxyStream(conn *serve.StreamConn) {
	v := a.view.Load()
	if v == nil {
		conn.HTTPError(http.StatusServiceUnavailable, "cluster view not ready")
		return
	}
	shard := conn.Hdr.Model
	if shard == "" {
		shard = v.shardRing.Lookup(conn.Hdr.Device)
	}
	cfg := detector.StreamConfig{Levels: conn.Hdr.Levels, Window: conn.Hdr.Window, Stride: conn.Hdr.Stride}

	// Opening push (no samples, no state): validates the header against
	// the model on the owner while the HTTP status machinery is still
	// available, exactly like the local path's session-open checks.
	open, err := a.pushChunk(shard, conn.Hdr.Device, cfg, nil, nil)
	if err != nil {
		conn.HTTPError(http.StatusBadRequest, err.Error())
		return
	}
	state := open.State
	model, version := open.Model, open.Version
	conn.Begin()

	seq, samples := 0, 0
	summary := func(draining bool) {
		st := state.Stats
		conn.Emit(serve.StreamSummary{
			Done:      true,
			Draining:  draining,
			Model:     model,
			Version:   version,
			Samples:   st.Samples,
			Decisions: st.Total(),
			CacheHits: st.CacheHits,
			Benign:    st.Benign,
			Malware:   st.Malware,
			Rejected:  st.Rejected,
		})
	}
	for {
		states, err := conn.Next()
		var lineErr *serve.StreamLineError
		switch {
		case errors.Is(err, io.EOF):
			summary(false)
			return
		case errors.As(err, &lineErr):
			conn.Fail(lineErr.Msg)
			return
		case err != nil:
			if conn.Draining() {
				summary(true)
				return
			}
			conn.Fail("reading stream: " + err.Error())
			return
		}
		res, err := a.pushChunk(shard, conn.Hdr.Device, cfg, &state, states)
		if err != nil {
			conn.Fail(err.Error())
			return
		}
		state = res.State
		model, version = res.Model, res.Version
		for _, d := range res.Results {
			seq++
			if !conn.Emit(serve.StreamResult{
				Seq:            seq,
				Sample:         samples + d.Offset,
				AssessResponse: serve.ToResponse(res.Model, res.Version, d.Result),
			}) {
				return // client stopped reading; abandon the stream
			}
		}
		samples += len(states)
	}
}

// pushChunk applies one chunk on the shard's owner, walking the ring
// successor chain on transport errors — the same chunk and state replay
// losslessly because the push is idempotent given its state. A successor
// chain entry that is this node itself serves the chunk in-process.
func (a *Agent) pushChunk(shard, device string, cfg detector.StreamConfig, st *detector.SessionState, states []int) (serve.StreamPushResult, error) {
	v := a.view.Load()
	if v == nil {
		return serve.StreamPushResult{}, errors.New("cluster view not ready")
	}
	req := pushRequest{
		Shard:  shard,
		Device: device,
		Levels: cfg.Levels,
		Window: cfg.Window,
		Stride: cfg.Stride,
		State:  st,
		States: states,
	}
	var lastErr error
	for i, id := range v.memberRing.Successors(shard, forwardSuccessors) {
		if i > 0 {
			a.streamFailovers.Add(1)
			a.cfg.Logf("cluster: %s replaying stream chunk for %q onto %s", a.cfg.NodeID, shard, id)
		}
		if id == a.cfg.NodeID {
			if err := a.ensureLocal(shard); err != nil {
				lastErr = err
				continue
			}
			return a.fleet.StreamPush(shard, device, cfg, st, states)
		}
		addr, ok := v.addrs[id]
		if !ok {
			continue
		}
		var res serve.StreamPushResult
		err := a.postJSON(addr, "/cluster/v1/push", req, &res)
		if err == nil {
			a.forwardsOut.Add(1)
			return res, nil
		}
		lastErr = err
		// Application rejections (4xx become plain errors with the remote
		// message) end the stream; only transport-level failures and the
		// 503 a successor answers while it cannot materialise the shard
		// are worth failing over.
		if !retriablePushErr(err) {
			return serve.StreamPushResult{}, err
		}
	}
	if lastErr == nil {
		lastErr = errors.New("no reachable owner for shard " + shard)
	}
	return serve.StreamPushResult{}, lastErr
}

// retriablePushErr reports whether a push failure may succeed on a ring
// successor: network errors (url.Error from the client) and remote 503s
// qualify; anything else is an application rejection.
func retriablePushErr(err error) bool {
	var re *remoteError
	if errors.As(err, &re) {
		return re.status == http.StatusServiceUnavailable
	}
	// Non-remoteError failures from postJSON are transport-level
	// (connection refused, reset, timeout) — the failover case.
	var rd *errRedirect
	return !errors.As(err, &rd)
}
