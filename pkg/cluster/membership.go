// Package cluster is the multi-node fleet control plane: it turns N
// trusthmdd daemons into one fleet. A coordinator (flagged or promoted)
// tracks node membership via heartbeats, owns the cluster-wide consistent-
// hash placement of shards onto nodes, pushes admin hot swaps fleet-wide
// with a two-phase stage/commit protocol, and rebalances ownership when a
// node joins or dies. Every node runs the same Agent; the coordinator is
// the one whose membership table is authoritative.
//
// The design is deliberately crash-stop and single-coordinator: there is
// no quorum, no log, no split-brain arbitration — the supervisory pattern
// of a DAQ control unit over many identical acquisition nodes, not a
// consensus database. Placement disagreements during convergence are
// harmless: a forwarded request is always served where it lands (loop
// guard + install-on-demand from the replicated model catalog), so a
// stale routing table costs an extra hop, never a wrong or lost answer.
package cluster

import (
	"sort"
	"sync"
	"time"
)

// Member states: a member is alive while its heartbeats arrive, suspect
// once SuspectAfter has passed without one, and dead after DeadAfter.
// Suspect members keep their shard ownership (a suspicion is usually a
// scheduling hiccup, and moving shards is the expensive reaction); dead
// members leave the ring, which remaps only the arc of shards they owned.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
	StateDead    = "dead"
)

// Member is one node's entry in the membership table.
type Member struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	State string `json:"state"`
}

// Table is the cluster's routing state, computed by the coordinator and
// pulled by followers through heartbeat responses. Shard placement is not
// stored — it is the consistent hash of Shards over the alive member IDs,
// so every node with the same table computes the same owners.
type Table struct {
	// Epoch increments on every membership or shard-set change; followers
	// compare epochs to know when to refresh.
	Epoch uint64 `json:"epoch"`
	// Coordinator is the node ID the table came from.
	Coordinator string   `json:"coordinator"`
	Members     []Member `json:"members"`
	// Shards is the sorted cluster-wide shard (model) name set.
	Shards []string `json:"shards"`
}

// memberEntry is the coordinator's bookkeeping for one node.
type memberEntry struct {
	id       string
	addr     string
	state    string
	lastSeen time.Time
}

// memberTable is the coordinator-side membership state machine. It is
// driven by two inputs — observe (a heartbeat or join arrived) and sweep
// (time passed) — and reports whether the routing-relevant state changed
// so the caller knows to bump the table epoch. A fake clock drives it in
// tests; production passes time.Now.
type memberTable struct {
	mu      sync.Mutex
	members map[string]*memberEntry
}

func newMemberTable() *memberTable {
	return &memberTable{members: make(map[string]*memberEntry)}
}

// observe records a sign of life from a node (join or heartbeat),
// creating or reviving its entry. It returns true when the routing state
// changed: a new member, an address change, or a suspect/dead member
// coming back alive.
func (t *memberTable) observe(id, addr string, now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.members[id]
	if !ok {
		t.members[id] = &memberEntry{id: id, addr: addr, state: StateAlive, lastSeen: now}
		return true
	}
	changed := e.state != StateAlive || e.addr != addr
	e.addr = addr
	e.state = StateAlive
	e.lastSeen = now
	return changed
}

// sweep advances the expiry state machine: alive -> suspect after
// suspectAfter without a heartbeat, suspect -> dead after deadAfter. It
// returns true when any member's state changed. Dead members stay listed
// (their entry is the tombstone that lets a heartbeat revive them); only
// their ring membership is gone.
func (t *memberTable) sweep(now time.Time, suspectAfter, deadAfter time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	changed := false
	for _, e := range t.members {
		silent := now.Sub(e.lastSeen)
		next := e.state
		switch {
		case silent >= deadAfter:
			next = StateDead
		case silent >= suspectAfter && e.state == StateAlive:
			next = StateSuspect
		}
		if next != e.state {
			e.state = next
			changed = true
		}
	}
	return changed
}

// markDead forces a member dead immediately (a follower promoting itself
// declares the old coordinator dead rather than waiting out the sweep).
func (t *memberTable) markDead(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.members[id]
	if !ok || e.state == StateDead {
		return false
	}
	e.state = StateDead
	return true
}

// snapshot returns the members sorted by ID.
func (t *memberTable) snapshot() []Member {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Member, 0, len(t.members))
	for _, e := range t.members {
		out = append(out, Member{ID: e.id, Addr: e.addr, State: e.state})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// adopt replaces the table's contents with a snapshot (a promoted
// follower seeds its authoritative table from its last known view).
func (t *memberTable) adopt(members []Member, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.members = make(map[string]*memberEntry, len(members))
	for _, m := range members {
		t.members[m.ID] = &memberEntry{id: m.ID, addr: m.Addr, state: m.State, lastSeen: now}
	}
}

// aliveMembers extracts the IDs eligible for shard ownership from a
// member list: alive and suspect nodes (suspicion does not move shards).
func aliveMembers(members []Member) []string {
	out := make([]string, 0, len(members))
	for _, m := range members {
		if m.State != StateDead {
			out = append(out, m.ID)
		}
	}
	return out
}
