package cluster

import (
	"reflect"
	"testing"
	"time"
)

// The membership state machine is driven by a fake clock: observe and
// sweep take explicit times, so the alive -> suspect -> dead transitions
// are tested deterministically, with no sleeping.

const (
	tSuspect = 3 * time.Second
	tDead    = 6 * time.Second
)

func memberStates(t *memberTable) map[string]string {
	out := make(map[string]string)
	for _, m := range t.snapshot() {
		out[m.ID] = m.State
	}
	return out
}

func TestMembershipExpiry(t *testing.T) {
	mt := newMemberTable()
	t0 := time.Unix(1000, 0)

	if !mt.observe("n1", "http://a", t0) {
		t.Fatal("first observe must report a change")
	}
	if !mt.observe("n2", "http://b", t0) {
		t.Fatal("first observe must report a change")
	}
	if mt.observe("n1", "http://a", t0.Add(2*time.Second)) {
		t.Fatal("a fresh heartbeat from an alive member is not a routing change")
	}

	// Nothing has been silent long enough: sweep is a no-op.
	if mt.sweep(t0.Add(2*time.Second), tSuspect, tDead) {
		t.Fatal("sweep before SuspectAfter must not change state")
	}

	// n2 has been silent 4s (>= SuspectAfter), n1 only 2s thanks to its
	// later heartbeat. Suspect members keep their ring membership.
	if !mt.sweep(t0.Add(4*time.Second), tSuspect, tDead) {
		t.Fatal("sweep past SuspectAfter must report a change")
	}
	got := memberStates(mt)
	if got["n1"] != StateAlive || got["n2"] != StateSuspect {
		t.Fatalf("states after first sweep: %v", got)
	}
	if ids := aliveMembers(mt.snapshot()); !reflect.DeepEqual(ids, []string{"n1", "n2"}) {
		t.Fatalf("suspect members must keep shard eligibility, got %v", ids)
	}

	// A heartbeat revives the suspect.
	if !mt.observe("n2", "http://b", t0.Add(5*time.Second)) {
		t.Fatal("reviving a suspect is a routing change")
	}
	if memberStates(mt)["n2"] != StateAlive {
		t.Fatal("observe must revive a suspect to alive")
	}

	// Silence past DeadAfter: alive -> dead directly (the suspect phase
	// is skipped when the sweep cadence was slower than the decay).
	if !mt.sweep(t0.Add(20*time.Second), tSuspect, tDead) {
		t.Fatal("sweep past DeadAfter must report a change")
	}
	got = memberStates(mt)
	if got["n1"] != StateDead || got["n2"] != StateDead {
		t.Fatalf("states after long silence: %v", got)
	}
	if ids := aliveMembers(mt.snapshot()); len(ids) != 0 {
		t.Fatalf("dead members must leave the ring, got %v", ids)
	}

	// Dead entries are tombstones: a heartbeat resurrects them.
	if !mt.observe("n1", "http://a", t0.Add(21*time.Second)) {
		t.Fatal("resurrecting a dead member is a routing change")
	}
	if memberStates(mt)["n1"] != StateAlive {
		t.Fatal("observe must resurrect a dead member")
	}
	// ... and the resurrected entry does not immediately re-expire.
	if mt.sweep(t0.Add(22*time.Second), tSuspect, tDead) {
		t.Fatal("a just-resurrected member must not re-expire")
	}
}

func TestMembershipAddressChange(t *testing.T) {
	mt := newMemberTable()
	t0 := time.Unix(0, 0)
	mt.observe("n1", "http://old", t0)
	if !mt.observe("n1", "http://new", t0.Add(time.Second)) {
		t.Fatal("an address change is a routing change")
	}
	if ms := mt.snapshot(); ms[0].Addr != "http://new" {
		t.Fatalf("address not updated: %+v", ms[0])
	}
}

func TestMembershipMarkDead(t *testing.T) {
	mt := newMemberTable()
	t0 := time.Unix(0, 0)
	mt.observe("n1", "http://a", t0)
	if !mt.markDead("n1") {
		t.Fatal("markDead on an alive member must report a change")
	}
	if mt.markDead("n1") {
		t.Fatal("markDead is idempotent")
	}
	if mt.markDead("ghost") {
		t.Fatal("markDead on an unknown member is a no-op")
	}
	if memberStates(mt)["n1"] != StateDead {
		t.Fatal("markDead must kill the member")
	}
}

// TestMembershipAdopt: a promoted follower seeds its authoritative table
// from its last known view; the adopted entries are alive from the moment
// of adoption, so survivors get a full DeadAfter to re-register.
func TestMembershipAdopt(t *testing.T) {
	mt := newMemberTable()
	t0 := time.Unix(0, 0)
	mt.adopt([]Member{
		{ID: "n1", Addr: "http://a", State: StateAlive},
		{ID: "n2", Addr: "http://b", State: StateSuspect},
		{ID: "n3", Addr: "http://c", State: StateDead},
	}, t0)

	got := memberStates(mt)
	want := map[string]string{"n1": StateAlive, "n2": StateSuspect, "n3": StateDead}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("adopt states: got %v want %v", got, want)
	}
	// Adopted members decay from the adoption time, not their original
	// lastSeen (which the snapshot does not carry).
	if mt.sweep(t0.Add(tSuspect-time.Second), tSuspect, tDead) {
		t.Fatal("adopted members must not expire before SuspectAfter from adoption")
	}
	if !mt.sweep(t0.Add(tDead+time.Second), tSuspect, tDead) {
		t.Fatal("adopted members must expire eventually")
	}
	if ids := aliveMembers(mt.snapshot()); len(ids) != 0 {
		t.Fatalf("all should be dead, got %v", ids)
	}
}
