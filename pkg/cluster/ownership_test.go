package cluster

import (
	"fmt"
	"testing"
)

// Cluster-level minimal-remap property: ownership is the consistent hash
// of the shard set over the alive member IDs, so a node joining or dying
// may move only the arc of shards that involves that node — every other
// shard keeps its owner. This is what makes a rebalance cheap: the
// republished table changes routing only where it must.

func testTable(memberIDs []string, shards int) Table {
	t := Table{Epoch: 1, Coordinator: memberIDs[0]}
	for _, id := range memberIDs {
		t.Members = append(t.Members, Member{ID: id, Addr: "http://" + id, State: StateAlive})
	}
	for i := 0; i < shards; i++ {
		t.Shards = append(t.Shards, fmt.Sprintf("model-%02d", i))
	}
	return t
}

func owners(v *routeView) map[string]string {
	out := make(map[string]string, len(v.table.Shards))
	for _, s := range v.table.Shards {
		out[s] = v.owner(s)
	}
	return out
}

func TestOwnershipMinimalRemapOnDeath(t *testing.T) {
	tab := testTable([]string{"n1", "n2", "n3", "n4"}, 64)
	before := owners(buildView(tab))

	// Every member must own something at this shard count, or the test
	// below is vacuous for the dead node.
	perNode := make(map[string]int)
	for _, o := range before {
		perNode[o]++
	}
	for _, id := range []string{"n1", "n2", "n3", "n4"} {
		if perNode[id] == 0 {
			t.Fatalf("node %s owns no shards; placement is degenerate: %v", id, perNode)
		}
	}

	// Kill n3: its shards must move, everyone else's must not.
	for i := range tab.Members {
		if tab.Members[i].ID == "n3" {
			tab.Members[i].State = StateDead
		}
	}
	after := owners(buildView(tab))
	for shard, prev := range before {
		now := after[shard]
		if prev == "n3" {
			if now == "n3" || now == "" {
				t.Fatalf("shard %s still owned by the dead node (now %q)", shard, now)
			}
			continue
		}
		if now != prev {
			t.Fatalf("shard %s moved %s -> %s although its owner survived", shard, prev, now)
		}
	}
}

func TestOwnershipMinimalRemapOnJoin(t *testing.T) {
	tab := testTable([]string{"n1", "n2", "n3"}, 64)
	before := owners(buildView(tab))

	tab.Members = append(tab.Members, Member{ID: "n4", Addr: "http://n4", State: StateAlive})
	after := owners(buildView(tab))

	moved := 0
	for shard, prev := range before {
		now := after[shard]
		if now == prev {
			continue
		}
		if now != "n4" {
			t.Fatalf("shard %s moved %s -> %s, but only moves TO the joiner are allowed", shard, prev, now)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("the joiner picked up no shards; placement is degenerate")
	}
	// A balanced ring hands the joiner roughly its fair share, never the
	// whole keyspace.
	if moved == len(before) {
		t.Fatal("the joiner took every shard; remap is not minimal")
	}
}

// TestOwnershipSuspectKeepsShards: suspicion (a missed heartbeat or two)
// must not trigger a rebalance — only death moves shards.
func TestOwnershipSuspectKeepsShards(t *testing.T) {
	tab := testTable([]string{"n1", "n2", "n3"}, 32)
	before := owners(buildView(tab))
	for i := range tab.Members {
		if tab.Members[i].ID == "n2" {
			tab.Members[i].State = StateSuspect
		}
	}
	after := owners(buildView(tab))
	for shard, prev := range before {
		if after[shard] != prev {
			t.Fatalf("shard %s moved %s -> %s on suspicion", shard, prev, after[shard])
		}
	}
}

// TestOwnershipAgreement: two nodes holding the same table compute the
// same owners — placement is pure computation, never negotiated.
func TestOwnershipAgreement(t *testing.T) {
	tab := testTable([]string{"n1", "n2", "n3", "n4", "n5"}, 48)
	a, b := buildView(tab), buildView(tab)
	for _, s := range tab.Shards {
		if a.owner(s) != b.owner(s) {
			t.Fatalf("views disagree on %s: %s vs %s", s, a.owner(s), b.owner(s))
		}
	}
	// Device keys likewise: the shard ring maps any device to the same
	// shard on every node.
	for i := 0; i < 32; i++ {
		dev := fmt.Sprintf("device-%03d", i)
		if a.shardRing.Lookup(dev) != b.shardRing.Lookup(dev) {
			t.Fatalf("views disagree on device %s", dev)
		}
	}
}
