package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"trusthmd/internal/gen"
	"trusthmd/pkg/cluster/ring"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/serve"
)

// End-to-end cluster tests: 2-3 real nodes (each a full serve.Server plus
// cluster.Agent on an httptest listener), real HTTP between them. These
// pin the acceptance properties of the control plane: any node serves any
// request, a fleet-wide swap is atomic under load, and a node kill loses
// no requests and no stream — with decisions element-wise identical to an
// uninterrupted single-node run.

const (
	e2eToken = "cluster-e2e-secret"
	e2eModel = "dvfs-rf"
)

// Trained detectors are shared across tests (training dominates runtime;
// a trained Detector is immutable and safe for concurrent use).
var (
	e2eOnce sync.Once
	e2eDetA *detector.Detector // the boot model
	e2eDetB *detector.Detector // the swap target (different ensemble)
	e2eX    [][]float64
	e2eErr  error
)

func e2eDetectors(t testing.TB) (*detector.Detector, *detector.Detector, [][]float64) {
	t.Helper()
	e2eOnce.Do(func() {
		var s gen.Splits
		s, e2eErr = gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 140, Unknown: 40})
		if e2eErr != nil {
			return
		}
		e2eDetA, e2eErr = detector.New(s.Train,
			detector.WithModel("rf"), detector.WithEnsembleSize(11), detector.WithSeed(1))
		if e2eErr != nil {
			return
		}
		e2eDetB, e2eErr = detector.New(s.Train,
			detector.WithModel("rf"), detector.WithEnsembleSize(9), detector.WithSeed(7))
		if e2eErr != nil {
			return
		}
		e2eX = make([][]float64, s.Test.Len())
		for i := range e2eX {
			e2eX[i] = s.Test.At(i).Features
		}
	})
	if e2eErr != nil {
		t.Fatal(e2eErr)
	}
	return e2eDetA, e2eDetB, e2eX
}

// node is one cluster member: a serve.Server and an Agent sharing an
// httptest listener, the same wiring cmd/trusthmdd does.
type node struct {
	id    string
	srv   *serve.Server
	agent *Agent
	ts    *httptest.Server
	dead  bool
}

func (n *node) url() string { return n.ts.URL }

// kill is the SIGKILL equivalent: stop the agent's loops and yank the
// listener, force-closing established connections mid-flight.
func (n *node) kill() {
	if n.dead {
		return
	}
	n.dead = true
	n.agent.Close()
	n.ts.CloseClientConnections()
	n.ts.Close()
	n.srv.Close()
}

// startNode boots one member. models may be nil: a joiner without local
// models installs shards on demand from the cluster catalog.
func startNode(t testing.TB, id string, models map[string]*detector.Detector, coordinator bool, join string) *node {
	t.Helper()
	mux := http.NewServeMux()
	ts := httptest.NewServer(mux)
	fleet, err := serve.NewFleet(models, serve.Config{AdminToken: e2eToken})
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	srv := serve.NewServer(fleet)
	agent, err := New(Config{
		NodeID:      id,
		Advertise:   ts.URL,
		Coordinator: coordinator,
		Join:        join,
		Heartbeat:   25 * time.Millisecond,
		Token:       e2eToken,
		Logf:        t.Logf,
	}, srv.Fleet())
	if err != nil {
		ts.Close()
		srv.Close()
		t.Fatal(err)
	}
	srv.AttachCluster(agent)
	mux.Handle("/cluster/", agent.Handler())
	mux.Handle("/", srv)
	if err := agent.Start(); err != nil {
		ts.Close()
		srv.Close()
		t.Fatal(err)
	}
	n := &node{id: id, srv: srv, agent: agent, ts: ts}
	t.Cleanup(n.kill)
	return n
}

// startCluster boots a coordinator (holding the model) plus followers
// that join empty, and waits until every node's view lists all members
// alive.
func startCluster(t testing.TB, ids []string, coordID string, det *detector.Detector) map[string]*node {
	t.Helper()
	nodes := make(map[string]*node, len(ids))
	coord := startNode(t, coordID, map[string]*detector.Detector{e2eModel: det}, true, "")
	nodes[coordID] = coord
	for _, id := range ids {
		if id == coordID {
			continue
		}
		nodes[id] = startNode(t, id, nil, false, coord.url())
	}
	waitForMembers(t, nodes, len(ids))
	return nodes
}

// waitForMembers polls every live node's /stats until members_alive
// reaches want (table propagation is pull-based, so followers converge a
// heartbeat after the coordinator).
func waitForMembers(t testing.TB, nodes map[string]*node, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			if n.dead {
				continue
			}
			st := getStats(t, n.url())
			if int(st["members_alive"].(float64)) != want {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for id, n := range nodes {
				if !n.dead {
					t.Logf("node %s stats: %v", id, getStats(t, n.url()))
				}
			}
			t.Fatalf("cluster did not converge to %d alive members", want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getStats(t testing.TB, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func postAssess(url string, req serve.AssessRequest) (*serve.AssessResponse, int, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	resp, err := http.Post(url+"/v1/assess", "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var out serve.AssessResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, resp.StatusCode, err
	}
	return &out, resp.StatusCode, nil
}

func sameDecision(a serve.AssessResponse, b detector.Result) bool {
	return a.Prediction == b.Prediction &&
		a.Decision == b.Decision.String() &&
		math.Abs(a.Entropy-b.Entropy) < 1e-12
}

// TestClusterAnyNodeServesAnyRequest: explicit-model and device-keyed
// assessments through every node — owner or not — return decisions
// element-wise identical to direct detector calls, and the forward
// counters prove requests really crossed nodes.
func TestClusterAnyNodeServesAnyRequest(t *testing.T) {
	detA, _, X := e2eDetectors(t)
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, "n1", detA)

	want := make([]detector.Result, len(X))
	for i, x := range X {
		r, err := detA.Assess(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	// Round-robin the three nodes; alternate explicit model and device
	// keys so both routing paths (model name, device -> shard) are hit.
	urls := []string{nodes["n1"].url(), nodes["n2"].url(), nodes["n3"].url()}
	for i, x := range X {
		req := serve.AssessRequest{Features: x}
		if i%2 == 0 {
			req.Model = e2eModel
		} else {
			req.Device = fmt.Sprintf("device-%03d", i%17)
		}
		got, _, err := postAssess(urls[i%3], req)
		if err != nil {
			t.Fatalf("assess %d via %s: %v", i, urls[i%3], err)
		}
		if got.Model != e2eModel {
			t.Fatalf("assess %d answered by model %q", i, got.Model)
		}
		if !sameDecision(*got, want[i]) {
			t.Fatalf("assess %d: got %+v want %+v", i, got, want[i])
		}
	}

	// The shard has one owner, so at least one non-owner node forwarded.
	var in, out int64
	for _, n := range nodes {
		st := getStats(t, n.url())
		if st["node_id"].(string) != n.id {
			t.Fatalf("stats node_id %v on %s", st["node_id"], n.id)
		}
		role := st["role"].(string)
		if (n.id == "n1") != (role == "coordinator") {
			t.Fatalf("node %s reports role %q", n.id, role)
		}
		in += int64(st["forwards_in"].(float64))
		out += int64(st["forwards_out"].(float64))
	}
	if in == 0 || out == 0 {
		t.Fatalf("no forwarding happened (in=%d out=%d); routing is broken", in, out)
	}

	// GET /v1/cluster: exactly one node owns the shard.
	owners := 0
	for _, n := range nodes {
		resp, err := http.Get(n.url() + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.NodeID != n.id {
			t.Fatalf("/v1/cluster node_id %q on %s", st.NodeID, n.id)
		}
		for _, s := range st.OwnedShards {
			if s == e2eModel {
				owners++
			}
		}
	}
	if owners != 1 {
		t.Fatalf("shard %q has %d owners, want exactly 1", e2eModel, owners)
	}
}

// TestClusterFleetWideSwap: a POST /v1/models through a follower reaches
// every node two-phase, while sustained load through all nodes loses zero
// requests; afterwards every node answers with the NEW model's decisions.
func TestClusterFleetWideSwap(t *testing.T) {
	detA, detB, X := e2eDetectors(t)
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, "n1", detA)
	urls := []string{nodes["n1"].url(), nodes["n2"].url(), nodes["n3"].url()}

	wantB := make([]detector.Result, len(X))
	differs := false
	for i, x := range X {
		rb, err := detB.Assess(x)
		if err != nil {
			t.Fatal(err)
		}
		wantB[i] = rb
		ra, err := detA.Assess(x)
		if err != nil {
			t.Fatal(err)
		}
		if !sameDecision(serve.AssessResponse{
			Prediction: ra.Prediction, Entropy: ra.Entropy, Decision: ra.Decision.String(),
		}, rb) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("detA and detB agree everywhere; the swap would be unobservable")
	}

	// Sustained load through all three nodes while the swap lands. Every
	// response must be 200 and match either the old or the new model —
	// nothing lost, nothing garbled.
	loadErrs := make(chan error, 3)
	stop := make(chan struct{})
	var stopOnce sync.Once
	stopLoad := func() { stopOnce.Do(func() { close(stop) }) }
	defer stopLoad()
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				x := X[(i*7+w)%len(X)]
				got, _, err := postAssess(urls[(i+w)%3], serve.AssessRequest{Model: e2eModel, Features: x})
				if err != nil {
					loadErrs <- fmt.Errorf("load worker %d: %v", w, err)
					return
				}
				ra, _ := detA.Assess(x)
				rb, _ := detB.Assess(x)
				if !sameDecision(*got, ra) && !sameDecision(*got, rb) {
					loadErrs <- fmt.Errorf("load worker %d: answer matches neither model: %+v", w, got)
					return
				}
			}
		}(w)
	}

	// Serialise detB and push it through follower n2 (exercising the
	// relay to the coordinator).
	var buf bytes.Buffer
	if err := detB.Save(&buf); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(serve.LoadModelRequest{Name: e2eModel, Data: buf.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, nodes["n2"].url()+"/v1/models", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+e2eToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	swapBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet-wide swap: status %d: %s", resp.StatusCode, swapBody)
	}
	var sw SwapResponse
	if err := json.Unmarshal(swapBody, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Nodes != 3 || !sw.Replaced || sw.Name != e2eModel {
		t.Fatalf("swap response %+v, want all 3 nodes, replaced", sw)
	}

	stopLoad()
	wg.Wait()
	select {
	case err := <-loadErrs:
		t.Fatalf("request lost or garbled during the swap: %v", err)
	default:
	}

	// The swap returned, so the commit phase is complete everywhere:
	// every node must now answer with detB's decisions, no grace period.
	for i, url := range urls {
		for j := 0; j < 10; j++ {
			x := X[(i*10+j)%len(X)]
			got, _, err := postAssess(url, serve.AssessRequest{Model: e2eModel, Features: x})
			if err != nil {
				t.Fatal(err)
			}
			if !sameDecision(*got, wantB[(i*10+j)%len(X)]) {
				t.Fatalf("node %d answers old model after swap: %+v", i, got)
			}
		}
	}
}

// unauthenticated swaps must be rejected before any cluster traffic.
func TestClusterSwapRequiresAdminToken(t *testing.T) {
	detA, _, _ := e2eDetectors(t)
	nodes := startCluster(t, []string{"n1", "n2"}, "n1", detA)
	body, _ := json.Marshal(serve.LoadModelRequest{Name: e2eModel, Data: []byte("x")})
	resp, err := http.Post(nodes["n2"].url()+"/v1/models", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated swap: status %d, want 401", resp.StatusCode)
	}
}

// TestClusterNodeKillLosslessFailover is the headline e2e: an NDJSON
// stream proxied to the shard owner survives a SIGKILL of that owner
// mid-stream — the session replays onto a ring successor and the decision
// sequence is element-wise identical to an uninterrupted run — and
// request traffic through the survivors keeps succeeding throughout.
func TestClusterNodeKillLosslessFailover(t *testing.T) {
	detA, _, X := e2eDetectors(t)
	ids := []string{"n1", "n2", "n3"}

	// The shard's owner is a pure function of the alive IDs, so compute it
	// up front and make some OTHER node the coordinator — the kill target
	// must be a non-coordinator for this scenario.
	victim := ring.New(ids, 0).Lookup(e2eModel)
	coordID := ""
	for _, id := range ids {
		if id != victim {
			coordID = id
			break
		}
	}
	nodes := startCluster(t, ids, coordID, detA)

	// The streaming entry point: a node that is neither the victim nor
	// the coordinator if possible, else the coordinator — any non-owner
	// proxies chunk pushes to the owner.
	entryID := ""
	for _, id := range ids {
		if id != victim {
			entryID = id
		}
	}
	entry := nodes[entryID]
	t.Logf("owner=%s coordinator=%s entry=%s", victim, coordID, entryID)

	// Baseline: an uninterrupted session over the same state sequence.
	const (
		levels  = 8
		window  = 16
		stride  = 4
		samples = 200
	)
	rng := rand.New(rand.NewSource(42))
	states := make([]int, samples)
	for i := range states {
		states[i] = rng.Intn(levels)
	}
	cfg := detector.StreamConfig{Levels: levels, Window: window, Stride: stride}
	base, err := detector.NewSession(detA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantResults, err := base.PushAll(states)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantResults) == 0 {
		t.Fatal("baseline produced no decisions; bad stream parameters")
	}

	// Open the stream through the entry node, feeding chunks by hand so
	// the kill lands mid-stream with precision.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, entry.url()+"/v1/assess/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	type streamLine struct {
		res serve.StreamResult
		sum *serve.StreamSummary
	}
	lines := make(chan streamLine, samples)
	readErr := make(chan error, 1)
	go func() {
		defer close(lines)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			readErr <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			readErr <- fmt.Errorf("stream status %d: %s", resp.StatusCode, body)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var probe map[string]json.RawMessage
			if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
				readErr <- fmt.Errorf("bad stream line %q: %v", sc.Text(), err)
				return
			}
			if probe["error"] != nil {
				readErr <- fmt.Errorf("stream error line: %s", sc.Text())
				return
			}
			var ln streamLine
			if probe["done"] != nil {
				ln.sum = new(serve.StreamSummary)
				if err := json.Unmarshal(sc.Bytes(), ln.sum); err != nil {
					readErr <- err
					return
				}
			} else if err := json.Unmarshal(sc.Bytes(), &ln.res); err != nil {
				readErr <- err
				return
			}
			lines <- ln
		}
		if err := sc.Err(); err != nil {
			readErr <- err
		}
	}()

	writeLine := func(v any) {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pw.Write(append(raw, '\n')); err != nil {
			t.Fatalf("writing stream: %v", err)
		}
	}
	writeLine(serve.StreamHeader{Model: e2eModel, Levels: levels, Window: window, Stride: stride})

	const chunk = 20
	half := samples / 2
	for off := 0; off < half; off += chunk {
		writeLine(serve.StreamSample{States: states[off : off+chunk]})
	}
	// Let the proxied pushes drain to the owner before the kill so the
	// first half's decisions are computed there.
	time.Sleep(300 * time.Millisecond)

	// SIGKILL the owner, then keep streaming and keep assessing through
	// the survivors: nothing may be lost.
	nodes[victim].kill()

	var killLoad sync.WaitGroup
	survivors := []string{}
	for _, id := range ids {
		if id != victim {
			survivors = append(survivors, id)
		}
	}
	loadErr := make(chan error, 1)
	killLoad.Add(1)
	go func() {
		defer killLoad.Done()
		for i := 0; i < 40; i++ {
			x := X[i%len(X)]
			url := nodes[survivors[i%2]].url()
			got, _, err := postAssess(url, serve.AssessRequest{Model: e2eModel, Features: x})
			if err != nil {
				loadErr <- fmt.Errorf("assess %d after kill via %s: %v", i, url, err)
				return
			}
			want, _ := detA.Assess(x)
			if !sameDecision(*got, want) {
				loadErr <- fmt.Errorf("assess %d after kill: got %+v want %+v", i, got, want)
				return
			}
		}
	}()

	for off := half; off < samples; off += chunk {
		writeLine(serve.StreamSample{States: states[off : off+chunk]})
	}
	pw.Close()

	// Collect the full decision stream and the summary.
	var got []serve.StreamResult
	var sum *serve.StreamSummary
	deadline := time.After(30 * time.Second)
	for sum == nil {
		select {
		case ln, ok := <-lines:
			if !ok {
				select {
				case err := <-readErr:
					t.Fatalf("stream ended early: %v", err)
				default:
					t.Fatal("stream ended without summary")
				}
			}
			if ln.sum != nil {
				sum = ln.sum
			} else {
				got = append(got, ln.res)
			}
		case err := <-readErr:
			t.Fatalf("stream failed: %v", err)
		case <-deadline:
			t.Fatalf("no summary after 30s (%d results so far)", len(got))
		}
	}
	killLoad.Wait()
	select {
	case err := <-loadErr:
		t.Fatalf("request traffic lost during the kill: %v", err)
	default:
	}

	// Element-wise identity with the uninterrupted baseline — the window
	// straddling the kill included.
	if len(got) != len(wantResults) {
		t.Fatalf("stream produced %d decisions, baseline %d", len(got), len(wantResults))
	}
	for i, g := range got {
		w := wantResults[i]
		if !sameDecision(g.AssessResponse, w) {
			t.Fatalf("decision %d diverged after failover: got %+v want %+v", i, g.AssessResponse, w)
		}
		if g.Seq != i+1 {
			t.Fatalf("decision %d has seq %d", i, g.Seq)
		}
	}
	if sum.Samples != samples || sum.Decisions != len(wantResults) {
		t.Fatalf("summary %+v, want %d samples / %d decisions", sum, samples, len(wantResults))
	}

	// The survivors eventually declare the victim dead and rebalance; the
	// shard keeps exactly one (new) owner.
	alive := map[string]*node{}
	for _, id := range survivors {
		alive[id] = nodes[id]
	}
	waitForMembers(t, alive, 2)
	for _, id := range survivors {
		got, _, err := postAssess(nodes[id].url(), serve.AssessRequest{Model: e2eModel, Features: X[0]})
		if err != nil {
			t.Fatalf("assess after rebalance via %s: %v", id, err)
		}
		want, _ := detA.Assess(X[0])
		if !sameDecision(*got, want) {
			t.Fatalf("post-rebalance decision diverged: %+v", got)
		}
	}
}

// TestClusterCoordinatorFailover: killing the coordinator promotes the
// lowest-ID survivor and the cluster keeps serving and swapping.
func TestClusterCoordinatorFailover(t *testing.T) {
	detA, detB, X := e2eDetectors(t)
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, "n1", detA)

	nodes["n1"].kill()

	// The lowest-ID survivor (n2) must promote itself and both survivors
	// must converge on a 2-member table.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := getStats(t, nodes["n2"].url())
		if st["role"].(string) == "coordinator" && int(st["members_alive"].(float64)) == 2 {
			st3 := getStats(t, nodes["n3"].url())
			if int(st3["members_alive"].(float64)) == 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("n2 did not take over: %v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Serving still works through both survivors...
	for _, id := range []string{"n2", "n3"} {
		got, _, err := postAssess(nodes[id].url(), serve.AssessRequest{Model: e2eModel, Features: X[1]})
		if err != nil {
			t.Fatalf("assess via %s after coordinator loss: %v", id, err)
		}
		want, _ := detA.Assess(X[1])
		if !sameDecision(*got, want) {
			t.Fatalf("decision diverged after coordinator loss: %+v", got)
		}
	}

	// ...and so do fleet-wide swaps, via the NEW coordinator's relay path
	// (posted to n3, a follower of n2).
	var buf bytes.Buffer
	if err := detB.Save(&buf); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.LoadModelRequest{Name: e2eModel, Data: buf.Bytes()})
	req, _ := http.NewRequest(http.MethodPost, nodes["n3"].url()+"/v1/models", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+e2eToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	swapBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap after failover: status %d: %s", resp.StatusCode, swapBody)
	}
	var sw SwapResponse
	if err := json.Unmarshal(swapBody, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Nodes != 2 {
		t.Fatalf("swap after failover reached %d nodes, want 2", sw.Nodes)
	}
	got, _, err := postAssess(nodes["n2"].url(), serve.AssessRequest{Model: e2eModel, Features: X[2]})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := detB.Assess(X[2])
	if !sameDecision(*got, want) {
		t.Fatalf("post-failover swap not visible: %+v", got)
	}
}
