package kernel

// amd64 dispatch: SSE2 is the architecture baseline, AVX2 requires both
// the CPUID feature bit and OS support for saving YMM state (OSXSAVE +
// XCR0 bits 1 and 2). Detection runs once; golang.org/x/sys/cpu is
// deliberately not used to keep the module dependency-free, so the two
// CPUID leaves are read through a local assembly shim (cpu_amd64.s).

// cpuid executes the CPUID instruction for (leaf, sub).
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE, checked before calling).
func xgetbv() (eax, edx uint32)

// hasAVX2 reports CPU + OS support for 256-bit AVX2 integer and float
// vectors.
func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE state) and 2 (AVX upper halves) must both be
	// OS-enabled or the YMM registers are not preserved across context
	// switches.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

func bestImpl() impl {
	if hasAVX2() {
		return impl{
			name:        "avx2",
			axpy:        axpyAVX2Go,
			centerScale: centerScaleAVX2Go,
			sub:         subAVX2Go,
			treeMaskVec: true,
		}
	}
	// SSE2 is unconditionally present on amd64. The tree kernel needs
	// AVX2 (VPBROADCASTQ and 4-wide qword masks); without it the generic
	// tree walk stays in charge (treeMaskVec false).
	return impl{
		name:        "sse2",
		axpy:        axpySSE2Go,
		centerScale: centerScaleSSE2Go,
		sub:         subSSE2Go,
	}
}

// treeMask32Vec is the vector tree kernel TreeMask32 calls when
// treeMaskVec is set — a direct call so //go:noescape keeps the caller's
// bitvector on its stack.
func treeMask32Vec(v *[32]uint64, thr []float64, masks []uint64, feats []uint32, xcols []float64, stride int) {
	treeMask32AVX2(v, &thr[0], &masks[0], &feats[0], len(thr), &xcols[0], stride)
}

// Assembly entry points (kernels_amd64.s). Pointer+length form keeps the
// assembly free of slice-header decoding; the Go shims below guarantee
// non-nil pointers and consistent lengths.

//go:noescape
func axpySSE2(dst, x *float64, n int, alpha float64)

//go:noescape
func axpyAVX2(dst, x *float64, n int, alpha float64)

//go:noescape
func centerScaleSSE2(dst, x, mu, sd *float64, n int)

//go:noescape
func centerScaleAVX2(dst, x, mu, sd *float64, n int)

//go:noescape
func subSSE2(dst, x, mu *float64, n int)

//go:noescape
func subAVX2(dst, x, mu *float64, n int)

//go:noescape
func treeMask32AVX2(v *[32]uint64, thr *float64, masks *uint64, feats *uint32, nodes int, xcols *float64, stride int)

func axpySSE2Go(dst []float64, alpha float64, x []float64) {
	axpySSE2(&dst[0], &x[0], len(x), alpha)
}

func axpyAVX2Go(dst []float64, alpha float64, x []float64) {
	axpyAVX2(&dst[0], &x[0], len(x), alpha)
}

func centerScaleSSE2Go(dst, x, mu, sd []float64) {
	centerScaleSSE2(&dst[0], &x[0], &mu[0], &sd[0], len(x))
}

func centerScaleAVX2Go(dst, x, mu, sd []float64) {
	centerScaleAVX2(&dst[0], &x[0], &mu[0], &sd[0], len(x))
}

func subSSE2Go(dst, x, mu []float64) {
	subSSE2(&dst[0], &x[0], &mu[0], len(x))
}

func subAVX2Go(dst, x, mu []float64) {
	subAVX2(&dst[0], &x[0], &mu[0], len(x))
}
