package kernel

import (
	"math"
	"math/rand"
	"os"
	"testing"
)

// The contract under test: for every kernel, the dispatched implementation
// and the pure-Go reference produce bit-identical outputs over arbitrary
// shapes — in particular ragged tails (lengths not divisible by the vector
// width), single elements, and empty inputs. NaN payloads are exempt: both
// sides must agree that an element is NaN, not on its bits.

func sameBits(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// randVals fills a slice with a spread of magnitudes, signs, exact zeros
// and the occasional special value so rounding differences cannot hide.
func randVals(rng *rand.Rand, n int, specials bool) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch k := rng.Intn(20); {
		case k == 0:
			out[i] = 0
		case k == 1:
			out[i] = math.Copysign(0, -1)
		case specials && k == 2:
			out[i] = math.Inf(1 - 2*rng.Intn(2))
		case specials && k == 3:
			out[i] = math.NaN()
		case k < 8:
			out[i] = (rng.Float64() - 0.5) * 1e-300 // subnormal territory
		default:
			out[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(40)-20))
		}
	}
	return out
}

func checkSlices(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if !sameBits(got[i], want[i]) {
			t.Fatalf("%s: elem %d: got %x (%v), want %x (%v) [impl %s]",
				name, i, math.Float64bits(got[i]), got[i],
				math.Float64bits(want[i]), want[i], Active())
		}
	}
}

// testDims covers every residue class of both the 4-wide and 8-wide main
// loops plus a long run, so tails of every length execute.
func testDims() []int {
	dims := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129, 255, 256, 257}
	return dims
}

func TestAxpyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range testDims() {
		for trial := 0; trial < 8; trial++ {
			x := randVals(rng, n, true)
			dst0 := randVals(rng, n, true)
			alpha := randVals(rng, 1, true)[0]
			want := append([]float64(nil), dst0...)
			axpyGeneric(want, alpha, x)
			got := append([]float64(nil), dst0...)
			Axpy(got, alpha, x)
			checkSlices(t, "axpy", got, want)
		}
	}
	Axpy(nil, 2, nil) // empty must not panic
}

func TestCenterScaleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range testDims() {
		for trial := 0; trial < 8; trial++ {
			x := randVals(rng, n, true)
			mu := randVals(rng, n, true)
			sd := randVals(rng, n, false) // zero sd allowed: division yields ±Inf/NaN both sides
			want := make([]float64, n)
			centerScaleGeneric(want, x, mu, sd)
			got := make([]float64, n)
			CenterScale(got, x, mu, sd)
			checkSlices(t, "centerScale", got, want)

			// In-place form (dst == x) must match too.
			inplace := append([]float64(nil), x...)
			CenterScale(inplace, inplace, mu, sd)
			checkSlices(t, "centerScale in-place", inplace, want)
		}
	}
	CenterScale(nil, nil, nil, nil)
}

func TestSubEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range testDims() {
		for trial := 0; trial < 8; trial++ {
			x := randVals(rng, n, true)
			mu := randVals(rng, n, true)
			want := make([]float64, n)
			subGeneric(want, x, mu)
			got := make([]float64, n)
			Sub(got, x, mu)
			checkSlices(t, "sub", got, want)

			inplace := append([]float64(nil), x...)
			Sub(inplace, inplace, mu)
			checkSlices(t, "sub in-place", inplace, want)
		}
	}
	Sub(nil, nil, nil)
}

func TestTreeMask32Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, nodes := range []int{0, 1, 2, 3, 7, 8, 45, 63, 100} {
		for _, feats := range []int{1, 2, 17, 40} {
			for trial := 0; trial < 4; trial++ {
				stride := 32 + rng.Intn(3)*32 // transposed blocks are multiples of 32 wide
				xcols := randVals(rng, feats*stride, true)
				thr := randVals(rng, nodes, true)
				masks := make([]uint64, nodes)
				fidx := make([]uint32, nodes)
				for i := range masks {
					masks[i] = rng.Uint64()
					fidx[i] = uint32(rng.Intn(feats))
				}
				var v0 [32]uint64
				for i := range v0 {
					v0[i] = rng.Uint64()
				}
				want := v0
				treeMask32Generic(&want, thr, masks, fidx, xcols, stride)
				got := v0
				TreeMask32(&got, thr, masks, fidx, xcols, stride)
				if got != want {
					t.Fatalf("treeMask32: nodes=%d feats=%d stride=%d: got %v want %v [impl %s]",
						nodes, feats, stride, got, want, Active())
				}
			}
		}
	}
}

func TestForceGenericAndReset(t *testing.T) {
	defer Reset()
	ForceGeneric()
	if Active() != "generic" {
		t.Fatalf("after ForceGeneric: Active() = %q", Active())
	}
	if TreeMaskSIMD() {
		t.Fatal("generic impl must report TreeMaskSIMD() == false")
	}
	Reset()
	if os.Getenv(NoSIMDEnv) != "" && Active() != "generic" {
		t.Fatalf("%s set but Active() = %q", NoSIMDEnv, Active())
	}
	t.Logf("dispatched implementation: %s (treeMaskSIMD=%v)", Active(), TreeMaskSIMD())
}

func TestLengthMismatchPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic on length mismatch", name)
			}
		}()
		f()
	}
	mustPanic("axpy", func() { Axpy(make([]float64, 2), 1, make([]float64, 3)) })
	mustPanic("centerScale", func() {
		CenterScale(make([]float64, 2), make([]float64, 2), make([]float64, 1), make([]float64, 2))
	})
	mustPanic("sub", func() { Sub(make([]float64, 2), make([]float64, 2), make([]float64, 3)) })
	mustPanic("treeMask", func() {
		var v [32]uint64
		TreeMask32(&v, make([]float64, 2), make([]uint64, 1), make([]uint32, 2), make([]float64, 64), 32)
	})
}

// Fuzzers: same bit-identity property, adversarial inputs. Lengths are
// derived from the shortest input so any byte soup is a valid case.

func bytesToFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		var u uint64
		for j := 0; j < 8; j++ {
			u = u<<8 | uint64(b[i*8+j])
		}
		out[i] = math.Float64frombits(u)
	}
	return out
}

func FuzzAxpy(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{9, 10, 11, 12, 13, 14, 15, 16}, float64(1.5))
	f.Fuzz(func(t *testing.T, db, xb []byte, alpha float64) {
		dst0 := bytesToFloats(db)
		x := bytesToFloats(xb)
		n := min(len(dst0), len(x))
		dst0, x = dst0[:n], x[:n]
		want := append([]float64(nil), dst0...)
		axpyGeneric(want, alpha, x)
		got := append([]float64(nil), dst0...)
		Axpy(got, alpha, x)
		for i := range want {
			if !sameBits(got[i], want[i]) {
				t.Fatalf("elem %d: got %x want %x", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	})
}

func FuzzCenterScale(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{0, 0, 0, 0, 0, 0, 0, 0}, []byte{9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, xb, mb, sb []byte) {
		x := bytesToFloats(xb)
		mu := bytesToFloats(mb)
		sd := bytesToFloats(sb)
		n := min(len(x), min(len(mu), len(sd)))
		x, mu, sd = x[:n], mu[:n], sd[:n]
		want := make([]float64, n)
		centerScaleGeneric(want, x, mu, sd)
		got := make([]float64, n)
		CenterScale(got, x, mu, sd)
		for i := range want {
			if !sameBits(got[i], want[i]) {
				t.Fatalf("elem %d: got %x want %x", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	})
}

func FuzzTreeMask32(f *testing.F) {
	f.Add(make([]byte, 8*3), uint16(3), uint64(0xffff0000ffff0000))
	f.Fuzz(func(t *testing.T, tb []byte, nf uint16, seed uint64) {
		thr := bytesToFloats(tb)
		feats := int(nf%8) + 1
		rng := rand.New(rand.NewSource(int64(seed)))
		const stride = 32
		xcols := randVals(rng, feats*stride, true)
		masks := make([]uint64, len(thr))
		fidx := make([]uint32, len(thr))
		for i := range masks {
			masks[i] = rng.Uint64()
			fidx[i] = uint32(rng.Intn(feats))
		}
		var v0 [32]uint64
		for i := range v0 {
			v0[i] = rng.Uint64()
		}
		want := v0
		treeMask32Generic(&want, thr, masks, fidx, xcols, stride)
		got := v0
		TreeMask32(&got, thr, masks, fidx, xcols, stride)
		if got != want {
			t.Fatalf("got %v want %v", got, want)
		}
	})
}
