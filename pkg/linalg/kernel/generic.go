package kernel

// The pure-Go reference kernels. Always compiled on every architecture —
// they are both the non-amd64 implementation and the reference the
// equivalence tests pin the assembly against.

func axpyGeneric(dst []float64, alpha float64, x []float64) {
	if len(x) == 0 {
		return
	}
	_ = dst[len(x)-1]
	for i, v := range x {
		dst[i] += alpha * v
	}
}

func centerScaleGeneric(dst, x, mu, sd []float64) {
	if len(x) == 0 {
		return
	}
	_ = dst[len(x)-1]
	_ = mu[len(x)-1]
	_ = sd[len(x)-1]
	for i, v := range x {
		dst[i] = (v - mu[i]) / sd[i]
	}
}

func subGeneric(dst, x, mu []float64) {
	if len(x) == 0 {
		return
	}
	_ = dst[len(x)-1]
	_ = mu[len(x)-1]
	for i, v := range x {
		dst[i] = v - mu[i]
	}
}

func treeMask32Generic(v *[32]uint64, thr []float64, masks []uint64, feats []uint32, xcols []float64, stride int) {
	for n, t := range thr {
		m := masks[n]
		col := xcols[int(feats[n])*stride:]
		for j := 0; j < 32; j++ {
			// NaN compares false, like Go's <= — lanes holding NaN take
			// every node's "false" mask, exactly as a scalar walk would
			// go right at every node.
			if !(col[j] <= t) {
				v[j] &= m
			}
		}
	}
}
