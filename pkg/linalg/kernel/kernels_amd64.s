#include "textflag.h"

// Vectorized inner loops. Two rules keep every kernel bit-identical to
// the pure-Go reference (generic.go):
//
//  1. No FMA. An fused multiply-add rounds once; the Go loop's separate
//     multiply and add round twice. VMULPD+VADDPD only.
//  2. No reassociation. Each output element's operations happen in the
//     same order as the scalar loop — elementwise kernels vectorize
//     across elements (each lane is one element's whole dependency
//     chain), and horizontal reductions are not implemented here at all.
//
// VSUBPD/VDIVPD/VCMPPD are single IEEE-rounded operations, identical to
// their scalar counterparts lane by lane.

// func axpySSE2(dst, x *float64, n int, alpha float64)
TEXT ·axpySSE2(SB), NOSPLIT, $0-32
	MOVQ  dst+0(FP), DI
	MOVQ  x+8(FP), SI
	MOVQ  n+16(FP), CX
	MOVSD alpha+24(FP), X0
	UNPCKLPD X0, X0
	XORQ  AX, AX
	MOVQ  CX, DX
	ANDQ  $-4, DX
	JE    sse2tail
sse2loop4:
	MOVUPD (SI)(AX*8), X1
	MOVUPD 16(SI)(AX*8), X2
	MULPD  X0, X1
	MULPD  X0, X2
	MOVUPD (DI)(AX*8), X3
	MOVUPD 16(DI)(AX*8), X4
	ADDPD  X3, X1
	ADDPD  X4, X2
	MOVUPD X1, (DI)(AX*8)
	MOVUPD X2, 16(DI)(AX*8)
	ADDQ   $4, AX
	CMPQ   AX, DX
	JL     sse2loop4
sse2tail:
	CMPQ AX, CX
	JGE  sse2done
sse2scalar:
	MOVSD (SI)(AX*8), X1
	MULSD X0, X1
	ADDSD (DI)(AX*8), X1
	MOVSD X1, (DI)(AX*8)
	INCQ  AX
	CMPQ  AX, CX
	JL    sse2scalar
sse2done:
	RET

// func axpyAVX2(dst, x *float64, n int, alpha float64)
TEXT ·axpyAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD alpha+24(FP), Y0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	JE   axpytail
axpyloop8:
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VADDPD  (DI)(AX*8), Y1, Y1
	VADDPD  32(DI)(AX*8), Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, DX
	JL      axpyloop8
axpytail:
	VZEROUPPER
	CMPQ  AX, CX
	JGE   axpydone
	MOVSD alpha+24(FP), X0
axpyscalar:
	MOVSD (SI)(AX*8), X1
	MULSD X0, X1
	ADDSD (DI)(AX*8), X1
	MOVSD X1, (DI)(AX*8)
	INCQ  AX
	CMPQ  AX, CX
	JL    axpyscalar
axpydone:
	RET

// func centerScaleSSE2(dst, x, mu, sd *float64, n int)
TEXT ·centerScaleSSE2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ mu+16(FP), R8
	MOVQ sd+24(FP), R9
	MOVQ n+32(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX
	JE   cssse2tail
cssse2loop4:
	MOVUPD (SI)(AX*8), X1
	MOVUPD 16(SI)(AX*8), X2
	MOVUPD (R8)(AX*8), X3
	MOVUPD 16(R8)(AX*8), X4
	SUBPD  X3, X1
	SUBPD  X4, X2
	MOVUPD (R9)(AX*8), X3
	MOVUPD 16(R9)(AX*8), X4
	DIVPD  X3, X1
	DIVPD  X4, X2
	MOVUPD X1, (DI)(AX*8)
	MOVUPD X2, 16(DI)(AX*8)
	ADDQ   $4, AX
	CMPQ   AX, DX
	JL     cssse2loop4
cssse2tail:
	CMPQ AX, CX
	JGE  cssse2done
cssse2scalar:
	MOVSD (SI)(AX*8), X1
	SUBSD (R8)(AX*8), X1
	DIVSD (R9)(AX*8), X1
	MOVSD X1, (DI)(AX*8)
	INCQ  AX
	CMPQ  AX, CX
	JL    cssse2scalar
cssse2done:
	RET

// func centerScaleAVX2(dst, x, mu, sd *float64, n int)
TEXT ·centerScaleAVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ mu+16(FP), R8
	MOVQ sd+24(FP), R9
	MOVQ n+32(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	JE   cstail
csloop8:
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VSUBPD  (R8)(AX*8), Y1, Y1
	VSUBPD  32(R8)(AX*8), Y2, Y2
	VDIVPD  (R9)(AX*8), Y1, Y1
	VDIVPD  32(R9)(AX*8), Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, DX
	JL      csloop8
cstail:
	VZEROUPPER
	CMPQ AX, CX
	JGE  csdone
csscalar:
	MOVSD (SI)(AX*8), X1
	SUBSD (R8)(AX*8), X1
	DIVSD (R9)(AX*8), X1
	MOVSD X1, (DI)(AX*8)
	INCQ  AX
	CMPQ  AX, CX
	JL    csscalar
csdone:
	RET

// func subSSE2(dst, x, mu *float64, n int)
TEXT ·subSSE2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ mu+16(FP), R8
	MOVQ n+24(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX
	JE   subsse2tail
subsse2loop4:
	MOVUPD (SI)(AX*8), X1
	MOVUPD 16(SI)(AX*8), X2
	MOVUPD (R8)(AX*8), X3
	MOVUPD 16(R8)(AX*8), X4
	SUBPD  X3, X1
	SUBPD  X4, X2
	MOVUPD X1, (DI)(AX*8)
	MOVUPD X2, 16(DI)(AX*8)
	ADDQ   $4, AX
	CMPQ   AX, DX
	JL     subsse2loop4
subsse2tail:
	CMPQ AX, CX
	JGE  subsse2done
subsse2scalar:
	MOVSD (SI)(AX*8), X1
	SUBSD (R8)(AX*8), X1
	MOVSD X1, (DI)(AX*8)
	INCQ  AX
	CMPQ  AX, CX
	JL    subsse2scalar
subsse2done:
	RET

// func subAVX2(dst, x, mu *float64, n int)
TEXT ·subAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ mu+16(FP), R8
	MOVQ n+24(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	JE   subtail
subloop8:
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VSUBPD  (R8)(AX*8), Y1, Y1
	VSUBPD  32(R8)(AX*8), Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, DX
	JL      subloop8
subtail:
	VZEROUPPER
	CMPQ AX, CX
	JGE  subdone
subscalar:
	MOVSD (SI)(AX*8), X1
	SUBSD (R8)(AX*8), X1
	MOVSD X1, (DI)(AX*8)
	INCQ  AX
	CMPQ  AX, CX
	JL    subscalar
subdone:
	RET

// func treeMask32AVX2(v *[32]uint64, thr *float64, masks *uint64, feats *uint32, nodes int, xcols *float64, stride int)
//
// Branch-free bitmask tree evaluation, 32 samples per call. The 32
// surviving-leaf bitvectors live in Y8-Y15 for the whole node loop; per
// node the kernel broadcasts (threshold, false-mask), loads the node's
// feature column for all 32 samples (contiguous — xcols is transposed),
// and refines v lanewise:
//
//	sel  = (x <= t) ? ~0 : 0        VCMPPD LE_OQ (NaN -> false, as Go)
//	v   &= sel | mask               VORPD + VANDPD
//
// ~9 uops/node for 32 samples versus ~5 loads+compare per sample per
// step in the scalar lockstep walk — the whole win of the kernel.
TEXT ·treeMask32AVX2(SB), NOSPLIT, $0-56
	MOVQ v+0(FP), DI
	MOVQ thr+8(FP), R8
	MOVQ masks+16(FP), R9
	MOVQ feats+24(FP), R10
	MOVQ nodes+32(FP), CX
	MOVQ xcols+40(FP), SI
	MOVQ stride+48(FP), R11
	SHLQ $3, R11
	VMOVDQU (DI), Y8
	VMOVDQU 32(DI), Y9
	VMOVDQU 64(DI), Y10
	VMOVDQU 96(DI), Y11
	VMOVDQU 128(DI), Y12
	VMOVDQU 160(DI), Y13
	VMOVDQU 192(DI), Y14
	VMOVDQU 224(DI), Y15
	XORQ  AX, AX
	TESTQ CX, CX
	JE    tmstore
tmnode:
	MOVL  (R10)(AX*4), DX
	IMULQ R11, DX
	LEAQ  (SI)(DX*1), BX
	VBROADCASTSD (R8)(AX*8), Y0
	VPBROADCASTQ (R9)(AX*8), Y1
	VMOVUPD (BX), Y2
	VMOVUPD 32(BX), Y3
	VMOVUPD 64(BX), Y4
	VMOVUPD 96(BX), Y5
	VCMPPD  $0x12, Y0, Y2, Y2
	VCMPPD  $0x12, Y0, Y3, Y3
	VCMPPD  $0x12, Y0, Y4, Y4
	VCMPPD  $0x12, Y0, Y5, Y5
	VORPD   Y1, Y2, Y2
	VORPD   Y1, Y3, Y3
	VORPD   Y1, Y4, Y4
	VORPD   Y1, Y5, Y5
	VANDPD  Y2, Y8, Y8
	VANDPD  Y3, Y9, Y9
	VANDPD  Y4, Y10, Y10
	VANDPD  Y5, Y11, Y11
	VMOVUPD 128(BX), Y2
	VMOVUPD 160(BX), Y3
	VMOVUPD 192(BX), Y4
	VMOVUPD 224(BX), Y5
	VCMPPD  $0x12, Y0, Y2, Y2
	VCMPPD  $0x12, Y0, Y3, Y3
	VCMPPD  $0x12, Y0, Y4, Y4
	VCMPPD  $0x12, Y0, Y5, Y5
	VORPD   Y1, Y2, Y2
	VORPD   Y1, Y3, Y3
	VORPD   Y1, Y4, Y4
	VORPD   Y1, Y5, Y5
	VANDPD  Y2, Y12, Y12
	VANDPD  Y3, Y13, Y13
	VANDPD  Y4, Y14, Y14
	VANDPD  Y5, Y15, Y15
	INCQ AX
	CMPQ AX, CX
	JL   tmnode
tmstore:
	VMOVDQU Y8, (DI)
	VMOVDQU Y9, 32(DI)
	VMOVDQU Y10, 64(DI)
	VMOVDQU Y11, 96(DI)
	VMOVDQU Y12, 128(DI)
	VMOVDQU Y13, 160(DI)
	VMOVDQU Y14, 192(DI)
	VMOVDQU Y15, 224(DI)
	VZEROUPPER
	RET
