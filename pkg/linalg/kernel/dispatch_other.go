//go:build !amd64

package kernel

// Non-amd64 architectures run the pure-Go kernels; the dispatch hooks and
// the bit-identical contract are the same, there is just one table.
func bestImpl() impl { return genericImpl }

// treeMask32Vec is never reached here: no impl sets treeMaskVec, so
// TreeMask32 always takes the generic branch.
func treeMask32Vec(v *[32]uint64, thr []float64, masks []uint64, feats []uint32, xcols []float64, stride int) {
	treeMask32Generic(v, thr, masks, feats, xcols, stride)
}
