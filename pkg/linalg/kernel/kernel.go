// Package kernel hosts the hand-vectorized inner loops of the inference
// hot path: the axpy behind the dense row×matrix product, the fused
// center+scale pass of the feature scaler, plain row centering for PCA,
// and the bitmask tree-compare step behind the forest's batched vote.
//
// # Dispatch
//
// The implementation behind each exported function is selected exactly
// once, at package init, from CPU feature detection (CPUID on amd64):
// AVX2 where the OS saves YMM state, SSE2 otherwise (SSE2 is the amd64
// baseline), and the pure-Go loops everywhere else. The pure-Go path is
// always compiled and always tested — it is the reference the equivalence
// property tests pin the assembly against — and can be forced two ways:
//
//   - setting the TRUSTHMD_NOSIMD environment variable (any non-empty
//     value) before the process starts;
//   - calling ForceGeneric from code (tests; not safe concurrently with
//     kernel use — switch implementations only while no kernel calls are
//     in flight).
//
// # Bit-identical contract
//
// SIMD and generic paths must produce bit-identical float64 results.
// That constrains the kernels:
//
//   - Elementwise loops (axpy, (x-mu)/sd, x-mu) vectorize exactly: each
//     output element keeps its own sequential dependency chain, so
//     evaluating four lanes at once performs the very same rounded
//     operations in the very same order per element.
//   - No FMA, ever: a fused multiply-add rounds once where the Go loop
//     rounds twice, so axpy is VMULPD+VADDPD even on FMA hardware.
//   - Horizontal reductions (linalg.Dot) are NOT vectorized: a 4-lane
//     partial-sum reduction reassociates the additions and changes the
//     rounding, so dot products stay scalar everywhere.
//   - The tree kernel compares floats but ANDs integers; comparisons are
//     exact in IEEE 754, so there is no ordering constraint at all.
//
// NaN payloads are outside the contract: x86 min/add NaN-propagation
// picks operands in an order Go does not specify, so "NaN in, NaN out"
// holds bitwise only up to the payload.
package kernel

import (
	"fmt"
	"os"
)

// NoSIMDEnv is the environment variable that forces the pure-Go kernels
// for the whole process when set to any non-empty value.
const NoSIMDEnv = "TRUSTHMD_NOSIMD"

// impl is one dispatch table: every kernel the package exports, plus the
// name Active reports.
type impl struct {
	name        string
	axpy        func(dst []float64, alpha float64, x []float64)
	centerScale func(dst, x, mu, sd []float64)
	sub         func(dst, x, mu []float64)
	// treeMaskVec selects the vector tree kernel (treeMask32Vec, a direct
	// //go:noescape call — a function-pointer indirection here would make
	// the caller's stack bitvector escape and allocate per block). It also
	// tells callers the kernel is worth restructuring a batch for
	// (transposing the input); the generic fallback is correct but slower
	// than the lockstep walk it replaces.
	treeMaskVec bool
}

var genericImpl = impl{
	name:        "generic",
	axpy:        axpyGeneric,
	centerScale: centerScaleGeneric,
	sub:         subGeneric,
}

// active is the selected dispatch table. It is written at init and by
// ForceGeneric/Reset only; kernel calls read it without synchronisation,
// so switching tables while kernels run on other goroutines is a caller
// bug (the package documents the switch hooks as test-only).
var active = genericImpl

func init() {
	Reset()
}

// Reset re-runs the init-time dispatch: generic when TRUSTHMD_NOSIMD is
// set, otherwise the best implementation the CPU supports. It is the
// counterpart of ForceGeneric for tests.
func Reset() {
	if os.Getenv(NoSIMDEnv) != "" {
		active = genericImpl
		return
	}
	active = bestImpl()
}

// ForceGeneric switches every kernel to the pure-Go reference
// implementation until Reset. Test-only: not safe while kernel calls are
// in flight on other goroutines.
func ForceGeneric() {
	active = genericImpl
}

// Active names the implementation currently dispatched: "avx2", "sse2"
// or "generic".
func Active() string { return active.name }

// TreeMaskSIMD reports whether TreeMask32 dispatches to a vector kernel.
// Callers use it to decide whether restructuring a batch for the bitmask
// tree walk (one transpose per batch) pays for itself; the generic
// TreeMask32 is correct but slower than a plain lockstep tree walk.
func TreeMaskSIMD() bool { return active.treeMaskVec }

// Axpy computes dst[i] += alpha*x[i], bit-identically to the obvious Go
// loop (multiply then add, rounded separately — never fused). It panics
// if the lengths differ.
func Axpy(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("kernel: axpy of len %d and %d", len(dst), len(x)))
	}
	// Short vectors (the K-wide PCA rows, 2-D t-SNE points) run the plain
	// loop right here: below ~12 elements the dispatch indirection and
	// pointer shim cost more than the arithmetic. Bit-identity is
	// unaffected — the loop is the reference computation.
	if len(x) < 12 {
		for i, v := range x {
			dst[i] += alpha * v
		}
		return
	}
	active.axpy(dst, alpha, x)
}

// CenterScale computes dst[i] = (x[i] - mu[i]) / sd[i] — the feature
// scaler's fused standardisation pass. dst == x is allowed (in-place).
// It panics if the lengths differ.
func CenterScale(dst, x, mu, sd []float64) {
	if len(dst) != len(x) || len(mu) != len(x) || len(sd) != len(x) {
		panic(fmt.Sprintf("kernel: centerscale of len %d/%d/%d/%d",
			len(dst), len(x), len(mu), len(sd)))
	}
	if len(dst) == 0 {
		return
	}
	active.centerScale(dst, x, mu, sd)
}

// Sub computes dst[i] = x[i] - mu[i] — row centering. dst == x is
// allowed (in-place). It panics if the lengths differ.
func Sub(dst, x, mu []float64) {
	if len(dst) != len(x) || len(mu) != len(x) {
		panic(fmt.Sprintf("kernel: sub of len %d/%d/%d", len(dst), len(x), len(mu)))
	}
	if len(dst) == 0 {
		return
	}
	active.sub(dst, x, mu)
}

// TreeMask32 is the inner step of the bitmask ("QuickScorer"-style) tree
// walk over 32 samples at once. For every node n it refines the 32
// surviving-leaf bitvectors:
//
//	v[j] &= ^0          if xcols[feats[n]*stride + j] <= thr[n]
//	v[j] &= masks[n]    otherwise
//
// xcols is feature-major (transposed) sample storage: column j of sample
// block starts at xcols[f*stride] for feature f, so the 32 lanes load
// contiguously — no gathers. The caller guarantees
// feats[n]*stride+32 <= len(xcols) for every node (true whenever xcols
// is the tail raw[r0:] of a d×n transposed matrix with r0+32 <= n).
//
// The comparison is exact (IEEE equality of outcomes, NaN compares
// false, matching Go's <=), and the AND lattice is order-free, so SIMD
// and generic paths agree bit-for-bit by construction.
func TreeMask32(v *[32]uint64, thr []float64, masks []uint64, feats []uint32, xcols []float64, stride int) {
	if len(masks) != len(thr) || len(feats) != len(thr) {
		panic(fmt.Sprintf("kernel: treemask arrays of len %d/%d/%d",
			len(thr), len(masks), len(feats)))
	}
	if len(thr) == 0 {
		return
	}
	if active.treeMaskVec {
		treeMask32Vec(v, thr, masks, feats, xcols, stride)
		return
	}
	treeMask32Generic(v, thr, masks, feats, xcols, stride)
}
