package kernel

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for each kernel at the hot path's real shapes: 17-wide
// rows (the DVFS feature dimension) and ~22-node trees over 32-sample
// blocks. Run with -tags or TRUSTHMD_NOSIMD=1 to compare dispatch levels.

func benchVec(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func BenchmarkAxpy(b *testing.B) {
	for _, n := range []int{17, 64, 256} {
		b.Run(sizeName(n), func(b *testing.B) {
			dst, x := benchVec(n), benchVec(n)
			b.ReportAllocs()
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				Axpy(dst, 1.0000001, x)
			}
		})
	}
}

func BenchmarkCenterScale(b *testing.B) {
	for _, n := range []int{17, 64, 256} {
		b.Run(sizeName(n), func(b *testing.B) {
			dst, x, mu, sd := benchVec(n), benchVec(n), benchVec(n), benchVec(n)
			for i := range sd {
				sd[i] = 1 + sd[i]*sd[i]
			}
			b.ReportAllocs()
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				CenterScale(dst, x, mu, sd)
			}
		})
	}
}

func BenchmarkSub(b *testing.B) {
	dst, x, mu := benchVec(17), benchVec(17), benchVec(17)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sub(dst, x, mu)
	}
}

func BenchmarkTreeMask32(b *testing.B) {
	const nodes, feats, stride = 22, 17, 256
	rng := rand.New(rand.NewSource(2))
	xcols := benchVec(feats * stride)
	thr := benchVec(nodes)
	masks := make([]uint64, nodes)
	fidx := make([]uint32, nodes)
	for i := range masks {
		masks[i] = rng.Uint64()
		fidx[i] = uint32(rng.Intn(feats))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var v [32]uint64
		for j := range v {
			v[j] = ^uint64(0)
		}
		TreeMask32(&v, thr, masks, fidx, xcols, stride)
	}
}

func sizeName(n int) string {
	switch n {
	case 17:
		return "d17"
	case 64:
		return "d64"
	default:
		return "d256"
	}
}
