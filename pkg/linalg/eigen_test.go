package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := MustFromRows([][]float64{{3, 0}, {0, 1}})
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-3) > 1e-10 || math.Abs(e.Values[1]-1) > 1e-10 {
		t.Fatalf("values %v", e.Values)
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := MustFromRows([][]float64{{2, 1}, {1, 2}})
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-3) > 1e-10 || math.Abs(e.Values[1]-1) > 1e-10 {
		t.Fatalf("values %v, want [3 1]", e.Values)
	}
	// Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
	v0 := e.Vectors.Col(0)
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-9 || math.Abs(v0[0]-v0[1]) > 1e-9 {
		t.Fatalf("vector %v", v0)
	}
}

func TestSymEigenNotSquare(t *testing.T) {
	if _, err := SymEigen(New(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := SymEigen(New(0, 0)); err == nil {
		t.Fatal("expected error for empty matrix")
	}
}

func TestSymEigenNotSymmetric(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := SymEigen(a); err == nil {
		t.Fatal("expected symmetry error")
	}
}

func TestSymEigenDescendingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomSym(rng, 6)
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(e.Values); i++ {
		if e.Values[i] > e.Values[i-1]+1e-12 {
			t.Fatalf("values not descending: %v", e.Values)
		}
	}
}

func randomSym(rng *rand.Rand, n int) *Matrix {
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// Property: A v_k = lambda_k v_k and the eigenvectors are orthonormal.
func TestSymEigenReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomSym(rng, n)
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		for k := 0; k < n; k++ {
			v := e.Vectors.Col(k)
			av, err := a.MulVec(v)
			if err != nil {
				return false
			}
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-e.Values[k]*v[i]) > 1e-7 {
					return false
				}
			}
		}
		// Orthonormality.
		for p := 0; p < n; p++ {
			vp := e.Vectors.Col(p)
			for q := p; q < n; q++ {
				d := Dot(vp, e.Vectors.Col(q))
				want := 0.0
				if p == q {
					want = 1
				}
				if math.Abs(d-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: trace is preserved (sum of eigenvalues equals trace of A).
func TestSymEigenTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomSym(rng, n)
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		var trace float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		return math.Abs(trace-Sum(e.Values)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("identity wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("dot=%v", Dot(a, b))
	}
	if math.Abs(Norm([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("norm")
	}
	if SqDist(a, b) != 27 {
		t.Fatalf("sqdist=%v", SqDist(a, b))
	}
	if math.Abs(Dist(a, b)-math.Sqrt(27)) > 1e-12 {
		t.Fatal("dist")
	}
	dst := CloneVec(a)
	AddScaled(dst, 2, b)
	if dst[2] != 15 {
		t.Fatalf("addscaled %v", dst)
	}
	ScaleVec(dst, 0)
	if dst[0] != 0 {
		t.Fatal("scalevec")
	}
	if ArgMax([]float64{1, 5, 5, 2}) != 1 {
		t.Fatal("argmax tie should pick lowest index")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("argmax empty")
	}
	if Sum(a) != 6 || Mean(a) != 2 {
		t.Fatal("sum/mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("mean empty")
	}
}

func TestVectorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"dot":       func() { Dot([]float64{1}, []float64{1, 2}) },
		"sqdist":    func() { SqDist([]float64{1}, []float64{1, 2}) },
		"addscaled": func() { AddScaled([]float64{1}, 1, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
