// Package mat provides the dense linear algebra used throughout trusthmd:
// row-major matrices, vector helpers, covariance estimation and a Jacobi
// symmetric eigendecomposition. It is deliberately small — just enough for
// PCA, t-SNE and the linear classifiers — and depends only on the standard
// library.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"unsafe"

	"trusthmd/pkg/linalg/kernel"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Use New or FromRows to construct
// matrices with data.
type Matrix struct {
	rows, cols int
	data       []float64
}

// ErrShape reports incompatible matrix dimensions.
var ErrShape = errors.New("linalg: incompatible shapes")

// New returns a zeroed rows x cols matrix.
// It panics if either dimension is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix by copying the given rows. All rows must have
// equal length. An empty input yields a 0x0 matrix.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			return nil, fmt.Errorf("linalg: ragged row %d: got %d values, want %d: %w", i, len(r), c, ErrShape)
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m, nil
}

// MustFromRows is FromRows but panics on error. Intended for tests and
// literals of known shape.
func MustFromRows(rows [][]float64) *Matrix {
	m, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns the i-th row as a slice sharing the matrix's storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Raw returns the matrix's backing storage: Rows()*Cols() values in
// row-major order, shared with the matrix (mutations are visible both
// ways). It exists for inference kernels that walk every row and cannot
// afford a bounds-checked Row call per sample; everyone else should use
// Row/At.
func (m *Matrix) Raw() []float64 { return m.data }

// RowCopy returns a copy of the i-th row.
func (m *Matrix) RowCopy(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.Row(i))
	return out
}

// Col returns a copy of the j-th column.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	m.ColInto(j, out)
	return out
}

// ColInto copies the j-th column into dst, which must have length Rows().
// It is the destination-passing form of Col for hot loops that visit many
// columns: one caller-owned buffer replaces a fresh slice per call.
func (m *Matrix) ColInto(j int, dst []float64) {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of range %d", j, m.cols))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("linalg: col dst len %d, want %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = m.data[i*m.cols+j]
	}
}

// Resize reshapes m to rows x cols, reusing its backing storage when it is
// large enough and reallocating otherwise, and returns m. All elements are
// zeroed. It is the growth primitive behind reusable scratch matrices: a
// steady-state caller that resizes to the same shape every call never
// allocates. Resizing a matrix whose rows or storage are aliased elsewhere
// (Row, shared Clones) is the caller's responsibility to avoid.
func (m *Matrix) Resize(rows, cols int) *Matrix {
	m.ResizeUnset(rows, cols)
	for i := range m.data {
		m.data[i] = 0
	}
	return m
}

// ResizeUnset reshapes like Resize but leaves reused storage's contents
// unspecified — for destination buffers the caller overwrites in full
// (matrix-product outputs, row-copy targets), where Resize's zeroing pass
// would be pure waste on the hot path. Use Resize when zeroed storage
// matters.
func (m *Matrix) ResizeUnset(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.data) < n {
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
	}
	m.rows, m.cols = rows, cols
	return m
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	n := New(m.rows, m.cols)
	copy(n.data, m.data)
	return n
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	_ = m.TInto(t)
	return t
}

// TInto writes the transpose of m into dst, which must be Cols() x Rows().
// dst must not alias m.
func (m *Matrix) TInto(dst *Matrix) error {
	if dst.rows != m.cols || dst.cols != m.rows {
		return fmt.Errorf("linalg: transpose %dx%d into %dx%d: %w", m.rows, m.cols, dst.rows, dst.cols, ErrShape)
	}
	// The scatter writes j*dst.cols+i are in range by the shape check
	// (i < dst.cols, j < dst.rows); unsafe stores drop the per-element
	// bounds check from what is a pure data-movement loop on the batched
	// inference hot path (the ensemble's feature-major batch copy).
	dp := unsafe.Pointer(unsafe.SliceData(dst.data))
	dcols := uintptr(dst.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		out := unsafe.Add(dp, uintptr(i)*8)
		for j, v := range row {
			*(*float64)(unsafe.Add(out, uintptr(j)*dcols*8)) = v
		}
	}
	return nil
}

// mulParallelFlops is the m.rows*m.cols*b.cols work threshold above which
// MulInto fans row blocks out over GOMAXPROCS goroutines. Output rows are
// independent and each is accumulated in the same k-order regardless of
// which goroutine computes it, so the parallel product is bit-identical to
// the serial one.
const mulParallelFlops = 1 << 21

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("linalg: mul %dx%d by %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	out := New(m.rows, b.cols)
	if err := m.MulInto(out, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MulInto writes the matrix product m * b into dst, which must be
// Rows() x b.Cols() and is overwritten. dst must not alias m or b. Large
// products are computed in parallel row blocks (see mulParallelFlops);
// results are bit-identical to the serial product either way.
func (m *Matrix) MulInto(dst, b *Matrix) error {
	if m.cols != b.rows {
		return fmt.Errorf("linalg: mul %dx%d by %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	if dst.rows != m.rows || dst.cols != b.cols {
		return fmt.Errorf("linalg: mul %dx%d by %dx%d into %dx%d: %w",
			m.rows, m.cols, b.rows, b.cols, dst.rows, dst.cols, ErrShape)
	}
	// Size the fan-out by the work available: one goroutine per
	// mulParallelFlops of product, capped by GOMAXPROCS and the row count.
	// Small products (and products barely past the threshold) thus run
	// serial or nearly so instead of paying spawn-and-join overhead for
	// sub-threshold slices — the bursty-stream path multiplies many small
	// batches where that overhead dominated.
	flops := m.rows * m.cols * b.cols
	workers := flops / mulParallelFlops
	if g := runtime.GOMAXPROCS(0); workers > g {
		workers = g
	}
	if workers > m.rows {
		workers = m.rows
	}
	if workers <= 1 {
		m.mulRows(dst, b, 0, m.rows)
		return nil
	}
	var wg sync.WaitGroup
	block := (m.rows + workers - 1) / workers
	for lo := 0; lo < m.rows; lo += block {
		hi := lo + block
		if hi > m.rows {
			hi = m.rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulRows(dst, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// mulRows computes output rows [lo, hi) of dst = m * b.
func (m *Matrix) mulRows(dst, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for j := range orow {
			orow[j] = 0
		}
		if b.cols < 12 {
			// Narrow right-hand sides (the K-wide PCA projection) keep the
			// inline loop: per-call kernel overhead would exceed the FLOPs.
			for k, mv := range mrow {
				if mv == 0 {
					continue
				}
				brow := b.data[k*b.cols : (k+1)*b.cols]
				for j, bv := range brow {
					orow[j] += mv * bv
				}
			}
			continue
		}
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			kernel.Axpy(orow, mv, brow)
		}
	}
}

// MulVec returns the matrix-vector product m * x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	out := make([]float64, m.rows)
	if err := m.MulVecInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecInto writes the matrix-vector product m * x into dst, which must
// have length Rows(). dst must not alias x.
func (m *Matrix) MulVecInto(dst, x []float64) error {
	if m.cols != len(x) {
		return fmt.Errorf("linalg: mulvec %dx%d by len %d: %w", m.rows, m.cols, len(x), ErrShape)
	}
	if len(dst) != m.rows {
		return fmt.Errorf("linalg: mulvec %dx%d into len %d: %w", m.rows, m.cols, len(dst), ErrShape)
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
	return nil
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// Add adds b to m in place and returns m.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("linalg: add %dx%d and %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	for i := range m.data {
		m.data[i] += b.data[i]
	}
	return m, nil
}

// Sub subtracts b from m in place and returns m.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("linalg: sub %dx%d and %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	for i := range m.data {
		m.data[i] -= b.data[i]
	}
	return m, nil
}

// Equal reports whether m and b have the same shape and all elements are
// within tol of each other.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("%dx%d[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

// ColMeans returns the per-column mean of m. A 0-row matrix yields zeros.
func (m *Matrix) ColMeans() []float64 {
	means := make([]float64, m.cols)
	if m.rows == 0 {
		return means
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1 / float64(m.rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// ColStds returns the per-column sample standard deviation (denominator
// n-1). Columns with fewer than two rows or zero variance report 0.
func (m *Matrix) ColStds() []float64 {
	stds := make([]float64, m.cols)
	if m.rows < 2 {
		return stds
	}
	means := m.ColMeans()
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			d := v - means[j]
			stds[j] += d * d
		}
	}
	inv := 1 / float64(m.rows-1)
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] * inv)
	}
	return stds
}

// CenterRows subtracts mu from every row of m in place.
func (m *Matrix) CenterRows(mu []float64) error {
	return m.CenterRowsInto(m, mu)
}

// CenterRowsInto writes m with mu subtracted from every row into dst,
// which must have m's shape. dst == m centers in place; partial aliasing
// is the caller's responsibility to avoid. It is the destination-passing
// form of CenterRows for pipelines that must preserve their input (PCA's
// batched Transform centers into scratch instead of cloning).
func (m *Matrix) CenterRowsInto(dst *Matrix, mu []float64) error {
	if len(mu) != m.cols {
		return fmt.Errorf("linalg: center %dx%d with len %d mean: %w", m.rows, m.cols, len(mu), ErrShape)
	}
	if dst.rows != m.rows || dst.cols != m.cols {
		return fmt.Errorf("linalg: center %dx%d into %dx%d: %w", m.rows, m.cols, dst.rows, dst.cols, ErrShape)
	}
	for i := 0; i < m.rows; i++ {
		kernel.Sub(dst.Row(i), m.Row(i), mu)
	}
	return nil
}

// Covariance returns the d x d sample covariance matrix of the rows of m
// (denominator n-1). It requires at least two rows.
func (m *Matrix) Covariance() (*Matrix, error) {
	if m.rows < 2 {
		return nil, fmt.Errorf("linalg: covariance needs >=2 rows, got %d", m.rows)
	}
	mu := m.ColMeans()
	cov := New(m.cols, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for a := 0; a < m.cols; a++ {
			da := row[a] - mu[a]
			if da == 0 {
				continue
			}
			crow := cov.data[a*cov.cols : (a+1)*cov.cols]
			for b := 0; b < m.cols; b++ {
				crow[b] += da * (row[b] - mu[b])
			}
		}
	}
	cov.Scale(1 / float64(m.rows-1))
	return cov, nil
}
