package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: A = V diag(L) Vᵀ.
// Values are sorted in descending order and Vectors' columns correspond to
// Values (column k of Vectors is the eigenvector for Values[k]).
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// SymEigen computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi rotation method. The input is not modified. It returns
// an error if a is not square, empty, or not symmetric to within a small
// tolerance, or if the iteration fails to converge.
//
// Jacobi is O(d^3) per sweep and converges quadratically; it is exact enough
// for the PCA dimensionalities used in this project (d <= a few hundred).
func SymEigen(a *Matrix) (*Eigen, error) {
	n := a.Rows()
	if n == 0 || a.Cols() != n {
		return nil, fmt.Errorf("linalg: symeigen of %dx%d: %w", a.Rows(), a.Cols(), ErrShape)
	}
	var scale float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			scale = math.Max(scale, math.Abs(a.At(i, j)))
		}
	}
	symTol := 1e-8 * math.Max(scale, 1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > symTol {
				return nil, fmt.Errorf("linalg: symeigen: matrix not symmetric at (%d,%d): %g vs %g", i, j, a.At(i, j), a.At(j, i))
			}
		}
	}

	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	tol := 1e-12 * math.Max(scale, 1)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= tol {
			return sortEigen(w, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= tol/float64(n) {
					continue
				}
				jacobiRotate(w, v, p, q)
			}
		}
	}
	if offDiagNorm(w) <= 1e-7*math.Max(scale, 1) {
		// Accept near-convergence; residuals at this scale do not affect
		// downstream PCA ordering.
		return sortEigen(w, v), nil
	}
	return nil, fmt.Errorf("linalg: symeigen: no convergence after %d sweeps (off-diagonal %.3g)", maxSweeps, offDiagNorm(w))
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	n := m.Rows()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := m.At(i, j)
			s += 2 * v * v
		}
	}
	return math.Sqrt(s)
}

// jacobiRotate zeroes w[p][q] with a Givens rotation, accumulating the
// rotation into v.
func jacobiRotate(w, v *Matrix, p, q int) {
	n := w.Rows()
	apq := w.At(p, q)
	app := w.At(p, p)
	aqq := w.At(q, q)

	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	for k := 0; k < n; k++ {
		wkp := w.At(k, p)
		wkq := w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk := w.At(p, k)
		wqk := w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	w.Set(p, q, 0)
	w.Set(q, p, 0)

	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func sortEigen(w, v *Matrix) *Eigen {
	n := w.Rows()
	idx := make([]int, n)
	vals := make([]float64, n)
	for i := range idx {
		idx[i] = i
		vals[i] = w.At(i, i)
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	outVals := make([]float64, n)
	outVecs := New(n, n)
	for k, src := range idx {
		outVals[k] = vals[src]
		for r := 0; r < n; r++ {
			outVecs.Set(r, k, v.At(r, src))
		}
	}
	return &Eigen{Values: outVals, Vectors: outVecs}
}
