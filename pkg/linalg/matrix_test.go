package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("new matrix not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(-1, 2)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("got %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1)=%v, want 6", m.At(2, 1))
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("got %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestSetAt(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 7.5)
	if got := m.At(1, 0); got != 7.5 {
		t.Fatalf("got %v, want 7.5", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(2, 0)
}

func TestRowSharesStorage(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[1] = 99
	if m.At(0, 1) != 99 {
		t.Fatal("Row must share storage")
	}
	rc := m.RowCopy(1)
	rc[0] = -1
	if m.At(1, 0) != 3 {
		t.Fatal("RowCopy must not share storage")
	}
}

func TestColAndClone(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1)=%v", c)
	}
	n := m.Clone()
	n.Set(0, 0, -5)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must deep copy")
	}
}

func TestTranspose(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("got %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %v", tr)
	}
}

func TestMul(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMulShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulVec(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := a.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("got %v", got)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestAddSubScale(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.At(1, 1) != 5 {
		t.Fatalf("add failed: %v", a)
	}
	if _, err := a.Sub(b); err != nil {
		t.Fatal(err)
	}
	if a.At(1, 1) != 4 {
		t.Fatalf("sub failed: %v", a)
	}
	a.Scale(2)
	if a.At(0, 0) != 2 {
		t.Fatalf("scale failed: %v", a)
	}
	if _, err := a.Add(New(1, 1)); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := a.Sub(New(1, 1)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestColMeansStds(t *testing.T) {
	m := MustFromRows([][]float64{{1, 10}, {3, 10}, {5, 10}})
	mu := m.ColMeans()
	if mu[0] != 3 || mu[1] != 10 {
		t.Fatalf("means %v", mu)
	}
	sd := m.ColStds()
	if math.Abs(sd[0]-2) > 1e-12 {
		t.Fatalf("std %v, want 2", sd[0])
	}
	if sd[1] != 0 {
		t.Fatalf("constant column std %v, want 0", sd[1])
	}
}

func TestCenterRows(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	if err := m.CenterRows(m.ColMeans()); err != nil {
		t.Fatal(err)
	}
	mu := m.ColMeans()
	if math.Abs(mu[0]) > 1e-12 || math.Abs(mu[1]) > 1e-12 {
		t.Fatalf("not centered: %v", mu)
	}
	if err := m.CenterRows([]float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestCovariance(t *testing.T) {
	// Perfectly correlated columns: cov = [[var, var],[var, var]].
	m := MustFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	cov, err := m.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov.At(0, 0)-1) > 1e-12 || math.Abs(cov.At(0, 1)-1) > 1e-12 {
		t.Fatalf("cov %v", cov)
	}
	if _, err := New(1, 2).Covariance(); err == nil {
		t.Fatal("expected error for 1 row")
	}
}

func TestCovarianceSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(8, 4)
		for i := 0; i < 8; i++ {
			for j := 0; j < 4; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		cov, err := m.Covariance()
		if err != nil {
			return false
		}
		for i := 0; i < 4; i++ {
			if cov.At(i, i) < 0 {
				return false
			}
			for j := 0; j < 4; j++ {
				if math.Abs(cov.At(i, j)-cov.At(j, i)) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		m := New(r, c)
		for i := range m.data {
			m.data[i] = rng.NormFloat64()
		}
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{1 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(4)}
		mk := func(r, c int) *Matrix {
			m := New(r, c)
			for i := range m.data {
				m.data[i] = rng.NormFloat64()
			}
			return m
		}
		a, b, c := mk(dims[0], dims[1]), mk(dims[1], dims[2]), mk(dims[2], dims[3])
		ab, _ := a.Mul(b)
		abc1, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		abc2, _ := a.Mul(bc)
		return abc1.Equal(abc2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}})
	if s := m.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 10; round++ {
		n, k, m := 1+rng.Intn(40), 1+rng.Intn(30), 1+rng.Intn(25)
		a, b := New(n, k), New(k, m)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		want, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		dst := New(n, m)
		dst.data[0] = 42 // MulInto must overwrite stale contents
		if err := a.MulInto(dst, b); err != nil {
			t.Fatal(err)
		}
		for i := range want.data {
			if dst.data[i] != want.data[i] {
				t.Fatalf("round %d: MulInto diverged from Mul at %d", round, i)
			}
		}
	}
	bad := New(3, 3)
	if err := New(2, 2).MulInto(bad, New(2, 2)); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
	if err := New(2, 3).MulInto(New(2, 2), New(4, 2)); err == nil {
		t.Fatal("inner mismatch not rejected")
	}
}

// TestMulParallelBitIdentical crosses the row-blocked parallel threshold
// and asserts the goroutine-partitioned product equals the serial one bit
// for bit (each output row is accumulated in the same k-order regardless
// of which worker computes it).
func TestMulParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, k, m := 260, 120, 80 // n*k*m ≈ 2.5M > mulParallelFlops
	if n*k*m < mulParallelFlops {
		t.Fatal("test no longer crosses the parallel threshold; resize it")
	}
	a, b := New(n, k), New(k, m)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
	}
	for i := range b.data {
		b.data[i] = rng.NormFloat64()
	}
	parallel := New(n, m)
	if err := a.MulInto(parallel, b); err != nil {
		t.Fatal(err)
	}
	serial := New(n, m)
	a.mulRows(serial, b, 0, n)
	for i := range serial.data {
		if parallel.data[i] != serial.data[i] {
			t.Fatalf("parallel product diverged at %d", i)
		}
	}
}

func TestMulVecInto(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	x := []float64{2, -1}
	want, err := m.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	dst := []float64{9, 9, 9}
	if err := m.MulVecInto(dst, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecInto diverged at %d", i)
		}
	}
	if err := m.MulVecInto(make([]float64, 2), x); err == nil {
		t.Fatal("short dst not rejected")
	}
	if err := m.MulVecInto(dst, []float64{1}); err == nil {
		t.Fatal("short x not rejected")
	}
}

func TestTIntoAndColInto(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	want := m.T()
	dst := New(3, 2)
	if err := m.TInto(dst); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(want, 0) {
		t.Fatalf("TInto %v != T %v", dst, want)
	}
	if err := m.TInto(New(2, 3)); err == nil {
		t.Fatal("wrong-shape transpose dst not rejected")
	}

	col := make([]float64, 2)
	m.ColInto(1, col)
	if col[0] != 2 || col[1] != 5 {
		t.Fatalf("ColInto: %v", col)
	}
	if got := m.Col(1); got[0] != col[0] || got[1] != col[1] {
		t.Fatalf("Col/ColInto diverged: %v vs %v", got, col)
	}
	assertPanics(t, func() { m.ColInto(3, col) })
	assertPanics(t, func() { m.ColInto(0, make([]float64, 1)) })
}

func TestCenterRowsInto(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	mu := []float64{1, 1}
	dst := New(2, 2)
	if err := m.CenterRowsInto(dst, mu); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 {
		t.Fatal("CenterRowsInto mutated its source")
	}
	if dst.At(0, 0) != 0 || dst.At(1, 1) != 3 {
		t.Fatalf("CenterRowsInto: %v", dst)
	}
	// In place via the CenterRows wrapper.
	if err := m.CenterRows(mu); err != nil {
		t.Fatal(err)
	}
	if !m.Equal(dst, 0) {
		t.Fatal("in-place centering diverged from destination-passing form")
	}
	if err := m.CenterRowsInto(New(1, 2), mu); err == nil {
		t.Fatal("wrong-shape dst not rejected")
	}
	if err := m.CenterRowsInto(dst, []float64{1}); err == nil {
		t.Fatal("wrong-length mean not rejected")
	}
}

func TestResizeReusesStorage(t *testing.T) {
	m := New(4, 5)
	m.Set(0, 0, 7)
	data := m.Raw()
	m.Resize(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("resize to %dx%d", m.Rows(), m.Cols())
	}
	if m.At(0, 0) != 0 {
		t.Fatal("Resize must zero contents")
	}
	if &m.Raw()[0] != &data[0] {
		t.Fatal("shrinking Resize reallocated")
	}
	m.Resize(10, 10)
	if m.Rows() != 10 || m.At(9, 9) != 0 {
		t.Fatal("growing Resize broken")
	}
	allocs := testing.AllocsPerRun(20, func() { m.Resize(10, 10) })
	if allocs > 0 {
		t.Fatalf("same-shape Resize allocates %.1f times", allocs)
	}
	assertPanics(t, func() { m.Resize(-1, 2) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
