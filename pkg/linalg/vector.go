package linalg

import (
	"fmt"
	"math"

	"trusthmd/pkg/linalg/kernel"
)

// Dot returns the inner product of a and b. It panics if the lengths differ.
//
// Dot is deliberately NOT vectorized: a SIMD dot product keeps per-lane
// partial sums and reduces them at the end, which reassociates the
// additions and changes the rounding. The repo-wide contract is that
// results are bit-identical with and without SIMD (see pkg/linalg/kernel),
// so horizontal reductions stay scalar.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot of len %d and %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func Norm(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: sqdist of len %d and %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// AddScaled computes dst[i] += s*src[i] in place. It panics if the lengths
// differ.
func AddScaled(dst []float64, s float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: addscaled of len %d and %d", len(dst), len(src)))
	}
	kernel.Axpy(dst, s, src)
}

// ScaleVec multiplies every element of v by s in place.
func ScaleVec(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// CloneVec returns a copy of v.
func CloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// ArgMax returns the index of the largest element of v, or -1 for an empty
// slice. Ties resolve to the lowest index.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}
