package linalg

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// matrixGob is the exported wire form of a Matrix.
type matrixGob struct {
	Rows, Cols int
	Data       []float64
}

// GobEncode implements gob.GobEncoder so trained pipelines that embed
// matrices (PCA components, kNN training sets) can be serialized.
func (m *Matrix) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(matrixGob{Rows: m.rows, Cols: m.cols, Data: m.data}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Matrix) GobDecode(b []byte) error {
	var g matrixGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&g); err != nil {
		return err
	}
	if g.Rows < 0 || g.Cols < 0 || len(g.Data) != g.Rows*g.Cols {
		return fmt.Errorf("linalg: corrupt gob: %dx%d with %d values", g.Rows, g.Cols, len(g.Data))
	}
	m.rows, m.cols, m.data = g.Rows, g.Cols, g.Data
	if m.data == nil {
		m.data = []float64{}
	}
	return nil
}
