// Package verdictstore is an embedded, append-only time-series store of
// served trusted-HMD verdicts — the persistent half of the paper's
// deployment loop. Every decision the serving layer makes (device, shard,
// version, prediction, entropy, votes, latency, and — for rejections —
// the raw features an analyst or retrainer needs) lands here, queryable
// by device, shard and time range, so drift monitoring and retraining can
// run offline from the exact evidence that was served online.
//
// The store is a directory of segment files. Records are framed as
// [uint32 length | uint32 CRC-32 | JSON payload]; the active segment
// rotates once it exceeds Config.SegmentBytes and retention drops the
// oldest segments beyond Config.MaxSegments. Recovery is crash-safe: Open
// scans every segment, truncates a torn tail at the last intact frame,
// and resumes the sequence number after the last durable record.
//
// Appends are group-committed: Append frames the record into an
// in-memory pending group and returns; a background flusher (optionally
// core-pinned) drains the whole group with one write syscall and fsyncs
// the active segment on a timer, so the serving path never waits on the
// disk. Query, Stats, Sync and Close commit the pending group first, so
// a read always observes every Append that returned before it. The
// durability contract: a crash loses at most one uncommitted group plus
// whatever the OS had not flushed since the last fsync tick — Sync
// forces full durability on demand, and Config.SyncEvery switches the
// store to synchronous per-record writes when that window is too wide.
//
// A Store is safe for concurrent use.
package verdictstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"trusthmd/internal/cpupin"
)

// Record is one served verdict. Seq is store-assigned and strictly
// increasing across segments and restarts; Time is stamped at append when
// the caller leaves it zero.
type Record struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Device  string    `json:"device,omitempty"`
	Model   string    `json:"model"`
	Version uint64    `json:"version"`
	// Source names the serving path that produced the verdict: "assess",
	// "batch", "stream" or "ingest".
	Source     string  `json:"source,omitempty"`
	Prediction int     `json:"prediction"`
	Decision   string  `json:"decision"`
	Entropy    float64 `json:"entropy"`
	// Votes is the normalised member-vote distribution.
	Votes []float64 `json:"votes,omitempty"`
	// LatencyMicros is the serving-side latency of the verdict.
	LatencyMicros int64 `json:"latency_us,omitempty"`
	// Features carries the raw input vector when the serving layer chose
	// to persist it (by default only for rejected verdicts — they are the
	// forensic evidence retraining needs; accepted verdicts stay compact).
	Features []float64 `json:"features,omitempty"`
}

// Config tunes the store; the zero value gets sane defaults.
type Config struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// MaxSegments bounds retention: once rotation would exceed it, the
	// oldest segments are deleted, records and all (default 16 segments —
	// with the default segment size, ~64 MiB of verdict history).
	MaxSegments int
	// SyncEvery selects the durability mode. 0 (the default) is group
	// commit: Append frames the record into a pending group and returns,
	// and a background flusher writes each group with one syscall,
	// fsyncing every SyncInterval. N > 0 makes Append synchronous — the
	// record is written before Append returns and the segment is fsynced
	// every N records (1 = fsync per append, write-ahead-log durability).
	SyncEvery int
	// SyncInterval is the background fsync cadence of group-commit mode
	// (default 100ms). Ignored when SyncEvery > 0.
	SyncInterval time.Duration
	// PinCPU, when nonzero, is 1 + the CPU core the group-commit flusher
	// thread is pinned to (sched_setaffinity on Linux, no-op elsewhere).
	// One-based so the zero value stays unpinned.
	PinCPU int
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.MaxSegments <= 0 {
		c.MaxSegments = 16
	}
	if c.SyncEvery < 0 {
		c.SyncEvery = 0
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 100 * time.Millisecond
	}
	return c
}

// Filter selects records for Query. Zero fields match everything.
type Filter struct {
	// Device / Model match exactly when non-empty.
	Device string
	Model  string
	// SinceSeq selects records with Seq >= SinceSeq.
	SinceSeq uint64
	// Since / Until bound the record time (inclusive / exclusive).
	Since time.Time
	Until time.Time
	// Limit caps the result count (0 = unlimited).
	Limit int
}

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	// Records is the number of live (queryable) records across all
	// segments; Appended counts appends by this process and Recovered the
	// records readable at Open.
	Records   int64 `json:"records"`
	Appended  int64 `json:"appended"`
	Recovered int64 `json:"recovered"`
	// TruncatedBytes is how much torn tail Open cut off (0 on a clean
	// shutdown).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// Dropped counts records lost to segment retention.
	Dropped int64 `json:"dropped,omitempty"`
	// Segments / Bytes describe the on-disk footprint.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// FirstSeq is the oldest live record's sequence number (0 when
	// empty); NextSeq the sequence the next append will take.
	FirstSeq uint64 `json:"first_seq,omitempty"`
	NextSeq  uint64 `json:"next_seq"`
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("verdictstore: store is closed")

// segment is the metadata of one on-disk segment file.
type segment struct {
	path     string
	firstSeq uint64
	lastSeq  uint64
	minTime  int64 // unix nanos; 0 when empty
	maxTime  int64
	records  int64
	bytes    int64
}

// pendMeta is the bookkeeping of one framed-but-unwritten record in the
// pending group: what commitLocked needs to account the frame to its
// segment without retaining the Record (the frame bytes live in pendBuf,
// so Append borrows nothing from the caller past its return).
type pendMeta struct {
	seq  uint64
	tn   int64 // Record.Time in unix nanos, for segment time bounds
	size int   // frame bytes (header + payload) in pendBuf
}

// Store is the embedded verdict log. Open one per daemon.
type Store struct {
	dir string
	cfg Config

	mu     sync.Mutex
	closed bool
	segs   []*segment // oldest first; the last one is active
	f      *os.File   // active segment, O_APPEND

	// The pending group: Append frames records into pendBuf (metadata in
	// pending) and the flusher — or the next Query/Stats/Sync/Close —
	// commits the whole group with one write syscall.
	pending   []pendMeta
	pendBuf   []byte
	encBuf    bytes.Buffer
	enc       *json.Encoder
	dirty     bool  // active segment has writes not yet fsynced
	werr      error // sticky background commit error; surfaced and cleared by the next Append/Sync
	sinceSync int   // records since the last fsync (SyncEvery > 0 mode)

	signal chan struct{} // wakes the flusher after an append; cap 1, non-blocking send
	stopCh chan struct{} // nil when no flusher runs (SyncEvery > 0)
	wg     sync.WaitGroup

	nextSeq   uint64
	appended  int64
	recovered int64
	truncated int64
	dropped   int64
}

const (
	segSuffix  = ".seg"
	segPrefix  = "verdicts-"
	frameHdr   = 8        // uint32 length + uint32 crc
	maxPayload = 16 << 20 // sanity bound on one frame
)

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, firstSeq, segSuffix)
}

// Open creates or recovers a store in dir (created if missing). Torn
// tails from a crash mid-append are truncated at the last intact frame.
func Open(dir string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("verdictstore: %w", err)
	}
	s := &Store{dir: dir, cfg: cfg, nextSeq: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("verdictstore: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names) // zero-padded first-seq names sort chronologically
	for _, n := range names {
		seg, err := s.recoverSegment(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, seg)
		s.recovered += seg.records
		if seg.lastSeq >= s.nextSeq {
			s.nextSeq = seg.lastSeq + 1
		}
	}
	// Resume the last segment when it has rotation headroom; otherwise
	// (or when the directory is empty) the first commit opens a fresh one.
	if n := len(s.segs); n > 0 && s.segs[n-1].bytes < cfg.SegmentBytes {
		f, err := os.OpenFile(s.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("verdictstore: %w", err)
		}
		s.f = f
	}
	s.enc = json.NewEncoder(&s.encBuf)
	s.signal = make(chan struct{}, 1)
	if cfg.SyncEvery == 0 {
		s.stopCh = make(chan struct{})
		s.wg.Add(1)
		go s.flusher(s.signal, s.stopCh)
	}
	return s, nil
}

// recoverSegment scans one segment file, truncating any torn tail.
func (s *Store) recoverSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("verdictstore: %w", err)
	}
	defer f.Close()
	seg := &segment{path: path}
	br := bufio.NewReader(f)
	var offset, good int64
	for {
		rec, n, err := readFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: keep the intact prefix, drop the rest.
			break
		}
		offset += n
		good = offset
		seg.note(rec.Seq, rec.Time.UnixNano())
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("verdictstore: %w", err)
	}
	if fi.Size() > good {
		s.truncated += fi.Size() - good
		if err := os.Truncate(path, good); err != nil {
			return nil, fmt.Errorf("verdictstore: truncate torn tail of %s: %w", path, err)
		}
	}
	seg.bytes = good
	return seg, nil
}

// note folds one recovered or committed record into the segment metadata.
func (g *segment) note(seq uint64, tn int64) {
	if g.records == 0 {
		g.firstSeq = seq
	}
	g.lastSeq = seq
	if g.records == 0 || tn < g.minTime {
		g.minTime = tn
	}
	if tn > g.maxTime {
		g.maxTime = tn
	}
	g.records++
}

// readFrame decodes one length+CRC framed record, returning the bytes
// consumed. io.EOF means a clean end; any other error marks corruption.
func readFrame(br *bufio.Reader) (Record, int64, error) {
	var hdr [frameHdr]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, fmt.Errorf("verdictstore: short frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxPayload {
		return Record{}, 0, fmt.Errorf("verdictstore: implausible frame length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Record{}, 0, fmt.Errorf("verdictstore: short frame payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, 0, errors.New("verdictstore: frame checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, fmt.Errorf("verdictstore: frame payload: %w", err)
	}
	return rec, frameHdr + int64(length), nil
}

// Append stamps and persists one record, returning its sequence number.
// In group-commit mode (Config.SyncEvery == 0) the record is framed into
// the pending group and written by the background flusher — Append never
// waits on the disk, and Query still observes the record immediately.
// With SyncEvery > 0 the write (and every N-th fsync) happens before
// Append returns. Append borrows nothing from rec: the frame is encoded
// before Append returns, so the caller may reuse Votes and Features.
func (s *Store) Append(rec Record) (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if err := s.werr; err != nil {
		// Surface (and clear) a background commit failure on the append
		// path instead of acknowledging records a dead disk will lose.
		s.werr = nil
		s.mu.Unlock()
		return 0, err
	}
	rec.Seq = s.nextSeq
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	s.encBuf.Reset()
	if err := s.enc.Encode(rec); err != nil {
		s.mu.Unlock()
		return 0, fmt.Errorf("verdictstore: %w", err)
	}
	payload := s.encBuf.Bytes()
	payload = payload[:len(payload)-1] // Encode appends '\n'; frames carry bare JSON
	if len(payload) > maxPayload {
		s.mu.Unlock()
		return 0, fmt.Errorf("verdictstore: record of %d bytes exceeds frame limit", len(payload))
	}
	var hdr [frameHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	s.pendBuf = append(s.pendBuf, hdr[:]...)
	s.pendBuf = append(s.pendBuf, payload...)
	s.pending = append(s.pending, pendMeta{seq: rec.Seq, tn: rec.Time.UnixNano(), size: frameHdr + len(payload)})
	s.nextSeq++
	s.appended++
	if s.cfg.SyncEvery > 0 {
		err := s.commitLocked()
		if err == nil {
			s.sinceSync++
			if s.sinceSync >= s.cfg.SyncEvery && s.f != nil {
				if serr := s.f.Sync(); serr != nil {
					err = fmt.Errorf("verdictstore: %w", serr)
				}
				s.dirty = false
				s.sinceSync = 0
			}
		}
		s.mu.Unlock()
		if err != nil {
			return 0, err
		}
		return rec.Seq, nil
	}
	s.mu.Unlock()
	select {
	case s.signal <- struct{}{}:
	default: // flusher already signalled
	}
	return rec.Seq, nil
}

func (s *Store) active() *segment { return s.segs[len(s.segs)-1] }

// commitLocked writes the pending group to the active segment — one
// write syscall per contiguous run, rotating mid-group when the segment
// bound is crossed. The group is consumed whether or not the commit
// lands: a write failure drops it (the error is the caller's, or parks
// in werr for the next Append/Sync to surface) rather than retrying
// forever against a dead disk. Callers hold s.mu.
func (s *Store) commitLocked() error {
	if len(s.pending) == 0 {
		return nil
	}
	defer func() {
		s.pending = s.pending[:0]
		s.pendBuf = s.pendBuf[:0]
	}()
	off, start := 0, 0
	for _, pm := range s.pending {
		if s.f == nil || s.active().bytes >= s.cfg.SegmentBytes {
			// Flush the run accounted to the outgoing segment before
			// rotation seals it.
			if err := s.writeGroup(start, off); err != nil {
				return err
			}
			start = off
			if err := s.rotateLocked(pm.seq); err != nil {
				return err
			}
		}
		seg := s.active()
		seg.note(pm.seq, pm.tn)
		seg.bytes += int64(pm.size)
		off += pm.size
	}
	return s.writeGroup(start, off)
}

// writeGroup pushes pendBuf[start:end] — the frames accounted to the
// current active segment — to the file in one Write. Callers hold s.mu.
func (s *Store) writeGroup(start, end int) error {
	if end == start {
		return nil
	}
	if _, err := s.f.Write(s.pendBuf[start:end]); err != nil {
		return fmt.Errorf("verdictstore: %w", err)
	}
	s.dirty = true
	return nil
}

// rotateLocked seals the active segment (fsync + close) and opens a
// fresh one named for the first sequence it will hold, then enforces
// retention. Callers hold s.mu.
func (s *Store) rotateLocked(firstSeq uint64) error {
	if s.f != nil {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("verdictstore: %w", err)
		}
		if err := s.f.Close(); err != nil {
			return fmt.Errorf("verdictstore: %w", err)
		}
		s.f = nil
		s.dirty = false
	}
	path := filepath.Join(s.dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("verdictstore: %w", err)
	}
	s.f = f
	s.segs = append(s.segs, &segment{path: path, firstSeq: firstSeq})
	// Retention: drop the oldest sealed segments beyond the bound. The
	// fresh (last) segment is never a candidate.
	for len(s.segs) > s.cfg.MaxSegments {
		old := s.segs[0]
		if err := os.Remove(old.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("verdictstore: retention: %w", err)
		}
		s.dropped += old.records
		s.segs = s.segs[1:]
	}
	return nil
}

// flusher is the group-commit goroutine: drain the pending group on
// every append signal (one write syscall per group), fsync the active
// segment on the SyncInterval tick, final-drain on shutdown. The
// channels are captured at start so Close can clear the Store fields.
func (s *Store) flusher(signal, stop chan struct{}) {
	defer s.wg.Done()
	if s.cfg.PinCPU > 0 {
		// Pin for the goroutine's lifetime; the locked thread dies with
		// it, so the narrowed affinity mask never leaks.
		runtime.LockOSThread()
		cpupin.PinThread(s.cfg.PinCPU - 1)
	}
	ticker := time.NewTicker(s.cfg.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-signal:
			s.drain(false)
		case <-ticker.C:
			s.drain(true)
		case <-stop:
			s.drain(false)
			return
		}
	}
}

// drain commits the pending group; with fsync it also makes the active
// segment durable (outside the lock, so appends keep flowing while the
// disk syncs). Commit failures park in werr for Append/Sync to surface.
func (s *Store) drain(fsync bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if err := s.commitLocked(); err != nil && s.werr == nil {
		s.werr = err
	}
	var f *os.File
	if fsync && s.dirty && s.f != nil {
		f, s.dirty = s.f, false
	}
	s.mu.Unlock()
	if f != nil {
		// A background fsync error is not actionable here; a genuinely
		// dead disk fails the next commit's write, which is sticky.
		_ = f.Sync()
	}
}

// Query returns the records matching f in sequence order. It observes
// every Append that returned before the call, flushed or not.
func (s *Store) Query(f Filter) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	// Commit the pending group first so the read pass below sees
	// everything appended.
	if err := s.commitLocked(); err != nil {
		return nil, err
	}
	var out []Record
	for _, seg := range s.segs {
		if seg.records == 0 || seg.lastSeq < f.SinceSeq {
			continue
		}
		if !f.Until.IsZero() && seg.minTime >= f.Until.UnixNano() {
			continue
		}
		if !f.Since.IsZero() && seg.maxTime < f.Since.UnixNano() {
			continue
		}
		rf, err := os.Open(seg.path)
		if err != nil {
			return nil, fmt.Errorf("verdictstore: %w", err)
		}
		br := bufio.NewReader(rf)
		for {
			rec, _, err := readFrame(br)
			if err == io.EOF {
				break
			}
			if err != nil {
				rf.Close()
				return nil, err
			}
			if !f.matches(rec) {
				continue
			}
			out = append(out, rec)
			if f.Limit > 0 && len(out) >= f.Limit {
				rf.Close()
				return out, nil
			}
		}
		rf.Close()
	}
	return out, nil
}

func (f Filter) matches(rec Record) bool {
	if rec.Seq < f.SinceSeq {
		return false
	}
	if f.Device != "" && rec.Device != f.Device {
		return false
	}
	if f.Model != "" && rec.Model != f.Model {
		return false
	}
	if !f.Since.IsZero() && rec.Time.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && !rec.Time.Before(f.Until) {
		return false
	}
	return true
}

// Sync commits the pending group and fsyncs the active segment, making
// every acknowledged append durable.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.werr; err != nil {
		s.werr = nil
		return err
	}
	if err := s.commitLocked(); err != nil {
		return err
	}
	if s.f == nil {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("verdictstore: %w", err)
	}
	s.dirty = false
	s.sinceSync = 0
	return nil
}

// Stats snapshots the store's counters. Like Query it commits the
// pending group first, so Records counts every Append that returned.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		if err := s.commitLocked(); err != nil && s.werr == nil {
			s.werr = err
		}
	}
	st := Stats{
		Appended:       s.appended,
		Recovered:      s.recovered,
		TruncatedBytes: s.truncated,
		Dropped:        s.dropped,
		Segments:       len(s.segs),
		NextSeq:        s.nextSeq,
	}
	for _, seg := range s.segs {
		st.Records += seg.records
		st.Bytes += seg.bytes
		if st.FirstSeq == 0 && seg.records > 0 {
			st.FirstSeq = seg.firstSeq
		}
	}
	return st
}

// Close commits the pending group, fsyncs, and seals the active segment.
// Further operations return ErrClosed; Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.commitLocked()
	s.closed = true
	if s.f != nil {
		if serr := s.f.Sync(); err == nil && serr != nil {
			err = fmt.Errorf("verdictstore: %w", serr)
		}
		if cerr := s.f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("verdictstore: %w", cerr)
		}
		s.f = nil
	}
	if err == nil && s.werr != nil {
		err, s.werr = s.werr, nil
	}
	stop := s.stopCh
	s.stopCh = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		s.wg.Wait()
	}
	return err
}
