// Package verdictstore is an embedded, append-only time-series store of
// served trusted-HMD verdicts — the persistent half of the paper's
// deployment loop. Every decision the serving layer makes (device, shard,
// version, prediction, entropy, votes, latency, and — for rejections —
// the raw features an analyst or retrainer needs) lands here, queryable
// by device, shard and time range, so drift monitoring and retraining can
// run offline from the exact evidence that was served online.
//
// The store is a directory of segment files. Records are framed as
// [uint32 length | uint32 CRC-32 | JSON payload]; the active segment
// rotates once it exceeds Config.SegmentBytes and retention drops the
// oldest segments beyond Config.MaxSegments. Recovery is crash-safe: Open
// scans every segment, truncates a torn tail at the last intact frame
// (a crash mid-append loses at most the record being written), and
// resumes the sequence number after the last durable record.
//
// A Store is safe for concurrent use.
package verdictstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record is one served verdict. Seq is store-assigned and strictly
// increasing across segments and restarts; Time is stamped at append when
// the caller leaves it zero.
type Record struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Device  string    `json:"device,omitempty"`
	Model   string    `json:"model"`
	Version uint64    `json:"version"`
	// Source names the serving path that produced the verdict: "assess",
	// "batch", "stream" or "ingest".
	Source     string  `json:"source,omitempty"`
	Prediction int     `json:"prediction"`
	Decision   string  `json:"decision"`
	Entropy    float64 `json:"entropy"`
	// Votes is the normalised member-vote distribution.
	Votes []float64 `json:"votes,omitempty"`
	// LatencyMicros is the serving-side latency of the verdict.
	LatencyMicros int64 `json:"latency_us,omitempty"`
	// Features carries the raw input vector when the serving layer chose
	// to persist it (by default only for rejected verdicts — they are the
	// forensic evidence retraining needs; accepted verdicts stay compact).
	Features []float64 `json:"features,omitempty"`
}

// Config tunes the store; the zero value gets sane defaults.
type Config struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// MaxSegments bounds retention: once rotation would exceed it, the
	// oldest segments are deleted, records and all (default 16 segments —
	// with the default segment size, ~64 MiB of verdict history).
	MaxSegments int
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.MaxSegments <= 0 {
		c.MaxSegments = 16
	}
	return c
}

// Filter selects records for Query. Zero fields match everything.
type Filter struct {
	// Device / Model match exactly when non-empty.
	Device string
	Model  string
	// SinceSeq selects records with Seq >= SinceSeq.
	SinceSeq uint64
	// Since / Until bound the record time (inclusive / exclusive).
	Since time.Time
	Until time.Time
	// Limit caps the result count (0 = unlimited).
	Limit int
}

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	// Records is the number of live (queryable) records across all
	// segments; Appended counts appends by this process and Recovered the
	// records readable at Open.
	Records   int64 `json:"records"`
	Appended  int64 `json:"appended"`
	Recovered int64 `json:"recovered"`
	// TruncatedBytes is how much torn tail Open cut off (0 on a clean
	// shutdown).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// Dropped counts records lost to segment retention.
	Dropped int64 `json:"dropped,omitempty"`
	// Segments / Bytes describe the on-disk footprint.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// FirstSeq is the oldest live record's sequence number (0 when
	// empty); NextSeq the sequence the next append will take.
	FirstSeq uint64 `json:"first_seq,omitempty"`
	NextSeq  uint64 `json:"next_seq"`
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("verdictstore: store is closed")

// segment is the metadata of one on-disk segment file.
type segment struct {
	path     string
	firstSeq uint64
	lastSeq  uint64
	minTime  int64 // unix nanos; 0 when empty
	maxTime  int64
	records  int64
	bytes    int64
}

// Store is the embedded verdict log. Open one per daemon.
type Store struct {
	dir string
	cfg Config

	mu     sync.Mutex
	closed bool
	segs   []*segment // oldest first; the last one is active
	f      *os.File   // active segment, O_APPEND
	w      *bufio.Writer

	nextSeq   uint64
	appended  int64
	recovered int64
	truncated int64
	dropped   int64
}

const (
	segSuffix  = ".seg"
	segPrefix  = "verdicts-"
	frameHdr   = 8        // uint32 length + uint32 crc
	maxPayload = 16 << 20 // sanity bound on one frame
)

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, firstSeq, segSuffix)
}

// Open creates or recovers a store in dir (created if missing). Torn
// tails from a crash mid-append are truncated at the last intact frame.
func Open(dir string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("verdictstore: %w", err)
	}
	s := &Store{dir: dir, cfg: cfg, nextSeq: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("verdictstore: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names) // zero-padded first-seq names sort chronologically
	for _, n := range names {
		seg, err := s.recoverSegment(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, seg)
		s.recovered += seg.records
		if seg.lastSeq >= s.nextSeq {
			s.nextSeq = seg.lastSeq + 1
		}
	}
	// Resume the last segment when it has rotation headroom; otherwise
	// (or when the directory is empty) the first append opens a fresh one.
	if n := len(s.segs); n > 0 && s.segs[n-1].bytes < cfg.SegmentBytes {
		f, err := os.OpenFile(s.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("verdictstore: %w", err)
		}
		s.f = f
		s.w = bufio.NewWriter(f)
	}
	return s, nil
}

// recoverSegment scans one segment file, truncating any torn tail.
func (s *Store) recoverSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("verdictstore: %w", err)
	}
	defer f.Close()
	seg := &segment{path: path}
	br := bufio.NewReader(f)
	var offset, good int64
	for {
		rec, n, err := readFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: keep the intact prefix, drop the rest.
			break
		}
		offset += n
		good = offset
		seg.note(rec)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("verdictstore: %w", err)
	}
	if fi.Size() > good {
		s.truncated += fi.Size() - good
		if err := os.Truncate(path, good); err != nil {
			return nil, fmt.Errorf("verdictstore: truncate torn tail of %s: %w", path, err)
		}
	}
	seg.bytes = good
	return seg, nil
}

// note folds one recovered or appended record into the segment metadata.
func (g *segment) note(rec Record) {
	if g.records == 0 {
		g.firstSeq = rec.Seq
	}
	g.lastSeq = rec.Seq
	t := rec.Time.UnixNano()
	if g.records == 0 || t < g.minTime {
		g.minTime = t
	}
	if t > g.maxTime {
		g.maxTime = t
	}
	g.records++
}

// readFrame decodes one length+CRC framed record, returning the bytes
// consumed. io.EOF means a clean end; any other error marks corruption.
func readFrame(br *bufio.Reader) (Record, int64, error) {
	var hdr [frameHdr]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, fmt.Errorf("verdictstore: short frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxPayload {
		return Record{}, 0, fmt.Errorf("verdictstore: implausible frame length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Record{}, 0, fmt.Errorf("verdictstore: short frame payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, 0, errors.New("verdictstore: frame checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, fmt.Errorf("verdictstore: frame payload: %w", err)
	}
	return rec, frameHdr + int64(length), nil
}

// Append stamps and persists one record, returning its sequence number.
// The write is buffered; Sync (or rotation or Close) makes it durable,
// and Query always observes it immediately.
func (s *Store) Append(rec Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	rec.Seq = s.nextSeq
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("verdictstore: %w", err)
	}
	if len(payload) > maxPayload {
		return 0, fmt.Errorf("verdictstore: record of %d bytes exceeds frame limit", len(payload))
	}
	if s.f == nil || s.active().bytes >= s.cfg.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return 0, err
		}
	}
	var hdr [frameHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := s.w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("verdictstore: %w", err)
	}
	if _, err := s.w.Write(payload); err != nil {
		return 0, fmt.Errorf("verdictstore: %w", err)
	}
	seg := s.active()
	seg.note(rec)
	seg.bytes += frameHdr + int64(len(payload))
	s.nextSeq++
	s.appended++
	return rec.Seq, nil
}

func (s *Store) active() *segment { return s.segs[len(s.segs)-1] }

// rotateLocked seals the active segment (flush + fsync) and opens a fresh
// one, then enforces retention. Callers hold s.mu.
func (s *Store) rotateLocked() error {
	if s.f != nil {
		if err := s.w.Flush(); err != nil {
			return fmt.Errorf("verdictstore: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("verdictstore: %w", err)
		}
		if err := s.f.Close(); err != nil {
			return fmt.Errorf("verdictstore: %w", err)
		}
		s.f, s.w = nil, nil
	}
	path := filepath.Join(s.dir, segName(s.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("verdictstore: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.segs = append(s.segs, &segment{path: path, firstSeq: s.nextSeq})
	// Retention: drop the oldest sealed segments beyond the bound. The
	// fresh (last) segment is never a candidate.
	for len(s.segs) > s.cfg.MaxSegments {
		old := s.segs[0]
		if err := os.Remove(old.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("verdictstore: retention: %w", err)
		}
		s.dropped += old.records
		s.segs = s.segs[1:]
	}
	return nil
}

// Query returns the records matching f in sequence order. It observes
// every Append that returned before the call, flushed or not.
func (s *Store) Query(f Filter) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	// The active segment's tail may still sit in the write buffer; push it
	// to the file so the read pass below sees everything appended.
	if s.w != nil {
		if err := s.w.Flush(); err != nil {
			return nil, fmt.Errorf("verdictstore: %w", err)
		}
	}
	var out []Record
	for _, seg := range s.segs {
		if seg.records == 0 || seg.lastSeq < f.SinceSeq {
			continue
		}
		if !f.Until.IsZero() && seg.minTime >= f.Until.UnixNano() {
			continue
		}
		if !f.Since.IsZero() && seg.maxTime < f.Since.UnixNano() {
			continue
		}
		rf, err := os.Open(seg.path)
		if err != nil {
			return nil, fmt.Errorf("verdictstore: %w", err)
		}
		br := bufio.NewReader(rf)
		for {
			rec, _, err := readFrame(br)
			if err == io.EOF {
				break
			}
			if err != nil {
				rf.Close()
				return nil, err
			}
			if !f.matches(rec) {
				continue
			}
			out = append(out, rec)
			if f.Limit > 0 && len(out) >= f.Limit {
				rf.Close()
				return out, nil
			}
		}
		rf.Close()
	}
	return out, nil
}

func (f Filter) matches(rec Record) bool {
	if rec.Seq < f.SinceSeq {
		return false
	}
	if f.Device != "" && rec.Device != f.Device {
		return false
	}
	if f.Model != "" && rec.Model != f.Model {
		return false
	}
	if !f.Since.IsZero() && rec.Time.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && !rec.Time.Before(f.Until) {
		return false
	}
	return true
}

// Sync flushes buffered appends to the OS and fsyncs the active segment.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.w == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("verdictstore: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("verdictstore: %w", err)
	}
	return nil
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Appended:       s.appended,
		Recovered:      s.recovered,
		TruncatedBytes: s.truncated,
		Dropped:        s.dropped,
		Segments:       len(s.segs),
		NextSeq:        s.nextSeq,
	}
	for _, seg := range s.segs {
		st.Records += seg.records
		st.Bytes += seg.bytes
		if st.FirstSeq == 0 && seg.records > 0 {
			st.FirstSeq = seg.firstSeq
		}
	}
	return st
}

// Close flushes and seals the active segment. Further operations return
// ErrClosed; Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.f == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("verdictstore: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("verdictstore: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("verdictstore: %w", err)
	}
	s.f, s.w = nil, nil
	return nil
}
