package verdictstore

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

func mustAppend(t *testing.T, s *Store, rec Record) uint64 {
	t.Helper()
	seq, err := s.Append(rec)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return seq
}

func TestAppendQueryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		dev := "edge-1"
		if i%2 == 1 {
			dev = "edge-2"
		}
		rec := Record{
			Time:       base.Add(time.Duration(i) * time.Second),
			Device:     dev,
			Model:      "rf",
			Version:    1,
			Source:     "assess",
			Prediction: i % 2,
			Decision:   "benign",
			Entropy:    0.1 * float64(i),
			Votes:      []float64{0.8, 0.2},
		}
		if i == 7 {
			rec.Decision = "reject"
			rec.Features = []float64{1, 2, 3}
		}
		seq := mustAppend(t, s, rec)
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}

	all, err := s.Query(Filter{})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(all) != 20 {
		t.Fatalf("got %d records, want 20", len(all))
	}
	for i, rec := range all {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
	if all[7].Decision != "reject" || len(all[7].Features) != 3 {
		t.Fatalf("rejected record lost its features: %+v", all[7])
	}

	byDev, err := s.Query(Filter{Device: "edge-2"})
	if err != nil {
		t.Fatalf("Query device: %v", err)
	}
	if len(byDev) != 10 {
		t.Fatalf("device filter: got %d, want 10", len(byDev))
	}
	for _, rec := range byDev {
		if rec.Device != "edge-2" {
			t.Fatalf("device filter leaked %q", rec.Device)
		}
	}

	sinceSeq, err := s.Query(Filter{SinceSeq: 15})
	if err != nil {
		t.Fatalf("Query sinceSeq: %v", err)
	}
	if len(sinceSeq) != 6 || sinceSeq[0].Seq != 15 {
		t.Fatalf("sinceSeq filter: got %d records starting at %d", len(sinceSeq), sinceSeq[0].Seq)
	}

	window, err := s.Query(Filter{
		Since: base.Add(5 * time.Second),
		Until: base.Add(10 * time.Second),
	})
	if err != nil {
		t.Fatalf("Query window: %v", err)
	}
	if len(window) != 5 {
		t.Fatalf("time window: got %d, want 5", len(window))
	}

	limited, err := s.Query(Filter{Limit: 3})
	if err != nil {
		t.Fatalf("Query limit: %v", err)
	}
	if len(limited) != 3 {
		t.Fatalf("limit: got %d, want 3", len(limited))
	}

	st := s.Stats()
	if st.Records != 20 || st.Appended != 20 || st.NextSeq != 21 || st.FirstSeq != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force frequent rotation; MaxSegments 3 forces drops.
	s, err := Open(dir, Config{SegmentBytes: 256, MaxSegments: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for i := 0; i < 60; i++ {
		mustAppend(t, s, Record{Device: "d", Model: "m", Version: 1, Decision: "benign", Entropy: 0.5})
	}
	st := s.Stats()
	if st.Segments > 3 {
		t.Fatalf("retention kept %d segments, cap 3", st.Segments)
	}
	if st.Dropped == 0 {
		t.Fatalf("expected dropped records, got stats %+v", st)
	}
	if st.Records+st.Dropped != 60 {
		t.Fatalf("records %d + dropped %d != 60", st.Records, st.Dropped)
	}
	// Surviving records are the newest, contiguous up to the last seq.
	recs, err := s.Query(Filter{})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(recs) != int(st.Records) {
		t.Fatalf("query saw %d, stats claim %d", len(recs), st.Records)
	}
	if recs[len(recs)-1].Seq != 60 {
		t.Fatalf("newest record seq = %d, want 60", recs[len(recs)-1].Seq)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("gap between seq %d and %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, s, Record{Model: "m", Version: 1, Decision: "benign"})
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Recovered != 5 || st.NextSeq != 6 {
		t.Fatalf("recovery stats: %+v", st)
	}
	if seq := mustAppend(t, s2, Record{Model: "m", Version: 1, Decision: "malware"}); seq != 6 {
		t.Fatalf("post-reopen seq = %d, want 6", seq)
	}
	recs, err := s2.Query(Filter{})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(recs) != 6 || recs[5].Decision != "malware" {
		t.Fatalf("reopened store contents wrong: %d records", len(recs))
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 4; i++ {
		mustAppend(t, s, Record{Model: "m", Version: 1, Decision: "benign", Entropy: float64(i)})
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: garbage half-frame at the tail.
	segs, err := filepath.Glob(filepath.Join(dir, "verdicts-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	f.Close()

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Recovered != 4 {
		t.Fatalf("recovered %d records, want 4", st.Recovered)
	}
	if st.TruncatedBytes == 0 {
		t.Fatalf("expected truncated bytes, stats %+v", st)
	}
	// The store must keep appending cleanly after truncation.
	if seq := mustAppend(t, s2, Record{Model: "m", Version: 2, Decision: "reject"}); seq != 5 {
		t.Fatalf("post-recovery seq = %d, want 5", seq)
	}
	recs, err := s2.Query(Filter{})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
}

func TestCorruptMiddleFrameStopsSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		mustAppend(t, s, Record{Model: "m", Version: 1, Decision: "benign"})
	}
	s.Close()

	// Flip a payload byte in the second frame: recovery keeps only the
	// intact prefix (frame 1) and truncates the rest.
	segs, _ := filepath.Glob(filepath.Join(dir, "verdicts-*.seg"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	frameLen := int(uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24)
	second := 8 + frameLen // offset of frame 2's header
	data[second+8+4] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatalf("rewrite segment: %v", err)
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Recovered != 1 || st.TruncatedBytes == 0 {
		t.Fatalf("stats after mid-segment corruption: %+v", st)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Append(Record{}); err != ErrClosed {
		t.Fatalf("Append on closed store: %v", err)
	}
	if _, err := s.Query(Filter{}); err != ErrClosed {
		t.Fatalf("Query on closed store: %v", err)
	}
	if err := s.Sync(); err != ErrClosed {
		t.Fatalf("Sync on closed store: %v", err)
	}
}

func TestConcurrentAppendQuery(t *testing.T) {
	s, err := Open(t.TempDir(), Config{SegmentBytes: 1024})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	done := make(chan error, 4)
	for w := 0; w < 2; w++ {
		go func() {
			for i := 0; i < 100; i++ {
				if _, err := s.Append(Record{Model: "m", Version: 1, Decision: "benign"}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
		go func() {
			for i := 0; i < 20; i++ {
				if _, err := s.Query(Filter{Limit: 5}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent op: %v", err)
		}
	}
	if st := s.Stats(); st.Appended != 200 {
		t.Fatalf("appended %d, want 200", st.Appended)
	}
}

// freezeFlusher stops a group-commit store's background flusher so the
// test alone decides when the pending group commits (white-box: pending
// appends then accumulate until Sync/Query/Stats/Close forces them out).
func freezeFlusher(t *testing.T, s *Store) {
	t.Helper()
	s.mu.Lock()
	stop := s.stopCh
	s.stopCh = nil
	s.mu.Unlock()
	if stop == nil {
		t.Fatal("store has no flusher to freeze")
	}
	close(stop)
	s.wg.Wait()
}

// copySegments snapshots dir's segment files into a fresh directory — the
// on-disk state a crash at this instant would leave behind (Close, with
// its final commit and fsync, never runs for the copy).
func copySegments(t *testing.T, dir string) string {
	t.Helper()
	crash := t.TempDir()
	segs, err := filepath.Glob(filepath.Join(dir, "verdicts-*.seg"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	for _, p := range segs {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		if err := os.WriteFile(filepath.Join(crash, filepath.Base(p)), data, 0o644); err != nil {
			t.Fatalf("copy %s: %v", p, err)
		}
	}
	return crash
}

// TestGroupCommitCrashRecoveryAtRotation drives one multi-record group
// commit across several segment rotations, "crashes" (copies the segment
// files without Close), tears the newest segment mid-frame, and reopens:
// recovery must truncate exactly the torn frame, keep every other record
// of the group, and continue the sequence.
func TestGroupCommitCrashRecoveryAtRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentBytes: 512, MaxSegments: 64, SyncInterval: time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	freezeFlusher(t, s)

	const n = 40
	for i := 0; i < n; i++ {
		mustAppend(t, s, Record{Device: "edge", Model: "m", Version: 1, Decision: "benign", Entropy: float64(i), Votes: []float64{0.7, 0.3}})
	}
	s.mu.Lock()
	pendingLen := len(s.pending)
	s.mu.Unlock()
	if pendingLen != n {
		t.Fatalf("pending %d records, want %d (flusher frozen, nothing read yet)", pendingLen, n)
	}
	// One group commit: the whole run lands with rotation decisions made
	// mid-group, frames batched per segment into single writes.
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st := s.Stats()
	if st.Records != n || st.Segments < 2 {
		t.Fatalf("after group commit: %+v (want %d records across >= 2 segments)", st, n)
	}

	crash := copySegments(t, dir)
	segs, err := filepath.Glob(filepath.Join(crash, "verdicts-*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("crash copy has %d segments (%v), want the rotation to have happened", len(segs), err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	// Tear the active segment mid-frame, as a crash part-way through the
	// group's final write would.
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(crash, Config{SegmentBytes: 512, MaxSegments: 64})
	if err != nil {
		t.Fatalf("reopen crash copy: %v", err)
	}
	defer s2.Close()
	st2 := s2.Stats()
	if st2.TruncatedBytes == 0 {
		t.Fatalf("expected a truncated torn tail, stats %+v", st2)
	}
	if st2.Recovered != n-1 {
		t.Fatalf("recovered %d records, want %d (only the torn frame may be lost)", st2.Recovered, n-1)
	}
	recs, err := s2.Query(Filter{})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(recs) != n-1 {
		t.Fatalf("query saw %d records, want %d", len(recs), n-1)
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d — recovery left a gap", i, rec.Seq)
		}
	}
	if seq := mustAppend(t, s2, Record{Model: "m", Version: 1, Decision: "reject"}); seq != n {
		t.Fatalf("post-recovery seq = %d, want %d", seq, n)
	}
	if recs, err = s2.Query(Filter{}); err != nil || len(recs) != n {
		t.Fatalf("after post-recovery append: %d records (%v), want %d", len(recs), err, n)
	}
}

// TestSyncEverySynchronousDurability: with SyncEvery > 0 there is no
// flusher and every Append is on disk (written and fsynced at the
// configured cadence) before it returns — a crash copy taken with no
// Sync and no Close recovers every acknowledged record.
func TestSyncEverySynchronousDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SyncEvery: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if s.stopCh != nil {
		t.Fatal("synchronous mode must not start a background flusher")
	}
	const n = 5
	for i := 0; i < n; i++ {
		mustAppend(t, s, Record{Model: "m", Version: 1, Decision: "benign", Entropy: float64(i)})
	}
	crash := copySegments(t, dir)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(crash, Config{})
	if err != nil {
		t.Fatalf("reopen crash copy: %v", err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Recovered != n || st.TruncatedBytes != 0 {
		t.Fatalf("synchronous appends not all durable: %+v", st)
	}
}

// TestGroupCommitReadsObservePending: Query and Stats must commit the
// pending group themselves — every Append that returned is visible even
// when the background flusher never ran.
func TestGroupCommitReadsObservePending(t *testing.T) {
	s, err := Open(t.TempDir(), Config{SyncInterval: time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	freezeFlusher(t, s)
	const n = 10
	for i := 0; i < n; i++ {
		mustAppend(t, s, Record{Model: "m", Version: 1, Decision: "benign"})
	}
	recs, err := s.Query(Filter{})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("query saw %d records, want %d (pending group not committed on read)", len(recs), n)
	}
	if st := s.Stats(); st.Records != n {
		t.Fatalf("stats records %d, want %d", st.Records, n)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
