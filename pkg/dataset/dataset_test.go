package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"trusthmd/pkg/linalg"
)

func sample(app string, label int, feats ...float64) Sample {
	return Sample{Features: feats, Label: label, App: app}
}

func buildSmall(t *testing.T) *Dataset {
	t.Helper()
	d := New(2)
	for _, s := range []Sample{
		sample("appA", Benign, 1, 2),
		sample("appA", Benign, 1.5, 2.5),
		sample("malX", Malware, 9, 9),
		sample("malX", Malware, 9.5, 8.5),
		sample("appB", Benign, 2, 1),
		sample("malY", Malware, 8, 9),
	} {
		if err := d.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestAddValidation(t *testing.T) {
	d := New(2)
	if err := d.Add(sample("a", Benign, 1)); err == nil {
		t.Fatal("expected dim error")
	}
	if err := d.Add(Sample{Features: []float64{1, 2}, Label: 7, App: "a"}); err == nil {
		t.Fatal("expected label error")
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestXY(t *testing.T) {
	d := buildSmall(t)
	X := d.X()
	if X.Rows() != 6 || X.Cols() != 2 {
		t.Fatalf("X is %dx%d", X.Rows(), X.Cols())
	}
	y := d.Y()
	if y[0] != Benign || y[2] != Malware {
		t.Fatalf("labels %v", y)
	}
}

func TestAppsSortedAndUnique(t *testing.T) {
	d := buildSmall(t)
	apps := d.Apps()
	want := []string{"appA", "appB", "malX", "malY"}
	if !reflect.DeepEqual(apps, want) {
		t.Fatalf("apps %v, want %v", apps, want)
	}
}

func TestClassCounts(t *testing.T) {
	d := buildSmall(t)
	b, m := d.ClassCounts()
	if b != 3 || m != 3 {
		t.Fatalf("counts %d %d", b, m)
	}
}

func TestSplitByApps(t *testing.T) {
	d := buildSmall(t)
	known, unknown := d.SplitByApps([]string{"appB", "malY"})
	if known.Len() != 4 || unknown.Len() != 2 {
		t.Fatalf("split %d/%d", known.Len(), unknown.Len())
	}
	for i := 0; i < unknown.Len(); i++ {
		app := unknown.At(i).App
		if app != "appB" && app != "malY" {
			t.Fatalf("unexpected app %q in unknown bucket", app)
		}
	}
	// Known and unknown share no apps.
	kApps := map[string]bool{}
	for _, a := range known.Apps() {
		kApps[a] = true
	}
	for _, a := range unknown.Apps() {
		if kApps[a] {
			t.Fatalf("app %q leaked into both buckets", a)
		}
	}
}

func TestStratifiedSplit(t *testing.T) {
	d := New(1)
	for i := 0; i < 100; i++ {
		lab := Benign
		if i%2 == 0 {
			lab = Malware
		}
		if err := d.Add(sample("a", lab, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	train, test, err := d.StratifiedSplit(0.8, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split %d/%d", train.Len(), test.Len())
	}
	tb, tm := train.ClassCounts()
	if tb != 40 || tm != 40 {
		t.Fatalf("train class balance %d/%d", tb, tm)
	}
}

func TestStratifiedSplitErrors(t *testing.T) {
	d := New(1)
	if _, _, err := d.StratifiedSplit(0.5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected empty error")
	}
	_ = d.Add(sample("a", Benign, 1))
	if _, _, err := d.StratifiedSplit(0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected frac error")
	}
	if _, _, err := d.StratifiedSplit(1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected frac error")
	}
}

func TestStratifiedSplitDisjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(1)
		n := 10 + rng.Intn(50)
		for i := 0; i < n; i++ {
			_ = d.Add(sample("a", i%2, float64(i)))
		}
		train, test, err := d.StratifiedSplit(0.7, rng)
		if err != nil {
			return false
		}
		if train.Len()+test.Len() != n {
			return false
		}
		seen := map[float64]int{}
		for i := 0; i < train.Len(); i++ {
			seen[train.At(i).Features[0]]++
		}
		for i := 0; i < test.Len(); i++ {
			seen[test.At(i).Features[0]]++
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTakeN(t *testing.T) {
	d := buildSmall(t)
	s, err := d.TakeN(3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("got %d", s.Len())
	}
	if _, err := d.TakeN(100, rand.New(rand.NewSource(2))); err == nil {
		t.Fatal("expected too-few error")
	}
}

func TestMerge(t *testing.T) {
	d := buildSmall(t)
	m, err := d.Merge(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 12 {
		t.Fatalf("merged len %d", m.Len())
	}
	if _, err := d.Merge(New(3)); err == nil {
		t.Fatal("expected dim error")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	a := buildSmall(t)
	b := buildSmall(t)
	a.Shuffle(rand.New(rand.NewSource(42)))
	b.Shuffle(rand.New(rand.NewSource(42)))
	for i := 0; i < a.Len(); i++ {
		if a.At(i).App != b.At(i).App {
			t.Fatal("shuffle not deterministic under fixed seed")
		}
	}
}

func TestScaler(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{1, 5}, {3, 5}, {5, 5}})
	s, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 2 {
		t.Fatalf("dim %d", s.Dim())
	}
	out, err := s.Transform(X)
	if err != nil {
		t.Fatal(err)
	}
	mu := out.ColMeans()
	if math.Abs(mu[0]) > 1e-12 {
		t.Fatalf("not centered: %v", mu)
	}
	sd := out.ColStds()
	if math.Abs(sd[0]-1) > 1e-12 {
		t.Fatalf("not unit variance: %v", sd)
	}
	// Constant column untouched by zero-variance guard.
	if out.At(0, 1) != 0 {
		t.Fatalf("constant column should map to 0, got %v", out.At(0, 1))
	}
	v, err := s.TransformVec([]float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]) > 1e-12 {
		t.Fatalf("vec transform %v", v)
	}
}

func TestScalerErrors(t *testing.T) {
	if _, err := FitScaler(linalg.New(0, 2)); err == nil {
		t.Fatal("expected empty error")
	}
	X := linalg.MustFromRows([][]float64{{1, 2}, {3, 4}})
	s, _ := FitScaler(X)
	if _, err := s.Transform(linalg.New(1, 3)); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := s.TransformVec([]float64{1}); err == nil {
		t.Fatal("expected dim error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := buildSmall(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.Dim() != d.Dim() {
		t.Fatalf("round trip %d/%d dim %d/%d", back.Len(), d.Len(), back.Dim(), d.Dim())
	}
	for i := 0; i < d.Len(); i++ {
		a, b := d.At(i), back.At(i)
		if a.App != b.App || a.Label != b.Label || !reflect.DeepEqual(a.Features, b.Features) {
			t.Fatalf("sample %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"short":      "a,b\n",
		"bad header": "f0,x,y\n1,0,a\n",
		"bad float":  "f0,label,app\nxyz,0,a\n",
		"bad label":  "f0,label,app\n1.0,zz,a\n",
		"bad class":  "f0,label,app\n1.0,9,a\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestSubsetSharesFeatures(t *testing.T) {
	d := buildSmall(t)
	s := d.Subset([]int{0, 2})
	if s.Len() != 2 || s.At(1).App != "malX" {
		t.Fatalf("subset wrong: %+v", s.At(1))
	}
}
