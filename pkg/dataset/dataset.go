// Package dataset holds labelled feature matrices together with the
// application each sample was derived from, and implements the known/unknown
// bucketing of the paper's Fig. 6: samples are first partitioned by
// application into a known and an unknown bucket; the known bucket is then
// split into train and test sets, while the unknown bucket is reserved for
// out-of-distribution evaluation.
package dataset

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"trusthmd/pkg/linalg"
)

// Class labels used across trusthmd.
const (
	Benign  = 0
	Malware = 1
)

// NumClasses is the number of classification classes (benign vs malware).
const NumClasses = 2

// ErrEmpty reports an operation on an empty dataset.
var ErrEmpty = errors.New("dataset: empty")

// Sample is one labelled observation: a feature vector, its class, and the
// application (or malware family) that produced it.
type Sample struct {
	Features []float64
	Label    int
	App      string
}

// Dataset is a collection of samples with uniform feature dimensionality.
type Dataset struct {
	samples []Sample
	dim     int
}

// New returns an empty dataset expecting feature vectors of length dim.
func New(dim int) *Dataset {
	if dim <= 0 {
		panic(fmt.Sprintf("dataset: non-positive dim %d", dim))
	}
	return &Dataset{dim: dim}
}

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int { return d.dim }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.samples) }

// Add appends a sample. The feature length must match the dataset
// dimensionality and the label must be a known class.
func (d *Dataset) Add(s Sample) error {
	if len(s.Features) != d.dim {
		return fmt.Errorf("dataset: sample has %d features, want %d", len(s.Features), d.dim)
	}
	if s.Label != Benign && s.Label != Malware {
		return fmt.Errorf("dataset: unknown label %d", s.Label)
	}
	d.samples = append(d.samples, s)
	return nil
}

// At returns the i-th sample. The returned features share storage with the
// dataset; callers must not mutate them.
func (d *Dataset) At(i int) Sample { return d.samples[i] }

// X returns the feature matrix (copying the features). An empty dataset
// yields a 0 x dim matrix.
func (d *Dataset) X() *linalg.Matrix {
	m := linalg.New(len(d.samples), d.dim)
	for i, s := range d.samples {
		copy(m.Row(i), s.Features)
	}
	return m
}

// Y returns the label vector.
func (d *Dataset) Y() []int {
	y := make([]int, len(d.samples))
	for i, s := range d.samples {
		y[i] = s.Label
	}
	return y
}

// Apps returns the sorted set of distinct applications present.
func (d *Dataset) Apps() []string {
	set := map[string]bool{}
	for _, s := range d.samples {
		set[s.App] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// ClassCounts returns the number of benign and malware samples.
func (d *Dataset) ClassCounts() (benign, malware int) {
	for _, s := range d.samples {
		if s.Label == Benign {
			benign++
		} else {
			malware++
		}
	}
	return benign, malware
}

// Subset returns a new dataset containing the samples at the given indices
// (shared feature storage).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := New(d.dim)
	out.samples = make([]Sample, 0, len(idx))
	for _, i := range idx {
		out.samples = append(out.samples, d.samples[i])
	}
	return out
}

// Shuffle permutes the samples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.samples), func(i, j int) {
		d.samples[i], d.samples[j] = d.samples[j], d.samples[i]
	})
}

// Merge returns a new dataset containing the samples of d followed by those
// of other. Dimensionalities must match.
func (d *Dataset) Merge(other *Dataset) (*Dataset, error) {
	if d.dim != other.dim {
		return nil, fmt.Errorf("dataset: merge dim %d with %d", d.dim, other.dim)
	}
	out := New(d.dim)
	out.samples = append(append([]Sample{}, d.samples...), other.samples...)
	return out, nil
}

// SplitByApps partitions the dataset into a known and an unknown bucket by
// application name (Fig. 6): samples whose App is in unknownApps go to the
// unknown bucket, everything else to the known bucket.
func (d *Dataset) SplitByApps(unknownApps []string) (known, unknown *Dataset) {
	set := map[string]bool{}
	for _, a := range unknownApps {
		set[a] = true
	}
	known, unknown = New(d.dim), New(d.dim)
	for _, s := range d.samples {
		if set[s.App] {
			unknown.samples = append(unknown.samples, s)
		} else {
			known.samples = append(known.samples, s)
		}
	}
	return known, unknown
}

// StratifiedSplit splits the dataset into train and test subsets with
// approximately trainFrac of each class in train. The split is random under
// rng but deterministic for a fixed seed.
func (d *Dataset) StratifiedSplit(trainFrac float64, rng *rand.Rand) (train, test *Dataset, err error) {
	if d.Len() == 0 {
		return nil, nil, ErrEmpty
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v outside (0,1)", trainFrac)
	}
	byClass := map[int][]int{}
	for i, s := range d.samples {
		byClass[s.Label] = append(byClass[s.Label], i)
	}
	var trainIdx, testIdx []int
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		cut := int(float64(len(idx)) * trainFrac)
		trainIdx = append(trainIdx, idx[:cut]...)
		testIdx = append(testIdx, idx[cut:]...)
	}
	sort.Ints(trainIdx)
	sort.Ints(testIdx)
	return d.Subset(trainIdx), d.Subset(testIdx), nil
}

// TakeN returns a dataset with exactly n samples drawn without replacement
// under rng, or an error if fewer are available.
func (d *Dataset) TakeN(n int, rng *rand.Rand) (*Dataset, error) {
	if n > d.Len() {
		return nil, fmt.Errorf("dataset: want %d samples, have %d", n, d.Len())
	}
	idx := rng.Perm(d.Len())[:n]
	sort.Ints(idx)
	return d.Subset(idx), nil
}
