package dataset

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// scalerGob is the exported wire form of a Scaler.
type scalerGob struct {
	Mean, Std []float64
}

// GobEncode implements gob.GobEncoder for trained-pipeline serialization.
func (s *Scaler) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(scalerGob{Mean: s.mean, Std: s.std}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *Scaler) GobDecode(b []byte) error {
	var g scalerGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&g); err != nil {
		return err
	}
	if len(g.Mean) != len(g.Std) {
		return fmt.Errorf("dataset: corrupt scaler gob: %d means, %d stds", len(g.Mean), len(g.Std))
	}
	s.mean, s.std = g.Mean, g.Std
	return nil
}
