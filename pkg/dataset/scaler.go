package dataset

import (
	"fmt"

	"trusthmd/pkg/linalg"
)

// Scaler standardises features to zero mean and unit variance using
// statistics fitted on a training set (the "Feature Extraction →
// Dimensionality Reduction" pipeline of Fig. 1 applies the training-set
// scaling to all later inputs).
type Scaler struct {
	mean []float64
	std  []float64
}

// FitScaler learns per-column mean and standard deviation from X. Columns
// with zero variance get std 1 so that scaling is a no-op for them.
func FitScaler(X *linalg.Matrix) (*Scaler, error) {
	if X.Rows() == 0 {
		return nil, ErrEmpty
	}
	s := &Scaler{mean: X.ColMeans(), std: X.ColStds()}
	for j, v := range s.std {
		if v == 0 {
			s.std[j] = 1
		}
	}
	return s, nil
}

// Dim returns the feature dimensionality the scaler was fitted on.
func (s *Scaler) Dim() int { return len(s.mean) }

// Transform standardises X into a new matrix.
func (s *Scaler) Transform(X *linalg.Matrix) (*linalg.Matrix, error) {
	out := X.Clone()
	if err := s.TransformInto(out, out); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformInto standardises X into dst, which must have X's shape.
// dst == X scales in place. It is the destination-passing form of
// Transform: steady-state batch pipelines reuse one scratch matrix instead
// of cloning every input.
func (s *Scaler) TransformInto(dst, X *linalg.Matrix) error {
	if X.Cols() != len(s.mean) {
		return fmt.Errorf("dataset: scaler fitted on %d features, got %d", len(s.mean), X.Cols())
	}
	if dst.Rows() != X.Rows() || dst.Cols() != X.Cols() {
		return fmt.Errorf("dataset: scaler output %dx%d for %dx%d input", dst.Rows(), dst.Cols(), X.Rows(), X.Cols())
	}
	for i := 0; i < X.Rows(); i++ {
		src := X.Row(i)
		out := dst.Row(i)
		for j, v := range src {
			out[j] = (v - s.mean[j]) / s.std[j]
		}
	}
	return nil
}

// TransformVec standardises a single feature vector into a new slice.
func (s *Scaler) TransformVec(x []float64) ([]float64, error) {
	out := make([]float64, len(s.mean))
	if err := s.TransformVecInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformVecInto standardises x into dst, which must have the fitted
// dimensionality. dst == x scales in place.
func (s *Scaler) TransformVecInto(dst, x []float64) error {
	if len(x) != len(s.mean) {
		return fmt.Errorf("dataset: scaler fitted on %d features, got %d", len(s.mean), len(x))
	}
	if len(dst) != len(s.mean) {
		return fmt.Errorf("dataset: scaler output len %d for %d features", len(dst), len(s.mean))
	}
	for j, v := range x {
		dst[j] = (v - s.mean[j]) / s.std[j]
	}
	return nil
}
