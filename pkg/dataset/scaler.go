package dataset

import (
	"fmt"

	"trusthmd/pkg/linalg"
)

// Scaler standardises features to zero mean and unit variance using
// statistics fitted on a training set (the "Feature Extraction →
// Dimensionality Reduction" pipeline of Fig. 1 applies the training-set
// scaling to all later inputs).
type Scaler struct {
	mean []float64
	std  []float64
}

// FitScaler learns per-column mean and standard deviation from X. Columns
// with zero variance get std 1 so that scaling is a no-op for them.
func FitScaler(X *linalg.Matrix) (*Scaler, error) {
	if X.Rows() == 0 {
		return nil, ErrEmpty
	}
	s := &Scaler{mean: X.ColMeans(), std: X.ColStds()}
	for j, v := range s.std {
		if v == 0 {
			s.std[j] = 1
		}
	}
	return s, nil
}

// Dim returns the feature dimensionality the scaler was fitted on.
func (s *Scaler) Dim() int { return len(s.mean) }

// Transform standardises X into a new matrix.
func (s *Scaler) Transform(X *linalg.Matrix) (*linalg.Matrix, error) {
	if X.Cols() != len(s.mean) {
		return nil, fmt.Errorf("dataset: scaler fitted on %d features, got %d", len(s.mean), X.Cols())
	}
	out := X.Clone()
	for i := 0; i < out.Rows(); i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = (row[j] - s.mean[j]) / s.std[j]
		}
	}
	return out, nil
}

// TransformVec standardises a single feature vector into a new slice.
func (s *Scaler) TransformVec(x []float64) ([]float64, error) {
	if len(x) != len(s.mean) {
		return nil, fmt.Errorf("dataset: scaler fitted on %d features, got %d", len(s.mean), len(x))
	}
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out, nil
}
