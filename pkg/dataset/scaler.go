package dataset

import (
	"fmt"

	"trusthmd/pkg/linalg"
	"trusthmd/pkg/linalg/kernel"
)

// Scaler standardises features to zero mean and unit variance using
// statistics fitted on a training set (the "Feature Extraction →
// Dimensionality Reduction" pipeline of Fig. 1 applies the training-set
// scaling to all later inputs).
type Scaler struct {
	mean []float64
	std  []float64
}

// FitScaler learns per-column mean and standard deviation from X. Columns
// with zero variance get std 1 so that scaling is a no-op for them.
func FitScaler(X *linalg.Matrix) (*Scaler, error) {
	if X.Rows() == 0 {
		return nil, ErrEmpty
	}
	s := &Scaler{mean: X.ColMeans(), std: X.ColStds()}
	for j, v := range s.std {
		if v == 0 {
			s.std[j] = 1
		}
	}
	return s, nil
}

// Dim returns the feature dimensionality the scaler was fitted on.
func (s *Scaler) Dim() int { return len(s.mean) }

// Transform standardises X into a new matrix.
func (s *Scaler) Transform(X *linalg.Matrix) (*linalg.Matrix, error) {
	out := X.Clone()
	if err := s.TransformInto(out, out); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformInto standardises X into dst, which must have X's shape.
// dst == X scales in place. It is the destination-passing form of
// Transform: steady-state batch pipelines reuse one scratch matrix instead
// of cloning every input.
func (s *Scaler) TransformInto(dst, X *linalg.Matrix) error {
	if X.Cols() != len(s.mean) {
		return fmt.Errorf("dataset: scaler fitted on %d features, got %d", len(s.mean), X.Cols())
	}
	if dst.Rows() != X.Rows() || dst.Cols() != X.Cols() {
		return fmt.Errorf("dataset: scaler output %dx%d for %dx%d input", dst.Rows(), dst.Cols(), X.Rows(), X.Cols())
	}
	// Raw row-major slabs: one bounds-checked subslice per row instead of
	// two Row calls, on the first stage of every batched assessment.
	src, out, d := X.Raw(), dst.Raw(), X.Cols()
	for off := 0; off+d <= len(src); off += d {
		kernel.CenterScale(out[off:off+d:off+d], src[off:off+d:off+d], s.mean, s.std)
	}
	return nil
}

// TransformRowsInto standardises raw sample rows directly into dst (shape
// len(rows) x Dim), fusing the batch-load copy and the scaling pass into
// one sweep over the input — the raw samples are read once and never
// materialised unscaled. Values are bit-identical to copying the rows into
// a matrix and calling TransformInto.
func (s *Scaler) TransformRowsInto(dst *linalg.Matrix, rows [][]float64) error {
	d := len(s.mean)
	if dst.Rows() != len(rows) || dst.Cols() != d {
		return fmt.Errorf("dataset: scaler output %dx%d for %d rows x %d features",
			dst.Rows(), dst.Cols(), len(rows), d)
	}
	out := dst.Raw()
	for i, r := range rows {
		if len(r) != d {
			return fmt.Errorf("dataset: scaler fitted on %d features, row %d has %d", d, i, len(r))
		}
		kernel.CenterScale(out[i*d:(i+1)*d:(i+1)*d], r, s.mean, s.std)
	}
	return nil
}

// TransformVec standardises a single feature vector into a new slice.
func (s *Scaler) TransformVec(x []float64) ([]float64, error) {
	out := make([]float64, len(s.mean))
	if err := s.TransformVecInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformVecInto standardises x into dst, which must have the fitted
// dimensionality. dst == x scales in place.
func (s *Scaler) TransformVecInto(dst, x []float64) error {
	if len(x) != len(s.mean) {
		return fmt.Errorf("dataset: scaler fitted on %d features, got %d", len(s.mean), len(x))
	}
	if len(dst) != len(s.mean) {
		return fmt.Errorf("dataset: scaler output len %d for %d features", len(dst), len(s.mean))
	}
	kernel.CenterScale(dst, x, s.mean, s.std)
	return nil
}
