package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serialises the dataset with a header row. Columns are
// f0..f{d-1}, label, app.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, d.dim+2)
	for j := 0; j < d.dim; j++ {
		header[j] = fmt.Sprintf("f%d", j)
	}
	header[d.dim] = "label"
	header[d.dim+1] = "app"
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, d.dim+2)
	for i, s := range d.samples {
		for j, v := range s.Features {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[d.dim] = strconv.Itoa(s.Label)
		rec[d.dim+1] = s.App
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously produced by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) < 3 {
		return nil, fmt.Errorf("dataset: header has %d columns, want >=3", len(header))
	}
	dim := len(header) - 2
	if header[dim] != "label" || header[dim+1] != "app" {
		return nil, fmt.Errorf("dataset: unexpected header %v", header)
	}
	d := New(dim)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		feats := make([]float64, dim)
		for j := 0; j < dim; j++ {
			feats[j], err = strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d col %d: %w", line, j, err)
			}
		}
		label, err := strconv.Atoi(rec[dim])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d label: %w", line, err)
		}
		if err := d.Add(Sample{Features: feats, Label: label, App: rec[dim+1]}); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	return d, nil
}
