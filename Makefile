GO      ?= go
REV     := $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)
BENCH   ?= .
BENCHTIME ?= 1x

.PHONY: all build test test-short race vet fmt-check bench benchcmp ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# race runs the concurrency-heavy packages (batched assessment, request
# coalescing) under the race detector.
race:
	$(GO) test -race ./pkg/detector/ ./pkg/serve/ ./cmd/trusthmdd/

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench runs the figure/table benchmarks plus the component and serving
# micro-benchmarks at the repository root and records a JSON snapshot
# (BENCH_<rev>.json) so the performance trajectory is tracked per commit.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) . ./pkg/serve/ \
		| tee /dev/stderr \
		| $(GO) run ./tools/benchjson -out BENCH_$(REV).json

# benchcmp gates the performance trajectory: the snapshot `make bench` just
# wrote is compared against the latest committed BENCH_<rev>.json reachable
# from HEAD, and any benchmark more than 25% slower fails the target.
benchcmp:
	$(GO) run ./tools/benchcmp -new BENCH_$(REV).json

ci: build vet fmt-check test
