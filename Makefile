GO      ?= go
REV     := $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)
BENCH   ?= .
BENCHTIME ?= 1x

.PHONY: all build build-arm64 test test-short test-nosimd test-allocs race vet fmt-check bench benchcmp serve-stats stream-e2e retrain-e2e replica-e2e cluster-e2e ci

all: build

build:
	$(GO) build ./...

# build-arm64 cross-compiles the whole tree for linux/arm64, proving the
# non-amd64 kernel fallback path (pkg/linalg/kernel dispatch_other.go)
# actually compiles — the assembly files are amd64-only by build tag.
build-arm64:
	GOOS=linux GOARCH=arm64 $(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# test-nosimd re-runs the full suite with the vectorized kernels disabled
# (generic pure-Go implementations forced via TRUSTHMD_NOSIMD), proving
# every result the tests pin is reached identically without SIMD — the
# bit-identical contract of pkg/linalg/kernel, exercised end to end.
test-nosimd:
	TRUSTHMD_NOSIMD=1 $(GO) test ./...

# test-allocs re-runs the zero-allocation contract of the inference hot
# path (testing.AllocsPerRun assertions) uncached, race-free — the race
# detector's instrumentation would make the counts meaningless. The bench
# CI job runs this next to benchcmp so an allocation regression fails the
# build even when it is too small to move ns/op.
test-allocs:
	$(GO) test -run TestAllocs -count=1 ./...

# race runs the concurrency-heavy packages (batched assessment, request
# coalescing, the dispatched kernels and their tree consumers) under the
# race detector, then the same set again with SIMD forced off so both
# dispatch arms get race coverage.
race:
	$(GO) test -race ./pkg/detector/ ./pkg/serve/ ./cmd/trusthmdd/ ./pkg/linalg/... ./internal/ml/tree/
	TRUSTHMD_NOSIMD=1 $(GO) test -race ./pkg/detector/ ./pkg/linalg/... ./internal/ml/tree/

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench runs the figure/table benchmarks plus the component and serving
# micro-benchmarks at the repository root and records a JSON snapshot
# (BENCH_<rev>.json) so the performance trajectory is tracked per commit.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) . ./pkg/serve/ ./pkg/linalg/kernel/ \
		| tee /dev/stderr \
		| $(GO) run ./tools/benchjson -out BENCH_$(REV).json

# benchcmp gates the performance trajectory: the snapshot `make bench` just
# wrote is compared against the latest committed BENCH_<rev>.json reachable
# from HEAD; any benchmark more than 25% slower — in ns/op or allocs/op —
# fails the target, and the full multi-snapshot trend table is printed.
benchcmp:
	$(GO) run ./tools/benchcmp -new BENCH_$(REV).json

# stream-e2e is the streaming + hot-swap smoke: train a tiny model, boot
# the daemon stack, stream raw DVFS states as NDJSON, hot-swap the shard
# through POST /v1/models mid-service, and assert post-swap assessments
# are element-wise identical to direct Online.Push on the new model —
# under the race detector, since swap-vs-stream is exactly where races
# would hide.
stream-e2e:
	$(GO) test -race -count=1 -v \
		-run 'TestStreamE2EHotSwap|TestWatchHotSwapsOnMtime' ./cmd/trusthmdd/
	$(GO) test -race -count=1 \
		-run 'TestStreamMatchesOnlinePush|TestSwapUnderLoadIsLossless|TestStreamSessionPinsVersion' ./pkg/serve/

# retrain-e2e is the closed-loop smoke: boot the daemon stack with the
# verdict store tapping every served verdict, inject drift (a device
# replaying the zero-day split), and assert the RetrainController's
# background retrain hot-swaps the fleet with zero lost requests — under
# the race detector, since retrain-vs-serve is exactly where races would
# hide. The final /stats snapshot (verdict-store occupancy included) is
# written to retrain-stats.json; CI uploads it as a build artifact.
retrain-e2e:
	TRUSTHMD_RETRAIN_STATS_OUT=$(CURDIR)/retrain-stats.json \
		$(GO) test -race -count=1 -v -run 'TestRetrainE2EClosedLoop' ./cmd/trusthmdd/
	$(GO) test -race -count=1 \
		-run 'TestRetrainControllerClosedLoop|TestVerdictTapMatchesResponses|TestStatsClosedLoopCounters' ./pkg/serve/

# replica-e2e is the replication + admission-control smoke: sustained
# bursty load against a 3-replica group, hot-swapping the whole group
# mid-run, asserting zero lost requests, spilled responses element-wise
# identical to home-replica responses, and sibling replicas carrying a
# real share of a single-device burst — under the race detector, since
# spill-vs-swap is exactly where races would hide.
replica-e2e:
	$(GO) test -race -count=1 -v -run 'TestReplicaE2E' ./cmd/trusthmdd/
	$(GO) test -race -count=1 \
		-run 'TestReplicaSpillUnderLoad|TestReplicaGroupSwapUnderLoadLossless|TestReplicaGroupShape|TestAssessShedsWithRetryAfter|TestBatchShedsWithRetryAfter|TestStatsReplicaFields|TestCoalescerShedDepth|TestCoalescerEarlyFlush' ./pkg/serve/
	$(GO) test -race -count=1 -run 'TestClosedLoopReplicas' ./cmd/hmdbench/

# cluster-e2e is the fleet smoke: boot a three-node cluster over loopback
# HTTP, drive bursty load through every entry point while a fleet-wide
# two-phase hot swap lands, then SIGKILL-equivalently drop a non-coordinator
# node mid-stream and a coordinator outright — asserting zero lost requests,
# element-wise identical verdicts after session replay onto the ring
# successor, and promotion of a new coordinator — under the race detector,
# since membership-vs-forwarding is exactly where races would hide.
cluster-e2e:
	$(GO) test -race -count=1 -v -run 'TestCluster' ./pkg/cluster/
	$(GO) test -race -count=1 -run 'TestMembership|TestOwnership|TestCatalog' ./pkg/cluster/
	$(GO) test -race -count=1 ./pkg/cluster/ring/
	$(GO) test -race -count=1 -run 'TestClusterFlags' ./cmd/trusthmdd/
	$(GO) test -race -count=1 -run 'TestPostWindowRetries|TestHTTPLoopSmoke|TestParseRetryAfter' ./cmd/hmdbench/

# serve-stats replays the serve-layer cross-request cache e2e and writes
# the final /stats snapshot (cache hit/miss counters included) to
# serve-cache-stats.json; CI uploads it as a build artifact.
serve-stats:
	TRUSTHMD_SERVE_STATS_OUT=$(CURDIR)/serve-cache-stats.json \
		$(GO) test -run TestServeCacheHitsAreIdentical -count=1 ./pkg/serve/

ci: build build-arm64 vet fmt-check test test-nosimd
