package feature

import (
	"fmt"
	"math"
)

// EMDim returns the dimensionality of EMVector's output for a sensor with
// the given number of bands: log band energies plus three spectral-shape
// features (centroid, flatness, peak share).
func EMDim(bands int) int { return bands + 3 }

// EMVector extracts features from one EM band-energy observation: the log
// of each band's energy (emission energies are log-normal) plus the
// spectral centroid (where the energy sits), spectral flatness (geometric /
// arithmetic mean ratio — near 1 for noise, near 0 for tonal loop peaks)
// and the share of energy in the single strongest band.
func EMVector(bands []float64) ([]float64, error) {
	if len(bands) < 4 {
		return nil, fmt.Errorf("feature: need >=4 EM bands, got %d", len(bands))
	}
	out := make([]float64, 0, EMDim(len(bands)))
	var total, weighted, logSum, max float64
	for i, e := range bands {
		if e <= 0 || math.IsNaN(e) || math.IsInf(e, 0) {
			return nil, fmt.Errorf("feature: EM band %d energy %v must be positive and finite", i, e)
		}
		out = append(out, math.Log(e))
		total += e
		weighted += e * (float64(i) + 0.5) / float64(len(bands))
		logSum += math.Log(e)
		if e > max {
			max = e
		}
	}
	centroid := weighted / total
	flatness := math.Exp(logSum/float64(len(bands))) / (total / float64(len(bands)))
	out = append(out, centroid, flatness, max/total)
	return out, nil
}
