package feature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDVFSVectorDim(t *testing.T) {
	states := []int{0, 1, 2, 3, 3, 2, 1, 0}
	v, err := DVFSVector(states, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != DVFSDim(8) {
		t.Fatalf("dim %d, want %d", len(v), DVFSDim(8))
	}
}

func TestDVFSHistogramSums(t *testing.T) {
	states := []int{0, 0, 1, 1, 2, 2, 3, 3}
	levels := 4
	v, err := DVFSVector(states, levels)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < levels; i++ {
		sum += v[i]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("histogram sums to %v", sum)
	}
	for i := 0; i < levels; i++ {
		if math.Abs(v[i]-0.25) > 1e-12 {
			t.Fatalf("uniform states should give uniform histogram: %v", v[:levels])
		}
	}
}

func TestDVFSTransitionShares(t *testing.T) {
	// 0,1,2,3 = three up transitions out of three.
	v, err := DVFSVector([]int{0, 1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	up, down, stay := v[4], v[5], v[6]
	if up != 1 || down != 0 || stay != 0 {
		t.Fatalf("transitions up=%v down=%v stay=%v", up, down, stay)
	}
	// Constant series: all stay.
	v, err = DVFSVector([]int{2, 2, 2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v[4] != 0 || v[5] != 0 || v[6] != 1 {
		t.Fatalf("constant transitions %v %v %v", v[4], v[5], v[6])
	}
}

func TestDVFSMoments(t *testing.T) {
	levels := 5
	v, err := DVFSVector([]int{4, 4, 4, 4}, levels)
	if err != nil {
		t.Fatal(err)
	}
	meanIdx := levels + 3
	if math.Abs(v[meanIdx]-1) > 1e-12 {
		t.Fatalf("normalised mean of top state = %v, want 1", v[meanIdx])
	}
	if v[meanIdx+1] != 0 {
		t.Fatalf("constant series std = %v, want 0", v[meanIdx+1])
	}
}

func TestDVFSPeriodicAutocorr(t *testing.T) {
	// Period-2 alternation: lag-2 autocorrelation near +1, lag-1 near -1.
	states := make([]int, 64)
	for i := range states {
		states[i] = (i % 2) * 3
	}
	levels := 4
	v, err := DVFSVector(states, levels)
	if err != nil {
		t.Fatal(err)
	}
	acBase := levels + 5
	if v[acBase] > -0.8 {
		t.Fatalf("lag-1 autocorr %v, want near -1", v[acBase])
	}
	if v[acBase+1] < 0.8 {
		t.Fatalf("lag-2 autocorr %v, want near +1", v[acBase+1])
	}
}

func TestDVFSErrors(t *testing.T) {
	if _, err := DVFSVector([]int{0, 1}, 1); err == nil {
		t.Fatal("expected levels error")
	}
	if _, err := DVFSVector([]int{0}, 4); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := DVFSVector([]int{0, 9}, 4); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := DVFSVector([]int{0, -1}, 4); err == nil {
		t.Fatal("expected range error")
	}
}

// Property: every DVFS feature is finite and histogram entries lie in [0,1].
func TestDVFSFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		levels := 2 + rng.Intn(8)
		n := 2 + rng.Intn(200)
		states := make([]int, n)
		for i := range states {
			states[i] = rng.Intn(levels)
		}
		v, err := DVFSVector(states, levels)
		if err != nil {
			return false
		}
		if len(v) != DVFSDim(levels) {
			return false
		}
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
			if i < levels && (x < 0 || x > 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHPCVectorDim(t *testing.T) {
	counters := make([]float64, 16)
	for i := range counters {
		counters[i] = float64(1000 * (i + 1))
	}
	v, err := HPCVector(counters)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != HPCDim(16) {
		t.Fatalf("dim %d, want %d", len(v), HPCDim(16))
	}
}

func TestHPCLogScaling(t *testing.T) {
	counters := make([]float64, 16)
	counters[0] = math.E - 1 // log1p == 1
	v, err := HPCVector(counters)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]-1) > 1e-12 {
		t.Fatalf("log1p scaling wrong: %v", v[0])
	}
}

func TestHPCDerivedRates(t *testing.T) {
	counters := make([]float64, 16)
	counters[0] = 1000 // cycles
	counters[1] = 2000 // instructions
	counters[2] = 100  // branches
	counters[3] = 10   // branch misses
	counters[4] = 500  // cache refs
	counters[5] = 50   // cache misses
	counters[7] = 20   // syscalls
	v, err := HPCVector(counters)
	if err != nil {
		t.Fatal(err)
	}
	base := 16
	if math.Abs(v[base]-0.1) > 1e-12 {
		t.Fatalf("branch miss rate %v", v[base])
	}
	if math.Abs(v[base+1]-0.1) > 1e-12 {
		t.Fatalf("cache miss rate %v", v[base+1])
	}
	if math.Abs(v[base+2]-2) > 1e-12 {
		t.Fatalf("IPC %v", v[base+2])
	}
	if math.Abs(v[base+3]-0.01) > 1e-12 {
		t.Fatalf("syscall rate %v", v[base+3])
	}
}

func TestHPCZeroDenominators(t *testing.T) {
	counters := make([]float64, 16) // all zero
	v, err := HPCVector(counters)
	if err != nil {
		t.Fatal(err)
	}
	for i := 16; i < len(v); i++ {
		if v[i] != 0 {
			t.Fatalf("zero denominators must give 0 rates, got %v", v[i])
		}
	}
}

func TestHPCErrors(t *testing.T) {
	if _, err := HPCVector(make([]float64, 3)); err == nil {
		t.Fatal("expected size error")
	}
	bad := make([]float64, 16)
	bad[2] = -1
	if _, err := HPCVector(bad); err == nil {
		t.Fatal("expected negative counter error")
	}
	bad[2] = math.NaN()
	if _, err := HPCVector(bad); err == nil {
		t.Fatal("expected NaN error")
	}
}

// Property: HPC features are finite for any non-negative counters.
func TestHPCFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		counters := make([]float64, 16)
		for i := range counters {
			counters[i] = math.Abs(rng.NormFloat64()) * 1e7
		}
		v, err := HPCVector(counters)
		if err != nil {
			return false
		}
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEMVectorDim(t *testing.T) {
	bands := make([]float64, 32)
	for i := range bands {
		bands[i] = 1 + float64(i)
	}
	v, err := EMVector(bands)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != EMDim(32) {
		t.Fatalf("dim %d, want %d", len(v), EMDim(32))
	}
}

func TestEMVectorSpectralShape(t *testing.T) {
	// All energy in the last band: centroid near 1, low flatness, peak
	// share near 1.
	bands := make([]float64, 8)
	for i := range bands {
		bands[i] = 1e-6
	}
	bands[7] = 100
	v, err := EMVector(bands)
	if err != nil {
		t.Fatal(err)
	}
	centroid, flatness, peak := v[8], v[9], v[10]
	if centroid < 0.9 {
		t.Fatalf("centroid %v, want near 1", centroid)
	}
	if flatness > 0.01 {
		t.Fatalf("flatness %v, want near 0 for tonal spectrum", flatness)
	}
	if peak < 0.99 {
		t.Fatalf("peak share %v, want near 1", peak)
	}
	// Flat spectrum: flatness 1, centroid 0.5.
	flat := []float64{2, 2, 2, 2, 2, 2, 2, 2}
	v, err = EMVector(flat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[9]-1) > 1e-9 {
		t.Fatalf("flat spectrum flatness %v", v[9])
	}
	if math.Abs(v[8]-0.5) > 1e-9 {
		t.Fatalf("flat spectrum centroid %v", v[8])
	}
}

func TestEMVectorErrors(t *testing.T) {
	if _, err := EMVector([]float64{1, 2}); err == nil {
		t.Fatal("expected size error")
	}
	if _, err := EMVector([]float64{1, 2, 3, 0}); err == nil {
		t.Fatal("expected non-positive error")
	}
	if _, err := EMVector([]float64{1, 2, 3, math.NaN()}); err == nil {
		t.Fatal("expected NaN error")
	}
}

func TestEMVectorFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bands := make([]float64, 16)
		for i := range bands {
			bands[i] = math.Exp(rng.NormFloat64())
		}
		v, err := EMVector(bands)
		if err != nil {
			return false
		}
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
		// Shape features bounded.
		return v[16] >= 0 && v[16] <= 1 && v[17] >= 0 && v[17] <= 1+1e-9 && v[18] >= 0 && v[18] <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
