// Package feature implements the feature-extraction stage of the HMD
// pipeline (Fig. 1): DVFS state time series and raw HPC counter vectors are
// turned into fixed-length feature vectors consumed by the classifiers.
package feature

import (
	"fmt"
	"math"

	"trusthmd/internal/stats"
)

// DVFSDim returns the dimensionality of DVFSVector's output for a ladder
// with the given number of levels: occupancy histogram (levels) +
// transition shares (3) + level moments (2) + autocorrelations (4).
func DVFSDim(levels int) int { return levels + 9 }

// DVFSVector extracts features from a DVFS state time series (states in
// [0, levels)). The features mirror those used on DVFS signatures in the
// literature: state residency histogram, up/down/stay transition shares,
// mean and standard deviation of the state, and short-lag autocorrelations
// of the state sequence (which capture periodic beaconing and burst
// structure).
func DVFSVector(states []int, levels int) ([]float64, error) {
	if levels < 2 {
		return nil, fmt.Errorf("feature: need >=2 levels, got %d", levels)
	}
	if len(states) < 2 {
		return nil, fmt.Errorf("feature: need >=2 samples, got %d", len(states))
	}
	out := make([]float64, 0, DVFSDim(levels))

	// State residency histogram.
	hist := make([]float64, levels)
	series := make([]float64, len(states))
	for i, s := range states {
		if s < 0 || s >= levels {
			return nil, fmt.Errorf("feature: state %d at sample %d outside [0,%d)", s, i, levels)
		}
		hist[s]++
		series[i] = float64(s)
	}
	inv := 1 / float64(len(states))
	for i := range hist {
		hist[i] *= inv
	}
	out = append(out, hist...)

	// Transition shares: up, down, stay.
	var up, down, stay float64
	for i := 1; i < len(states); i++ {
		switch {
		case states[i] > states[i-1]:
			up++
		case states[i] < states[i-1]:
			down++
		default:
			stay++
		}
	}
	tInv := 1 / float64(len(states)-1)
	out = append(out, up*tInv, down*tInv, stay*tInv)

	// Level moments.
	var m stats.Moments
	for _, v := range series {
		m.Add(v)
	}
	out = append(out, m.Mean()/float64(levels-1), m.Std()/float64(levels-1))

	// Short-lag autocorrelations capture periodic structure.
	lags := []int{1, 2, 4, 8}
	maxLag := lags[len(lags)-1]
	ac, err := stats.Autocorrelation(series, maxLag)
	if err != nil {
		return nil, fmt.Errorf("feature: %w", err)
	}
	for _, lag := range lags {
		if lag < len(ac) {
			out = append(out, ac[lag])
		} else {
			out = append(out, 0)
		}
	}
	return out, nil
}

// HPCDim is the dimensionality of HPCVector's output: log-scaled event
// counts plus four derived rate features.
func HPCDim(events int) int { return events + 4 }

// HPCVector extracts features from one window of raw HPC counter values:
// log1p of each counter (counts are heavy-tailed) plus derived
// micro-architectural rates — branch-miss rate, cache-miss rate, IPC proxy
// and syscall intensity — which the HPC-HMD literature reports as the most
// informative inputs. The expected event order is that of hpc.EventNames.
func HPCVector(counters []float64) ([]float64, error) {
	const minEvents = 8
	if len(counters) < minEvents {
		return nil, fmt.Errorf("feature: need >=%d counters, got %d", minEvents, len(counters))
	}
	out := make([]float64, 0, HPCDim(len(counters)))
	for i, c := range counters {
		if c < 0 || math.IsNaN(c) {
			return nil, fmt.Errorf("feature: counter %d is %v", i, c)
		}
		out = append(out, math.Log1p(c))
	}
	// Derived rates; indices follow hpc.EventNames:
	// 0 cycles, 1 instructions, 2 branches, 3 branch-misses,
	// 4 cache-refs, 5 cache-misses, 6 llc-loads, 7 syscalls, ...
	ratio := func(num, den float64) float64 {
		if den <= 0 {
			return 0
		}
		return num / den
	}
	out = append(out,
		ratio(counters[3], counters[2]), // branch miss rate
		ratio(counters[5], counters[4]), // cache miss rate
		ratio(counters[1], counters[0]), // IPC proxy
		ratio(counters[7], counters[1]), // syscalls per instruction
	)
	return out, nil
}
