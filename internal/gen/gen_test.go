package gen

import (
	"testing"

	"trusthmd/internal/feature"
	"trusthmd/internal/hpc"
	"trusthmd/pkg/dataset"
)

func TestDVFSTableISizes(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table I generation in -short mode")
	}
	s, err := DVFS(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Train.Len() != 2100 || s.Test.Len() != 700 || s.Unknown.Len() != 284 {
		t.Fatalf("sizes %d/%d/%d, want 2100/700/284", s.Train.Len(), s.Test.Len(), s.Unknown.Len())
	}
}

func TestDVFSSmallSplits(t *testing.T) {
	sizes := Sizes{Train: 140, Test: 70, Unknown: 40}
	s, err := DVFSWithSizes(2, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if s.Train.Len() != 140 || s.Test.Len() != 70 || s.Unknown.Len() != 40 {
		t.Fatalf("sizes %d/%d/%d", s.Train.Len(), s.Test.Len(), s.Unknown.Len())
	}
	// Known and unknown app sets must be disjoint.
	knownApps := map[string]bool{}
	for _, a := range s.Train.Apps() {
		knownApps[a] = true
	}
	for _, a := range s.Test.Apps() {
		if !knownApps[a] {
			t.Fatalf("test app %q not in training apps", a)
		}
	}
	for _, a := range s.Unknown.Apps() {
		if knownApps[a] {
			t.Fatalf("unknown app %q leaked into known set", a)
		}
	}
	// Both classes present in train.
	b, m := s.Train.ClassCounts()
	if b == 0 || m == 0 {
		t.Fatalf("train classes %d/%d", b, m)
	}
}

func TestHPCSmallSplits(t *testing.T) {
	sizes := Sizes{Train: 280, Test: 140, Unknown: 100}
	s, err := HPCWithSizes(3, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if s.Train.Len() != 280 || s.Test.Len() != 140 || s.Unknown.Len() != 100 {
		t.Fatalf("sizes %d/%d/%d", s.Train.Len(), s.Test.Len(), s.Unknown.Len())
	}
	if s.Train.Dim() != feature.HPCDim(hpc.NumEvents) {
		t.Fatalf("dim %d", s.Train.Dim())
	}
	ub, um := s.Unknown.ClassCounts()
	if ub == 0 || um == 0 {
		t.Fatalf("unknown bucket classes %d/%d: needs both", ub, um)
	}
}

func TestSizesValidation(t *testing.T) {
	if _, err := DVFSWithSizes(1, Sizes{}); err == nil {
		t.Fatal("expected sizes error")
	}
	if _, err := HPCWithSizes(1, Sizes{Train: 1}); err == nil {
		t.Fatal("expected sizes error")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	sizes := Sizes{Train: 56, Test: 28, Unknown: 12}
	a, err := DVFSWithSizes(9, sizes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DVFSWithSizes(9, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Train.Len(); i++ {
		sa, sb := a.Train.At(i), b.Train.At(i)
		if sa.App != sb.App || sa.Label != sb.Label {
			t.Fatal("generation not deterministic")
		}
		for j := range sa.Features {
			if sa.Features[j] != sb.Features[j] {
				t.Fatal("features not deterministic")
			}
		}
	}
}

func TestLabelsMatchCatalogue(t *testing.T) {
	sizes := Sizes{Train: 56, Test: 28, Unknown: 12}
	s, err := DVFSWithSizes(4, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Train.Len(); i++ {
		smp := s.Train.At(i)
		if smp.Label != dataset.Benign && smp.Label != dataset.Malware {
			t.Fatalf("bad label %d", smp.Label)
		}
	}
}

func TestEMSplits(t *testing.T) {
	sizes := Sizes{Train: 120, Test: 60, Unknown: 30}
	s, err := EMWithSizes(7, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if s.Train.Len() != 120 || s.Test.Len() != 60 || s.Unknown.Len() != 30 {
		t.Fatalf("sizes %d/%d/%d", s.Train.Len(), s.Test.Len(), s.Unknown.Len())
	}
	knownApps := map[string]bool{}
	for _, a := range s.Train.Apps() {
		knownApps[a] = true
	}
	for _, a := range s.Unknown.Apps() {
		if knownApps[a] {
			t.Fatalf("unknown app %q leaked into training", a)
		}
	}
	b, m := s.Train.ClassCounts()
	if b == 0 || m == 0 {
		t.Fatalf("train classes %d/%d", b, m)
	}
	if _, err := EMWithSizes(1, Sizes{}); err == nil {
		t.Fatal("expected sizes error")
	}
}
