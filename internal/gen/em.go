package gen

import (
	"fmt"
	"math/rand"

	"trusthmd/internal/em"
	"trusthmd/internal/feature"
	"trusthmd/internal/workload"
	"trusthmd/pkg/dataset"
)

// EMSizes are the default split sizes for the EM generalisation experiment
// (E1). The paper does not evaluate an EM dataset; sizes mirror the DVFS
// row of Table I so results are comparable.
var EMSizes = Sizes{Train: 2100, Test: 700, Unknown: 284}

// EMWithSizes generates an EM emission dataset with the given split sizes,
// following the same known/unknown application bucketing as the other
// substrates.
func EMWithSizes(seed int64, sizes Sizes) (Splits, error) {
	if err := sizes.Validate(); err != nil {
		return Splits{}, err
	}
	sensor, err := em.NewSensor(em.DefaultConfig())
	if err != nil {
		return Splits{}, err
	}
	apps := em.Apps()
	var known, unknown []em.Behavior
	for _, a := range apps {
		if a.Known {
			known = append(known, a)
		} else {
			unknown = append(unknown, a)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	dim := feature.EMDim(sensor.Bands())

	build := func(apps []em.Behavior, total int) (*dataset.Dataset, error) {
		alloc, err := workload.Allocate(total, len(apps))
		if err != nil {
			return nil, err
		}
		d := dataset.New(dim)
		for i, app := range apps {
			for k := 0; k < alloc[i]; k++ {
				bands, err := sensor.Observe(app, rng)
				if err != nil {
					return nil, err
				}
				feats, err := feature.EMVector(bands)
				if err != nil {
					return nil, err
				}
				if err := d.Add(dataset.Sample{Features: feats, Label: app.Label, App: app.Name}); err != nil {
					return nil, err
				}
			}
		}
		return d, nil
	}

	var s Splits
	if s.Train, err = build(known, sizes.Train); err != nil {
		return Splits{}, fmt.Errorf("gen: em train: %w", err)
	}
	if s.Test, err = build(known, sizes.Test); err != nil {
		return Splits{}, fmt.Errorf("gen: em test: %w", err)
	}
	if s.Unknown, err = build(unknown, sizes.Unknown); err != nil {
		return Splits{}, fmt.Errorf("gen: em unknown: %w", err)
	}
	return s, nil
}
