// Package gen builds the paper's two datasets end to end: it runs the
// telemetry simulators over the workload catalogue, extracts features, and
// returns train / known-test / unknown splits with exactly the sample
// counts of Table I.
//
//	DVFS: 2100 train, 700 known test, 284 unknown
//	HPC: 44605 train, 6372 known test, 12727 unknown
//
// Because samples are independent given an application, drawing the train
// and test sets separately per known application is equivalent to drawing
// one pool and splitting it, and lets the generator hit the exact counts.
package gen

import (
	"fmt"
	"math/rand"

	"trusthmd/internal/dvfs"
	"trusthmd/internal/feature"
	"trusthmd/internal/hpc"
	"trusthmd/internal/workload"
	"trusthmd/pkg/dataset"
)

// Splits bundles the three datasets of the paper's Fig. 6 breakdown.
type Splits struct {
	Train   *dataset.Dataset // known applications, training share
	Test    *dataset.Dataset // known applications, held-out share
	Unknown *dataset.Dataset // unknown applications (zero-day bucket)
}

// Sizes fixes the total sample counts of each split.
type Sizes struct {
	Train, Test, Unknown int
}

// TableIDVFS is the DVFS row of the paper's Table I.
var TableIDVFS = Sizes{Train: 2100, Test: 700, Unknown: 284}

// TableIHPC is the HPC row of the paper's Table I.
var TableIHPC = Sizes{Train: 44605, Test: 6372, Unknown: 12727}

// Validate checks the sizes are usable.
func (s Sizes) Validate() error {
	if s.Train < 1 || s.Test < 1 || s.Unknown < 1 {
		return fmt.Errorf("gen: all splits need >=1 sample, got %+v", s)
	}
	return nil
}

// DVFS generates the full-size DVFS dataset (Table I row 1).
func DVFS(seed int64) (Splits, error) { return DVFSWithSizes(seed, TableIDVFS) }

// DVFSWithSizes generates a DVFS dataset with custom split sizes (smaller
// sizes are used by tests and quick benchmarks).
func DVFSWithSizes(seed int64, sizes Sizes) (Splits, error) {
	if err := sizes.Validate(); err != nil {
		return Splits{}, err
	}
	sim, err := dvfs.NewSimulator(dvfs.DefaultConfig())
	if err != nil {
		return Splits{}, err
	}
	apps := workload.DVFSApps()
	var known, unknown []workload.DVFSBehavior
	for _, a := range apps {
		if a.Known {
			known = append(known, a)
		} else {
			unknown = append(unknown, a)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	dim := feature.DVFSDim(sim.Config().Levels)

	build := func(apps []workload.DVFSBehavior, total int) (*dataset.Dataset, error) {
		alloc, err := workload.Allocate(total, len(apps))
		if err != nil {
			return nil, err
		}
		d := dataset.New(dim)
		for i, app := range apps {
			for k := 0; k < alloc[i]; k++ {
				trace, err := sim.Trace(app, rng)
				if err != nil {
					return nil, err
				}
				feats, err := feature.DVFSVector(trace, sim.Config().Levels)
				if err != nil {
					return nil, err
				}
				if err := d.Add(dataset.Sample{Features: feats, Label: app.Label, App: app.Name}); err != nil {
					return nil, err
				}
			}
		}
		return d, nil
	}

	var s Splits
	if s.Train, err = build(known, sizes.Train); err != nil {
		return Splits{}, fmt.Errorf("gen: dvfs train: %w", err)
	}
	if s.Test, err = build(known, sizes.Test); err != nil {
		return Splits{}, fmt.Errorf("gen: dvfs test: %w", err)
	}
	if s.Unknown, err = build(unknown, sizes.Unknown); err != nil {
		return Splits{}, fmt.Errorf("gen: dvfs unknown: %w", err)
	}
	return s, nil
}

// HPC generates the full-size HPC dataset (Table I row 2).
func HPC(seed int64) (Splits, error) { return HPCWithSizes(seed, TableIHPC) }

// HPCWithSizes generates an HPC dataset with custom split sizes.
func HPCWithSizes(seed int64, sizes Sizes) (Splits, error) {
	if err := sizes.Validate(); err != nil {
		return Splits{}, err
	}
	g := hpc.NewGenerator()
	apps := workload.HPCApps()
	var known, unknown []workload.HPCBehavior
	for _, a := range apps {
		if a.Known {
			known = append(known, a)
		} else {
			unknown = append(unknown, a)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	dim := feature.HPCDim(hpc.NumEvents)

	build := func(apps []workload.HPCBehavior, total int) (*dataset.Dataset, error) {
		alloc, err := workload.Allocate(total, len(apps))
		if err != nil {
			return nil, err
		}
		d := dataset.New(dim)
		for i, app := range apps {
			for k := 0; k < alloc[i]; k++ {
				w, err := g.Window(app, rng)
				if err != nil {
					return nil, err
				}
				feats, err := feature.HPCVector(w)
				if err != nil {
					return nil, err
				}
				if err := d.Add(dataset.Sample{Features: feats, Label: app.Label, App: app.Name}); err != nil {
					return nil, err
				}
			}
		}
		return d, nil
	}

	var s Splits
	var err error
	if s.Train, err = build(known, sizes.Train); err != nil {
		return Splits{}, fmt.Errorf("gen: hpc train: %w", err)
	}
	if s.Test, err = build(known, sizes.Test); err != nil {
		return Splits{}, fmt.Errorf("gen: hpc test: %w", err)
	}
	if s.Unknown, err = build(unknown, sizes.Unknown); err != nil {
		return Splits{}, fmt.Errorf("gen: hpc unknown: %w", err)
	}
	return s, nil
}
