// Package em simulates the electromagnetic-emission telemetry substrate of
// the third HMD family the paper's introduction cites (EDDIE, Nazari et
// al. [4]): program execution leaks EM side-channel energy whose spectrum
// is dominated by the program's loop structure — each hot loop contributes
// a spectral peak at its iteration frequency plus harmonics. Malware that
// hijacks or adds loops shifts the spectrum.
//
// A workload is modelled as a set of loops (fundamental frequency,
// amplitude, harmonic roll-off); an observation is the emission energy
// integrated over fixed frequency bands, with 1/f background noise and
// per-run frequency drift (DVFS and thermal effects move loop frequencies
// between runs). The experiment E1 feeds these observations through the
// identical trusted-HMD pipeline to show the uncertainty framework is
// sensor-agnostic.
package em

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Loop is one periodic program component emitting at a fundamental
// frequency (in arbitrary units of the observed band range).
type Loop struct {
	// Freq is the fundamental frequency, in (0, 1) relative to the
	// observed bandwidth.
	Freq float64
	// Amp is the peak emission amplitude.
	Amp float64
	// Harmonics is the number of harmonic peaks (>= 1); harmonic h has
	// amplitude Amp / h.
	Harmonics int
}

// Behavior is one application's emission model.
type Behavior struct {
	// Name, Label, Known follow the workload conventions.
	Name  string
	Label int
	Known bool
	// Loops are the emitting program components.
	Loops []Loop
	// Broadband is the flat emission floor.
	Broadband float64
	// Drift is the per-run relative frequency jitter (thermal/DVFS
	// effects); it widens the app's cluster in feature space.
	Drift float64
}

// Validate checks the behaviour's parameters.
func (b Behavior) Validate() error {
	if b.Name == "" {
		return errors.New("em: unnamed app")
	}
	if b.Label != 0 && b.Label != 1 {
		return fmt.Errorf("em: %s: bad label %d", b.Name, b.Label)
	}
	if len(b.Loops) == 0 {
		return fmt.Errorf("em: %s: needs >=1 loop", b.Name)
	}
	for i, l := range b.Loops {
		if l.Freq <= 0 || l.Freq >= 1 {
			return fmt.Errorf("em: %s: loop %d frequency %v outside (0,1)", b.Name, i, l.Freq)
		}
		if l.Amp <= 0 {
			return fmt.Errorf("em: %s: loop %d amplitude %v must be positive", b.Name, i, l.Amp)
		}
		if l.Harmonics < 1 {
			return fmt.Errorf("em: %s: loop %d needs >=1 harmonic", b.Name, i)
		}
	}
	if b.Broadband < 0 {
		return fmt.Errorf("em: %s: negative broadband %v", b.Name, b.Broadband)
	}
	if b.Drift < 0 || b.Drift > 0.5 {
		return fmt.Errorf("em: %s: drift %v outside [0,0.5]", b.Name, b.Drift)
	}
	return nil
}

// Config describes the spectral observation.
type Config struct {
	// Bands is the number of frequency bands integrated (default 32).
	Bands int
	// PeakWidth is the relative width of each spectral peak (default 0.015).
	PeakWidth float64
	// NoiseSigma is the multiplicative log-normal measurement noise per
	// band (default 0.2).
	NoiseSigma float64
}

// DefaultConfig returns the observation settings used by experiment E1.
func DefaultConfig() Config {
	return Config{Bands: 32, PeakWidth: 0.015, NoiseSigma: 0.2}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Bands < 4 {
		return fmt.Errorf("em: need >=4 bands, got %d", c.Bands)
	}
	if c.PeakWidth <= 0 || c.PeakWidth > 0.2 {
		return fmt.Errorf("em: peak width %v outside (0,0.2]", c.PeakWidth)
	}
	if c.NoiseSigma < 0 || c.NoiseSigma > 2 {
		return fmt.Errorf("em: noise sigma %v outside [0,2]", c.NoiseSigma)
	}
	return nil
}

// Sensor integrates emission spectra into band energies.
type Sensor struct {
	cfg Config
}

// NewSensor validates cfg and returns a sensor.
func NewSensor(cfg Config) (*Sensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sensor{cfg: cfg}, nil
}

// Config returns the sensor configuration.
func (s *Sensor) Config() Config { return s.cfg }

// Bands returns the number of observed bands.
func (s *Sensor) Bands() int { return s.cfg.Bands }

// Observe produces one band-energy vector for the behaviour: per-run loop
// frequency drift, Gaussian peaks with harmonics, 1/f background, and
// multiplicative measurement noise.
func (s *Sensor) Observe(b Behavior, rng *rand.Rand) ([]float64, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, s.cfg.Bands)
	// 1/f background plus flat broadband component.
	for i := range out {
		f := (float64(i) + 0.5) / float64(s.cfg.Bands)
		out[i] = b.Broadband + 0.02/(f+0.05)
	}
	for _, l := range b.Loops {
		f0 := l.Freq * (1 + rng.NormFloat64()*b.Drift)
		for h := 1; h <= l.Harmonics; h++ {
			fh := f0 * float64(h)
			if fh >= 1 {
				break
			}
			amp := l.Amp / float64(h)
			for i := range out {
				f := (float64(i) + 0.5) / float64(s.cfg.Bands)
				d := (f - fh) / s.cfg.PeakWidth
				out[i] += amp * math.Exp(-0.5*d*d)
			}
		}
	}
	if s.cfg.NoiseSigma > 0 {
		for i := range out {
			out[i] *= math.Exp(rng.NormFloat64() * s.cfg.NoiseSigma)
		}
	}
	return out, nil
}

// Apps returns the EM application catalogue, calibrated like the DVFS one:
// known benign loops at low-to-mid frequencies, known malware with
// characteristic high-frequency or multi-peak structure, unknown apps with
// fundamentals in the unpopulated gaps between the known peaks.
func Apps() []Behavior {
	const B, M = 0, 1
	return []Behavior{
		// Known benign.
		{Name: "em_ui_loop", Label: B, Known: true, Loops: []Loop{{Freq: 0.06, Amp: 1.0, Harmonics: 3}}, Broadband: 0.05, Drift: 0.05},
		{Name: "em_codec", Label: B, Known: true, Loops: []Loop{{Freq: 0.11, Amp: 1.2, Harmonics: 4}}, Broadband: 0.06, Drift: 0.05},
		{Name: "em_net_poll", Label: B, Known: true, Loops: []Loop{{Freq: 0.16, Amp: 0.8, Harmonics: 2}, {Freq: 0.05, Amp: 0.4, Harmonics: 1}}, Broadband: 0.05, Drift: 0.06},
		{Name: "em_render", Label: B, Known: true, Loops: []Loop{{Freq: 0.22, Amp: 1.1, Harmonics: 3}}, Broadband: 0.07, Drift: 0.05},
		{Name: "em_db_scan", Label: B, Known: true, Loops: []Loop{{Freq: 0.28, Amp: 0.9, Harmonics: 2}}, Broadband: 0.06, Drift: 0.06},

		// Known malware: tight high-frequency crypto kernels and
		// double-peak injector loops.
		{Name: "em_miner_loop", Label: M, Known: true, Loops: []Loop{{Freq: 0.62, Amp: 1.6, Harmonics: 1}}, Broadband: 0.05, Drift: 0.04},
		{Name: "em_packer", Label: M, Known: true, Loops: []Loop{{Freq: 0.55, Amp: 1.2, Harmonics: 1}, {Freq: 0.70, Amp: 0.8, Harmonics: 1}}, Broadband: 0.06, Drift: 0.05},
		{Name: "em_keylogger", Label: M, Known: true, Loops: []Loop{{Freq: 0.48, Amp: 1.0, Harmonics: 2}}, Broadband: 0.05, Drift: 0.05},
		{Name: "em_exfil", Label: M, Known: true, Loops: []Loop{{Freq: 0.75, Amp: 1.3, Harmonics: 1}, {Freq: 0.12, Amp: 0.3, Harmonics: 1}}, Broadband: 0.07, Drift: 0.05},

		// Unknown: fundamentals in the 0.30-0.46 gap between the benign
		// and malware bands.
		{Name: "em_new_app", Label: B, Known: false, Loops: []Loop{{Freq: 0.35, Amp: 1.0, Harmonics: 2}}, Broadband: 0.06, Drift: 0.06},
		{Name: "em_zeroday_a", Label: M, Known: false, Loops: []Loop{{Freq: 0.40, Amp: 1.2, Harmonics: 1}}, Broadband: 0.05, Drift: 0.05},
		{Name: "em_zeroday_b", Label: M, Known: false, Loops: []Loop{{Freq: 0.33, Amp: 1.1, Harmonics: 1}, {Freq: 0.44, Amp: 0.6, Harmonics: 1}}, Broadband: 0.06, Drift: 0.05},
	}
}
