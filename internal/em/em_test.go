package em

import (
	"math"
	"math/rand"
	"testing"

	"trusthmd/pkg/linalg"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := map[string]func(c Config) Config{
		"bands":      func(c Config) Config { c.Bands = 2; return c },
		"width zero": func(c Config) Config { c.PeakWidth = 0; return c },
		"width big":  func(c Config) Config { c.PeakWidth = 0.5; return c },
		"noise neg":  func(c Config) Config { c.NoiseSigma = -1; return c },
		"noise big":  func(c Config) Config { c.NoiseSigma = 3; return c },
	}
	for name, mutate := range cases {
		if err := mutate(DefaultConfig()).Validate(); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := NewSensor(Config{}); err == nil {
		t.Fatal("expected invalid config error")
	}
}

func TestCatalogueValid(t *testing.T) {
	apps := Apps()
	if len(apps) < 10 {
		t.Fatalf("catalogue has %d apps", len(apps))
	}
	names := map[string]bool{}
	var known, unknown, benign, malware int
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		if names[a.Name] {
			t.Fatalf("duplicate app %q", a.Name)
		}
		names[a.Name] = true
		if a.Known {
			known++
		} else {
			unknown++
		}
		if a.Label == 0 {
			benign++
		} else {
			malware++
		}
	}
	if known < 8 || unknown < 2 || benign == 0 || malware == 0 {
		t.Fatalf("catalogue shape: known=%d unknown=%d benign=%d malware=%d", known, unknown, benign, malware)
	}
}

func TestBehaviorValidateRejects(t *testing.T) {
	base := Apps()[0]
	cases := map[string]func(b Behavior) Behavior{
		"no name":   func(b Behavior) Behavior { b.Name = ""; return b },
		"bad label": func(b Behavior) Behavior { b.Label = 7; return b },
		"no loops":  func(b Behavior) Behavior { b.Loops = nil; return b },
		"freq zero": func(b Behavior) Behavior { b.Loops = []Loop{{Freq: 0, Amp: 1, Harmonics: 1}}; return b },
		"freq high": func(b Behavior) Behavior { b.Loops = []Loop{{Freq: 1, Amp: 1, Harmonics: 1}}; return b },
		"amp":       func(b Behavior) Behavior { b.Loops = []Loop{{Freq: 0.5, Amp: 0, Harmonics: 1}}; return b },
		"harmonics": func(b Behavior) Behavior { b.Loops = []Loop{{Freq: 0.5, Amp: 1, Harmonics: 0}}; return b },
		"broadband": func(b Behavior) Behavior { b.Broadband = -1; return b },
		"drift":     func(b Behavior) Behavior { b.Drift = 0.9; return b },
		"drift neg": func(b Behavior) Behavior { b.Drift = -0.1; return b },
	}
	for name, mutate := range cases {
		if err := mutate(base).Validate(); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func mustSensor(t *testing.T) *Sensor {
	t.Helper()
	s, err := NewSensor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestObserveShapeAndPositivity(t *testing.T) {
	s := mustSensor(t)
	rng := rand.New(rand.NewSource(1))
	for _, app := range Apps() {
		bands, err := s.Observe(app, rng)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if len(bands) != s.Bands() {
			t.Fatalf("%s: %d bands", app.Name, len(bands))
		}
		for i, e := range bands {
			if e <= 0 || math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("%s: band %d energy %v", app.Name, i, e)
			}
		}
	}
}

func TestObserveRejectsBadBehaviour(t *testing.T) {
	s := mustSensor(t)
	if _, err := s.Observe(Behavior{Name: "x"}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSpectralPeakLocation(t *testing.T) {
	// A single noiseless loop at 0.5 must put its maximum energy in the
	// band containing 0.5.
	s, err := NewSensor(Config{Bands: 32, PeakWidth: 0.015, NoiseSigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	b := Behavior{Name: "probe", Label: 0, Loops: []Loop{{Freq: 0.5, Amp: 5, Harmonics: 1}}}
	bands, err := s.Observe(b, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	best := linalg.ArgMax(bands)
	wantBand := 16 // band containing 0.5 of 32
	if best < wantBand-1 || best > wantBand+1 {
		t.Fatalf("peak in band %d, want near %d", best, wantBand)
	}
}

func TestHarmonicsAddPeaks(t *testing.T) {
	s, err := NewSensor(Config{Bands: 64, PeakWidth: 0.01, NoiseSigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	one := Behavior{Name: "h1", Label: 0, Loops: []Loop{{Freq: 0.2, Amp: 2, Harmonics: 1}}}
	three := Behavior{Name: "h3", Label: 0, Loops: []Loop{{Freq: 0.2, Amp: 2, Harmonics: 3}}}
	b1, err := s.Observe(one, rng)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := s.Observe(three, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The band near 0.6 (third harmonic) must carry more energy for h3.
	band := 38 // third harmonic at 0.6 of 64 bands
	if b3[band] <= b1[band]*1.5 {
		t.Fatalf("third harmonic missing: %v vs %v", b3[band], b1[band])
	}
}

func TestClassSeparationInBandSpace(t *testing.T) {
	// Known benign fundamentals live below 0.3, known malware above 0.45:
	// the spectral centroid separates them.
	s := mustSensor(t)
	rng := rand.New(rand.NewSource(4))
	centroid := func(bands []float64) float64 {
		var total, weighted float64
		for i, e := range bands {
			total += e
			weighted += e * (float64(i) + 0.5) / float64(len(bands))
		}
		return weighted / total
	}
	var benignMax, malwareMin float64
	malwareMin = 1
	for _, app := range Apps() {
		if !app.Known {
			continue
		}
		var sum float64
		for k := 0; k < 20; k++ {
			bands, err := s.Observe(app, rng)
			if err != nil {
				t.Fatal(err)
			}
			sum += centroid(bands)
		}
		mean := sum / 20
		if app.Label == 0 && mean > benignMax {
			benignMax = mean
		}
		if app.Label == 1 && mean < malwareMin {
			malwareMin = mean
		}
	}
	if benignMax >= malwareMin {
		t.Fatalf("centroids overlap: benign max %.3f vs malware min %.3f", benignMax, malwareMin)
	}
}

func TestObserveDeterministicUnderSeed(t *testing.T) {
	s := mustSensor(t)
	app := Apps()[0]
	a, err := s.Observe(app, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Observe(app, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same observation")
		}
	}
}
